//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **kernel-width sweep** — PressedConv on conv5.1 with every SIMD tier
//!   forced (the per-ISA deltas behind Fig. 7's per-operator gains);
//! * **pressed vs image-to-column binary conv** — the §III-A algorithmic
//!   claim, same operator both ways;
//! * **fused conv+sign vs two-pass** — the engine's serial fusion;
//! * **popcount implementations** — native VPOPCNTDQ vs AVX2 nibble lookup
//!   vs scalar POPCNT on a bgemm-sized stream;
//! * **zero-cost padding vs copy-padding** — pre-padded buffer reuse vs
//!   explicitly re-packing into a padded tensor each time.

use bitflow_bench::workloads::{prepare, table_iv};
use bitflow_ops::binary::{
    binarize_pack_padded, binary_conv_im2col, pressed_conv, pressed_conv_sign_into, BnFold,
    SignThresholds,
};
use bitflow_ops::SimdLevel;
use bitflow_simd::xor_popcount;
use bitflow_tensor::BitTensor;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn bench_kernel_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-kernel-width");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(300));
    let w = table_iv()[3]; // conv5.1, C=512 divides every tier
    let p = prepare(&w, 60);
    let bank = p.bank.as_ref().unwrap();
    for level in [
        SimdLevel::Scalar,
        SimdLevel::Sse,
        SimdLevel::Avx2,
        SimdLevel::Avx512,
    ] {
        group.bench_function(format!("conv5.1/{level}"), |b| {
            b.iter(|| black_box(pressed_conv(level, &p.bit_input, bank, 1)));
        });
    }
    group.finish();
}

fn bench_pressed_vs_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-algorithm");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300));
    for w in [table_iv()[1], table_iv()[3]] {
        // conv3.1, conv5.1
        let p = prepare(&w, 61);
        let bank = p.bank.as_ref().unwrap();
        let f = p.fshape.unwrap();
        group.bench_function(format!("{}/pressed", w.name), |b| {
            b.iter(|| black_box(pressed_conv(SimdLevel::Avx512, &p.bit_input, bank, 1)));
        });
        group.bench_function(format!("{}/binary-im2col", w.name), |b| {
            b.iter(|| {
                black_box(binary_conv_im2col(
                    SimdLevel::Avx512,
                    &p.input,
                    &p.weights,
                    f,
                    w.params,
                ))
            });
        });
    }
    group.finish();
}

fn bench_fused_conv_sign(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-conv-sign-fusion");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(300));
    let w = table_iv()[2]; // conv4.1
    let p = prepare(&w, 62);
    let bank = p.bank.as_ref().unwrap();
    let k = bank.shape().k;
    let thresholds = vec![0.0f32; k];
    let flip = vec![false; k];
    let f = bank.shape();
    let st = SignThresholds::from_fold(
        &BnFold {
            thresholds: thresholds.clone(),
            flip: flip.clone(),
        },
        f.kh * f.kw * f.c,
    );
    let g = w.params.conv_out(w.input_shape(), k);
    group.bench_function("conv4.1/fused-conv-sign-pack", |b| {
        let mut out = BitTensor::zeros(g.out_h + 2, g.out_w + 2, k);
        b.iter(|| {
            pressed_conv_sign_into(SimdLevel::Avx512, &p.bit_input, bank, 1, &st, &mut out, 1);
            black_box(&out);
        });
    });
    group.bench_function("conv4.1/two-pass-counts-then-pack", |b| {
        b.iter(|| {
            let counts = pressed_conv(SimdLevel::Avx512, &p.bit_input, bank, 1);
            black_box(bitflow_ops::binary::binarize_threshold_padded(
                &counts,
                &thresholds,
                &flip,
                1,
            ));
        });
    });
    group.finish();
}

fn bench_popcount_impls(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-popcount");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(1000))
        .warm_up_time(Duration::from_millis(200));
    let mut rng = StdRng::seed_from_u64(63);
    let a: Vec<u64> = (0..1 << 16).map(|_| rng.gen()).collect();
    let b: Vec<u64> = (0..1 << 16).map(|_| rng.gen()).collect();
    for level in [
        SimdLevel::Scalar,
        SimdLevel::Sse,
        SimdLevel::Avx2,
        SimdLevel::Avx512,
    ] {
        group.bench_function(format!("xor-popcount-512KiB/{level}"), |bch| {
            bch.iter(|| black_box(xor_popcount(level, &a, &b)));
        });
    }
    group.finish();
}

fn bench_layout_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-layout");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1000))
        .warm_up_time(Duration::from_millis(200));
    // conv2.1-sized activation map: 112x112x64.
    let w = table_iv()[0];
    let p = prepare(&w, 65);
    let nchw = bitflow_tensor::layout::nhwc_to_nchw(&p.input);
    group.bench_function("pack-112x112x64/from-NHWC", |b| {
        b.iter(|| black_box(BitTensor::from_tensor(&p.input)));
    });
    group.bench_function("pack-112x112x64/from-NCHW-gather", |b| {
        b.iter(|| black_box(BitTensor::from_nchw(&nchw, w.h, w.w, w.c)));
    });
    // Fused pack+transpose traversal orders (Table III deep-dive).
    let (n, k) = (4096usize, 1024usize);
    let mut rng = StdRng::seed_from_u64(66);
    let bmat: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    group.bench_function("pack-b-fused/blocked", |b| {
        b.iter(|| black_box(bitflow_gemm::pack::pack_b_fused(&bmat, n, k)));
    });
    group.bench_function("pack-b-fused/columnwise-paper", |b| {
        b.iter(|| black_box(bitflow_gemm::pack::pack_b_fused_columnwise(&bmat, n, k)));
    });
    group.finish();
}

fn bench_padding_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-padding");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1000))
        .warm_up_time(Duration::from_millis(200));
    let w = table_iv()[0]; // conv2.1: biggest spatial extent → biggest pad cost
    let p = prepare(&w, 64);
    // Zero-cost: the padded pressed input already exists (built once by the
    // network plan); convolving it directly is the whole cost.
    let bank = p.bank.as_ref().unwrap();
    group.bench_function("conv2.1/zero-cost-padding", |b| {
        b.iter(|| black_box(pressed_conv(SimdLevel::Avx512, &p.bit_input, bank, 1)));
    });
    // Copy-padding: re-binarize+pack the float map into a fresh padded
    // tensor every inference (first-convolution-then-padding convention).
    group.bench_function("conv2.1/copy-padding-then-conv", |b| {
        b.iter(|| {
            let padded = binarize_pack_padded(&p.input, 1);
            black_box(pressed_conv(SimdLevel::Avx512, &padded, bank, 1));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel_width,
    bench_pressed_vs_im2col,
    bench_fused_conv_sign,
    bench_popcount_impls,
    bench_layout_packing,
    bench_padding_strategy
);
criterion_main!(benches);
