//! Criterion bench for Fig. 10's measured series: BitFlow's best CPU
//! configuration per Table IV operator (the GPU comparator line is
//! analytical — printed by the `fig10` binary).

use bitflow_bench::runners::{run_once, Impl};
use bitflow_bench::timing::with_pool;
use bitflow_bench::workloads::{prepare, table_iv};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_fig10(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("fig10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(300));
    for w in table_iv() {
        let p = prepare(&w, 44);
        group.bench_function(format!("{}/bitflow-best", w.name), |b| {
            with_pool(threads, || {
                b.iter(|| run_once(Impl::BitFlow, &p, threads));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
