//! Criterion bench for Fig. 11's measured series: binarized VGG-16/19
//! end-to-end inference through the BitFlow engine (the GPU comparator is
//! analytical — printed by the `fig11` binary).

use bitflow_bench::timing::with_pool;
use bitflow_graph::models::{vgg16, vgg19};
use bitflow_graph::weights::NetworkWeights;
use bitflow_graph::Network;
use bitflow_tensor::{Layout, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;

fn bench_fig11(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("fig11");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for spec in [vgg16(), vgg19()] {
        let mut rng = StdRng::seed_from_u64(7);
        let weights = NetworkWeights::random(&spec, &mut rng);
        let mut net = Network::compile(&spec, &weights);
        net.parallel = threads > 1;
        let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
        group.bench_function(format!("{}/binarized-e2e", spec.name), |b| {
            with_pool(threads, || {
                b.iter(|| std::hint::black_box(net.infer(&input)));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
