//! Criterion bench for Fig. 7: single-thread float vs unoptimized binary
//! vs BitFlow, per Table IV operator. The `fig7` binary prints the
//! paper-style acceleration table; this bench gives criterion-grade
//! statistics for the same configurations.

use bitflow_bench::runners::{run_once, Impl};
use bitflow_bench::workloads::{prepare, table_iv};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300));
    for w in table_iv() {
        let p = prepare(&w, 42);
        for (label, imp) in [
            ("float", Impl::Float),
            ("unopt-binary", Impl::BinaryUnopt),
            ("bitflow", Impl::BitFlow),
        ] {
            group.bench_function(format!("{}/{}", w.name, label), |b| {
                b.iter(|| run_once(imp, &p, 1));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
