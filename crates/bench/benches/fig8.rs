//! Criterion bench for Fig. 8: BitFlow operators at 1 and 4 threads
//! (Core i7-7700HQ analog). Thread counts above the host's core count
//! measure threading overhead — see EXPERIMENTS.md.

use bitflow_bench::runners::{run_once, Impl};
use bitflow_bench::timing::with_pool;
use bitflow_bench::workloads::{prepare, table_iv};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(300));
    for w in table_iv() {
        let p = prepare(&w, 43);
        for threads in [1usize, 4] {
            group.bench_function(format!("{}/threads{}", w.name, threads), |b| {
                with_pool(threads, || {
                    b.iter(|| run_once(Impl::BitFlow, &p, threads));
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
