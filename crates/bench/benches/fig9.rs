//! Criterion bench for Fig. 9: BitFlow operators at 1/4/16/64 threads
//! (Xeon Phi 7210 analog). On hosts with fewer cores the higher thread
//! counts measure oversubscription overhead — see EXPERIMENTS.md.

use bitflow_bench::runners::{run_once, Impl};
use bitflow_bench::timing::with_pool;
use bitflow_bench::workloads::{prepare, table_iv};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1000))
        .warm_up_time(Duration::from_millis(250));
    // Conv2.1 and conv5.1 bracket the paper's scaling story (best and
    // worst scaling); keep the sweep focused to bound bench time.
    for w in table_iv()
        .into_iter()
        .filter(|w| w.name == "conv2.1" || w.name == "conv5.1")
    {
        let p = prepare(&w, 43);
        for threads in [1usize, 4, 16, 64] {
            group.bench_function(format!("{}/threads{}", w.name, threads), |b| {
                with_pool(threads, || {
                    b.iter(|| run_once(Impl::BitFlow, &p, threads));
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
