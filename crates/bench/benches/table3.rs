//! Criterion bench for Table III: fused binarize+pack+transpose vs the
//! staged float-transpose-then-pack alternative.

use bitflow_gemm::pack::{pack_b_fused, pack_b_staged};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Duration;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300));
    let mut rng = StdRng::seed_from_u64(50);
    for (name, n, k) in [
        ("fc7-4096x4096", 4096usize, 4096usize),
        ("fc8-4096x1000", 4096, 1000),
    ] {
        let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        group.bench_function(format!("{name}/fused"), |bch| {
            bch.iter(|| std::hint::black_box(pack_b_fused(&b, n, k)));
        });
        group.bench_function(format!("{name}/staged"), |bch| {
            bch.iter(|| std::hint::black_box(pack_b_staged(&b, n, k)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
