//! Criterion bench for the Table V experiment's moving parts: one training
//! epoch of the binarized model (STE) and classification throughput of the
//! exported model through the BitFlow engine. (The accuracy numbers
//! themselves come from the `table5` binary, which trains to convergence.)

use bitflow_graph::Network;
use bitflow_tensor::{Layout, Tensor};
use bitflow_train::data::{glyphs, SIDE};
use bitflow_train::export::export;
use bitflow_train::layers::Mode;
use bitflow_train::model::{Model, TrainConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;

fn bench_table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let train_set = glyphs(200, 0.2, 1);
    group.bench_function("ste-train-epoch/binary-convnet", |b| {
        b.iter_batched(
            || {
                let mut rng = StdRng::seed_from_u64(100);
                Model::conv_net(SIDE, 1, &[8], 10, Mode::Binary, &mut rng)
            },
            |mut model| {
                let cfg = TrainConfig {
                    epochs: 1,
                    batch_size: 32,
                    ..TrainConfig::default()
                };
                std::hint::black_box(model.fit(&train_set, &cfg));
            },
            criterion::BatchSize::LargeInput,
        );
    });

    // Engine inference throughput on the exported trained model.
    let mut rng = StdRng::seed_from_u64(101);
    let mut model = Model::conv_net(SIDE, 1, &[8], 10, Mode::Binary, &mut rng);
    let _ = model.fit(
        &train_set,
        &TrainConfig {
            epochs: 2,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    let (spec, weights) = export(&model);
    let mut net = Network::compile(&spec, &weights);
    let img = Tensor::from_vec(train_set.image(0).to_vec(), spec.input, Layout::Nhwc);
    group.bench_function("engine-classify/exported-convnet", |b| {
        b.iter(|| std::hint::black_box(net.infer(&img)));
    });
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
