//! §III-A — arithmetic-intensity analysis of image-to-column vs direct
//! (Pressed) convolution, float and binary, using the paper's Eqs. 4–8.

use bitflow_bench::workloads::{table_iv_convs, OpKind};
use bitflow_ops::ait::ConvAit;
use bitflow_tensor::FilterShape;

fn main() {
    println!("Paper §III-A reproduction — arithmetic intensity (Eqs. 4-8)\n");
    println!(
        "{:<9} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "op", "AIT intrin", "AIT im2col", "fraction", "binAIT intrin", "binAIT im2col"
    );
    for w in table_iv_convs() {
        let k = match w.kind {
            OpKind::Conv { k } => k,
            _ => unreachable!(),
        };
        let f = FilterShape::new(k, 3, 3, w.c);
        let fp = ConvAit::full_precision(w.input_shape(), f);
        let bin = ConvAit::binary(w.input_shape(), f, 64.0);
        println!(
            "{:<9} {:>12.1} {:>12.1} {:>8.1}% {:>14.2} {:>14.2}",
            w.name,
            fp.intrinsic(),
            fp.im2col(),
            fp.im2col_fraction() * 100.0,
            bin.intrinsic(),
            bin.im2col()
        );
    }
    println!("\nReading: image-to-column reaches only `fraction` of the intrinsic AIT");
    println!("(2|U| term, paper Eq. 8); after 64x bit-packing the achievable binary");
    println!("AIT collapses further — the quantitative case for PressedConv.");
}
