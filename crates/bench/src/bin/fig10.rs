//! Fig. 10 — Wall-clock time comparison of BitFlow with counterpart
//! float-value operators on GPU (GTX 1080).
//!
//! The GPU series comes from the calibrated analytical model
//! (`bitflow-gpumodel`, validated against the paper's published end-to-end
//! numbers); the CPU series is measured: BitFlow's best configuration on
//! this host (all available threads).

use bitflow_bench::runners::{time_default, Impl};
use bitflow_bench::workloads::{prepare, table_iv, OpKind};
use bitflow_bench::{quick_mode, write_json};
use bitflow_gpumodel::GpuModel;
use bitflow_ops::ConvParams;
use bitflow_tensor::{FilterShape, Shape};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    op: String,
    gpu_model_ms: f64,
    bitflow_ms: f64,
    bitflow_vs_gpu: f64,
}

fn main() {
    let quick = quick_mode();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "Fig. 10 reproduction — per-operator wall-clock: GTX 1080 model vs BitFlow ({threads} threads){}",
        if quick { " (quick mode)" } else { "" }
    );
    let gpu = GpuModel::gtx1080();
    let mut rows = Vec::new();
    println!(
        "{:<9} {:>14} {:>14} {:>12}",
        "op", "GTX1080(model)", "BitFlow", "CPU/GPU"
    );
    for w in table_iv() {
        // GPU model always uses the paper-size workload; quick mode only
        // shrinks the measured CPU side, so don't mix scales:
        let wm = if quick { w.shrunk(4) } else { w };
        let p = prepare(&wm, 44);
        let tb = time_default(Impl::BitFlow, &p, threads).as_secs_f64() * 1e3;
        let tg = match w.kind {
            OpKind::Conv { k } => gpu
                .conv_time(
                    Shape::hwc(wm.h, wm.w, wm.c),
                    FilterShape::new(k, 3, 3, wm.c),
                    ConvParams::VGG_CONV,
                )
                .as_secs_f64(),
            OpKind::Fc { k } => gpu.fc_time(wm.flat_n(), k).as_secs_f64(),
            OpKind::Pool => gpu
                .pool_time(Shape::hwc(wm.h, wm.w, wm.c), ConvParams::VGG_POOL)
                .as_secs_f64(),
        } * 1e3;
        println!(
            "{:<9} {:>12.3}ms {:>12.3}ms {:>11.2}x",
            w.name,
            tg,
            tb,
            tb / tg
        );
        rows.push(Row {
            op: w.name.to_string(),
            gpu_model_ms: tg,
            bitflow_ms: tb,
            bitflow_vs_gpu: tb / tg,
        });
    }
    write_json("fig10", &rows);
}
