//! Fig. 11 — VGG end-to-end inference time: BitFlow (binarized VGG on this
//! CPU) vs full-precision VGG on GTX 1080 (calibrated model).
//!
//! The paper reports 12.87 ms (VGG-16) / 14.92 ms (VGG-19) on the GPU and
//! 11.82 / 13.68 ms for BitFlow on the 64-core Xeon Phi. This host has
//! fewer cores; the *shape* to check is that binarized VGG on a CPU lands
//! in the same order of magnitude as a GPU running the float network.

use bitflow_bench::timing::{measure, with_pool};
use bitflow_bench::write_json;
use bitflow_gpumodel::GpuModel;
use bitflow_graph::models::{vgg16, vgg19};
use bitflow_graph::weights::NetworkWeights;
use bitflow_graph::Network;
use bitflow_tensor::{Layout, Tensor};
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct Row {
    model: String,
    gpu_model_ms: f64,
    paper_gpu_ms: f64,
    bitflow_ms: f64,
    bitflow_threads: usize,
    per_layer_ms: Vec<(String, f64)>,
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "Fig. 11 reproduction — VGG end-to-end, BitFlow ({threads} threads) vs GTX 1080 model"
    );
    let gpu = GpuModel::gtx1080();
    let mut rows = Vec::new();
    println!(
        "{:<7} {:>16} {:>12} {:>12}",
        "model", "GTX1080(model)", "paper GPU", "BitFlow"
    );
    for (spec, paper_gpu_ms) in [(vgg16(), 12.87f64), (vgg19(), 14.92f64)] {
        let mut rng = StdRng::seed_from_u64(7);
        let weights = NetworkWeights::random(&spec, &mut rng);
        let mut net = Network::compile(&spec, &weights);
        net.parallel = threads > 1;
        let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
        let t = with_pool(threads, || {
            measure(
                || {
                    std::hint::black_box(net.infer(&input));
                },
                Duration::from_secs(2),
                3,
                30,
            )
        });
        let (_, layer_times) = with_pool(threads, || net.infer_profiled(&input));
        let tg = gpu.network_time(&spec).as_secs_f64() * 1e3;
        let tb = t.as_secs_f64() * 1e3;
        println!(
            "{:<7} {:>14.2}ms {:>10.2}ms {:>10.2}ms",
            spec.name, tg, paper_gpu_ms, tb
        );
        rows.push(Row {
            model: spec.name.clone(),
            gpu_model_ms: tg,
            paper_gpu_ms,
            bitflow_ms: tb,
            bitflow_threads: threads,
            per_layer_ms: layer_times
                .iter()
                .map(|(n, d)| (n.clone(), d.as_secs_f64() * 1e3))
                .collect(),
        });
    }
    write_json("fig11", &rows);
}
