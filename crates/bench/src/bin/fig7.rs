//! Fig. 7 — Performance improvement brought by vectorization over
//! unoptimized BNN implementations, float-value operators = 1×, single
//! core (paper: Intel Xeon Phi 7210; here: the host CPU).
//!
//! Prints, per Table IV operator, the acceleration of the unoptimized
//! (scalar) binary kernel and of BitFlow's scheduled SIMD kernel over the
//! optimized float baseline, plus the vectorization speedup
//! (BitFlow / unoptimized) whose average the paper headlines as 83%.

use bitflow_bench::runners::{scheduled_level, time_default, Impl};
use bitflow_bench::workloads::{prepare, table_iv};
use bitflow_bench::{quick_mode, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    op: String,
    kernel: String,
    float_ms: f64,
    unopt_ms: f64,
    bitflow_ms: f64,
    unopt_accel: f64,
    bitflow_accel: f64,
    vectorization_speedup: f64,
}

fn main() {
    let quick = quick_mode();
    eprintln!(
        "Fig. 7 reproduction — single-thread operators, float = 1x{}",
        if quick {
            " (quick mode, 4x smaller)"
        } else {
            ""
        }
    );
    eprintln!("host SIMD: {}", bitflow_simd::features());
    let mut rows = Vec::new();
    println!(
        "{:<9} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "op", "float", "unopt-bin", "bitflow", "unopt-acc", "bitflow-acc", "vec-speedup"
    );
    for w in table_iv() {
        let w = if quick { w.shrunk(4) } else { w };
        let p = prepare(&w, 42);
        let tf = time_default(Impl::Float, &p, 1).as_secs_f64();
        let tu = time_default(Impl::BinaryUnopt, &p, 1).as_secs_f64();
        let tb = time_default(Impl::BitFlow, &p, 1).as_secs_f64();
        let row = Row {
            op: w.name.to_string(),
            kernel: scheduled_level(&p).to_string(),
            float_ms: tf * 1e3,
            unopt_ms: tu * 1e3,
            bitflow_ms: tb * 1e3,
            unopt_accel: tf / tu,
            bitflow_accel: tf / tb,
            vectorization_speedup: tu / tb,
        };
        println!(
            "{:<9} {:>10.3}ms {:>10.3}ms {:>10.3}ms {:>11.1}x {:>11.1}x {:>9.2}x",
            row.op,
            row.float_ms,
            row.unopt_ms,
            row.bitflow_ms,
            row.unopt_accel,
            row.bitflow_accel,
            row.vectorization_speedup
        );
        rows.push(row);
    }
    let avg_vec: f64 =
        rows.iter().map(|r| r.vectorization_speedup).sum::<f64>() / rows.len() as f64;
    println!(
        "\naverage vectorization speedup over unoptimized binary: {:.0}% (paper: 83%)",
        (avg_vec - 1.0) * 100.0
    );
    write_json("fig7", &rows);
}
