//! Fig. 8 — Multi-core performance of BitFlow (paper: Core i7-7700HQ,
//! threads 1 and 4), single-thread float = 1×.
//!
//! NOTE: this reproduction host may expose fewer hardware cores than the
//! paper's machines (the harness prints the count); thread counts beyond
//! the core count measure scheduling overhead, not speedup — EXPERIMENTS.md
//! discusses this.

use bitflow_bench::fig_multicore::run_scaling;

fn main() {
    run_scaling(&[1, 4], "fig8", "Fig. 8 (i7-7700HQ analog)");
}
