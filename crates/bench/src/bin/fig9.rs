//! Fig. 9 — Multi-core performance of BitFlow (paper: Xeon Phi 7210,
//! threads 1, 4, 16 and 64), single-thread float = 1×.
//!
//! See fig8.rs for the host-core-count caveat.

use bitflow_bench::fig_multicore::run_scaling;

fn main() {
    run_scaling(&[1, 4, 16, 64], "fig9", "Fig. 9 (Xeon Phi 7210 analog)");
}
