//! Goodput comparison for the serving runtime: continuous micro-batching
//! versus single-request serving, same model, same traffic.
//!
//! ```text
//! cargo run --release -p bitflow-bench --bin goodput [--quick]
//! ```
//!
//! Two phases per configuration:
//!
//! * **Calm** — one request in flight at a time; reports p50/p99 latency.
//!   The batched configuration (default zero coalesce window) must not
//!   regress calm p50: an empty queue serves singletons immediately. The
//!   third configuration prices the opt-in max-wait window, which trades
//!   exactly this latency for fuller batches on sparse bursty traffic.
//! * **Saturation** — every request submitted up front with a deadline;
//!   goodput is deadline-met completions per second of wall time. This is
//!   where coalescing pays: one pop/wake/dispatch per batch instead of
//!   per request.
//!
//! Appends one compact-JSON line to `results/history/goodput.jsonl`
//! (`BITFLOW_RESULTS_DIR` moves it) and prints a comparison table. The
//! binary is informational — it exits 0 unless the runtime itself fails —
//! but it warns loudly when batching regresses calm p50 by more than 2x.

use bitflow_bench::{quick_mode, results_dir};
use bitflow_graph::models::small_cnn;
use bitflow_graph::{CompiledModel, NetworkWeights};
use bitflow_serve::{BreakerConfig, Server, ServerConfig, ShedPolicy};
use bitflow_telemetry::SCHEMA_VERSION;
use bitflow_tensor::{Layout, Tensor};
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DISTINCT_INPUTS: usize = 16;

#[derive(Serialize)]
struct PhaseStats {
    calm_p50_ns: u64,
    calm_p99_ns: u64,
    sat_wall_ms: u64,
    sat_completed: u64,
    sat_expired: u64,
    goodput_rps: f64,
}

#[derive(Serialize)]
struct GoodputRun {
    schema_version: u64,
    quick: bool,
    workers: usize,
    max_batch: usize,
    calm_requests: usize,
    sat_requests: usize,
    unbatched: PhaseStats,
    batched: PhaseStats,
    windowed: PhaseStats,
}

fn model() -> (Arc<CompiledModel>, Vec<Tensor>) {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(42);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let inputs = (0..DISTINCT_INPUTS)
        .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
        .collect();
    (Arc::new(CompiledModel::compile(&spec, &weights)), inputs)
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

fn run_config(
    model: &Arc<CompiledModel>,
    inputs: &[Tensor],
    max_batch: usize,
    coalesce_window: Duration,
    calm_n: usize,
    sat_n: usize,
    deadline: Duration,
) -> PhaseStats {
    let server = Server::start(
        Arc::clone(model),
        ServerConfig {
            workers: 2,
            queue_capacity: sat_n.max(1),
            shed_policy: ShedPolicy::DeadlineAware,
            max_batch,
            coalesce_window,
            breaker: BreakerConfig {
                fault_threshold: u32::MAX,
                cooldown: Duration::from_millis(1),
            },
            chaos: None,
            default_deadline: None,
            recorder: None,
            ..ServerConfig::default()
        },
    );

    // Calm phase: one request in flight, so every measurement is pure
    // serving latency (queueing excluded by construction).
    let mut calm_ns: Vec<u64> = Vec::with_capacity(calm_n);
    for i in 0..calm_n {
        let started = Instant::now();
        let handle = server
            .submit(inputs[i % DISTINCT_INPUTS].clone())
            .expect("calm submit rejected with an empty queue");
        handle.wait().expect("calm request failed");
        calm_ns.push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    calm_ns.sort_unstable();

    // Saturation phase: the whole batch submitted up front, all with the
    // same deadline budget; goodput is what resolves in time.
    let started = Instant::now();
    let handles: Vec<_> = (0..sat_n)
        .map(|i| {
            server
                .submit_with_deadline(inputs[i % DISTINCT_INPUTS].clone(), deadline)
                .expect("saturation submit rejected below queue capacity")
        })
        .collect();
    let mut completed = 0u64;
    let mut expired = 0u64;
    for handle in handles {
        match handle.wait() {
            Ok(_) => completed += 1,
            Err(bitflow_graph::BitFlowError::DeadlineExceeded) => expired += 1,
            Err(e) => panic!("saturation request failed: {e}"),
        }
    }
    let wall = started.elapsed();
    drop(server.shutdown());

    PhaseStats {
        calm_p50_ns: percentile(&calm_ns, 0.50),
        calm_p99_ns: percentile(&calm_ns, 0.99),
        sat_wall_ms: u64::try_from(wall.as_millis()).unwrap_or(u64::MAX),
        sat_completed: completed,
        sat_expired: expired,
        goodput_rps: completed as f64 / wall.as_secs_f64().max(1e-9),
    }
}

fn append_history(run: &GoodputRun) -> std::io::Result<std::path::PathBuf> {
    let dir = results_dir().join("history");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("goodput.jsonl");
    let line = serde_json::to_string(run)
        .map_err(|e| std::io::Error::other(format!("serialize goodput line: {e}")))?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    writeln!(f, "{line}")?;
    Ok(path)
}

fn main() {
    let quick = quick_mode();
    let (calm_n, sat_n) = if quick { (50, 400) } else { (200, 2000) };
    let deadline = Duration::from_millis(if quick { 250 } else { 500 });
    let max_batch = 8;
    let (model, inputs) = model();
    eprintln!(
        "[goodput] {} mode: {calm_n} calm + {sat_n} saturated requests per configuration…",
        if quick { "quick" } else { "full" }
    );

    let unbatched = run_config(&model, &inputs, 1, Duration::ZERO, calm_n, sat_n, deadline);
    let batched = run_config(
        &model,
        &inputs,
        max_batch,
        Duration::ZERO,
        calm_n,
        sat_n,
        deadline,
    );
    let windowed = run_config(
        &model,
        &inputs,
        max_batch,
        Duration::from_micros(100),
        calm_n,
        sat_n,
        deadline,
    );

    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "config", "calm p50", "calm p99", "completed", "expired", "goodput"
    );
    for (name, s) in [
        ("unbatched", &unbatched),
        ("batched", &batched),
        ("+window", &windowed),
    ] {
        println!(
            "{:<12} {:>10}us {:>10}us {:>10} {:>10} {:>9.0}rps",
            name,
            s.calm_p50_ns / 1_000,
            s.calm_p99_ns / 1_000,
            s.sat_completed,
            s.sat_expired,
            s.goodput_rps
        );
    }
    let speedup = batched.goodput_rps / unbatched.goodput_rps.max(1e-9);
    println!("goodput at saturation: batched is {speedup:.2}x unbatched");
    if batched.calm_p50_ns > unbatched.calm_p50_ns.saturating_mul(2) {
        eprintln!(
            "WARNING: batched calm p50 ({}us) is more than 2x the unbatched p50 ({}us)",
            batched.calm_p50_ns / 1_000,
            unbatched.calm_p50_ns / 1_000
        );
    }

    let run = GoodputRun {
        schema_version: SCHEMA_VERSION as u64,
        quick,
        workers: 2,
        max_batch,
        calm_requests: calm_n,
        sat_requests: sat_n,
        unbatched,
        batched,
        windowed,
    };
    match append_history(&run) {
        Ok(path) => eprintln!("[history appended to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot append history: {e}"),
    }
}
