//! Load-to-failure harness for the HTTP front-end (`bitflow-net`).
//!
//! ```text
//! cargo run --release -p bitflow-bench --bin loadgen [--quick]
//! ```
//!
//! Real TCP clients drive `POST /v1/infer` against a loopback listener:
//!
//! * **Closed loop** — a fixed client pool sends back-to-back keep-alive
//!   requests; the sustained completion rate is the capacity probe that
//!   anchors the sweep.
//! * **Open loop** — offered load is swept across fractions of the probed
//!   capacity, deliberately past saturation (up to 1.5×). Each sender
//!   follows a fixed schedule regardless of completions, so queueing
//!   delay shows up as latency instead of hiding as back-pressure. Per
//!   point: offered vs achieved rps, rejections, p50/p99 of the 200s.
//! * **SLO capacity** — the highest achieved rps among sweep points whose
//!   p99 stayed within the 10 ms SLO. This is the headline number, and
//!   the gated one.
//!
//! Every run appends one compact-JSON line (`LoadRun`) to
//! `results/history/load.jsonl`. The gate compares `slo_capacity_rps`
//! against `results/load_baseline.json` — re-blessed when missing, when
//! the machine fingerprint or mode changed, or under `BITFLOW_BLESS=1` —
//! and exits non-zero when capacity dropped more than 30%.
//! `BITFLOW_REGRESS_INJECT="slo_capacity:2.0"` (or a bare factor)
//! divides the measured capacity — a synthetic regression proving the
//! gate fires.

use bitflow_bench::regress::Injection;
use bitflow_bench::{quick_mode, results_dir};
use bitflow_graph::models::small_cnn;
use bitflow_graph::{CompiledModel, NetworkWeights};
use bitflow_net::{NetConfig, NetServer};
use bitflow_serve::{BreakerConfig, Server, ServerConfig, ShedPolicy};
use bitflow_telemetry::{roofline, SCHEMA_VERSION};
use bitflow_tensor::io::encode_tensor;
use bitflow_tensor::{Layout, Tensor};
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DISTINCT_INPUTS: usize = 16;
/// The latency SLO the capacity number is conditioned on.
const SLO_P99_MS: u64 = 10;
/// Capacity may drop this far (fraction) before the gate fires. Wider
/// than the 15% operator gate: end-to-end rps on a loopback socket stack
/// carries scheduler and TCP noise that per-op medians do not. Quick
/// mode measures over windows 4× shorter, so back-to-back runs have been
/// observed ~30% apart on a shared host — its gate opens up accordingly
/// (baselines never cross modes; the fingerprint embeds `quick`).
const CAPACITY_DROP_THRESHOLD: f64 = 0.30;
const CAPACITY_DROP_THRESHOLD_QUICK: f64 = 0.50;

fn drop_threshold(quick: bool) -> f64 {
    if quick {
        CAPACITY_DROP_THRESHOLD_QUICK
    } else {
        CAPACITY_DROP_THRESHOLD
    }
}
/// Offered-load fractions of the probed closed-loop capacity; the tail
/// is deliberately past saturation.
const SWEEP_FRACTIONS: [f64; 7] = [0.25, 0.50, 0.75, 0.90, 1.00, 1.25, 1.50];

/// One point of the offered-load sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct LoadPoint {
    /// Scheduled request rate, requests/second.
    offered_rps: f64,
    /// Completed 200s per second of wall time (goodput).
    achieved_rps: f64,
    /// Completed 200 responses.
    ok: u64,
    /// Typed admission rejections (429/503 on the wire).
    rejected: u64,
    /// Anything else: 5xx, timeouts, broken connections.
    errors: u64,
    /// Median latency of the 200s, microseconds.
    p50_us: u64,
    /// p99 latency of the 200s, microseconds.
    p99_us: u64,
}

/// One appended line of `results/history/load.jsonl`, and the baseline
/// format of `results/load_baseline.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct LoadRun {
    /// Artifact schema version ([`SCHEMA_VERSION`]).
    schema_version: u32,
    /// Unix timestamp (seconds) the run finished.
    timestamp_unix: u64,
    /// Quick (shrunken) mode.
    quick: bool,
    /// ISA features of the machine (fingerprint component).
    features: String,
    /// Logical core count (fingerprint component).
    logical_cores: u64,
    /// Serving workers behind the listener.
    workers: usize,
    /// Concurrent load-generating clients.
    clients: usize,
    /// The p99 SLO the capacity is conditioned on, milliseconds.
    slo_p99_ms: u64,
    /// Sustained closed-loop completion rate (the sweep anchor), rps.
    closed_loop_rps: f64,
    /// The offered-load sweep, in offered-rate order.
    points: Vec<LoadPoint>,
    /// Max achieved rps among points meeting the SLO — the gated number.
    slo_capacity_rps: f64,
}

impl LoadRun {
    /// Same identity rule as the operator gate: features + core count,
    /// frequency excluded.
    fn fingerprint(&self) -> String {
        format!("{}/{}c", self.features, self.logical_cores)
    }
}

fn model() -> (Arc<CompiledModel>, Vec<Tensor>) {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(42);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let inputs = (0..DISTINCT_INPUTS)
        .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
        .collect();
    (Arc::new(CompiledModel::compile(&spec, &weights)), inputs)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Reads one full HTTP response; `None` on a dead connection. Returns
/// the status and whether the server asked to close.
fn read_response(stream: &mut TcpStream) -> Option<(u16, bool)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head.split("\r\n").next()?.split(' ').nth(1)?.parse().ok()?;
    let mut close = false;
    let mut content_length = 0usize;
    for line in head.split("\r\n").skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            let k = k.trim().to_ascii_lowercase();
            let v = v.trim();
            if k == "content-length" {
                content_length = v.parse().unwrap_or(0);
            } else if k == "connection" && v.eq_ignore_ascii_case("close") {
                close = true;
            }
        }
    }
    let mut have = buf.len() - head_end;
    while have < content_length {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => have += n,
        }
    }
    Some((status, close))
}

/// One load-generating client: sends its stripe of the schedule over a
/// keep-alive connection (reconnecting as needed), returns
/// (latencies_ns_of_200s, rejected, errors).
#[allow(clippy::too_many_arguments)]
fn client_thread(
    addr: SocketAddr,
    requests: &[Vec<u8>],
    stripe: Vec<usize>,
    start: Instant,
    interval: Option<Duration>,
) -> (Vec<u64>, u64, u64) {
    let mut latencies = Vec::with_capacity(stripe.len());
    let mut rejected = 0u64;
    let mut errors = 0u64;
    let mut conn: Option<TcpStream> = None;
    for (k, &req_idx) in stripe.iter().enumerate() {
        // Open loop: request k of this stripe fires at its scheduled
        // instant whether or not the previous one finished. (A blocked
        // thread can't truly overlap, but it never sleeps while behind
        // schedule, which is the property the sweep needs.)
        if let Some(interval) = interval {
            let due = start + interval * u32::try_from(k).unwrap_or(u32::MAX);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let stream = match conn.take() {
            Some(s) => s,
            None => match TcpStream::connect(addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
                    s
                }
                Err(_) => {
                    errors += 1;
                    continue;
                }
            },
        };
        let mut stream = stream;
        let body = &requests[req_idx % requests.len()];
        let t0 = Instant::now();
        if stream.write_all(body).is_err() {
            errors += 1;
            continue; // reconnect next iteration
        }
        match read_response(&mut stream) {
            Some((200, close)) => {
                latencies.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                if !close {
                    conn = Some(stream);
                }
            }
            Some((429 | 503, close)) => {
                rejected += 1;
                if !close {
                    conn = Some(stream);
                }
            }
            Some((_, close)) => {
                errors += 1;
                if !close {
                    conn = Some(stream);
                }
            }
            None => errors += 1,
        }
    }
    (latencies, rejected, errors)
}

/// Runs `n` requests across `clients` threads at `offered` rps
/// (`None` = closed loop, as fast as completions allow).
fn run_phase(
    addr: SocketAddr,
    requests: &Arc<Vec<Vec<u8>>>,
    clients: usize,
    n: usize,
    offered: Option<f64>,
) -> LoadPoint {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|t| {
            let requests = Arc::clone(requests);
            let stripe: Vec<usize> = (t..n).step_by(clients).collect();
            // Each thread paces its own stripe: thread-local interval =
            // clients / offered, staggered by the thread index.
            let interval = offered.map(|rps| Duration::from_secs_f64(clients as f64 / rps));
            let stagger = offered.map_or(Duration::ZERO, |rps| {
                Duration::from_secs_f64(t as f64 / rps)
            });
            std::thread::spawn(move || {
                client_thread(addr, &requests, stripe, start + stagger, interval)
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(n);
    let mut rejected = 0u64;
    let mut errors = 0u64;
    for handle in handles {
        let (lat, rej, err) = handle.join().expect("client thread");
        latencies.extend(lat);
        rejected += rej;
        errors += err;
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    LoadPoint {
        offered_rps: offered.unwrap_or(n as f64 / wall),
        achieved_rps: latencies.len() as f64 / wall,
        ok: latencies.len() as u64,
        rejected,
        errors,
        p50_us: percentile(&latencies, 0.50) / 1_000,
        p99_us: percentile(&latencies, 0.99) / 1_000,
    }
}

fn append_history(run: &LoadRun) -> std::io::Result<std::path::PathBuf> {
    let dir = results_dir().join("history");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("load.jsonl");
    let line = serde_json::to_string(run)
        .map_err(|e| std::io::Error::other(format!("serialize load line: {e}")))?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    writeln!(f, "{line}")?;
    Ok(path)
}

fn baseline_path() -> std::path::PathBuf {
    results_dir().join("load_baseline.json")
}

fn load_baseline() -> Option<LoadRun> {
    let text = std::fs::read_to_string(baseline_path()).ok()?;
    serde_json::from_str(&text).ok()
}

fn needs_bless(base: Option<&LoadRun>, cur: &LoadRun) -> Option<&'static str> {
    if std::env::var("BITFLOW_BLESS").is_ok_and(|v| v == "1") {
        return Some("BITFLOW_BLESS=1");
    }
    let Some(base) = base else {
        return Some("no baseline");
    };
    if base.fingerprint() != cur.fingerprint() {
        return Some("machine fingerprint changed");
    }
    if base.quick != cur.quick {
        return Some("quick/full mode changed");
    }
    None
}

fn main() {
    let quick = quick_mode();
    let (probe_n, point_n_cap, clients, workers) = if quick {
        (400, 400, 4, 2)
    } else {
        (2000, 2000, 4, 2)
    };
    let (model, inputs) = model();
    let requests: Arc<Vec<Vec<u8>>> = Arc::new(
        inputs
            .iter()
            .map(|input| {
                let body = encode_tensor(input).to_vec();
                let mut req = format!(
                    "POST /v1/infer HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                    body.len()
                )
                .into_bytes();
                req.extend_from_slice(&body);
                req
            })
            .collect(),
    );

    let server = Arc::new(Server::start(
        Arc::clone(&model),
        ServerConfig {
            workers,
            queue_capacity: 64,
            shed_policy: ShedPolicy::DeadlineAware,
            max_batch: 8,
            coalesce_window: Duration::ZERO,
            breaker: BreakerConfig {
                fault_threshold: u32::MAX,
                cooldown: Duration::from_millis(1),
            },
            chaos: None,
            default_deadline: None,
            recorder: None,
            ..ServerConfig::default()
        },
    ));
    let net = NetServer::bind(Arc::clone(&server), NetConfig::default()).expect("bind loopback");
    let addr = net.local_addr();
    eprintln!(
        "[loadgen] {} mode: {clients} clients -> {addr} ({workers} workers)",
        if quick { "quick" } else { "full" }
    );

    // Closed-loop capacity probe (with a small warmup to settle caches,
    // the EWMA, and the frequency governor).
    let _ = run_phase(addr, &requests, clients, probe_n / 4, None);
    let closed = run_phase(addr, &requests, clients, probe_n, None);
    eprintln!(
        "[loadgen] closed loop: {:.0} rps (p99 {} us)",
        closed.achieved_rps, closed.p99_us
    );

    // Open-loop sweep past saturation.
    let mut points = Vec::with_capacity(SWEEP_FRACTIONS.len());
    for f in SWEEP_FRACTIONS {
        let offered = (closed.achieved_rps * f).max(1.0);
        // Enough requests for roughly a one-second window at this rate
        // (quarter-second in quick mode), bounded for pathological rates.
        let n = ((offered * if quick { 0.25 } else { 1.0 }) as usize).clamp(40, point_n_cap);
        let point = run_phase(addr, &requests, clients, n, Some(offered));
        eprintln!(
            "[loadgen] offered {:>7.0} rps -> achieved {:>7.0} rps, ok {} rej {} err {}, p99 {} us",
            point.offered_rps,
            point.achieved_rps,
            point.ok,
            point.rejected,
            point.errors,
            point.p99_us
        );
        points.push(point);
    }
    assert!(
        net.shutdown(),
        "listener must drain cleanly after the sweep"
    );

    let mut slo_capacity_rps = points
        .iter()
        .filter(|p| p.p99_us <= SLO_P99_MS * 1_000 && p.ok > 0)
        .map(|p| p.achieved_rps)
        .fold(0.0f64, f64::max);
    if let Some(injection) = Injection::from_env() {
        let factor = injection.factor_for("slo_capacity");
        if factor != 1.0 {
            eprintln!("[loadgen] INJECTING capacity regression: /{factor}");
            slo_capacity_rps /= factor;
        }
    }

    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>9}",
        "offered", "achieved", "ok", "rejected", "errors", "p50", "p99"
    );
    for p in &points {
        println!(
            "{:<10.0} {:>10.0} {:>10} {:>8} {:>8} {:>6}us {:>7}us",
            p.offered_rps, p.achieved_rps, p.ok, p.rejected, p.errors, p.p50_us, p.p99_us
        );
    }
    println!("max goodput at p99 <= {SLO_P99_MS} ms SLO: {slo_capacity_rps:.0} rps");

    let roof = roofline::current();
    let machine = roof.to_snapshot();
    let run = LoadRun {
        schema_version: SCHEMA_VERSION,
        timestamp_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        quick,
        features: machine.features,
        logical_cores: machine.logical_cores,
        workers,
        clients,
        slo_p99_ms: SLO_P99_MS,
        closed_loop_rps: closed.achieved_rps,
        points,
        slo_capacity_rps,
    };
    match append_history(&run) {
        Ok(path) => eprintln!("[history appended to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot append history: {e}"),
    }

    // The capacity gate.
    let baseline = load_baseline();
    if let Some(reason) = needs_bless(baseline.as_ref(), &run) {
        match serde_json::to_string(&run) {
            Ok(text) => {
                if let Err(e) = std::fs::create_dir_all(results_dir())
                    .and_then(|()| std::fs::write(baseline_path(), text + "\n"))
                {
                    eprintln!("warning: cannot write baseline: {e}");
                } else {
                    eprintln!(
                        "[loadgen] baseline re-blessed ({reason}): {}",
                        baseline_path().display()
                    );
                }
            }
            Err(e) => eprintln!("warning: cannot serialize baseline: {e}"),
        }
        return;
    }
    let base = baseline.unwrap_or_else(|| unreachable!("needs_bless returned None"));
    let threshold = drop_threshold(quick);
    let floor = base.slo_capacity_rps * (1.0 - threshold);
    if run.slo_capacity_rps < floor {
        eprintln!(
            "REGRESSION: SLO capacity {:.0} rps fell below {:.0} rps \
             (baseline {:.0} rps - {:.0}%)",
            run.slo_capacity_rps,
            floor,
            base.slo_capacity_rps,
            threshold * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "capacity gate: {:.0} rps vs baseline {:.0} rps — ok",
        run.slo_capacity_rps, base.slo_capacity_rps
    );
}
