//! Statistical bench-regression gate (see `bitflow_bench::regress`).
//!
//! ```text
//! cargo run --release -p bitflow-bench --bin regress [--quick]
//! ```
//!
//! Times the Table IV workloads, appends the run to
//! `results/history/bench.jsonl`, then compares against
//! `results/baseline.json`. Exits 0 when every operator is within the
//! gate, 1 when an operator regressed (the offenders are named), and
//! blesses a fresh baseline when none exists for this machine/mode.
//!
//! Environment: `BITFLOW_BLESS=1` forces a re-bless;
//! `BITFLOW_REGRESS_INJECT="op:factor"` injects a synthetic slowdown;
//! `BITFLOW_RESULTS_DIR` moves the artifact directory.

use bitflow_bench::regress::{append_history, collect_run, compare, load_baseline, needs_bless};
use bitflow_bench::{quick_mode, write_json};

fn main() {
    let quick = quick_mode();
    eprintln!(
        "[regress] timing Table IV workloads ({} mode, single thread)…",
        if quick { "quick" } else { "full" }
    );
    let run = collect_run(quick);

    println!(
        "machine: {} | peak {:.0} GOPS, {:.1} GB/s | perf {}",
        run.fingerprint(),
        run.machine.peak_gops,
        run.machine.peak_gb_per_s,
        run.perf_status
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>8} {:>12}",
        "op", "median", "mad", "gops", "%peak", "cycles"
    );
    for op in &run.ops {
        println!(
            "{:<10} {:>10}ns {:>8}ns {:>10.1} {:>7.2}% {:>12}",
            op.name,
            op.median_ns,
            op.mad_ns,
            op.gops,
            op.pct_of_peak_compute,
            op.cycles
                .map(|c| c.to_string())
                .unwrap_or_else(|| "n/a".to_string()),
        );
    }

    match append_history(&run) {
        Ok(path) => eprintln!("[history appended to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot append history: {e}"),
    }

    let baseline = load_baseline();
    if let Some(reason) = needs_bless(baseline.as_ref(), &run) {
        write_json("baseline", &run);
        println!("baseline blessed ({reason}); gate skipped this run");
        return;
    }
    let baseline = baseline.expect("needs_bless returned None, baseline exists");

    let verdicts = compare(&baseline, &run);
    let mut failed = false;
    println!(
        "\n{:<10} {:>12} {:>12} {:>9}  verdict",
        "op", "base", "current", "Δ"
    );
    for v in &verdicts {
        let verdict = match (v.latency_regressed, v.gops_regressed) {
            (false, false) => "ok".to_string(),
            (lat, gops) => {
                failed = true;
                let mut parts = Vec::new();
                if lat {
                    parts.push("latency REGRESSED");
                }
                if gops {
                    parts.push("gops REGRESSED");
                }
                parts.join(", ")
            }
        };
        println!(
            "{:<10} {:>10}ns {:>10}ns {:>+8.1}%  {}",
            v.name, v.base_median_ns, v.cur_median_ns, v.latency_delta_pct, verdict
        );
    }
    if failed {
        let names: Vec<&str> = verdicts
            .iter()
            .filter(|v| v.regressed())
            .map(|v| v.name.as_str())
            .collect();
        eprintln!(
            "\nFAIL: {} operator(s) regressed vs baseline: {}",
            names.len(),
            names.join(", ")
        );
        std::process::exit(1);
    }
    println!("\nPASS: all {} operators within the gate", verdicts.len());
}
