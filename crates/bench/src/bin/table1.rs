//! Table I — the SIMD instructions BitFlow uses, with their availability
//! on this host and which BitFlow kernel employs them.

use bitflow_simd::features;

fn main() {
    let f = features();
    println!("Table I reproduction — SIMD instructions used by BitFlow\n");
    println!("{:<34} {:<10} used by", "instruction", "available");
    let rows: [(&str, bool, &str); 6] = [
        (
            "_mm_xor_si128",
            f.sse2,
            "kernels::xor_popcount_sse (SSE tier)",
        ),
        (
            "_mm256_xor_si256",
            f.avx2,
            "kernels::xor_popcount_avx2 (AVX2 tier)",
        ),
        (
            "_mm512_xor_si512",
            f.avx512f,
            "kernels::xor_popcount_avx512 (AVX-512 tier)",
        ),
        (
            "_mm512_maskz_xor_epi64",
            f.avx512f,
            "kernels::xor_popcount_avx512 (masked tail)",
        ),
        (
            "_mm512_popcnt_epi64",
            f.avx512vpopcntdq,
            "kernels::xor_popcount_avx512 (VPOPCNTDQ)",
        ),
        (
            "_mm512_maskz_popcnt_epi64",
            f.avx512vpopcntdq,
            "kernels::xor_popcount_avx512 (masked tail)",
        ),
    ];
    for (instr, avail, used_by) in rows {
        println!(
            "{:<34} {:<10} {}",
            instr,
            if avail { "yes" } else { "no" },
            used_by
        );
    }
    println!("\nhost feature summary: {f}");
    println!("widest xor+popcount path: {} bits", f.max_width_bits());
}
