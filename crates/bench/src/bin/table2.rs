//! Table II — BitFlow's core data structures: the Rust equivalents of the
//! paper's `bit64_t`/`bit64_u` bit-field union and the `m128_u`/`m256_u`/
//! `m512_u` register unions, with sizes and a packing demonstration.

use bitflow_tensor::Bit64;

fn main() {
    println!("Table II reproduction — BitFlow data structures (Rust forms)\n");
    println!("{:<28} {:<8} role", "type", "bytes");
    println!(
        "{:<28} {:<8} fused binarization + bit-packing word (paper bit64_t/bit64_u)",
        "tensor::Bit64",
        std::mem::size_of::<Bit64>()
    );
    #[cfg(target_arch = "x86_64")]
    {
        use bitflow_simd::vec_u::{M128U, M256U, M512U};
        println!(
            "{:<28} {:<8} SSE register <-> 2x u64 lanes (paper m128_u)",
            "simd::vec_u::M128U",
            std::mem::size_of::<M128U>()
        );
        println!(
            "{:<28} {:<8} AVX2 register <-> 4x u64 lanes (paper m256_u)",
            "simd::vec_u::M256U",
            std::mem::size_of::<M256U>()
        );
        println!(
            "{:<28} {:<8} AVX-512 register <-> 8x u64 lanes (paper m512_u)",
            "simd::vec_u::M512U",
            std::mem::size_of::<M512U>()
        );
    }
    // Demonstrate the fused binarize+pack on 64 floats.
    let mut xs = [-0.5f32; 64];
    xs[0] = 1.0;
    xs[63] = 0.0; // sign(0) = +1
    let word = Bit64::pack64(&xs);
    println!(
        "\nfused binarize+pack demo: bit0={}, bit63={}, word={:#018x}",
        word.bit(0),
        word.bit(63),
        word.0
    );
    assert_eq!(word.0, 1 | (1 << 63));
}
