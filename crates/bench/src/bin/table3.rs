//! Table III — fused binarization + bit-packing + transposition vs the
//! staged alternative (float transpose, then binarize+pack).
//!
//! The paper fuses the three steps into one pass over the weight matrix;
//! this harness times both on the VGG FC weight shapes and verifies the
//! outputs are bit-identical.

use bitflow_bench::timing::{fmt_duration, measure};
use bitflow_bench::write_json;
use bitflow_gemm::pack::{pack_b_fused, pack_b_staged};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;
use std::hint::black_box;
use std::time::Duration;

#[derive(Serialize)]
struct Row {
    matrix: String,
    n: usize,
    k: usize,
    fused_ms: f64,
    staged_ms: f64,
    speedup: f64,
}

fn main() {
    println!("Table III reproduction — fused binarize+pack+transpose vs staged\n");
    let mut rng = StdRng::seed_from_u64(50);
    let mut rows = Vec::new();
    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "weight matrix", "fused", "staged", "speedup"
    );
    for (name, n, k) in [
        ("fc7 (4096x4096)", 4096usize, 4096usize),
        ("fc8 (4096x1000)", 4096, 1000),
        ("fc6 (25088x512)", 25088, 512), // fc6 column slice: full fc6 is 25088x4096 (~400 MB floats); a 512-col slice keeps the run short with the same access pattern
    ] {
        let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let fused = pack_b_fused(&b, n, k);
        let staged = pack_b_staged(&b, n, k);
        assert_eq!(fused, staged, "fused and staged packing must agree");
        let tf = measure(
            || {
                black_box(pack_b_fused(&b, n, k));
            },
            Duration::from_millis(800),
            3,
            50,
        );
        let ts = measure(
            || {
                black_box(pack_b_staged(&b, n, k));
            },
            Duration::from_millis(800),
            3,
            50,
        );
        println!(
            "{:<16} {:>12} {:>12} {:>8.2}x",
            name,
            fmt_duration(tf),
            fmt_duration(ts),
            ts.as_secs_f64() / tf.as_secs_f64()
        );
        rows.push(Row {
            matrix: name.to_string(),
            n,
            k,
            fused_ms: tf.as_secs_f64() * 1e3,
            staged_ms: ts.as_secs_f64() * 1e3,
            speedup: ts.as_secs_f64() / tf.as_secs_f64(),
        });
    }
    println!("\n(fused avoids the float transpose pass and its N*K intermediate buffer)");
    write_json("table3", &rows);
}
