//! Table IV — the VGG benchmark operators, with the shape inferer's output
//! geometry and the vector execution scheduler's kernel choice per
//! operator (also reproducing the Fig. 6 operator→kernel mapping).

use bitflow_bench::workloads::{table_iv, OpKind};
use bitflow_simd::VectorScheduler;

fn main() {
    println!("Table IV reproduction — benchmark operators + scheduler decisions\n");
    let s = VectorScheduler::new();
    println!(
        "{:<9} {:>5} {:>5} {:>5} {:>6} {:>7} {:>12} {:>14}",
        "op", "H", "W", "C", "K", "stride", "out (HxWxC)", "kernel"
    );
    for w in table_iv() {
        let (k_str, out, kernel) = match w.kind {
            OpKind::Conv { k } => {
                let g = w.params.conv_out(w.input_shape(), k);
                (
                    k.to_string(),
                    format!("{}x{}x{}", g.out_h, g.out_w, g.out_c),
                    s.select(w.c).level.to_string(),
                )
            }
            OpKind::Fc { k } => (
                k.to_string(),
                format!("1x1x{k}"),
                s.streaming_level().to_string(),
            ),
            OpKind::Pool => {
                let g = w.params.pool_out(w.input_shape());
                (
                    "-".to_string(),
                    format!("{}x{}x{}", g.out_h, g.out_w, g.out_c),
                    s.select(w.c).level.to_string(),
                )
            }
        };
        println!(
            "{:<9} {:>5} {:>5} {:>5} {:>6} {:>7} {:>12} {:>14}",
            w.name, w.h, w.w, w.c, k_str, w.params.stride, out, kernel
        );
    }
    println!("\nFig. 6 mapping check (paper, Xeon Phi): C=3→pad+scalar, 64→scalar,");
    println!("128→SSE, 256→AVX2, 512→AVX-512; on this host: ");
    for c in [3usize, 64, 128, 256, 512] {
        let k = s.select(c);
        println!(
            "  C={c:<4} -> {} (packed to {} channel bits{})",
            k.level,
            k.c_padded,
            if k.padded { ", zero-padded" } else { "" }
        );
    }
}
