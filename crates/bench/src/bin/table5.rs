//! Table V — accuracy and model size: full-precision vs binarized.
//!
//! Scaled-down substitute (DESIGN.md §3): identical architectures trained
//! float vs binary (STE) on two synthetic datasets of different difficulty,
//! with the binary model evaluated **through the BitFlow engine** (exported
//! weights, PressedConv/bgemm kernels). Model size is reported for the real
//! VGG-16: float weights vs BitFlow's packed weights.

use bitflow_bench::write_json;
use bitflow_graph::models::vgg16;
use bitflow_graph::weights::NetworkWeights;
use bitflow_graph::Network;
use bitflow_tensor::{Layout, Tensor};
use bitflow_train::data::{glyphs, textures, Dataset, SIDE};
use bitflow_train::export::export;
use bitflow_train::layers::Mode;
use bitflow_train::model::{Model, TrainConfig};
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct AccuracyRow {
    dataset: String,
    float_acc: f32,
    binary_acc: f32,
    binary_engine_acc: f32,
    gap_points: f32,
}

#[derive(Serialize)]
struct Results {
    accuracy: Vec<AccuracyRow>,
    vgg16_float_mb: f64,
    vgg16_packed_mb: f64,
    compression: f64,
}

fn engine_accuracy(net: &mut Network, data: &Dataset) -> f32 {
    let mut correct = 0usize;
    for i in 0..data.len() {
        let img = Tensor::from_vec(data.image(i).to_vec(), net.spec().input, Layout::Nhwc);
        let logits = net.infer(&img);
        let pred = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if pred == data.labels[i] {
            correct += 1;
        }
    }
    correct as f32 / data.len() as f32
}

/// Trains float and binary models on `reps` independent seed-pairs and
/// averages the accuracies (single training runs of small models are noisy;
/// the paper's VGG runs are effectively averaged by scale).
fn run_dataset(
    name: &str,
    make: impl Fn(u64) -> (Dataset, Dataset),
    epochs: usize,
    reps: u64,
) -> AccuracyRow {
    let cfg = TrainConfig {
        epochs,
        batch_size: 32,
        ..TrainConfig::default()
    };
    let (mut float_sum, mut bin_sum, mut eng_sum) = (0.0f32, 0.0f32, 0.0f32);
    for rep in 0..reps {
        let (train, test) = make(rep);
        eprintln!("[{name}] rep {}/{}: training float model…", rep + 1, reps);
        let mut rng = StdRng::seed_from_u64(100 + rep);
        let mut float_model = Model::conv_net(SIDE, 1, &[16], 10, Mode::Float, &mut rng);
        let _ = float_model.fit(&train, &cfg);
        float_sum += float_model.evaluate(&test);

        eprintln!("[{name}] rep {}/{}: training binary model…", rep + 1, reps);
        let mut rng = StdRng::seed_from_u64(200 + rep);
        let mut bin_model = Model::conv_net(SIDE, 1, &[16], 10, Mode::Binary, &mut rng);
        let _ = bin_model.fit(&train, &cfg);
        let bin_acc = bin_model.evaluate(&test);
        bin_sum += bin_acc;

        let (spec, weights) = export(&bin_model);
        let mut net = Network::compile(&spec, &weights);
        let eng_acc = engine_accuracy(&mut net, &test);
        assert_eq!(bin_acc, eng_acc, "engine must reproduce the trained model");
        eng_sum += eng_acc;
    }
    let n = reps as f32;
    AccuracyRow {
        dataset: name.to_string(),
        float_acc: float_sum / n,
        binary_acc: bin_sum / n,
        binary_engine_acc: eng_sum / n,
        gap_points: (float_sum - bin_sum) / n * 100.0,
    }
}

fn main() {
    println!("Table V reproduction — accuracy & model size, float vs binarized\n");
    // Three difficulty rungs mirroring the paper's MNIST / CIFAR-10 /
    // ImageNet columns — the noise level controls how much the *input
    // binarization* destroys (float models keep amplitude information) —
    // plus a structurally different texture dataset. The gap should widen
    // monotonically across the rungs, as in the paper's 1.2 → 4.7 → 11.6
    // points. Each row averages `REPS` independent seed-pairs.
    const REPS: u64 = 2;
    let rows = vec![
        run_dataset(
            "glyphs n=0.45 (MNIST analog)",
            |rep| {
                (
                    glyphs(2000, 0.45, 1 + 10 * rep),
                    glyphs(500, 0.45, 2 + 10 * rep),
                )
            },
            12,
            REPS,
        ),
        run_dataset(
            "glyphs n=0.60 (CIFAR analog)",
            |rep| {
                (
                    glyphs(2000, 0.6, 3 + 10 * rep),
                    glyphs(500, 0.6, 4 + 10 * rep),
                )
            },
            12,
            REPS,
        ),
        run_dataset(
            "glyphs n=0.70 (ImageNet analog)",
            |rep| {
                (
                    glyphs(2000, 0.7, 5 + 10 * rep),
                    glyphs(500, 0.7, 6 + 10 * rep),
                )
            },
            12,
            REPS,
        ),
        run_dataset(
            "block textures (alt. dataset)",
            |rep| {
                (
                    textures(2000, 0.33, 0.47, 3000 + 1000 * rep),
                    textures(500, 0.33, 0.47, 3001 + 1000 * rep),
                )
            },
            12,
            REPS,
        ),
    ];
    println!(
        "\n{:<32} {:>10} {:>10} {:>14} {:>10}",
        "dataset", "float", "binary", "binary(engine)", "gap(pts)"
    );
    for r in &rows {
        println!(
            "{:<32} {:>9.1}% {:>9.1}% {:>13.1}% {:>10.1}",
            r.dataset,
            r.float_acc * 100.0,
            r.binary_acc * 100.0,
            r.binary_engine_acc * 100.0,
            r.gap_points
        );
    }

    // Model size: the real VGG-16 (paper: ~528 MB float, ~16.5 MB binary).
    let spec = vgg16();
    let mut rng = StdRng::seed_from_u64(0);
    let w = NetworkWeights::random(&spec, &mut rng);
    let float_mb = w.float_bytes() as f64 / (1024.0 * 1024.0);
    let packed_mb = w.packed_bytes() as f64 / (1024.0 * 1024.0);
    println!("\nVGG-16 model size: float {:.1} MB -> packed {:.1} MB ({:.1}x compression; paper: 528 MB -> 16.5 MB)",
        float_mb, packed_mb, float_mb / packed_mb);

    write_json(
        "table5",
        &Results {
            accuracy: rows,
            vgg16_float_mb: float_mb,
            vgg16_packed_mb: packed_mb,
            compression: float_mb / packed_mb,
        },
    );
}
