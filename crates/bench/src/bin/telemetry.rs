//! Operator-level telemetry report: drives requests through a
//! telemetry-enabled engine, prints the per-operator metrics table
//! (p50/p95/p99 latency, effective xor+popcount GOPS, bandwidth), measures
//! the enabled-vs-disabled overhead, and writes everything to
//! `results/telemetry.json`.
//!
//! The overhead measurement compiles the same weights into two models — one
//! plain, one with telemetry enabled on a `NoopSink` — and interleaves
//! their inference iterations so both see identical machine conditions.
//! It always runs on the small CNN: its microsecond-scale requests give the
//! min-of estimator thousands of interleaved rounds (a large model yields a
//! handful of noisy 100ms+ samples where scheduler jitter dwarfs the
//! effect), and short requests are the *worst case* for relative overhead —
//! the per-operator cost is constant, so the smaller the operators, the
//! larger its share. The telemetry contract is that the enabled path stays
//! within a few percent of the plain path even there (two `Instant` reads
//! and a handful of relaxed atomics per operator).
//!
//! Quick mode (`--quick` / `BITFLOW_QUICK=1` / `BITFLOW_BENCH_QUICK=1`)
//! switches the snapshot model from VGG-16 to the small CNN and shortens
//! the budgets.

use bitflow_bench::timing::measure_interleaved;
use bitflow_bench::{quick_mode, write_json};
use bitflow_graph::models::{small_cnn, vgg16};
use bitflow_graph::weights::NetworkWeights;
use bitflow_graph::CompiledModel;
use bitflow_tensor::{Layout, Tensor};
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct OverheadReport {
    plain_ns: u64,
    telemetry_ns: u64,
    overhead_pct: f64,
}

#[derive(Serialize)]
struct TelemetryReport {
    snapshot: bitflow_telemetry::MetricsSnapshot,
    overhead: OverheadReport,
}

fn main() {
    let quick = quick_mode();
    let spec = if quick { small_cnn() } else { vgg16() };
    let requests = if quick { 32 } else { 64 };
    eprintln!(
        "Telemetry report — {} over {requests} requests, plus disabled-vs-enabled A/B",
        spec.name
    );

    let mut rng = StdRng::seed_from_u64(23);

    // A/B overhead on the small CNN (see module docs: precise and
    // worst-case-relative), interleaved so both sides share conditions.
    let ab_spec = small_cnn();
    let ab_weights = NetworkWeights::random_with_bn(&ab_spec, &mut rng);
    let plain = CompiledModel::compile(&ab_spec, &ab_weights);
    let ab_recorded = CompiledModel::compile(&ab_spec, &ab_weights);
    ab_recorded.enable_telemetry();
    let ab_input = Tensor::random(ab_spec.input, Layout::Nhwc, &mut rng);
    let mut ctx_a = plain.new_context();
    let mut ctx_b = ab_recorded.new_context();
    let budget = if quick {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(2)
    };
    let (t_plain, t_rec) = measure_interleaved(
        || {
            std::hint::black_box(plain.infer(&mut ctx_a, &ab_input));
        },
        || {
            std::hint::black_box(ab_recorded.infer(&mut ctx_b, &ab_input));
        },
        budget,
        1000,
        200_000,
    );
    let overhead_pct = (t_rec.as_secs_f64() / t_plain.as_secs_f64() - 1.0) * 100.0;
    eprintln!(
        "[overhead, {} A/B] plain {:?} vs telemetry {:?} -> {overhead_pct:+.2}%",
        ab_spec.name, t_plain, t_rec
    );

    // Per-operator snapshot on the selected model: drive a batch of
    // requests through a telemetry-enabled engine, plus the batch path
    // once for the queue gauges.
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let recorded = CompiledModel::compile(&spec, &weights);
    recorded.enable_telemetry();
    let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let mut ctx = recorded.new_context();
    for _ in 0..requests {
        std::hint::black_box(recorded.infer(&mut ctx, &input));
    }
    let batch: Vec<Tensor> = (0..4)
        .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
        .collect();
    for r in recorded.try_infer_batch(&batch) {
        r.expect("batch inference");
    }

    let snapshot = recorded
        .metrics_snapshot()
        .expect("telemetry was enabled above");

    println!(
        "{:<16} {:>7} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>7} {:>7}",
        "op", "calls", "mean µs", "p50 µs", "p95 µs", "p99 µs", "GOPS", "GB/s", "%peak", "bound"
    );
    for op in &snapshot.ops {
        println!(
            "{:<16} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>8.1} {:>8.2} {:>6.2}% {:>7}",
            op.name,
            op.calls,
            op.mean_ns / 1e3,
            op.p50_ns as f64 / 1e3,
            op.p95_ns as f64 / 1e3,
            op.p99_ns as f64 / 1e3,
            op.gops,
            op.gb_per_s,
            op.pct_of_peak_compute,
            match op.bound {
                bitflow_telemetry::OpBound::Compute => "compute",
                bitflow_telemetry::OpBound::Memory => "memory",
                bitflow_telemetry::OpBound::Idle => "idle",
            },
        );
    }
    let total: u64 = snapshot.total_op_ns();
    if let Some(hot) = snapshot.hottest_op() {
        println!(
            "hottest operator: {} ({:.0}% of {:.1} ms total op time)",
            hot.name,
            100.0 * hot.total_ns as f64 / total.max(1) as f64,
            total as f64 / 1e6,
        );
    }
    // One-line roofline summary: where this machine's ceilings are, how
    // close the hottest operator gets, and whether counters were live.
    let m = &snapshot.machine;
    let best = snapshot
        .ops
        .iter()
        .filter(|o| o.bit_ops_per_call > 0)
        .max_by(|a, b| {
            a.pct_of_peak_compute
                .partial_cmp(&b.pct_of_peak_compute)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    println!(
        "roofline: peak {:.0} GOPS ({} b SIMD × {} cores @ {:.2} GHz [{}]), {:.1} GB/s [{}]{} | perf: {}",
        m.peak_gops,
        m.simd_width_bits,
        m.logical_cores,
        m.freq_ghz,
        m.freq_source,
        m.peak_gb_per_s,
        m.bw_source,
        best.map(|o| format!(
            " | best op {} at {:.2}% of compute peak ({})",
            o.name,
            o.pct_of_peak_compute,
            match o.bound {
                bitflow_telemetry::OpBound::Compute => "compute-bound",
                bitflow_telemetry::OpBound::Memory => "memory-bound",
                bitflow_telemetry::OpBound::Idle => "idle",
            }
        ))
        .unwrap_or_default(),
        snapshot.perf.status,
    );

    write_json(
        "telemetry",
        &TelemetryReport {
            snapshot,
            overhead: OverheadReport {
                plain_ns: t_plain.as_nanos() as u64,
                telemetry_ns: t_rec.as_nanos() as u64,
                overhead_pct,
            },
        },
    );
}
