//! Serving throughput: images/sec vs thread count for one shared
//! `CompiledModel` driving a batch through `infer_batch`.
//!
//! This is the serving scenario the model/context split exists for: the
//! packed weights are compiled once, then N worker threads each binarize
//! and run their own slice of the batch with a private `InferenceContext`.
//! Before timing, the batch output is checked bit-for-bit against the
//! serial single-context reference.
//!
//! `--quick` / `BITFLOW_QUICK=1` switches from VGG-16 to the small CNN for
//! smoke runs.

use bitflow_bench::timing::{measure, with_pool};
use bitflow_bench::{quick_mode, write_json};
use bitflow_graph::models::{small_cnn, vgg16};
use bitflow_graph::weights::NetworkWeights;
use bitflow_graph::CompiledModel;
use bitflow_tensor::{Layout, Tensor};
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct Row {
    model: String,
    threads: usize,
    batch: usize,
    images_per_sec: f64,
    ms_per_image: f64,
    scaling_vs_1: f64,
}

fn thread_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    while counts.last().copied().unwrap_or(1) * 2 <= max {
        counts.push(counts.last().unwrap() * 2);
    }
    if counts.last().copied() != Some(max) {
        counts.push(max);
    }
    counts
}

fn main() {
    let quick = quick_mode();
    let spec = if quick { small_cnn() } else { vgg16() };
    let max_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "Serving throughput — {} batches over one shared CompiledModel, 1..{max_threads} threads",
        spec.name
    );

    let mut rng = StdRng::seed_from_u64(17);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let model = CompiledModel::compile(&spec, &weights);
    let batch = if quick {
        2 * max_threads
    } else {
        4 * max_threads
    };
    let inputs: Vec<Tensor> = (0..batch)
        .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
        .collect();

    // Bit-identity gate before any timing: the fan-out must reproduce the
    // serial single-context results exactly.
    let mut ctx = model.new_context();
    let serial: Vec<Vec<f32>> = inputs
        .iter()
        .map(|img| model.infer(&mut ctx, img))
        .collect();
    let fanned = with_pool(max_threads.min(4), || model.infer_batch(&inputs));
    assert_eq!(fanned, serial, "infer_batch diverged from serial inference");
    eprintln!("[bit-identity check passed: batch == serial]");

    let budget = if quick {
        Duration::from_millis(200)
    } else {
        Duration::from_secs(2)
    };
    let mut rows: Vec<Row> = Vec::new();
    println!(
        "{:<8} {:>8} {:>8} {:>12} {:>12} {:>10}",
        "model", "threads", "batch", "img/s", "ms/img", "scaling"
    );
    for threads in thread_counts(max_threads) {
        let t = with_pool(threads, || {
            measure(
                || {
                    std::hint::black_box(model.infer_batch(&inputs));
                },
                budget,
                2,
                20,
            )
        });
        let secs = t.as_secs_f64();
        let ips = batch as f64 / secs;
        let base = rows.first().map_or(ips, |r: &Row| r.images_per_sec);
        let row = Row {
            model: spec.name.clone(),
            threads,
            batch,
            images_per_sec: ips,
            ms_per_image: secs * 1e3 / batch as f64,
            scaling_vs_1: ips / base,
        };
        println!(
            "{:<8} {:>8} {:>8} {:>12.1} {:>12.3} {:>9.2}x",
            row.model,
            row.threads,
            row.batch,
            row.images_per_sec,
            row.ms_per_image,
            row.scaling_vs_1
        );
        rows.push(row);
    }
    write_json("throughput", &rows);

    // Post-sweep telemetry snapshot: enabling telemetry only now keeps the
    // timed rows above on the zero-overhead path, then one more batch
    // populates the per-operator histograms and queue gauges.
    model.enable_telemetry();
    for r in model.try_infer_batch(&inputs) {
        r.expect("telemetry batch inference");
    }
    let snapshot = model.metrics_snapshot().expect("telemetry enabled above");
    if let Some(hot) = snapshot.hottest_op() {
        eprintln!(
            "[telemetry] hottest operator: {} (p95 {:.1} µs over {} calls)",
            hot.name,
            hot.p95_ns as f64 / 1e3,
            hot.calls
        );
    }
    write_json("throughput_telemetry", &snapshot);
}
