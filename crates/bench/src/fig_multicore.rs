//! Shared driver for the multi-core scaling figures (Figs. 8 and 9).

use crate::runners::{time_default, Impl};
use crate::workloads::{prepare, table_iv};
use crate::{quick_mode, write_json};
use serde::Serialize;

/// One operator's scaling row.
#[derive(Serialize)]
pub struct ScalingRow {
    /// Operator name.
    pub op: String,
    /// Single-thread float baseline, ms.
    pub float_ms: f64,
    /// (threads, ms) for the BitFlow binary operator.
    pub binary_ms_by_threads: Vec<(usize, f64)>,
    /// (threads, acceleration over single-thread float).
    pub accel_by_threads: Vec<(usize, f64)>,
}

/// Runs the Table IV operators at each thread count; prints the paper-style
/// table and writes `<json_name>.json`.
pub fn run_scaling(threads: &[usize], json_name: &str, title: &str) -> Vec<ScalingRow> {
    let quick = quick_mode();
    eprintln!(
        "{title} — BitFlow binary operators at {threads:?} threads, single-thread float = 1x{}",
        if quick { " (quick mode)" } else { "" }
    );
    eprintln!(
        "host: {} hardware thread(s) available",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    let mut rows = Vec::new();
    print!("{:<9} {:>12}", "op", "float(1t)");
    for t in threads {
        print!(" {:>11}", format!("bin {t}t"));
    }
    println!();
    for w in table_iv() {
        let w = if quick { w.shrunk(4) } else { w };
        let p = prepare(&w, 43);
        let tf = time_default(Impl::Float, &p, 1).as_secs_f64();
        let mut binary_ms = Vec::new();
        let mut accel = Vec::new();
        print!("{:<9} {:>10.3}ms", w.name, tf * 1e3);
        for &t in threads {
            let tb = time_default(Impl::BitFlow, &p, t).as_secs_f64();
            binary_ms.push((t, tb * 1e3));
            accel.push((t, tf / tb));
            print!(" {:>9.1}x ", tf / tb);
        }
        println!();
        rows.push(ScalingRow {
            op: w.name.to_string(),
            float_ms: tf * 1e3,
            binary_ms_by_threads: binary_ms,
            accel_by_threads: accel,
        });
    }
    write_json(json_name, &rows);
    rows
}
