//! # bitflow-bench
//!
//! Benchmark harness for the BitFlow reproduction. Every table and figure
//! of the paper's evaluation section has a regenerating target:
//!
//! | paper artifact | binary (`cargo run --release -p bitflow-bench --bin …`) | criterion bench |
//! |---|---|---|
//! | Table I (SIMD instructions) | `table1` | — |
//! | Table II (data structures) | `table2` | — |
//! | Table III (fused packing) | `table3` | `--bench table3` |
//! | Table IV (workloads) | `table4` | — |
//! | Table V (accuracy & size) | `table5` | `--bench table5` |
//! | Fig. 7 (vectorization speedup) | `fig7` | `--bench fig7` |
//! | Fig. 8 (multi-core, i7 analog) | `fig8` | `--bench fig8` |
//! | Fig. 9 (multi-core, Phi analog) | `fig9` | `--bench fig9` |
//! | Fig. 10 (per-op vs GPU) | `fig10` | `--bench fig10` |
//! | Fig. 11 (VGG end-to-end vs GPU) | `fig11` | `--bench fig11` |
//! | §III-A AIT analysis | `ait` | `--bench ablation` |
//!
//! All binaries print a paper-style text table and write machine-readable
//! JSON next to the repo root under `results/` (override the directory
//! with `BITFLOW_RESULTS_DIR`).
//!
//! Measurement conventions (documented deviations in EXPERIMENTS.md):
//!
//! * Per-operator binary measurements time the *kernel* with pre-packed
//!   weights (packing is a network-initialization cost in BitFlow) and,
//!   for convolution, pre-packed inputs (inter-layer activations stay
//!   packed inside a BNN; the binarize+pack of the previous layer's output
//!   is fused there). Binary FC timings include input packing — its input
//!   arrives flattened from pooling in VGG.
//! * The float baseline is the optimized im2col+sgemm path with weight
//!   transposition hoisted, i.e. a fair production-style float operator.
//! * Multi-thread runs install a sized rayon pool per measurement.

pub mod fig_multicore;
pub mod regress;
pub mod runners;
pub mod timing;
pub mod workloads;

use bitflow_telemetry::SCHEMA_VERSION;
use serde::{Serialize, Value};
use std::path::{Path, PathBuf};

/// Directory for JSON result dumps (`BITFLOW_RESULTS_DIR` or `results/`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("BITFLOW_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// The `schema_version` recorded in an existing artifact, if the file
/// exists and parses. v1 artifacts predate the field and read as `None`.
fn existing_schema_version(path: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let v: Value = serde_json::from_str(&text).ok()?;
    match v.field("schema_version").ok()? {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// Stamps `schema_version` into the top level of a serialized value:
/// inserted as the first key of an object (replacing any existing one), or
/// wrapped as `{schema_version, data}` for non-object roots.
fn stamp_schema_version(v: Value) -> Value {
    let version = (
        "schema_version".to_string(),
        Value::UInt(SCHEMA_VERSION as u64),
    );
    match v {
        Value::Object(fields) => {
            let mut out = vec![version];
            out.extend(fields.into_iter().filter(|(k, _)| k != "schema_version"));
            Value::Object(out)
        }
        other => Value::Object(vec![version, ("data".to_string(), other)]),
    }
}

/// Writes a serializable result object as pretty JSON under
/// [`results_dir`], creating the directory if needed.
///
/// Every artifact gets a top-level `schema_version` field stamped in
/// ([`SCHEMA_VERSION`]). If the target file already exists and carries a
/// *newer* schema version, the write is refused: a newer tool wrote that
/// file, and silently downgrading it would destroy fields this build does
/// not know about.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Some(existing) = existing_schema_version(&path) {
        if existing > SCHEMA_VERSION as u64 {
            eprintln!(
                "warning: {} has schema v{existing}, newer than this build's v{SCHEMA_VERSION}; refusing to overwrite",
                path.display()
            );
            return;
        }
    }
    let stamped = stamp_schema_version(value.to_value());
    match serde_json::to_string_pretty(&stamped) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// True when quick (smoke-run) mode is requested. This is the single place
/// that defines quick-mode activation for every bench binary:
///
/// * `--quick` on the command line, or
/// * `BITFLOW_QUICK=1`, or
/// * `BITFLOW_BENCH_QUICK=1` (alias; convenient when a wrapper such as
///   `scripts/check.sh` wants to force quick mode for the whole workspace
///   without colliding with other tools' `*_QUICK` flags).
///
/// Quick mode shrinks workloads (spatial dims 4×, VGG-16 → small CNN,
/// shorter measurement budgets); the exact reduction is each binary's
/// choice, the trigger is defined here.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("BITFLOW_QUICK").is_ok_and(|v| v == "1")
        || std::env::var("BITFLOW_BENCH_QUICK").is_ok_and(|v| v == "1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_inserts_version_first_in_objects() {
        let v = Value::Object(vec![("x".to_string(), Value::UInt(7))]);
        let stamped = stamp_schema_version(v);
        let Value::Object(fields) = stamped else {
            panic!("expected object");
        };
        assert_eq!(fields[0].0, "schema_version");
        assert_eq!(fields[0].1, Value::UInt(SCHEMA_VERSION as u64));
        assert_eq!(fields[1].0, "x");
    }

    #[test]
    fn stamp_replaces_stale_version_and_wraps_non_objects() {
        let v = Value::Object(vec![
            ("schema_version".to_string(), Value::UInt(1)),
            ("x".to_string(), Value::UInt(7)),
        ]);
        let Value::Object(fields) = stamp_schema_version(v) else {
            panic!("expected object");
        };
        assert_eq!(fields.len(), 2, "stale version replaced, not duplicated");
        assert_eq!(fields[0].1, Value::UInt(SCHEMA_VERSION as u64));
        // Non-object roots get wrapped so the version has somewhere to live.
        let Value::Object(wrapped) = stamp_schema_version(Value::UInt(3)) else {
            panic!("expected wrapper object");
        };
        assert_eq!(wrapped[1], ("data".to_string(), Value::UInt(3)));
    }

    #[test]
    fn existing_schema_version_probes_tolerantly() {
        let dir = std::env::temp_dir().join(format!("bitflow-schema-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.json");
        // Missing file → None.
        assert_eq!(existing_schema_version(&path), None);
        // v1 artifact without the field → None (treated as oldest).
        std::fs::write(&path, r#"{"x": 1}"#).unwrap();
        assert_eq!(existing_schema_version(&path), None);
        // Stamped artifact → its version.
        std::fs::write(&path, r#"{"schema_version": 99, "x": 1}"#).unwrap();
        assert_eq!(existing_schema_version(&path), Some(99));
        // Garbage → None (never a panic).
        std::fs::write(&path, "not json").unwrap();
        assert_eq!(existing_schema_version(&path), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
