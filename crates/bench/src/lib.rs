//! # bitflow-bench
//!
//! Benchmark harness for the BitFlow reproduction. Every table and figure
//! of the paper's evaluation section has a regenerating target:
//!
//! | paper artifact | binary (`cargo run --release -p bitflow-bench --bin …`) | criterion bench |
//! |---|---|---|
//! | Table I (SIMD instructions) | `table1` | — |
//! | Table II (data structures) | `table2` | — |
//! | Table III (fused packing) | `table3` | `--bench table3` |
//! | Table IV (workloads) | `table4` | — |
//! | Table V (accuracy & size) | `table5` | `--bench table5` |
//! | Fig. 7 (vectorization speedup) | `fig7` | `--bench fig7` |
//! | Fig. 8 (multi-core, i7 analog) | `fig8` | `--bench fig8` |
//! | Fig. 9 (multi-core, Phi analog) | `fig9` | `--bench fig9` |
//! | Fig. 10 (per-op vs GPU) | `fig10` | `--bench fig10` |
//! | Fig. 11 (VGG end-to-end vs GPU) | `fig11` | `--bench fig11` |
//! | §III-A AIT analysis | `ait` | `--bench ablation` |
//!
//! All binaries print a paper-style text table and write machine-readable
//! JSON next to the repo root under `results/` (override the directory
//! with `BITFLOW_RESULTS_DIR`).
//!
//! Measurement conventions (documented deviations in EXPERIMENTS.md):
//!
//! * Per-operator binary measurements time the *kernel* with pre-packed
//!   weights (packing is a network-initialization cost in BitFlow) and,
//!   for convolution, pre-packed inputs (inter-layer activations stay
//!   packed inside a BNN; the binarize+pack of the previous layer's output
//!   is fused there). Binary FC timings include input packing — its input
//!   arrives flattened from pooling in VGG.
//! * The float baseline is the optimized im2col+sgemm path with weight
//!   transposition hoisted, i.e. a fair production-style float operator.
//! * Multi-thread runs install a sized rayon pool per measurement.

pub mod fig_multicore;
pub mod runners;
pub mod timing;
pub mod workloads;

use serde::Serialize;
use std::path::PathBuf;

/// Directory for JSON result dumps (`BITFLOW_RESULTS_DIR` or `results/`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("BITFLOW_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes a serializable result object as pretty JSON under
/// [`results_dir`], creating the directory if needed.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// True when quick (smoke-run) mode is requested. This is the single place
/// that defines quick-mode activation for every bench binary:
///
/// * `--quick` on the command line, or
/// * `BITFLOW_QUICK=1`, or
/// * `BITFLOW_BENCH_QUICK=1` (alias; convenient when a wrapper such as
///   `scripts/check.sh` wants to force quick mode for the whole workspace
///   without colliding with other tools' `*_QUICK` flags).
///
/// Quick mode shrinks workloads (spatial dims 4×, VGG-16 → small CNN,
/// shorter measurement budgets); the exact reduction is each binary's
/// choice, the trigger is defined here.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("BITFLOW_QUICK").is_ok_and(|v| v == "1")
        || std::env::var("BITFLOW_BENCH_QUICK").is_ok_and(|v| v == "1")
}
