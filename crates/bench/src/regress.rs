//! Statistical bench-regression gate.
//!
//! `cargo run --release -p bitflow-bench --bin regress` re-times the
//! Table IV workloads on the BitFlow path, compares each operator's median
//! latency and sustained GOPS against the checked-in
//! `results/baseline.json`, and exits non-zero when an operator regressed.
//! Every run — pass or fail — is appended to `results/history/bench.jsonl`
//! first, so the history is complete even for runs the gate rejects.
//!
//! ## The statistics
//!
//! Plain threshold gates (`>15% slower → fail`) flake on noisy machines;
//! pure significance gates (`>3σ → fail`) flag microscopic-but-real 0.1%
//! shifts nobody cares about. The gate requires **both**:
//!
//! * median latency regressed iff
//!   `cur > base × (1 + 0.15)` **and** `cur > base + 3σ`, where
//!   `σ = 1.4826 × max(MAD_base, MAD_cur)` (MAD scaled to the normal
//!   consistency constant), floored at 1% of the baseline median (so a
//!   degenerate zero-MAD baseline cannot make the test infinitely strict)
//!   and at an absolute 100 ns (so sub-microsecond operators, whose
//!   run-to-run jitter is tens of percent, cannot flake the gate);
//! * GOPS regressed analogously (`cur < base × 0.85` and
//!   `cur < base − 3σ_g`), only for operators with a non-zero bit-op count.
//!
//! ## Baseline lifecycle
//!
//! The baseline is re-blessed (rewritten, gate skipped) when it is
//! missing, when the machine fingerprint (ISA features + core count —
//! deliberately *not* frequency, which drifts with thermals) changed, when
//! the quick/full mode differs, or when `BITFLOW_BLESS=1` forces it.
//!
//! ## Fault injection
//!
//! `BITFLOW_REGRESS_INJECT="conv3.1:2.0"` multiplies conv3.1's measured
//! samples by 2× (`"2.0"` slows every operator) — a synthetic regression
//! for testing that the gate actually fires and names the operator.

use crate::runners::{run_once, Impl};
use crate::timing::with_pool;
use crate::workloads::{prepare, table_iv, OpKind, Prepared, Workload};
use bitflow_simd::perf;
use bitflow_telemetry::{roofline, MachineSnapshot, SCHEMA_VERSION};
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::time::Instant;

/// One operator's measured distribution in a bench run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpBench {
    /// Workload name (Table IV), e.g. `"conv3.1"`.
    pub name: String,
    /// Median per-call latency, nanoseconds.
    pub median_ns: u64,
    /// Median absolute deviation of the per-call latency, nanoseconds.
    pub mad_ns: u64,
    /// Number of timed samples behind the statistics.
    pub samples: u64,
    /// Effective xor+popcount bit-operations per call (static, from the
    /// workload geometry; 0 for pooling).
    pub bit_ops: u64,
    /// Sustained throughput at the median: `bit_ops / median_ns`, GOPS.
    pub gops: f64,
    /// Share of the machine's peak xor+popcount throughput, percent.
    pub pct_of_peak_compute: f64,
    /// Core cycles across all samples of this operator, when the PMU is
    /// available.
    pub cycles: Option<u64>,
    /// Retired instructions across all samples, when available.
    pub instructions: Option<u64>,
}

/// A complete regression-bench run: what `results/baseline.json` stores
/// and what each `results/history/bench.jsonl` line contains.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchRun {
    /// Artifact schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Unix timestamp (seconds) the run finished.
    pub timestamp_unix: u64,
    /// Quick (shrunken-workload) mode.
    pub quick: bool,
    /// Threads used (the gate times single-threaded for stability).
    pub threads: u64,
    /// Machine description + roofline peaks.
    pub machine: MachineSnapshot,
    /// `"ok"` or `"unavailable: <reason>"` — whether per-op cycle and
    /// instruction counts could be collected.
    pub perf_status: String,
    /// One entry per Table IV workload.
    pub ops: Vec<OpBench>,
}

impl BenchRun {
    /// The identity of the machine for baseline-compatibility purposes:
    /// ISA features and core count. Frequency is excluded on purpose — it
    /// drifts with thermals and governors, and the relative gate absorbs
    /// moderate frequency shifts.
    pub fn fingerprint(&self) -> String {
        format!("{}/{}c", self.machine.features, self.machine.logical_cores)
    }
}

/// Median of a sample set (the slice is sorted in place).
pub fn median(samples: &mut [u64]) -> u64 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median absolute deviation around `med`.
pub fn mad(samples: &[u64], med: u64) -> u64 {
    let mut devs: Vec<u64> = samples.iter().map(|&s| s.abs_diff(med)).collect();
    median(&mut devs)
}

/// Parsed `BITFLOW_REGRESS_INJECT`: an optional operator filter and a
/// latency multiplier.
#[derive(Clone, Debug, PartialEq)]
pub struct Injection {
    /// Operator to slow down; `None` slows every operator.
    pub op: Option<String>,
    /// Latency multiplier (>1 slows, <1 speeds up).
    pub factor: f64,
}

impl Injection {
    /// Parses `"op:factor"` or `"factor"`. Returns `None` for unset,
    /// empty, or unparseable values.
    pub fn parse(spec: &str) -> Option<Injection> {
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        let (op, factor) = match spec.split_once(':') {
            Some((op, f)) => (Some(op.trim().to_string()), f),
            None => (None, spec),
        };
        let factor: f64 = factor.trim().parse().ok()?;
        (factor.is_finite() && factor > 0.0).then_some(Injection { op, factor })
    }

    /// The injection requested by the environment, if any.
    pub fn from_env() -> Option<Injection> {
        Self::parse(&std::env::var("BITFLOW_REGRESS_INJECT").ok()?)
    }

    /// The multiplier for one operator.
    pub fn factor_for(&self, op: &str) -> f64 {
        match &self.op {
            Some(target) if target != op => 1.0,
            _ => self.factor,
        }
    }
}

/// Static bit-op cost of one call of a workload (the paper's 2 bit-ops per
/// evaluated xor+popcount position).
pub fn workload_bit_ops(w: &Workload) -> u64 {
    match w.kind {
        OpKind::Conv { k } => {
            let oh = (w.h + 2 * w.params.pad - w.params.kh) / w.params.stride + 1;
            let ow = (w.w + 2 * w.params.pad - w.params.kw) / w.params.stride + 1;
            (2 * oh * ow * k * w.params.kh * w.params.kw * w.c) as u64
        }
        OpKind::Fc { k } => (2 * k * w.flat_n()) as u64,
        OpKind::Pool => 0,
    }
}

/// Times one prepared workload: `n_samples` wall-clock samples (with inner
/// repetitions so each sample is long enough to time reliably), wrapped in
/// one perf-counter window. Returns the samples (ns) and the counters.
fn sample_workload(p: &Prepared, n_samples: usize) -> (Vec<u64>, Option<perf::PerfSample>) {
    // Warm caches and the frequency governor.
    run_once(Impl::BitFlow, p, 1);
    run_once(Impl::BitFlow, p, 1);
    // Size inner repetitions for ≥200 µs per sample.
    let t0 = Instant::now();
    run_once(Impl::BitFlow, p, 1);
    let once_ns = t0.elapsed().as_nanos().max(1) as u64;
    let reps = (200_000 / once_ns).clamp(1, 1_000) as usize;
    perf::with_thread_group(|g| {
        let run = || {
            let mut samples = Vec::with_capacity(n_samples);
            for _ in 0..n_samples {
                let t0 = Instant::now();
                for _ in 0..reps {
                    run_once(Impl::BitFlow, p, 1);
                }
                samples.push(t0.elapsed().as_nanos() as u64 / reps as u64);
            }
            samples
        };
        match g {
            Some(g) => g.measure(run),
            None => (run(), None),
        }
    })
}

/// Sums two perf windows (used to merge the per-sweep counter reads of
/// one operator). Optional events stay `Some` only if every window
/// counted them.
fn merge_perf(
    a: Option<perf::PerfSample>,
    b: Option<perf::PerfSample>,
) -> Option<perf::PerfSample> {
    match (a, b) {
        (Some(a), Some(b)) => Some(perf::PerfSample {
            cycles: a.cycles + b.cycles,
            instructions: a.instructions + b.instructions,
            llc_misses: a.llc_misses.zip(b.llc_misses).map(|(x, y)| x + y),
            branch_misses: a.branch_misses.zip(b.branch_misses).map(|(x, y)| x + y),
        }),
        (x, None) | (None, x) => x,
    }
}

/// Runs the full regression workload sweep and assembles a [`BenchRun`].
///
/// Single-threaded on purpose: the gate wants the most repeatable number,
/// not the fastest one, and single-thread medians have far lower MAD than
/// pool-scheduled runs on shared machines.
///
/// Samples are collected in **round-robin sweeps** over the whole workload
/// set, with a fresh [`prepare`] per sweep. Taking all of an operator's
/// samples consecutively yields deceptively tight MADs: they capture
/// microsecond-scale jitter but none of the seconds-scale drift
/// (frequency governors, allocator layout, neighbours on shared machines)
/// that the gate actually compares across runs. Spreading each operator's
/// samples over sweeps seconds apart makes the MAD an honest estimate of
/// the dispersion the baseline comparison is exposed to.
pub fn collect_run(quick: bool) -> BenchRun {
    let injection = Injection::from_env();
    const SWEEPS: usize = 3;
    let per_sweep = if quick { 3 } else { 6 };
    let roof = roofline::current();
    let workloads: Vec<Workload> = table_iv()
        .into_iter()
        .map(|w| if quick { w.shrunk(4) } else { w })
        .collect();
    let mut samples_by_op: Vec<Vec<u64>> = vec![Vec::new(); workloads.len()];
    let mut perf_by_op: Vec<Option<perf::PerfSample>> = vec![None; workloads.len()];
    for _ in 0..SWEEPS {
        for (i, w) in workloads.iter().enumerate() {
            let p = prepare(w, 42);
            let (s, ps) = with_pool(1, || sample_workload(&p, per_sweep));
            samples_by_op[i].extend(s);
            perf_by_op[i] = merge_perf(perf_by_op[i].take(), ps);
        }
    }
    let mut ops = Vec::new();
    for (i, w) in workloads.iter().enumerate() {
        let mut samples = std::mem::take(&mut samples_by_op[i]);
        let perf_sample = perf_by_op[i];
        if let Some(inj) = &injection {
            let f = inj.factor_for(w.name);
            if f != 1.0 {
                for s in &mut samples {
                    *s = (*s as f64 * f) as u64;
                }
            }
        }
        let med = median(&mut samples);
        let mad_ns = mad(&samples, med);
        let bit_ops = workload_bit_ops(w);
        let gops = bit_ops as f64 / med.max(1) as f64;
        ops.push(OpBench {
            name: w.name.to_string(),
            median_ns: med,
            mad_ns,
            samples: samples.len() as u64,
            bit_ops,
            gops,
            pct_of_peak_compute: if roof.peak_gops > 0.0 {
                100.0 * gops / roof.peak_gops
            } else {
                0.0
            },
            cycles: perf_sample.as_ref().map(|s| s.cycles),
            instructions: perf_sample.as_ref().map(|s| s.instructions),
        });
    }
    BenchRun {
        schema_version: SCHEMA_VERSION,
        timestamp_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        quick,
        threads: 1,
        machine: roof.to_snapshot(),
        perf_status: match perf::probe() {
            Ok(_) => "ok".to_string(),
            Err(reason) => format!("unavailable: {reason}"),
        },
        ops,
    }
}

/// The gate's verdict for one operator.
#[derive(Clone, Debug, Serialize)]
pub struct OpVerdict {
    /// Operator name.
    pub name: String,
    /// Baseline median latency, ns.
    pub base_median_ns: u64,
    /// Current median latency, ns.
    pub cur_median_ns: u64,
    /// Latency change, percent (positive = slower).
    pub latency_delta_pct: f64,
    /// Baseline GOPS.
    pub base_gops: f64,
    /// Current GOPS.
    pub cur_gops: f64,
    /// Median latency regressed (both the 15% and the 3σ test fired).
    pub latency_regressed: bool,
    /// GOPS regressed (both the 15% and the 3σ test fired).
    pub gops_regressed: bool,
}

impl OpVerdict {
    /// True when either gate fired.
    pub fn regressed(&self) -> bool {
        self.latency_regressed || self.gops_regressed
    }
}

/// MAD → σ under the normal consistency constant.
const MAD_TO_SIGMA: f64 = 1.4826;
/// Relative regression threshold (15%).
const REL_THRESHOLD: f64 = 0.15;
/// Significance multiple.
const N_SIGMA: f64 = 3.0;
/// Absolute σ floor, nanoseconds. Sub-microsecond operators (the shrunken
/// pools run in ~200 ns) see run-to-run shifts of tens of percent from
/// frequency and cache state alone; a 100 ns floor (so a 3σ excess needs
/// ≥300 ns) keeps them from flaking the gate while leaving µs-and-above
/// operators governed by their measured MAD.
const SIGMA_FLOOR_NS: f64 = 100.0;

/// Compares one operator pair. Public for tests; [`compare`] drives it.
pub fn compare_op(base: &OpBench, cur: &OpBench) -> OpVerdict {
    let base_med = base.median_ns as f64;
    let cur_med = cur.median_ns as f64;
    // σ from the noisier of the two runs, floored at 1% of the baseline
    // median (a zero-MAD run cannot make the significance test vacuous)
    // and at the absolute [`SIGMA_FLOOR_NS`].
    let sigma = (MAD_TO_SIGMA * base.mad_ns.max(cur.mad_ns) as f64)
        .max(0.01 * base_med)
        .max(SIGMA_FLOOR_NS);
    let latency_regressed =
        cur_med > base_med * (1.0 + REL_THRESHOLD) && cur_med > base_med + N_SIGMA * sigma;
    // GOPS is bit_ops/median, so its σ follows from the latency σ by the
    // usual first-order propagation: σ_g ≈ gops × σ/median.
    let gops_regressed = if base.bit_ops > 0 && base_med > 0.0 {
        let sigma_g = base.gops * sigma / base_med;
        cur.gops < base.gops * (1.0 - REL_THRESHOLD) && cur.gops < base.gops - N_SIGMA * sigma_g
    } else {
        false
    };
    OpVerdict {
        name: cur.name.clone(),
        base_median_ns: base.median_ns,
        cur_median_ns: cur.median_ns,
        latency_delta_pct: if base_med > 0.0 {
            100.0 * (cur_med - base_med) / base_med
        } else {
            0.0
        },
        base_gops: base.gops,
        cur_gops: cur.gops,
        latency_regressed,
        gops_regressed,
    }
}

/// Compares a current run against the baseline, operator by operator.
/// Operators present in only one of the runs are skipped (a workload-set
/// change should re-bless, which [`needs_bless`] handles via mode and
/// fingerprint checks).
pub fn compare(base: &BenchRun, cur: &BenchRun) -> Vec<OpVerdict> {
    cur.ops
        .iter()
        .filter_map(|c| {
            let b = base.ops.iter().find(|b| b.name == c.name)?;
            Some(compare_op(b, c))
        })
        .collect()
}

/// True when the baseline cannot be compared against and must be
/// re-blessed instead: missing, different machine, different mode, or an
/// explicit `BITFLOW_BLESS=1`.
pub fn needs_bless(base: Option<&BenchRun>, cur: &BenchRun) -> Option<&'static str> {
    if std::env::var("BITFLOW_BLESS").is_ok_and(|v| v == "1") {
        return Some("BITFLOW_BLESS=1");
    }
    let Some(base) = base else {
        return Some("no baseline");
    };
    if base.fingerprint() != cur.fingerprint() {
        return Some("machine fingerprint changed");
    }
    if base.quick != cur.quick {
        return Some("quick/full mode changed");
    }
    None
}

/// Loads `results/baseline.json`, if present and parseable.
pub fn load_baseline() -> Option<BenchRun> {
    let path = crate::results_dir().join("baseline.json");
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Appends one compact-JSON line for `run` to
/// `results/history/bench.jsonl`. Returns the path on success.
pub fn append_history(run: &BenchRun) -> std::io::Result<std::path::PathBuf> {
    let dir = crate::results_dir().join("history");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("bench.jsonl");
    let line = serde_json::to_string(run)
        .map_err(|e| std::io::Error::other(format!("serialize history line: {e}")))?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    writeln!(f, "{line}")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &str, median_ns: u64, mad_ns: u64, bit_ops: u64) -> OpBench {
        OpBench {
            name: name.to_string(),
            median_ns,
            mad_ns,
            samples: 9,
            bit_ops,
            gops: bit_ops as f64 / median_ns.max(1) as f64,
            pct_of_peak_compute: 1.0,
            cycles: None,
            instructions: None,
        }
    }

    fn run_with(ops: Vec<OpBench>, quick: bool, features: &str, cores: u64) -> BenchRun {
        BenchRun {
            schema_version: SCHEMA_VERSION,
            timestamp_unix: 0,
            quick,
            threads: 1,
            machine: MachineSnapshot {
                features: features.to_string(),
                simd_width_bits: 256,
                logical_cores: cores,
                freq_ghz: 2.0,
                freq_source: "cpuinfo".to_string(),
                peak_gops: 4096.0,
                peak_gb_per_s: 10.0,
                bw_source: "env".to_string(),
            },
            perf_status: "ok".to_string(),
            ops,
        }
    }

    #[test]
    fn median_and_mad() {
        let mut s = vec![5, 1, 9, 3, 7];
        assert_eq!(median(&mut s), 5);
        assert_eq!(mad(&s, 5), 2);
        let mut one = vec![42];
        assert_eq!(median(&mut one), 42);
        assert_eq!(mad(&one, 42), 0);
    }

    #[test]
    fn injection_parsing() {
        assert_eq!(
            Injection::parse("conv3.1:2.0"),
            Some(Injection {
                op: Some("conv3.1".to_string()),
                factor: 2.0
            })
        );
        assert_eq!(
            Injection::parse("1.5"),
            Some(Injection {
                op: None,
                factor: 1.5
            })
        );
        assert_eq!(Injection::parse(""), None);
        assert_eq!(Injection::parse("conv:abc"), None);
        assert_eq!(Injection::parse("conv:-1"), None);
        let inj = Injection::parse("fc6:3.0").unwrap();
        assert_eq!(inj.factor_for("fc6"), 3.0);
        assert_eq!(inj.factor_for("conv2.1"), 1.0);
        let all = Injection::parse("2.0").unwrap();
        assert_eq!(all.factor_for("anything"), 2.0);
    }

    #[test]
    fn bit_ops_match_geometry() {
        let ws = table_iv();
        let conv31 = ws.iter().find(|w| w.name == "conv3.1").unwrap();
        // 56×56 out, 256 filters, 3×3×128 window, ×2 bit-ops.
        assert_eq!(workload_bit_ops(conv31), 2 * 56 * 56 * 256 * 3 * 3 * 128);
        let fc7 = ws.iter().find(|w| w.name == "fc7").unwrap();
        assert_eq!(workload_bit_ops(fc7), 2 * 4096 * 4096);
        let pool4 = ws.iter().find(|w| w.name == "pool4").unwrap();
        assert_eq!(workload_bit_ops(pool4), 0);
    }

    #[test]
    fn stable_run_passes_the_gate() {
        // 5% jitter is well inside both the 15% and the 3σ envelope.
        let base = op("conv2.1", 100_000, 2_000, 1_000_000_000);
        let cur = op("conv2.1", 105_000, 2_000, 1_000_000_000);
        let v = compare_op(&base, &cur);
        assert!(!v.regressed(), "{v:?}");
    }

    #[test]
    fn two_x_slowdown_fails_both_gates() {
        let base = op("conv2.1", 100_000, 2_000, 1_000_000_000);
        let cur = op("conv2.1", 200_000, 2_000, 1_000_000_000);
        let v = compare_op(&base, &cur);
        assert!(v.latency_regressed);
        assert!(v.gops_regressed);
        assert!((v.latency_delta_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn large_but_insignificant_shift_passes() {
        // 20% over the relative threshold, but MAD is huge: 3σ says noise.
        let base = op("fc6", 100_000, 20_000, 1_000_000_000);
        let cur = op("fc6", 120_000, 20_000, 1_000_000_000);
        let v = compare_op(&base, &cur);
        assert!(!v.latency_regressed, "{v:?}");
    }

    #[test]
    fn significant_but_small_shift_passes() {
        // 3% shift on a near-zero-MAD pair: significant, but under 15%.
        let base = op("fc6", 100_000, 0, 1_000_000_000);
        let cur = op("fc6", 103_000, 0, 1_000_000_000);
        let v = compare_op(&base, &cur);
        assert!(!v.latency_regressed, "{v:?}");
    }

    #[test]
    fn pool_ops_never_fail_the_gops_gate() {
        let base = op("pool4", 10_000, 100, 0);
        let cur = op("pool4", 10_000, 100, 0);
        assert!(!compare_op(&base, &cur).gops_regressed);
    }

    #[test]
    fn nanosecond_scale_jitter_passes_the_gate() {
        // A 36% shift at 200 ns scale is timer/frequency jitter, not a
        // regression — the absolute σ floor absorbs it.
        let base = op("pool5", 159, 3, 0);
        let cur = op("pool5", 216, 12, 0);
        assert!(!compare_op(&base, &cur).regressed());
        // But a shift past 3× the floor still fails.
        let bad = op("pool5", 600, 12, 0);
        assert!(compare_op(&base, &bad).latency_regressed);
    }

    #[test]
    fn compare_matches_ops_by_name() {
        let base = run_with(
            vec![op("a", 100, 1, 1_000), op("b", 100, 1, 1_000)],
            true,
            "avx2",
            4,
        );
        let cur = run_with(
            vec![op("b", 500, 1, 1_000), op("c", 100, 1, 1_000)],
            true,
            "avx2",
            4,
        );
        let verdicts = compare(&base, &cur);
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].name, "b");
        assert!(verdicts[0].regressed());
    }

    #[test]
    fn bless_conditions() {
        let base = run_with(vec![], true, "avx2", 4);
        let cur = run_with(vec![], true, "avx2", 4);
        assert_eq!(needs_bless(Some(&base), &cur), None);
        assert_eq!(needs_bless(None, &cur), Some("no baseline"));
        let other_machine = run_with(vec![], true, "avx512", 4);
        assert_eq!(
            needs_bless(Some(&other_machine), &cur),
            Some("machine fingerprint changed")
        );
        let full = run_with(vec![], false, "avx2", 4);
        assert_eq!(
            needs_bless(Some(&full), &cur),
            Some("quick/full mode changed")
        );
    }

    #[test]
    fn fingerprint_ignores_frequency() {
        let mut a = run_with(vec![], true, "avx2", 4);
        let mut b = run_with(vec![], true, "avx2", 4);
        a.machine.freq_ghz = 2.0;
        b.machine.freq_ghz = 3.5;
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn bench_run_round_trips_through_json() {
        let run = run_with(
            vec![op("conv2.1", 100_000, 2_000, 1_000_000_000)],
            true,
            "avx2",
            4,
        );
        let line = serde_json::to_string(&run).unwrap();
        let back: BenchRun = serde_json::from_str(&line).unwrap();
        assert_eq!(back.ops.len(), 1);
        assert_eq!(back.ops[0].name, "conv2.1");
        assert_eq!(back.ops[0].median_ns, 100_000);
        assert_eq!(back.fingerprint(), run.fingerprint());
    }
}
