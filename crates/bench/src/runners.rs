//! Operator runners: one timed closure per (implementation, workload).

use crate::timing::{measure, measure_interleaved, with_pool};
use crate::workloads::{OpKind, Prepared};
use bitflow_ops::binary::{binary_max_pool, pressed_conv, pressed_conv_parallel};
use bitflow_ops::float::{
    conv_im2col, conv_im2col_parallel, fc_parallel, fc_pretransposed, max_pool, max_pool_parallel,
};
use bitflow_ops::SimdLevel;
use bitflow_simd::VectorScheduler;
use std::hint::black_box;
use std::time::Duration;

/// Implementation under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Impl {
    /// Optimized full-precision operator (the 1× baseline).
    Float,
    /// Binary operator without vectorization (scalar u64 kernel) — the
    /// paper's "unoptimized BNN implementation".
    BinaryUnopt,
    /// BitFlow: binary operator with the scheduler-selected SIMD kernel.
    BitFlow,
    /// BitFlow with an explicitly forced kernel width (ablations).
    BitFlowForced(SimdLevel),
}

/// The scheduler-selected level for a prepared workload (what BitFlow's
/// code generator would pick on this machine).
pub fn scheduled_level(p: &Prepared) -> SimdLevel {
    let s = VectorScheduler::new();
    match p.workload.kind {
        OpKind::Conv { .. } | OpKind::Pool => s.select(p.workload.c).level,
        OpKind::Fc { .. } => s.streaming_level(),
    }
}

/// Runs one (impl, workload) configuration once. Panics on impl/op
/// mismatches (e.g. forced level on float).
pub fn run_once(imp: Impl, p: &Prepared, threads: usize) {
    match (imp, p.workload.kind) {
        (Impl::Float, OpKind::Conv { .. }) => {
            let f = p.fshape.unwrap();
            if threads == 1 {
                black_box(conv_im2col(&p.input, &p.weights, f, p.workload.params));
            } else {
                black_box(conv_im2col_parallel(
                    &p.input,
                    &p.weights,
                    f,
                    p.workload.params,
                ));
            }
        }
        (Impl::Float, OpKind::Fc { k }) => {
            let n = p.workload.flat_n();
            if threads == 1 {
                black_box(fc_pretransposed(&p.input_flat, &p.weights_t, n, k));
            } else {
                black_box(fc_parallel(&p.input_flat, &p.weights_t, n, k));
            }
        }
        (Impl::Float, OpKind::Pool) => {
            if threads == 1 {
                black_box(max_pool(&p.input, p.workload.params));
            } else {
                black_box(max_pool_parallel(&p.input, p.workload.params));
            }
        }
        (imp, kind) => {
            let level = match imp {
                Impl::BinaryUnopt => SimdLevel::Unvectorized,
                Impl::BitFlow => scheduled_level(p),
                Impl::BitFlowForced(l) => l,
                Impl::Float => unreachable!(),
            };
            match kind {
                OpKind::Conv { .. } => {
                    let bank = p.bank.as_ref().unwrap();
                    if threads == 1 {
                        black_box(pressed_conv(
                            level,
                            &p.bit_input,
                            bank,
                            p.workload.params.stride,
                        ));
                    } else {
                        black_box(pressed_conv_parallel(
                            level,
                            &p.bit_input,
                            bank,
                            p.workload.params.stride,
                        ));
                    }
                }
                OpKind::Fc { .. } => {
                    let w = p.fc_weights.as_ref().unwrap();
                    let mut out = vec![0.0f32; w.k];
                    // Input packing inline (see crate docs); K-dim is the
                    // multi-core axis.
                    let mut packed = vec![0u64; p.workload.flat_n().div_ceil(64)];
                    bitflow_simd::pack::pack_f32(&p.input_flat, &mut packed);
                    if threads == 1 {
                        w.forward_into(level, &packed, &mut out);
                    } else {
                        w.forward_into_parallel(level, &packed, &mut out);
                    }
                    black_box(out);
                }
                OpKind::Pool => {
                    let (kh, kw, s) = (
                        p.workload.params.kh,
                        p.workload.params.kw,
                        p.workload.params.stride,
                    );
                    if threads == 1 {
                        black_box(binary_max_pool(level, &p.bit_input, kh, kw, s));
                    } else {
                        black_box(bitflow_ops::binary::binary_max_pool_parallel(
                            level,
                            &p.bit_input,
                            kh,
                            kw,
                            s,
                        ));
                    }
                }
            }
        }
    }
}

/// Times one configuration inside a sized pool.
pub fn time_config(imp: Impl, p: &Prepared, threads: usize, budget: Duration) -> Duration {
    with_pool(threads, || {
        measure(|| run_once(imp, p, threads), budget, 3, 200)
    })
}

/// Convenience: time with the default 600 ms budget.
pub fn time_default(imp: Impl, p: &Prepared, threads: usize) -> Duration {
    time_config(imp, p, threads, Duration::from_millis(600))
}

/// Times two implementations on the same workload with their iterations
/// interleaved, so both see identical machine load. Use this for A/B
/// speedup claims; separate [`time_config`] calls measure in disjoint
/// windows and can disagree by tens of percent on a busy machine.
pub fn time_pair(
    a: Impl,
    b: Impl,
    p: &Prepared,
    threads: usize,
    budget: Duration,
) -> (Duration, Duration) {
    with_pool(threads, || {
        measure_interleaved(
            || run_once(a, p, threads),
            || run_once(b, p, threads),
            budget,
            3,
            200,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{prepare, table_iv};

    /// Smoke: every impl×op combination runs on shrunken workloads.
    #[test]
    fn all_configurations_run() {
        for w in table_iv() {
            let w = w.shrunk(4);
            let p = prepare(&w, 3);
            for imp in [
                Impl::Float,
                Impl::BinaryUnopt,
                Impl::BitFlow,
                Impl::BitFlowForced(SimdLevel::Sse),
            ] {
                for threads in [1usize, 2] {
                    run_once(imp, &p, threads);
                }
            }
        }
    }

    #[test]
    fn binary_faster_than_float_on_conv() {
        // The headline claim, at reduced scale: BitFlow binary conv beats
        // the float baseline comfortably on one thread.
        let w = table_iv()[1].shrunk(2); // conv3.1 at 28x28
        let p = prepare(&w, 4);
        let (tf, tb) = time_pair(
            Impl::Float,
            Impl::BitFlow,
            &p,
            1,
            Duration::from_millis(300),
        );
        assert!(
            tb < tf,
            "binary {:?} should beat float {:?} on conv",
            tb,
            tf
        );
    }

    #[test]
    fn unopt_is_not_faster_than_bitflow_wide_channels() {
        let w = table_iv()[3]; // conv5.1 (C=512) at full size — small anyway
        let p = prepare(&w, 5);
        let (tu, tb) = time_pair(
            Impl::BinaryUnopt,
            Impl::BitFlow,
            &p,
            1,
            Duration::from_millis(300),
        );
        // SIMD should not lose; allow 10% jitter head-room.
        assert!(
            tb.as_secs_f64() <= tu.as_secs_f64() * 1.10,
            "bitflow {tb:?} vs unopt {tu:?}"
        );
    }
}
