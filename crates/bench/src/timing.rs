//! Wall-clock measurement utilities.

use std::time::{Duration, Instant};

/// Measures the wall-clock time of `f`, adaptively: one warm-up call, then
/// repeated timed calls until `budget` has elapsed or `max_iters` calls
/// were made (whichever first, always ≥ `min_iters`). Returns the minimum
/// observed time — the standard estimator for CPU microbenchmarks (least
/// contaminated by interference).
pub fn measure(
    mut f: impl FnMut(),
    budget: Duration,
    min_iters: usize,
    max_iters: usize,
) -> Duration {
    f(); // warm-up (page faults, cache, branch predictors)
    let mut best = Duration::MAX;
    let mut spent = Duration::ZERO;
    let mut iters = 0usize;
    while iters < min_iters || (spent < budget && iters < max_iters) {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        best = best.min(dt);
        spent += dt;
        iters += 1;
    }
    best
}

/// Default measurement: 1 s budget, 3–50 iterations.
pub fn measure_default(f: impl FnMut()) -> Duration {
    measure(f, Duration::from_secs(1), 3, 50)
}

/// Measures two closures under the *same* load conditions by interleaving
/// their iterations (a, b, a, b, ...) and returning each one's minimum
/// observed time.
///
/// Timing `a` to completion and then `b` (as two [`measure`] calls) biases
/// the comparison whenever background load changes between the two
/// windows — minima only reject interference that pauses during *that*
/// closure's window. Interleaving gives both closures the same exposure to
/// whatever else the machine is doing, which is what an A/B comparison
/// needs.
pub fn measure_interleaved(
    mut a: impl FnMut(),
    mut b: impl FnMut(),
    budget: Duration,
    min_rounds: usize,
    max_rounds: usize,
) -> (Duration, Duration) {
    a(); // warm-up both sides
    b();
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    let mut spent = Duration::ZERO;
    let mut rounds = 0usize;
    while rounds < min_rounds || (spent < budget && rounds < max_rounds) {
        let t0 = Instant::now();
        a();
        let da = t0.elapsed();
        let t1 = Instant::now();
        b();
        let db = t1.elapsed();
        best_a = best_a.min(da);
        best_b = best_b.min(db);
        spent += da + db;
        rounds += 1;
    }
    (best_a, best_b)
}

/// Runs `f` inside a fresh rayon pool of `threads` threads and returns its
/// result. Each figure's thread sweep builds its pools this way, so the
/// global pool never leaks between configurations.
pub fn with_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("rayon pool");
    pool.install(f)
}

/// Pretty-prints a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_minimum() {
        let d = measure(
            || {
                std::hint::black_box((0..10_000u64).sum::<u64>());
            },
            Duration::from_millis(50),
            3,
            1000,
        );
        assert!(d > Duration::ZERO);
        assert!(d < Duration::from_millis(50));
    }

    #[test]
    fn with_pool_controls_thread_count() {
        let n = with_pool(3, rayon::current_num_threads);
        assert_eq!(n, 3);
        let n = with_pool(1, rayon::current_num_threads);
        assert_eq!(n, 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0 µs");
    }
}
