//! The paper's benchmark operators (Table IV) and their prepared inputs.
//!
//! Eight operators from VGG: conv2.1, conv3.1, conv4.1, conv5.1 (3×3,
//! stride 1, pad 1), fc6, fc7, and pool4, pool5 (2×2, stride 2). These
//! cover every tier of the vector execution scheduler: C = 64 (scalar
//! words), 128 (SSE), 256 (AVX2), 512 (AVX-512).

use bitflow_ops::ConvParams;
use bitflow_tensor::{BitFilterBank, BitTensor, FilterShape, Layout, Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Operator category.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum OpKind {
    /// Convolution with K filters.
    Conv {
        /// Filters.
        k: usize,
    },
    /// Fully connected with K outputs (input is the flattened h·w·c).
    Fc {
        /// Output neurons.
        k: usize,
    },
    /// Max pooling.
    Pool,
}

/// One Table IV workload.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Workload {
    /// Paper name, e.g. "conv3.1".
    pub name: &'static str,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Input channels.
    pub c: usize,
    /// Category + output width.
    pub kind: OpKind,
    /// Kernel geometry.
    pub params: ConvParams,
}

impl Workload {
    /// Input shape.
    pub fn input_shape(&self) -> Shape {
        Shape::hwc(self.h, self.w, self.c)
    }

    /// Flattened input width (FC).
    pub fn flat_n(&self) -> usize {
        self.h * self.w * self.c
    }

    /// A spatially shrunken copy for quick smoke runs.
    pub fn shrunk(mut self, factor: usize) -> Workload {
        if matches!(self.kind, OpKind::Fc { .. }) {
            // Shrink the flattened width via h (keep w, c intact).
            self.h = (self.h / factor).max(1);
        } else {
            self.h = (self.h / factor).max(4);
            self.w = (self.w / factor).max(4);
        }
        self
    }
}

/// The paper's eight benchmark operators (Table IV).
pub fn table_iv() -> Vec<Workload> {
    vec![
        Workload {
            name: "conv2.1",
            h: 112,
            w: 112,
            c: 64,
            kind: OpKind::Conv { k: 128 },
            params: ConvParams::VGG_CONV,
        },
        Workload {
            name: "conv3.1",
            h: 56,
            w: 56,
            c: 128,
            kind: OpKind::Conv { k: 256 },
            params: ConvParams::VGG_CONV,
        },
        Workload {
            name: "conv4.1",
            h: 28,
            w: 28,
            c: 256,
            kind: OpKind::Conv { k: 512 },
            params: ConvParams::VGG_CONV,
        },
        Workload {
            name: "conv5.1",
            h: 14,
            w: 14,
            c: 512,
            kind: OpKind::Conv { k: 512 },
            params: ConvParams::VGG_CONV,
        },
        // fc6 consumes pool5's flattened 7·7·512 = 25088 activations.
        Workload {
            name: "fc6",
            h: 7,
            w: 7,
            c: 512,
            kind: OpKind::Fc { k: 4096 },
            params: ConvParams::new(1, 1, 1, 0),
        },
        Workload {
            name: "fc7",
            h: 1,
            w: 1,
            c: 4096,
            kind: OpKind::Fc { k: 4096 },
            params: ConvParams::new(1, 1, 1, 0),
        },
        Workload {
            name: "pool4",
            h: 28,
            w: 28,
            c: 512,
            kind: OpKind::Pool,
            params: ConvParams::VGG_POOL,
        },
        Workload {
            name: "pool5",
            h: 14,
            w: 14,
            c: 512,
            kind: OpKind::Pool,
            params: ConvParams::VGG_POOL,
        },
    ]
}

/// The conv-only subset (used by kernel-width ablations).
pub fn table_iv_convs() -> Vec<Workload> {
    table_iv()
        .into_iter()
        .filter(|w| matches!(w.kind, OpKind::Conv { .. }))
        .collect()
}

/// Prepared operands for one workload: everything both the float and the
/// binary paths need, built once outside the timed region.
pub struct Prepared {
    /// The workload.
    pub workload: Workload,
    /// Float input (NHWC).
    pub input: Tensor,
    /// Flat float input (FC view).
    pub input_flat: Vec<f32>,
    /// Float conv/fc weights ((K,kh,kw,C) order / N×K).
    pub weights: Vec<f32>,
    /// Pre-transposed FC weights (K×N) — float production form.
    pub weights_t: Vec<f32>,
    /// Conv filter shape.
    pub fshape: Option<FilterShape>,
    /// Pre-packed (padded) binary input for conv/pool.
    pub bit_input: BitTensor,
    /// Pre-packed conv filter bank.
    pub bank: Option<BitFilterBank>,
    /// Pre-packed FC weights.
    pub fc_weights: Option<bitflow_ops::binary::BinaryFcWeights>,
}

/// Builds the operands for a workload, seeded deterministically.
pub fn prepare(w: &Workload, seed: u64) -> Prepared {
    let mut rng = StdRng::seed_from_u64(seed);
    let input = Tensor::random(w.input_shape(), Layout::Nhwc, &mut rng);
    let input_flat = input.data().to_vec();
    match w.kind {
        OpKind::Conv { k } => {
            let fshape = FilterShape::new(k, w.params.kh, w.params.kw, w.c);
            let weights = Tensor::random(Shape::vec(fshape.numel()), Layout::Nhwc, &mut rng)
                .data()
                .to_vec();
            let bank = BitFilterBank::from_floats(&weights, fshape);
            let bit_input = BitTensor::from_tensor_padded(&input, w.params.pad);
            Prepared {
                workload: *w,
                input,
                input_flat,
                weights,
                weights_t: Vec::new(),
                fshape: Some(fshape),
                bit_input,
                bank: Some(bank),
                fc_weights: None,
            }
        }
        OpKind::Fc { k } => {
            let n = w.flat_n();
            let weights = Tensor::random(Shape::vec(n * k), Layout::Nhwc, &mut rng)
                .data()
                .to_vec();
            let weights_t = bitflow_gemm::sgemm::transpose(&weights, n, k);
            let fc_weights = bitflow_ops::binary::BinaryFcWeights::pack(&weights, n, k);
            Prepared {
                workload: *w,
                bit_input: BitTensor::from_tensor(&input),
                input,
                input_flat,
                weights,
                weights_t,
                fshape: None,
                bank: None,
                fc_weights: Some(fc_weights),
            }
        }
        OpKind::Pool => Prepared {
            workload: *w,
            bit_input: BitTensor::from_tensor(&input),
            input,
            input_flat,
            weights: Vec::new(),
            weights_t: Vec::new(),
            fshape: None,
            bank: None,
            fc_weights: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_matches_paper() {
        let ws = table_iv();
        assert_eq!(ws.len(), 8);
        let by_name = |n: &str| *ws.iter().find(|w| w.name == n).unwrap();
        let c21 = by_name("conv2.1");
        assert_eq!((c21.h, c21.w, c21.c), (112, 112, 64));
        assert!(matches!(c21.kind, OpKind::Conv { k: 128 }));
        let f6 = by_name("fc6");
        assert_eq!(f6.flat_n(), 25088);
        assert!(matches!(f6.kind, OpKind::Fc { k: 4096 }));
        let p5 = by_name("pool5");
        assert_eq!((p5.h, p5.c), (14, 512));
    }

    #[test]
    fn prepare_conv_operands_consistent() {
        let w = table_iv()[3]; // conv5.1, small enough for a unit test
        let p = prepare(&w, 1);
        let f = p.fshape.unwrap();
        assert_eq!(f.c, 512);
        assert_eq!(p.bit_input.h(), 14 + 2);
        assert_eq!(p.bank.as_ref().unwrap().shape().k, 512);
        assert_eq!(p.weights.len(), f.numel());
    }

    #[test]
    fn prepare_fc_operands_consistent() {
        let w = table_iv()[5]; // fc7
        let p = prepare(&w, 2);
        assert_eq!(p.input_flat.len(), 4096);
        assert_eq!(p.fc_weights.as_ref().unwrap().k, 4096);
        assert_eq!(p.weights_t.len(), 4096 * 4096);
    }

    #[test]
    fn shrink_preserves_channels() {
        let w = table_iv()[0].shrunk(4);
        assert_eq!((w.h, w.w, w.c), (28, 28, 64));
        let f = table_iv()[4].shrunk(7);
        assert_eq!(f.flat_n(), 25088 / 7);
    }

    #[test]
    fn deterministic_by_seed() {
        let w = table_iv()[3];
        let a = prepare(&w, 9);
        let b = prepare(&w, 9);
        assert_eq!(a.input.data(), b.input.data());
        assert_eq!(a.weights, b.weights);
    }
}
