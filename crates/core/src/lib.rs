//! # bitflow-core — the BitFlow public API
//!
//! One-stop facade over the BitFlow workspace, reproducing
//! *"BitFlow: Exploiting Vector Parallelism for Binary Neural Networks on
//! CPU"* (IPDPS 2018). Downstream users depend on this crate (or the root
//! `bitflow` package, which re-exports it) and get:
//!
//! ```
//! use bitflow_core::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Build a binarized VGG-16 with random weights and run one inference.
//! let spec = vgg16();
//! let mut rng = StdRng::seed_from_u64(0);
//! let weights = NetworkWeights::random(&spec, &mut rng);
//! let mut engine = Network::compile(&spec, &weights);
//! let image = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
//! let logits = engine.infer(&image);
//! assert_eq!(logits.len(), 1000);
//! ```
//!
//! The three-level structure of the paper maps onto the re-exported crates:
//!
//! | level | crate | highlights |
//! |---|---|---|
//! | gemm | [`gemm`] | `bgemm`, fused binarize+pack+transpose (Table III) |
//! | operator | [`ops`] | **PressedConv**, binary FC, binary OR-pool |
//! | network | [`graph`] | static-graph engine, weight pre-packing, zero-cost padding |
//!
//! plus the substrates: [`tensor`] (NHWC pressed tensors), [`simd`]
//! (xor+popcount kernels and the vector execution scheduler), [`gpumodel`]
//! (the calibrated GTX 1080 comparator of Figs. 10–11).

pub use bitflow_gemm as gemm;
pub use bitflow_gpumodel as gpumodel;
pub use bitflow_graph as graph;
pub use bitflow_net as net;
pub use bitflow_ops as ops;
pub use bitflow_serve as serve;
pub use bitflow_simd as simd;
pub use bitflow_telemetry as telemetry;
pub use bitflow_tensor as tensor;

// The observability entry points, importable straight off the root crate:
// `bitflow::CompiledModel::enable_telemetry` returns a handle whose
// `snapshot()` is a `bitflow::MetricsSnapshot`, exportable with
// `MetricsSnapshot::to_prometheus` or streamed per-request through a
// `bitflow::SpanSink`.
pub use bitflow_graph::CompiledModel;
pub use bitflow_telemetry::{MetricsSnapshot, ModelTelemetry, Roofline, SpanSink, SCHEMA_VERSION};

// The serving runtime, importable straight off the root crate: wrap a
// `CompiledModel` in a `bitflow::Server` for bounded admission, deadlines,
// panic isolation, and load shedding.
pub use bitflow_serve::{Server, ServerConfig};

// The network front-end, importable straight off the root crate: bind a
// `bitflow::NetServer` over a `Server` to speak HTTP/1.1 with hostile-client
// hardening (header/read/write deadlines, connection caps, bounded bodies).
pub use bitflow_net::{NetConfig, NetServer};

/// Everything a typical user needs, one import away.
pub mod prelude {
    pub use bitflow_gpumodel::GpuModel;
    pub use bitflow_graph::models::{mlp, small_cnn, tiered_cnn, vgg16, vgg19};
    pub use bitflow_graph::spec::{LayerSpec, NetworkSpec};
    pub use bitflow_graph::weights::{BnParams, LayerWeights, NetworkWeights};
    pub use bitflow_graph::{
        CompiledModel, ExecPlan, FloatNetwork, InferenceContext, Network, PlanNode, PlanOptions,
    };
    pub use bitflow_net::{NetConfig, NetServer};
    pub use bitflow_ops::binary::{
        binary_conv_im2col, binary_fc, binary_max_pool, pressed_conv, pressed_conv_parallel,
        BinaryFcWeights, ConvEpilogue, PopCmp, SignThresholds,
    };
    pub use bitflow_ops::{ConvParams, SimdLevel};
    pub use bitflow_serve::{
        BreakerConfig, ChaosConfig, ModelClient, ModelEntry, ModelRegistry, ResponseHandle, Server,
        ServerConfig, ShedPolicy,
    };
    pub use bitflow_simd::{features, HwFeatures, VectorScheduler};
    pub use bitflow_telemetry::{
        JsonLinesSink, MachineSnapshot, MetricsSnapshot, ModelTelemetry, NoopSink, OpBound,
        PerfSnapshot, RequestTrace, RingSink, Roofline, SpanSink, SCHEMA_VERSION,
    };
    pub use bitflow_tensor::{BitFilterBank, BitTensor, FilterShape, Layout, Shape, Tensor};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn facade_end_to_end_small() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(1);
        let weights = NetworkWeights::random(&spec, &mut rng);
        let mut engine = Network::compile(&spec, &weights);
        let image = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
        let logits = engine.infer(&image);
        assert_eq!(logits.len(), 10);
    }

    #[test]
    fn facade_exposes_scheduler() {
        let s = VectorScheduler::new();
        let k = s.select(512);
        assert_eq!(k.c_words, 8);
        let _ = features();
    }

    #[test]
    fn facade_exposes_gpu_model() {
        let t = GpuModel::gtx1080().network_time(&vgg16());
        assert!(t.as_secs_f64() > 0.0);
    }

    #[test]
    fn facade_exposes_net_front_end() {
        // The network names resolve at the crate root and the whole
        // bind/shutdown lifecycle works through the facade alone.
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(3);
        let weights = NetworkWeights::random(&spec, &mut rng);
        let model = crate::CompiledModel::compile(&spec, &weights);
        let server = std::sync::Arc::new(crate::Server::start(
            std::sync::Arc::new(model),
            ServerConfig::default(),
        ));
        let net =
            crate::NetServer::bind(server, crate::NetConfig::default()).expect("bind loopback");
        assert_ne!(net.local_addr().port(), 0);
        assert!(net.shutdown());
    }

    #[test]
    fn root_exposes_telemetry_entry_points() {
        // The observability names resolve at the crate root, without
        // reaching into the `telemetry` module.
        fn _takes_sink(_: &dyn crate::SpanSink) {}
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(2);
        let weights = NetworkWeights::random(&spec, &mut rng);
        let model = crate::CompiledModel::compile(&spec, &weights);
        let t = model.enable_telemetry();
        let snap: crate::MetricsSnapshot = t.snapshot();
        assert_eq!(snap.schema_version, crate::SCHEMA_VERSION);
        assert!(snap.machine.peak_gops > 0.0);
        let _ = snap.to_prometheus();
    }
}
