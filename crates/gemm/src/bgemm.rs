//! Binary GEMM: xor+popcount matrix multiplication over packed operands.
//!
//! `C[m][k] = dot(A_row_m, B_col_k)` with the binary inner product of paper
//! Eq. 1. Parallelism assignment follows §III-C: **vector parallelism over
//! the N (reduction) dimension** — that's the packed-word stream each
//! [`bitflow_simd::binary_dot`] call consumes — and **multi-core parallelism
//! over the K (output-neuron) dimension**.
//!
//! The 4-way unrolled micro-kernel reuses each loaded A-row against four
//! B-rows, the bgemm analogue of the register-tiling the paper borrows from
//! the sgemm literature.

use crate::pack::{pack_a_rows, pack_b_fused, PackedMatrix};
use bitflow_simd::kernels::SimdLevel;
use bitflow_simd::{binary_dot, xor_popcount};
use rayon::prelude::*;

/// Binary GEMM over pre-packed operands: `a` holds M packed rows of N bits,
/// `bt` holds K packed rows of N bits (B already fused-transposed).
/// Writes the M×K integer dot products as `f32` into `c`.
///
/// # Panics
/// If the logical widths of `a` and `bt` differ or `c` is mis-sized.
pub fn bgemm_packed(level: SimdLevel, a: &PackedMatrix, bt: &PackedMatrix, c: &mut [f32]) {
    assert_eq!(a.n_logical, bt.n_logical, "reduction widths differ");
    assert_eq!(c.len(), a.rows * bt.rows, "output size");
    let n = a.n_logical;
    for mi in 0..a.rows {
        let arow = a.row(mi);
        let crow = &mut c[mi * bt.rows..(mi + 1) * bt.rows];
        bgemm_row(level, arow, bt, n, crow);
    }
}

/// One output row: A-row against all K packed B-rows, unrolled by 4.
#[inline]
fn bgemm_row(level: SimdLevel, arow: &[u64], bt: &PackedMatrix, n: usize, crow: &mut [f32]) {
    let quads = bt.rows / 4;
    for q in 0..quads {
        let k0 = 4 * q;
        // Four independent popcount streams: the A-row words stay hot in
        // registers/L1 across all four (loop unrolling per paper §IV).
        let d0 = binary_dot(level, arow, bt.row(k0), n);
        let d1 = binary_dot(level, arow, bt.row(k0 + 1), n);
        let d2 = binary_dot(level, arow, bt.row(k0 + 2), n);
        let d3 = binary_dot(level, arow, bt.row(k0 + 3), n);
        crow[k0] = d0 as f32;
        crow[k0 + 1] = d1 as f32;
        crow[k0 + 2] = d2 as f32;
        crow[k0 + 3] = d3 as f32;
    }
    for k in quads * 4..bt.rows {
        crow[k] = binary_dot(level, arow, bt.row(k), n) as f32;
    }
}

/// Multi-threaded binary GEMM: output columns (K) are distributed over the
/// installed rayon pool in contiguous chunks — the paper's multi-core
/// parallelism over the K dimension for binary FC operators.
pub fn bgemm_packed_parallel(
    level: SimdLevel,
    a: &PackedMatrix,
    bt: &PackedMatrix,
    c: &mut [f32],
) {
    assert_eq!(a.n_logical, bt.n_logical, "reduction widths differ");
    assert_eq!(c.len(), a.rows * bt.rows, "output size");
    let n = a.n_logical;
    let k = bt.rows;
    // Chunk K so each task is substantial; rayon balances across the pool.
    let chunk = k.div_ceil(rayon::current_num_threads().max(1) * 4).max(1);
    for mi in 0..a.rows {
        let arow = a.row(mi);
        let crow = &mut c[mi * k..(mi + 1) * k];
        crow.par_chunks_mut(chunk).enumerate().for_each(|(ci, out)| {
            let kbase = ci * chunk;
            for (j, o) in out.iter_mut().enumerate() {
                *o = binary_dot(level, arow, bt.row(kbase + j), n) as f32;
            }
        });
    }
}

/// Convenience entry point: binarize+pack both float matrices, then run
/// binary GEMM. `a` is M×N, `b` is N×K (both row-major floats). This is the
/// whole-operator path benchmarked against [`crate::sgemm::sgemm_opt`];
/// production inference instead packs B once at init and calls
/// [`bgemm_packed`].
pub fn bgemm_f32(
    level: SimdLevel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
) {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), n * k);
    assert_eq!(c.len(), m * k);
    let pa = pack_a_rows(a, m, n);
    let pb = pack_b_fused(b, n, k);
    bgemm_packed(level, &pa, &pb, c);
}

/// Raw xor+popcount throughput primitive exposed for benches: total
/// popcount between two packed matrices' storage. Exercises the same memory
/// stream as bgemm without the per-row bookkeeping.
pub fn xnor_popcount_throughput(level: SimdLevel, a: &PackedMatrix, b: &PackedMatrix) -> u64 {
    assert_eq!(a.words.len(), b.words.len());
    xor_popcount(level, &a.words, &b.words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgemm::sgemm_naive;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sign(x: f32) -> f32 {
        if x >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Float reference: sgemm over sign(A), sign(B) gives the exact integer
    /// binary dot products (values small enough for exact f32).
    fn reference(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        let sa: Vec<f32> = a.iter().copied().map(sign).collect();
        let sb: Vec<f32> = b.iter().copied().map(sign).collect();
        let mut c = vec![0.0f32; m * k];
        sgemm_naive(&sa, &sb, &mut c, m, n, k);
        c
    }

    fn levels() -> [SimdLevel; 4] {
        [SimdLevel::Scalar, SimdLevel::Sse, SimdLevel::Avx2, SimdLevel::Avx512]
    }

    #[test]
    fn bgemm_matches_float_reference() {
        let mut rng = StdRng::seed_from_u64(50);
        for (m, n, k) in [
            (1usize, 64usize, 8usize),
            (1, 63, 5),
            (1, 65, 7),
            (3, 128, 16),
            (2, 500, 9),
            (1, 1024, 33),
        ] {
            let a: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let want = reference(&a, &b, m, n, k);
            for level in levels() {
                let mut c = vec![0.0f32; m * k];
                bgemm_f32(level, &a, &b, &mut c, m, n, k);
                assert_eq!(c, want, "{level} m={m} n={n} k={k}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(51);
        let (m, n, k) = (2usize, 300usize, 37usize);
        let a: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let pa = pack_a_rows(&a, m, n);
        let pb = pack_b_fused(&b, n, k);
        let mut c1 = vec![0.0f32; m * k];
        let mut c2 = vec![0.0f32; m * k];
        bgemm_packed(SimdLevel::Avx512, &pa, &pb, &mut c1);
        bgemm_packed_parallel(SimdLevel::Avx512, &pa, &pb, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn all_plus_one_inputs() {
        // A, B all +1: every dot product equals N exactly.
        let (m, n, k) = (1usize, 200usize, 6usize);
        let a = vec![1.0f32; m * n];
        let b = vec![1.0f32; n * k];
        let mut c = vec![0.0f32; m * k];
        bgemm_f32(SimdLevel::Avx512, &a, &b, &mut c, m, n, k);
        assert!(c.iter().all(|&x| x == n as f32));
    }

    #[test]
    fn orthogonal_inputs() {
        // A = +1s, B column alternating ±1 over even N: dot = 0.
        let (n, k) = (64usize, 1usize);
        let a = vec![1.0f32; n];
        let b: Vec<f32> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let mut c = vec![0.0f32; 1];
        bgemm_f32(SimdLevel::Scalar, &a, &b, &mut c, 1, n, k);
        assert_eq!(c[0], 0.0);
    }

    #[test]
    fn throughput_primitive_counts() {
        let a = PackedMatrix {
            words: vec![u64::MAX; 8],
            rows: 2,
            n_logical: 256,
            words_per_row: 4,
        };
        let b = PackedMatrix {
            words: vec![0u64; 8],
            rows: 2,
            n_logical: 256,
            words_per_row: 4,
        };
        assert_eq!(xnor_popcount_throughput(SimdLevel::Avx2, &a, &b), 512);
    }

    #[test]
    #[should_panic(expected = "reduction widths")]
    fn width_mismatch_panics() {
        let a = PackedMatrix::zeros(1, 64);
        let b = PackedMatrix::zeros(1, 128);
        let mut c = vec![0.0f32; 1];
        bgemm_packed(SimdLevel::Scalar, &a, &b, &mut c);
    }
}
