//! Binary GEMM: xor+popcount matrix multiplication over packed operands.
//!
//! `C[m][k] = dot(A_row_m, B_col_k)` with the binary inner product of paper
//! Eq. 1. Parallelism assignment follows §III-C: **vector parallelism over
//! the N (reduction) dimension** — that's the packed-word stream each
//! [`bitflow_simd::binary_dot`] call consumes — and **multi-core parallelism
//! over the K (output-neuron) dimension**.
//!
//! The 4-way unrolled micro-kernel reuses each loaded A-row against four
//! B-rows, the bgemm analogue of the register-tiling the paper borrows from
//! the sgemm literature.

use crate::pack::{pack_a_rows, pack_b_fused, PackedMatrix};
use bitflow_simd::kernels::SimdLevel;
use bitflow_simd::{binary_dot, xor_popcount};
use rayon::prelude::*;

/// Binary GEMM over pre-packed operands: `a` holds M packed rows of N bits,
/// `bt` holds K packed rows of N bits (B already fused-transposed).
/// Writes the M×K integer dot products as `f32` into `c`.
///
/// # Panics
/// If the logical widths of `a` and `bt` differ or `c` is mis-sized.
pub fn bgemm_packed(level: SimdLevel, a: &PackedMatrix, bt: &PackedMatrix, c: &mut [f32]) {
    assert_eq!(a.n_logical, bt.n_logical, "reduction widths differ");
    assert_eq!(c.len(), a.rows * bt.rows, "output size");
    let n = a.n_logical;
    for mi in 0..a.rows {
        let arow = a.row(mi);
        let crow = &mut c[mi * bt.rows..(mi + 1) * bt.rows];
        bgemm_row(level, arow, bt, n, crow);
    }
}

/// One output row: A-row against all K packed B-rows, unrolled by 4.
#[inline]
fn bgemm_row(level: SimdLevel, arow: &[u64], bt: &PackedMatrix, n: usize, crow: &mut [f32]) {
    bgemm_block(level, arow, bt, 0, n, crow);
}

/// The shared micro-kernel: A-row against B-rows `kbase..kbase + out.len()`,
/// unrolled by 4. Both the serial row loop and the parallel chunk tasks land
/// here, so the two paths execute identical per-element code.
#[inline]
fn bgemm_block(
    level: SimdLevel,
    arow: &[u64],
    bt: &PackedMatrix,
    kbase: usize,
    n: usize,
    out: &mut [f32],
) {
    let quads = out.len() / 4;
    for q in 0..quads {
        let k0 = kbase + 4 * q;
        // Four independent popcount streams: the A-row words stay hot in
        // registers/L1 across all four (loop unrolling per paper §IV).
        let d0 = binary_dot(level, arow, bt.row(k0), n);
        let d1 = binary_dot(level, arow, bt.row(k0 + 1), n);
        let d2 = binary_dot(level, arow, bt.row(k0 + 2), n);
        let d3 = binary_dot(level, arow, bt.row(k0 + 3), n);
        out[4 * q] = d0 as f32;
        out[4 * q + 1] = d1 as f32;
        out[4 * q + 2] = d2 as f32;
        out[4 * q + 3] = d3 as f32;
    }
    for (j, o) in out.iter_mut().enumerate().skip(quads * 4) {
        *o = binary_dot(level, arow, bt.row(kbase + j), n) as f32;
    }
}

/// K-dimension chunk granted to each parallel task. Fixed (not derived from
/// the pool size) so the work partition — and thus the exact sequence of
/// kernel calls per chunk — is identical for every thread count. A multiple
/// of 4 keeps every full chunk on the unrolled quad path of
/// [`bgemm_block`].
pub const PAR_K_CHUNK: usize = 32;

/// Micro-kernel tile geometry of one bgemm call with M×K outputs reducing
/// over N bits, in the paper's convention (N = reduction / vector axis,
/// K = output / multi-core axis). Pure arithmetic over the problem shape —
/// telemetry uses it to attach tile stats to GEMM-backed operators without
/// touching the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BgemmTileStats {
    /// M dimension (rows / output pixels).
    pub m: usize,
    /// K dimension (output columns / neurons).
    pub k: usize,
    /// N (reduction) dimension in packed 64-bit words.
    pub n_words: usize,
    /// Full 4-way-unrolled quads per output row in [`bgemm_block`].
    pub quads: usize,
    /// Remainder outputs per row on the non-unrolled tail.
    pub tail: usize,
    /// Output-column chunk granted to each parallel task
    /// ([`PAR_K_CHUNK`]).
    pub par_k_chunk: usize,
}

/// Tile geometry for a serial bgemm of `m`×`k` outputs over `n` reduction
/// bits.
pub fn tile_stats(m: usize, n: usize, k: usize) -> BgemmTileStats {
    BgemmTileStats {
        m,
        k,
        n_words: n.div_ceil(64),
        quads: k / 4,
        tail: k % 4,
        par_k_chunk: PAR_K_CHUNK,
    }
}

/// Multi-threaded binary GEMM: output columns (K) are distributed over the
/// installed rayon pool in contiguous chunks — the paper's multi-core
/// parallelism over the K dimension for binary FC operators. Each chunk
/// runs the same 4-way unrolled micro-kernel as [`bgemm_packed`], and the
/// chunk boundaries are deterministic (independent of the pool size), so
/// output is bit-identical to the serial path.
pub fn bgemm_packed_parallel(level: SimdLevel, a: &PackedMatrix, bt: &PackedMatrix, c: &mut [f32]) {
    assert_eq!(a.n_logical, bt.n_logical, "reduction widths differ");
    assert_eq!(c.len(), a.rows * bt.rows, "output size");
    let n = a.n_logical;
    let k = bt.rows;
    for mi in 0..a.rows {
        let arow = a.row(mi);
        let crow = &mut c[mi * k..(mi + 1) * k];
        crow.par_chunks_mut(PAR_K_CHUNK)
            .enumerate()
            .for_each(|(ci, out)| {
                bgemm_block(level, arow, bt, ci * PAR_K_CHUNK, n, out);
            });
    }
}

/// Convenience entry point: binarize+pack both float matrices, then run
/// binary GEMM. `a` is M×N, `b` is N×K (both row-major floats). This is the
/// whole-operator path benchmarked against [`crate::sgemm::sgemm_opt`];
/// production inference instead packs B once at init and calls
/// [`bgemm_packed`].
pub fn bgemm_f32(
    level: SimdLevel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
) {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), n * k);
    assert_eq!(c.len(), m * k);
    let pa = pack_a_rows(a, m, n);
    let pb = pack_b_fused(b, n, k);
    bgemm_packed(level, &pa, &pb, c);
}

/// Raw xor+popcount throughput primitive exposed for benches: total
/// popcount between two packed matrices' storage. Exercises the same memory
/// stream as bgemm without the per-row bookkeeping.
///
/// # Panics
/// If the two matrices' logical geometry differs. Equal `words.len()` alone
/// is not enough: two matrices with the same storage size but different
/// `n_logical`/`words_per_row` splits would line up different press-tail
/// positions and silently count tail bits as data.
pub fn xnor_popcount_throughput(level: SimdLevel, a: &PackedMatrix, b: &PackedMatrix) -> u64 {
    assert_eq!(a.n_logical, b.n_logical, "reduction widths differ");
    assert_eq!(a.words_per_row, b.words_per_row, "row geometries differ");
    assert_eq!(a.words.len(), b.words.len(), "storage sizes differ");
    xor_popcount(level, &a.words, &b.words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgemm::sgemm_naive;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sign(x: f32) -> f32 {
        if x >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Float reference: sgemm over sign(A), sign(B) gives the exact integer
    /// binary dot products (values small enough for exact f32).
    fn reference(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        let sa: Vec<f32> = a.iter().copied().map(sign).collect();
        let sb: Vec<f32> = b.iter().copied().map(sign).collect();
        let mut c = vec![0.0f32; m * k];
        sgemm_naive(&sa, &sb, &mut c, m, n, k);
        c
    }

    fn levels() -> [SimdLevel; 4] {
        [
            SimdLevel::Scalar,
            SimdLevel::Sse,
            SimdLevel::Avx2,
            SimdLevel::Avx512,
        ]
    }

    #[test]
    fn bgemm_matches_float_reference() {
        let mut rng = StdRng::seed_from_u64(50);
        for (m, n, k) in [
            (1usize, 64usize, 8usize),
            (1, 63, 5),
            (1, 65, 7),
            (3, 128, 16),
            (2, 500, 9),
            (1, 1024, 33),
        ] {
            let a: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let want = reference(&a, &b, m, n, k);
            for level in levels() {
                let mut c = vec![0.0f32; m * k];
                bgemm_f32(level, &a, &b, &mut c, m, n, k);
                assert_eq!(c, want, "{level} m={m} n={n} k={k}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(51);
        let (m, n, k) = (2usize, 300usize, 37usize);
        let a: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let pa = pack_a_rows(&a, m, n);
        let pb = pack_b_fused(&b, n, k);
        let mut c1 = vec![0.0f32; m * k];
        let mut c2 = vec![0.0f32; m * k];
        bgemm_packed(SimdLevel::Avx512, &pa, &pb, &mut c1);
        bgemm_packed_parallel(SimdLevel::Avx512, &pa, &pb, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn parallel_bit_exact_across_pool_sizes() {
        // The chunk partition must not depend on the installed pool, and
        // every chunk shares the serial micro-kernel — so any thread count
        // yields the serial result bit-for-bit. K values probe chunk
        // boundaries: below one chunk, exactly one, straddling, and a
        // non-multiple-of-4 tail inside the last chunk.
        let mut rng = StdRng::seed_from_u64(52);
        for k in [1usize, 31, 32, 33, 64, 70, 129] {
            let (m, n) = (3usize, 200usize);
            let a: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let pa = pack_a_rows(&a, m, n);
            let pb = pack_b_fused(&b, n, k);
            let mut serial = vec![0.0f32; m * k];
            bgemm_packed(SimdLevel::Avx512, &pa, &pb, &mut serial);
            for threads in [1usize, 2, 5] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("pool");
                let mut par = vec![0.0f32; m * k];
                pool.install(|| bgemm_packed_parallel(SimdLevel::Avx512, &pa, &pb, &mut par));
                assert_eq!(serial, par, "k={k} threads={threads}");
            }
        }
    }

    #[test]
    fn all_plus_one_inputs() {
        // A, B all +1: every dot product equals N exactly.
        let (m, n, k) = (1usize, 200usize, 6usize);
        let a = vec![1.0f32; m * n];
        let b = vec![1.0f32; n * k];
        let mut c = vec![0.0f32; m * k];
        bgemm_f32(SimdLevel::Avx512, &a, &b, &mut c, m, n, k);
        assert!(c.iter().all(|&x| x == n as f32));
    }

    #[test]
    fn orthogonal_inputs() {
        // A = +1s, B column alternating ±1 over even N: dot = 0.
        let (n, k) = (64usize, 1usize);
        let a = vec![1.0f32; n];
        let b: Vec<f32> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let mut c = vec![0.0f32; 1];
        bgemm_f32(SimdLevel::Scalar, &a, &b, &mut c, 1, n, k);
        assert_eq!(c[0], 0.0);
    }

    #[test]
    fn throughput_primitive_counts() {
        let a = PackedMatrix {
            words: vec![u64::MAX; 8],
            rows: 2,
            n_logical: 256,
            words_per_row: 4,
        };
        let b = PackedMatrix {
            words: vec![0u64; 8],
            rows: 2,
            n_logical: 256,
            words_per_row: 4,
        };
        assert_eq!(xnor_popcount_throughput(SimdLevel::Avx2, &a, &b), 512);
    }

    #[test]
    #[should_panic(expected = "reduction widths")]
    fn width_mismatch_panics() {
        let a = PackedMatrix::zeros(1, 64);
        let b = PackedMatrix::zeros(1, 128);
        let mut c = vec![0.0f32; 1];
        bgemm_packed(SimdLevel::Scalar, &a, &b, &mut c);
    }

    #[test]
    #[should_panic(expected = "reduction widths")]
    fn throughput_rejects_mismatched_geometry() {
        // Same words.len() (8 words each), different logical splits:
        // 2 rows × 256 bits vs 4 rows × 128 bits. Before the geometry
        // asserts this silently xor'd rows against misaligned press-tails.
        let a = PackedMatrix::zeros(2, 256);
        let b = PackedMatrix::zeros(4, 128);
        assert_eq!(a.words.len(), b.words.len());
        xnor_popcount_throughput(SimdLevel::Scalar, &a, &b);
    }

    #[test]
    #[should_panic(expected = "row geometries")]
    fn throughput_rejects_mismatched_words_per_row() {
        // Equal n_logical and words.len() can still disagree on rows ×
        // words_per_row if one matrix was built with extra padding.
        let a = PackedMatrix::zeros(2, 100); // 2 rows × 2 words
        let b = PackedMatrix {
            words: vec![0u64; 4],
            rows: 1,
            n_logical: 100,
            words_per_row: 4,
        };
        assert_eq!(a.words.len(), b.words.len());
        xnor_popcount_throughput(SimdLevel::Scalar, &a, &b);
    }
}
