//! # bitflow-gemm
//!
//! The **gemm level** of BitFlow's three-level optimization hierarchy
//! (paper §IV).
//!
//! * [`sgemm`] — single-precision GEMM: a naive reference, a
//!   transpose+tile+unroll optimized kernel (the techniques the paper cites
//!   from the sgemm literature: tiling, loop unrolling, B-transposition for
//!   friendly memory access), and a multi-threaded variant. These are the
//!   full-precision *baselines* of every figure.
//! * [`pack`] — binarization/packing for matrices, including the paper's
//!   Table III trick: **fused binarization + bit-packing + implicit
//!   transposition** of the weight matrix in a single pass.
//! * [`bgemm`] — binary GEMM: xor+popcount inner products over packed rows,
//!   vector parallelism along the reduction (N) dimension and multi-core
//!   parallelism along the output (K) dimension, exactly as the paper
//!   assigns them for binary fully-connected operators (§III-C).
//!
//! Matrix convention throughout: row-major; `A` is M×N, `B` is N×K,
//! `C = A·B` is M×K.

pub mod bgemm;
pub mod pack;
pub mod sgemm;

pub use bgemm::{
    bgemm_f32, bgemm_packed, bgemm_packed_parallel, tile_stats, BgemmTileStats, PAR_K_CHUNK,
};
pub use pack::{pack_a_rows, pack_b_fused, pack_b_fused_columnwise, pack_b_staged, PackedMatrix};
pub use sgemm::{sgemm_naive, sgemm_opt, sgemm_parallel};
