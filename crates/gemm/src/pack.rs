//! Matrix binarization and packing, including the paper's Table III fusion.
//!
//! For `C = A·B` with A of M×N and B of N×K, the binary kernel wants:
//!
//! * each **row of A** packed along N (unit stride — cheap), and
//! * each **column of B** packed along N (stride K — this is where the
//!   paper fuses binarization, bit-packing and *implicit transposition*
//!   into one pass: walking a column with stride K and depositing bits
//!   LSB-first produces the transposed packed layout directly).
//!
//! The staged alternative (transpose floats, then pack rows) is kept for
//! the ablation bench that quantifies what the fusion buys.

use bitflow_simd::pack::pack_f32;

/// A bit-packed matrix: `rows` packed bit-vectors of `n_logical` bits each,
/// stored as `words_per_row` `u64`s per row (press-tail zeros).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedMatrix {
    /// Packed storage, row-major.
    pub words: Vec<u64>,
    /// Number of packed rows.
    pub rows: usize,
    /// Logical bits per row (the reduction length N).
    pub n_logical: usize,
    /// `u64` words per row.
    pub words_per_row: usize,
}

impl PackedMatrix {
    /// Allocates an all-zero packed matrix.
    pub fn zeros(rows: usize, n_logical: usize) -> Self {
        let words_per_row = n_logical.div_ceil(64);
        Self {
            words: vec![0u64; rows * words_per_row],
            rows,
            n_logical,
            words_per_row,
        }
    }

    /// Packed words of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Mutable packed words of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Packed size in bytes (for compression-ratio accounting).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Packs the M rows of a row-major M×N float matrix (activations):
/// fused binarize + pack along the unit-stride N dimension.
pub fn pack_a_rows(a: &[f32], m: usize, n: usize) -> PackedMatrix {
    assert_eq!(a.len(), m * n);
    let mut out = PackedMatrix::zeros(m, n);
    let wpr = out.words_per_row;
    for mi in 0..m {
        pack_f32(
            &a[mi * n..(mi + 1) * n],
            &mut out.words[mi * wpr..(mi + 1) * wpr],
        );
    }
    out
}

/// Paper Table III: fused binarization + bit-packing + implicit
/// transposition of the N×K weight matrix `b`. Output row `k` holds the
/// packed bits of B's column `k` (length N), i.e. `Bᵀ` in packed form,
/// produced in one pass with no float transpose and no intermediate buffer.
///
/// Cache behaviour: the paper's bit-field loop walks one column at a time
/// (stride K between the 64 elements of a word), touching each of B's
/// cache lines K/16 times from cold. We instead walk a **block of
/// `COL_BLOCK` adjacent columns together**, assembling `COL_BLOCK` words
/// per 64-row stripe, so every fetched cache line yields bits for several
/// output words before eviction. Bit-for-bit identical output (tests
/// compare against the staged transpose), strictly a traversal-order
/// change.
pub fn pack_b_fused(b: &[f32], n: usize, k: usize) -> PackedMatrix {
    /// Columns packed together per stripe (64 floats = 4 cache lines
    /// of reuse per fetched row segment).
    const COL_BLOCK: usize = 64;
    assert_eq!(b.len(), n * k);
    let mut out = PackedMatrix::zeros(k, n);
    let wpr = out.words_per_row;
    for k0 in (0..k).step_by(COL_BLOCK) {
        let k1 = (k0 + COL_BLOCK).min(k);
        for wi in 0..wpr {
            let base = wi * 64;
            let len = 64.min(n - base);
            let mut words = [0u64; COL_BLOCK];
            for bit in 0..len {
                let row = &b[(base + bit) * k..];
                for (j, w) in words[..k1 - k0].iter_mut().enumerate() {
                    *w |= ((row[k0 + j] >= 0.0) as u64) << bit;
                }
            }
            for (j, w) in words[..k1 - k0].iter().enumerate() {
                out.words[(k0 + j) * wpr + wi] = *w;
            }
        }
    }
    out
}

/// The paper's original single-column traversal (strided bit-field loop,
/// `bit64.b.bI = p[I*k] >= 0.0f`), kept for the packing ablation.
pub fn pack_b_fused_columnwise(b: &[f32], n: usize, k: usize) -> PackedMatrix {
    assert_eq!(b.len(), n * k);
    let mut out = PackedMatrix::zeros(k, n);
    let wpr = out.words_per_row;
    for kj in 0..k {
        let row = &mut out.words[kj * wpr..(kj + 1) * wpr];
        for (wi, word) in row.iter_mut().enumerate() {
            let base = wi * 64;
            let len = 64.min(n - base);
            let mut w = 0u64;
            for bit in 0..len {
                let x = b[(base + bit) * k + kj];
                w |= ((x >= 0.0) as u64) << bit;
            }
            *word = w;
        }
    }
    out
}

/// Staged baseline for the fusion ablation: float-transpose B, then binarize
/// and pack each row. Produces bit-identical output to [`pack_b_fused`] at
/// the cost of an extra N×K float pass and buffer.
pub fn pack_b_staged(b: &[f32], n: usize, k: usize) -> PackedMatrix {
    assert_eq!(b.len(), n * k);
    let bt = crate::sgemm::transpose(b, n, k);
    pack_a_rows(&bt, k, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn fused_equals_staged() {
        let mut rng = StdRng::seed_from_u64(40);
        for (n, k) in [
            (1usize, 1usize),
            (64, 4),
            (65, 3),
            (128, 10),
            (100, 7),
            (513, 2),
        ] {
            let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let fused = pack_b_fused(&b, n, k);
            let staged = pack_b_staged(&b, n, k);
            assert_eq!(fused, staged, "n={n} k={k}");
        }
    }

    #[test]
    fn degenerate_shapes_yield_well_formed_empties() {
        // n == 0: rows exist but carry zero words each.
        let p = pack_b_fused(&[], 0, 3);
        assert_eq!(
            (p.rows, p.n_logical, p.words_per_row, p.words.len()),
            (3, 0, 0, 0)
        );
        assert_eq!(p.row(2), &[] as &[u64]);
        assert_eq!(p, pack_b_staged(&[], 0, 3));
        assert_eq!(p, pack_b_fused_columnwise(&[], 0, 3));

        // k == 0: no rows at all.
        let p = pack_b_fused(&[], 5, 0);
        assert_eq!(
            (p.rows, p.n_logical, p.words_per_row, p.words.len()),
            (0, 5, 1, 0)
        );
        assert_eq!(p, pack_b_staged(&[], 5, 0));

        // pack_a_rows mirrors both cases.
        let p = pack_a_rows(&[], 0, 5);
        assert_eq!((p.rows, p.words.len()), (0, 0));
        let p = pack_a_rows(&[], 2, 0);
        assert_eq!((p.rows, p.words_per_row, p.words.len()), (2, 0, 0));
        assert_eq!(p.row(1), &[] as &[u64]);

        // zeros with no rows still records the row geometry.
        let p = PackedMatrix::zeros(0, 128);
        assert_eq!(
            (p.rows, p.n_logical, p.words_per_row, p.words.len()),
            (0, 128, 2, 0)
        );
        assert_eq!(p.bytes(), 0);
    }

    #[test]
    fn fused_bit_semantics() {
        // B 3x2: column 0 = [1, -1, 1], column 1 = [-1, -1, 0].
        let b = vec![1.0f32, -1.0, -1.0, -1.0, 1.0, 0.0];
        let p = pack_b_fused(&b, 3, 2);
        assert_eq!(p.rows, 2);
        assert_eq!(p.row(0), &[0b101]);
        assert_eq!(p.row(1), &[0b100]); // sign(0) = +1 at bit 2
    }

    #[test]
    fn pack_a_rows_unit_stride() {
        let a = vec![1.0f32, -1.0, 1.0, /* row 2 */ -1.0, -1.0, -1.0];
        let p = pack_a_rows(&a, 2, 3);
        assert_eq!(p.row(0), &[0b101]);
        assert_eq!(p.row(1), &[0b000]);
        assert_eq!(p.n_logical, 3);
    }

    #[test]
    fn blocked_equals_columnwise() {
        let mut rng = StdRng::seed_from_u64(45);
        for (n, k) in [
            (1usize, 1usize),
            (64, 64),
            (65, 63),
            (100, 70),
            (200, 130),
            (513, 5),
        ] {
            let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            assert_eq!(
                pack_b_fused(&b, n, k),
                pack_b_fused_columnwise(&b, n, k),
                "n={n} k={k}"
            );
        }
    }

    #[test]
    fn press_tail_zero() {
        let mut rng = StdRng::seed_from_u64(41);
        let (n, k) = (70usize, 3usize);
        let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let p = pack_b_fused(&b, n, k);
        assert_eq!(p.words_per_row, 2);
        for kj in 0..k {
            assert_eq!(p.row(kj)[1] >> (70 - 64), 0, "tail bits must be zero");
        }
    }

    #[test]
    fn packed_matrix_geometry() {
        let p = PackedMatrix::zeros(3, 130);
        assert_eq!(p.words_per_row, 3);
        assert_eq!(p.row(2).len(), 3);
        assert_eq!(p.bytes(), 3 * 3 * 8);
    }

    #[test]
    fn compression_ratio_is_32x() {
        // Float N×K bytes vs packed K rows of N bits.
        let (n, k) = (4096usize, 64usize);
        let p = PackedMatrix::zeros(k, n);
        assert_eq!((n * k * 4) / p.bytes(), 32);
    }
}
