//! Single-precision GEMM baselines.
//!
//! BitFlow is compared against "counterpart full-precision operators"; those
//! baselines must themselves be competently optimized or the reported
//! speedups would be inflated. [`sgemm_opt`] applies the standard CPU sgemm
//! techniques the paper references (§IV, citing BLIS/BLASX): transpose B
//! for unit-stride reads, block for cache, unroll the inner loop so LLVM
//! autovectorizes to FMA.

use rayon::prelude::*;

/// Cache-block size along the reduction dimension (f32 elements).
const BLOCK_N: usize = 256;
/// Cache-block size along the output-column dimension.
const BLOCK_K: usize = 64;

/// Naive triple-loop reference: `C[m][k] = Σ_n A[m][n] · B[n][k]`.
///
/// Used as the correctness oracle; never benchmarked as "the" float
/// baseline.
pub fn sgemm_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), n * k);
    assert_eq!(c.len(), m * k);
    for mi in 0..m {
        for ki in 0..k {
            let mut acc = 0.0f32;
            for ni in 0..n {
                acc += a[mi * n + ni] * b[ni * k + ki];
            }
            c[mi * k + ki] = acc;
        }
    }
}

/// Transposes row-major `b` (n×k) into row-major k×n.
pub fn transpose(b: &[f32], n: usize, k: usize) -> Vec<f32> {
    assert_eq!(b.len(), n * k);
    let mut bt = vec![0.0f32; n * k];
    for ni in 0..n {
        for ki in 0..k {
            bt[ki * n + ni] = b[ni * k + ki];
        }
    }
    bt
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four independent accumulators break the FP dependency chain so LLVM
    // vectorizes and pipelines the loop (tiling + unrolling per paper §IV).
    let mut acc = [0.0f32; 4];
    let chunks = a.chunks_exact(4).zip(b.chunks_exact(4));
    for (ca, cb) in chunks {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let rem = a.len() / 4 * 4;
    let mut tail = 0.0f32;
    for i in rem..a.len() {
        tail += a[i] * b[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Optimized single-thread sgemm: B transposed once, then blocked
/// unit-stride dot products.
pub fn sgemm_opt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), n * k);
    assert_eq!(c.len(), m * k);
    let bt = transpose(b, n, k);
    sgemm_pretransposed(a, &bt, c, m, n, k);
}

/// Optimized sgemm over an already-transposed B (k×n row-major). Lets
/// callers hoist the transpose out of the timed region, the same way BitFlow
/// hoists weight packing to network initialization.
pub fn sgemm_pretransposed(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * n);
    assert_eq!(bt.len(), n * k);
    assert_eq!(c.len(), m * k);
    for mi in 0..m {
        let arow = &a[mi * n..(mi + 1) * n];
        let crow = &mut c[mi * k..(mi + 1) * k];
        for k0 in (0..k).step_by(BLOCK_K) {
            let k1 = (k0 + BLOCK_K).min(k);
            for n0 in (0..n).step_by(BLOCK_N) {
                let n1 = (n0 + BLOCK_N).min(n);
                for ki in k0..k1 {
                    let brow = &bt[ki * n + n0..ki * n + n1];
                    let partial = dot(&arow[n0..n1], brow);
                    if n0 == 0 {
                        crow[ki] = partial;
                    } else {
                        crow[ki] += partial;
                    }
                }
            }
        }
    }
}

/// Multi-threaded sgemm: rows of C in parallel when M > 1, otherwise columns
/// of C in parallel (the batch-1 inference case). Uses whatever rayon pool
/// is installed — benchmark harnesses install sized pools per measurement.
pub fn sgemm_parallel(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), n * k);
    assert_eq!(c.len(), m * k);
    let bt = transpose(b, n, k);
    if m > 1 {
        c.par_chunks_mut(k).enumerate().for_each(|(mi, crow)| {
            let arow = &a[mi * n..(mi + 1) * n];
            for ki in 0..k {
                crow[ki] = dot(arow, &bt[ki * n..(ki + 1) * n]);
            }
        });
    } else {
        c.par_iter_mut().enumerate().for_each(|(ki, out)| {
            *out = dot(a, &bt[ki * n..(ki + 1) * n]);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_mat(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn opt_matches_naive() {
        let mut rng = StdRng::seed_from_u64(30);
        for (m, n, k) in [
            (1, 4, 4),
            (3, 5, 7),
            (2, 300, 70),
            (1, 1000, 33),
            (4, 64, 64),
        ] {
            let a = random_mat(&mut rng, m * n);
            let b = random_mat(&mut rng, n * k);
            let mut c1 = vec![0.0; m * k];
            let mut c2 = vec![0.0; m * k];
            sgemm_naive(&a, &b, &mut c1, m, n, k);
            sgemm_opt(&a, &b, &mut c2, m, n, k);
            assert_close(&c1, &c2, 1e-3 * n as f32);
        }
    }

    #[test]
    fn parallel_matches_naive() {
        let mut rng = StdRng::seed_from_u64(31);
        for (m, n, k) in [(1, 128, 64), (5, 50, 50), (1, 513, 17)] {
            let a = random_mat(&mut rng, m * n);
            let b = random_mat(&mut rng, n * k);
            let mut c1 = vec![0.0; m * k];
            let mut c2 = vec![0.0; m * k];
            sgemm_naive(&a, &b, &mut c1, m, n, k);
            sgemm_parallel(&a, &b, &mut c2, m, n, k);
            assert_close(&c1, &c2, 1e-3 * n as f32);
        }
    }

    #[test]
    fn transpose_correct() {
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let bt = transpose(&b, 2, 3);
        assert_eq!(bt, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]); // 3x2
    }

    #[test]
    fn pretransposed_skips_transpose() {
        let mut rng = StdRng::seed_from_u64(32);
        let (m, n, k) = (2, 70, 30);
        let a = random_mat(&mut rng, m * n);
        let b = random_mat(&mut rng, n * k);
        let bt = transpose(&b, n, k);
        let mut c1 = vec![0.0; m * k];
        let mut c2 = vec![0.0; m * k];
        sgemm_opt(&a, &b, &mut c1, m, n, k);
        sgemm_pretransposed(&a, &bt, &mut c2, m, n, k);
        assert_close(&c1, &c2, 1e-5);
    }

    #[test]
    fn identity_matrix() {
        let n = 8;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(33);
        let a = random_mat(&mut rng, 3 * n);
        let mut c = vec![0.0; 3 * n];
        sgemm_opt(&a, &eye, &mut c, 3, n, n);
        assert_close(&c, &a, 1e-6);
    }

    #[test]
    fn degenerate_dims() {
        // k = 1 column, n = 1 reduction.
        let a = vec![2.0, 3.0];
        let b = vec![4.0];
        let mut c = vec![0.0; 2];
        sgemm_opt(&a, &b, &mut c, 2, 1, 1);
        assert_eq!(c, vec![8.0, 12.0]);
    }
}
