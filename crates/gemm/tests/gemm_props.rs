//! Property tests for the gemm level: the optimized kernels against naive
//! references, and algebraic identities of binary GEMM.

use bitflow_gemm::bgemm::{bgemm_f32, bgemm_packed};
use bitflow_gemm::pack::{pack_a_rows, pack_b_fused, pack_b_fused_columnwise, pack_b_staged};
use bitflow_gemm::sgemm::{sgemm_naive, sgemm_opt, sgemm_parallel, transpose};
use bitflow_simd::kernels::SimdLevel;
use proptest::prelude::*;

fn sign(x: f32) -> f32 {
    if x >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

fn mat(seed: u64, len: usize) -> Vec<f32> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn sgemm_opt_matches_naive(
        m in 1usize..5,
        n in 1usize..300,
        k in 1usize..20,
        seed in any::<u64>(),
    ) {
        let a = mat(seed, m * n);
        let b = mat(seed ^ 1, n * k);
        let mut want = vec![0.0f32; m * k];
        let mut got = vec![0.0f32; m * k];
        sgemm_naive(&a, &b, &mut want, m, n, k);
        sgemm_opt(&a, &b, &mut got, m, n, k);
        let tol = 1e-4 * n as f32;
        for (x, y) in want.iter().zip(&got) {
            prop_assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn sgemm_parallel_matches_opt(
        m in 1usize..4,
        n in 1usize..200,
        k in 1usize..16,
        seed in any::<u64>(),
    ) {
        let a = mat(seed, m * n);
        let b = mat(seed ^ 2, n * k);
        let mut x = vec![0.0f32; m * k];
        let mut y = vec![0.0f32; m * k];
        sgemm_opt(&a, &b, &mut x, m, n, k);
        sgemm_parallel(&a, &b, &mut y, m, n, k);
        let tol = 1e-4 * n as f32;
        for (p, q) in x.iter().zip(&y) {
            prop_assert!((p - q).abs() <= tol);
        }
    }

    #[test]
    fn transpose_involution(n in 1usize..20, k in 1usize..20, seed in any::<u64>()) {
        let b = mat(seed, n * k);
        prop_assert_eq!(transpose(&transpose(&b, n, k), k, n), b);
    }

    #[test]
    fn all_pack_variants_identical(n in 1usize..260, k in 1usize..80, seed in any::<u64>()) {
        let b = mat(seed, n * k);
        let fused = pack_b_fused(&b, n, k);
        prop_assert_eq!(&fused, &pack_b_staged(&b, n, k));
        prop_assert_eq!(&fused, &pack_b_fused_columnwise(&b, n, k));
    }

    #[test]
    fn bgemm_matches_sign_sgemm(
        m in 1usize..3,
        n in 1usize..200,
        k in 1usize..12,
        seed in any::<u64>(),
    ) {
        let a = mat(seed, m * n);
        let b = mat(seed ^ 3, n * k);
        let sa: Vec<f32> = a.iter().copied().map(sign).collect();
        let sb: Vec<f32> = b.iter().copied().map(sign).collect();
        let mut want = vec![0.0f32; m * k];
        sgemm_naive(&sa, &sb, &mut want, m, n, k);
        for level in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512] {
            let mut got = vec![0.0f32; m * k];
            bgemm_f32(level, &a, &b, &mut got, m, n, k);
            prop_assert_eq!(&got, &want, "{}", level);
        }
    }

    #[test]
    fn bgemm_negating_b_negates_c(n in 1usize..150, k in 1usize..10, seed in any::<u64>()) {
        // sign(-x) = -sign(x) except at exact zero; avoid zeros.
        let a: Vec<f32> = mat(seed, n).iter().map(|x| x + 1e-3).collect();
        let b: Vec<f32> = mat(seed ^ 4, n * k).iter().map(|x| x + 1e-3).collect();
        let neg_b: Vec<f32> = b.iter().map(|x| -x).collect();
        let mut c1 = vec![0.0f32; k];
        let mut c2 = vec![0.0f32; k];
        bgemm_f32(SimdLevel::Avx512, &a, &b, &mut c1, 1, n, k);
        bgemm_f32(SimdLevel::Avx512, &a, &neg_b, &mut c2, 1, n, k);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert_eq!(*x, -y);
        }
    }

    #[test]
    fn bgemm_packed_rowwise_consistency(
        n in 1usize..150,
        k in 1usize..10,
        seed in any::<u64>(),
    ) {
        // Computing rows one at a time equals the all-at-once product.
        let m = 3usize;
        let a = mat(seed, m * n);
        let b = mat(seed ^ 5, n * k);
        let pa = pack_a_rows(&a, m, n);
        let pb = pack_b_fused(&b, n, k);
        let mut full = vec![0.0f32; m * k];
        bgemm_packed(SimdLevel::Avx512, &pa, &pb, &mut full);
        for mi in 0..m {
            let row_a = pack_a_rows(&a[mi * n..(mi + 1) * n], 1, n);
            let mut row_c = vec![0.0f32; k];
            bgemm_packed(SimdLevel::Avx512, &row_a, &pb, &mut row_c);
            prop_assert_eq!(&full[mi * k..(mi + 1) * k], row_c.as_slice());
        }
    }
}
