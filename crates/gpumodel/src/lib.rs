//! # bitflow-gpumodel
//!
//! Analytical cost model of a **GTX 1080 running full-precision VGG
//! operators** (cuDNN under Keras/TensorFlow 1.2), standing in for the
//! physical GPU of the paper's Figs. 10–11.
//!
//! ## Why a model is a faithful substitute here
//!
//! In the paper, the GPU series is a *fixed comparator line*: BitFlow's CPU
//! numbers are measured, the GPU numbers are whatever a stock
//! Keras/TF/cuDNN stack does on a GTX 1080. No GPU is available in this
//! reproduction environment, but the paper itself publishes the end-to-end
//! line (12.87 ms VGG-16, 14.92 ms VGG-19), so the comparator can be
//! reconstructed from first principles and *validated against the paper's
//! own numbers* — which the unit tests here do.
//!
//! ## The model
//!
//! A two-ceiling roofline with a per-kernel launch/framework overhead:
//!
//! ```text
//! t_op = max( flops / (eff_c · peak_flops),  bytes / (eff_b · mem_bw) ) + overhead
//! ```
//!
//! GTX 1080: 8.87 TFLOP/s peak fp32, 320 GB/s GDDR5X. Batch-1 cuDNN conv
//! achieves roughly a third of peak (small GEMMs, no batching to amortize
//! over); FC layers at batch 1 are pure GEMV — memory-bound on the weight
//! matrix; pooling is bandwidth-bound. The three efficiency constants are
//! calibrated once so that VGG-16 lands on the paper's 12.87 ms, then
//! VGG-19 (14.92 ms) serves as the held-out check.

use bitflow_graph::spec::{LayerIo, LayerSpec, NetworkSpec};
use bitflow_ops::ConvParams;
use bitflow_tensor::{FilterShape, Shape};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Roofline parameters of a modeled GPU.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Peak fp32 throughput, FLOP/s.
    pub peak_flops: f64,
    /// Peak memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Fraction of peak compute reached by batch-1 conv kernels.
    pub eff_compute: f64,
    /// Fraction of peak bandwidth reached by streaming kernels.
    pub eff_bandwidth: f64,
    /// Per-kernel launch + framework overhead, seconds.
    pub launch_overhead: f64,
}

impl GpuModel {
    /// GTX 1080 under Keras/TF 1.2, calibrated to the paper's Fig. 11.
    pub fn gtx1080() -> Self {
        Self {
            peak_flops: 8.87e12,
            mem_bw: 320.0e9,
            eff_compute: 0.33,
            eff_bandwidth: 0.75,
            launch_overhead: 55e-6,
        }
    }

    fn roofline(&self, flops: f64, bytes: f64) -> Duration {
        let t_compute = flops / (self.eff_compute * self.peak_flops);
        let t_memory = bytes / (self.eff_bandwidth * self.mem_bw);
        Duration::from_secs_f64(t_compute.max(t_memory) + self.launch_overhead)
    }

    /// Modeled time of one full-precision convolution (batch 1).
    pub fn conv_time(&self, input: Shape, f: FilterShape, params: ConvParams) -> Duration {
        let g = params.conv_out(input, f.k);
        let flops = 2.0 * (g.out_h * g.out_w) as f64 * (f.k * f.kh * f.kw * f.c) as f64;
        let bytes = 4.0 * (input.numel() + f.numel() + g.out_h * g.out_w * f.k) as f64;
        self.roofline(flops, bytes)
    }

    /// Modeled time of one full-precision FC layer (batch-1 GEMV).
    pub fn fc_time(&self, n: usize, k: usize) -> Duration {
        let flops = 2.0 * (n * k) as f64;
        let bytes = 4.0 * (n * k + n + k) as f64;
        self.roofline(flops, bytes)
    }

    /// Modeled time of one max-pool (bandwidth-bound).
    pub fn pool_time(&self, input: Shape, params: ConvParams) -> Duration {
        let g = params.pool_out(input);
        // One compare per window element plus the streamed input/output.
        let flops = (g.out_h * g.out_w * g.out_c * params.kh * params.kw) as f64;
        let bytes = 4.0 * (input.numel() + g.out_h * g.out_w * g.out_c) as f64;
        self.roofline(flops, bytes)
    }

    /// Modeled per-layer times for a whole network spec (the GPU series of
    /// Fig. 10 for the Table IV operators, and of Fig. 11 end-to-end).
    pub fn network_times(&self, spec: &NetworkSpec) -> Vec<(String, Duration)> {
        let shapes = spec.infer_shapes();
        let mut out = Vec::with_capacity(spec.layers.len());
        for (i, layer) in spec.layers.iter().enumerate() {
            let in_io = if i == 0 {
                LayerIo::Map {
                    h: spec.input.h,
                    w: spec.input.w,
                    c: spec.input.c,
                }
            } else {
                shapes[i - 1]
            };
            let t = match (layer, in_io) {
                (LayerSpec::Conv { k, params, .. }, LayerIo::Map { h, w, c }) => self.conv_time(
                    Shape::hwc(h, w, c),
                    FilterShape::new(*k, params.kh, params.kw, c),
                    *params,
                ),
                (LayerSpec::Pool { params, .. }, LayerIo::Map { h, w, c }) => {
                    self.pool_time(Shape::hwc(h, w, c), *params)
                }
                (LayerSpec::Fc { k, .. }, io) => self.fc_time(io.numel(), *k),
                _ => unreachable!("spatial layer after FC"),
            };
            out.push((layer.name().to_string(), t));
        }
        out
    }

    /// Modeled end-to-end time for a network.
    pub fn network_time(&self, spec: &NetworkSpec) -> Duration {
        self.network_times(spec).iter().map(|(_, t)| *t).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitflow_graph::models::{vgg16, vgg19};

    /// The paper's Fig. 11 numbers for GTX 1080.
    const PAPER_VGG16_MS: f64 = 12.87;
    const PAPER_VGG19_MS: f64 = 14.92;

    #[test]
    fn calibrated_to_paper_vgg16() {
        let t = GpuModel::gtx1080().network_time(&vgg16()).as_secs_f64() * 1e3;
        let err = (t - PAPER_VGG16_MS).abs() / PAPER_VGG16_MS;
        assert!(
            err < 0.15,
            "VGG16 model {t:.2} ms vs paper {PAPER_VGG16_MS} ms"
        );
    }

    #[test]
    fn held_out_check_vgg19() {
        let t = GpuModel::gtx1080().network_time(&vgg19()).as_secs_f64() * 1e3;
        let err = (t - PAPER_VGG19_MS).abs() / PAPER_VGG19_MS;
        assert!(
            err < 0.15,
            "VGG19 model {t:.2} ms vs paper {PAPER_VGG19_MS} ms"
        );
    }

    #[test]
    fn vgg19_slower_than_vgg16_by_right_margin() {
        let m = GpuModel::gtx1080();
        let t16 = m.network_time(&vgg16()).as_secs_f64();
        let t19 = m.network_time(&vgg19()).as_secs_f64();
        assert!(t19 > t16);
        // Paper: 14.92/12.87 ≈ 1.16.
        let ratio = t19 / t16;
        assert!((1.05..1.30).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fc_layers_are_memory_bound() {
        let m = GpuModel::gtx1080();
        // fc6: 25088×4096 — weight traffic dominates.
        let t = m.fc_time(25088, 4096).as_secs_f64();
        let pure_bw = (25088.0 * 4096.0 * 4.0) / (m.eff_bandwidth * m.mem_bw);
        assert!(t >= pure_bw, "fc time below bandwidth floor");
        assert!(t < pure_bw * 1.5, "fc should be near the bandwidth floor");
    }

    #[test]
    fn conv_layers_are_compute_bound() {
        let m = GpuModel::gtx1080();
        let input = Shape::hwc(56, 56, 128);
        let f = FilterShape::new(256, 3, 3, 128);
        let t = m.conv_time(input, f, ConvParams::VGG_CONV).as_secs_f64();
        let pure_compute =
            (2.0 * 56.0 * 56.0 * 256.0 * 9.0 * 128.0) / (m.eff_compute * m.peak_flops);
        assert!(t >= pure_compute);
        assert!(t < pure_compute + 2.0 * m.launch_overhead);
    }

    #[test]
    fn overhead_floors_tiny_ops() {
        let m = GpuModel::gtx1080();
        let t = m.pool_time(Shape::hwc(14, 14, 512), ConvParams::VGG_POOL);
        assert!(t.as_secs_f64() >= m.launch_overhead);
        assert!(t.as_secs_f64() < 10.0 * m.launch_overhead);
    }

    #[test]
    fn per_layer_inventory_complete() {
        let times = GpuModel::gtx1080().network_times(&vgg16());
        assert_eq!(times.len(), 21);
        assert_eq!(times[0].0, "conv1.1");
        assert_eq!(times.last().unwrap().0, "fc8");
    }
}
