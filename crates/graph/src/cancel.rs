//! Cooperative cancellation for in-flight inference.
//!
//! A [`CancelToken`] is handed to
//! [`crate::engine::CompiledModel::try_infer_cancellable`] and checked at
//! every operator boundary. Cancellation is *cooperative*: an operator that
//! has started runs to completion, so a request aborts within one
//! operator's latency of the signal. Aborting between operators cannot
//! poison engine scratch state — every operator fully overwrites its
//! output region (padding margins are pre-zeroed at allocation and never
//! touched), so the next complete run through the same
//! [`crate::engine::InferenceContext`] is bit-identical to a fresh one.
//!
//! The token is two signals in one:
//!
//! * a **deadline** (absolute [`Instant`]) — crossing it surfaces as
//!   [`BitFlowError::DeadlineExceeded`];
//! * a **manual flag** (caller called [`CancelToken::cancel`], e.g. the
//!   client disconnected) — surfaces as [`BitFlowError::Cancelled`].
//!
//! [`CancelToken::none`] is the never-cancelled token the plain
//! `try_infer` path uses: no allocation, and each checkpoint is a single
//! branch on a `None`.

use crate::error::BitFlowError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared cancellation state. Cloning the token clones the `Arc`, so any
/// clone can cancel and every holder observes it.
#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative cancellation token checked at operator boundaries.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelInner>>,
}

impl CancelToken {
    /// The never-cancelled token: checkpoints cost one branch, no
    /// allocation, no clock read.
    #[must_use]
    pub const fn none() -> Self {
        Self { inner: None }
    }

    /// A manually-cancellable token with no deadline.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that expires at the absolute instant `deadline` (and can
    /// also be cancelled manually).
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Some(Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// A token that expires `budget` from now.
    #[must_use]
    pub fn with_budget(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// Signals cancellation. Idempotent; a no-op on [`CancelToken::none`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Whether [`CancelToken::cancel`] has been called (deadline expiry is
    /// *not* reported here — it is a property of the clock, not a flag).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.cancelled.load(Ordering::Acquire))
    }

    /// The absolute deadline, if one was set.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// Whether the deadline (if any) has already passed.
    #[must_use]
    pub fn deadline_passed(&self) -> bool {
        self.deadline().is_some_and(|d| Instant::now() >= d)
    }

    /// The checkpoint the engine runs between operators: `Err(Cancelled)`
    /// if the manual flag is set, `Err(DeadlineExceeded)` if the deadline
    /// has passed, `Ok(())` otherwise. Manual cancellation wins when both
    /// hold — it is the more specific signal.
    #[inline]
    pub fn check(&self) -> Result<(), BitFlowError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled.load(Ordering::Acquire) {
            return Err(BitFlowError::Cancelled);
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(BitFlowError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_cancels() {
        let t = CancelToken::none();
        assert!(t.check().is_ok());
        t.cancel(); // no-op
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn manual_cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(clone.check().is_ok());
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(matches!(clone.check(), Err(BitFlowError::Cancelled)));
    }

    #[test]
    fn past_deadline_is_exceeded() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.deadline_passed());
        assert!(matches!(t.check(), Err(BitFlowError::DeadlineExceeded)));
    }

    #[test]
    fn future_deadline_passes_and_manual_wins() {
        let t = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(t.check().is_ok());
        t.cancel();
        // Manual cancellation is reported even though the deadline holds.
        assert!(matches!(t.check(), Err(BitFlowError::Cancelled)));
    }
}
