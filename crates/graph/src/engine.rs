//! The BitFlow inference engine.
//!
//! [`CompiledModel::compile`] turns a [`NetworkSpec`] + [`NetworkWeights`]
//! into a ready-to-run binary engine, performing the paper's network-level
//! work up front:
//!
//! * weights → [`BitFilterBank`]/[`BinaryFcWeights`] (binarize + pack +
//!   fused transpose, once);
//! * batch-norm → per-channel sign thresholds (folded);
//! * every activation/scratch buffer *planned* (sized at the padded
//!   geometry its consumer requires — zero-cost padding);
//! * per-layer SIMD kernels chosen by the vector execution scheduler.
//!
//! The compiled model is **immutable and `Send + Sync`**: one
//! `Arc<CompiledModel>` serves any number of request threads. The mutable
//! half — the pre-allocated activation/scratch buffers the plan describes —
//! lives in a per-session [`InferenceContext`] ([`CompiledModel::new_context`]).
//! [`CompiledModel::infer`] then runs the chain with **zero allocation**,
//! and [`CompiledModel::infer_batch`] fans a batch of images out over the
//! installed rayon pool with one context per worker chunk (bit-identical to
//! running the images serially).
//!
//! [`Network`] is the single-threaded convenience wrapper (one model + one
//! context), and [`FloatNetwork`] compiles the same spec into the
//! full-precision baseline engine (im2col conv + sgemm, float max-pool,
//! sgemm FC).

use crate::cancel::CancelToken;
use crate::error::{BitFlowError, InputGeometry, SlotKind, SlotTypeError};
use crate::plan::{ExecPlan, PlanOptions};
use crate::spec::{LayerIo, LayerSpec, NetworkSpec};
use crate::weights::{LayerWeights, NetworkWeights};
use bitflow_gemm::pack::PackedMatrix;
use bitflow_gemm::sgemm::transpose;
use bitflow_ops::binary::{
    binarize_pack_into, binarize_threshold_into, binary_max_pool_into, pack_signed_dots_into,
    pressed_conv_into, pressed_conv_parallel_into, pressed_conv_sign_parallel_into,
    pressed_conv_sign_scratch_into, BinaryFcWeights, SignThresholds,
};
use bitflow_ops::float::{conv_im2col_parallel, fc_parallel, max_pool_parallel, relu};
use bitflow_simd::kernels::SimdLevel;
use bitflow_simd::scheduler::VectorScheduler;
use bitflow_telemetry::{
    MetricsSnapshot, ModelTelemetry, OpCost, OpDescriptor, OpKind, OpSpan, RequestTrace, SpanSink,
    TileStats, TraceBuilder,
};
use bitflow_tensor::{BitFilterBank, BitTensor, FilterShape, Layout, Shape, Tensor};
use std::cell::{Cell, RefCell};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A fault-injection hook called at every operator boundary with the
/// operator's index, name, and the request tag of the inference run on
/// this thread ([`UNTAGGED`] outside any tagged run). Installed per model
/// by the chaos layer (`BITFLOW_CHAOS` via `bitflow-serve`); the hook may
/// sleep (slow-op) or panic (panic-op). The tag travels through
/// [`InferTagGuard`], so it reaches hooks even on rayon workers inside
/// [`CompiledModel::try_infer_batch_cancellable`], where a serve-side
/// thread-local would not. Disabled cost: one `OnceLock::get` per operator.
pub type FaultHook = Arc<dyn Fn(usize, &str, u64) + Send + Sync>;

/// The request tag reported to a [`FaultHook`] when no tagged inference is
/// running on the current thread.
pub const UNTAGGED: u64 = u64::MAX;

thread_local! {
    /// Index of the operator currently executing on this thread, or
    /// `usize::MAX` when none is. Lets the `catch_unwind` backstops name
    /// the operator that panicked without any hot-path allocation.
    static CURRENT_OP: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Request tag of the inference run on this thread ([`UNTAGGED`] when
    /// none), maintained by [`InferTagGuard`] and handed to fault hooks.
    static CURRENT_TAG: Cell<u64> = const { Cell::new(UNTAGGED) };
    /// Request-scoped [`TraceBuilder`] active on this thread (none when
    /// tracing is off), maintained by [`TraceScopeGuard`]. Like the tag,
    /// it travels with each [`BatchItem`] so operator spans land in the
    /// right request even on rayon workers.
    static CURRENT_TRACE: RefCell<Option<Arc<TraceBuilder>>> = const { RefCell::new(None) };
}

/// RAII guard that tags every operator executed on this thread with a
/// request id until dropped (restoring the previous tag, so nested scopes
/// compose). Fault hooks receive the tag, letting per-request chaos
/// decisions survive the hop onto rayon workers.
pub struct InferTagGuard {
    prev: u64,
}

/// Tags the current thread's inference with `tag` for the guard's
/// lifetime.
pub fn enter_infer_tag(tag: u64) -> InferTagGuard {
    let prev = CURRENT_TAG.with(|c| c.replace(tag));
    InferTagGuard { prev }
}

impl Drop for InferTagGuard {
    fn drop(&mut self) {
        CURRENT_TAG.with(|c| c.set(self.prev));
    }
}

/// RAII guard that scopes a request's [`TraceBuilder`] to the current
/// thread (restoring the previous one on drop, so nested scopes compose).
/// While a scope is active, every operator the engine runs on this thread
/// pushes an [`OpSpan`] into the builder.
pub struct TraceScopeGuard {
    prev: Option<Arc<TraceBuilder>>,
}

/// Makes `trace` the current thread's request trace for the guard's
/// lifetime.
pub fn enter_trace_scope(trace: Arc<TraceBuilder>) -> TraceScopeGuard {
    let prev = CURRENT_TRACE.with(|c| c.replace(Some(trace)));
    TraceScopeGuard { prev }
}

/// The request trace scoped to this thread, if any. Cost when tracing is
/// off: one thread-local borrow and an `Option` clone of `None`.
#[must_use]
pub fn current_trace() -> Option<Arc<TraceBuilder>> {
    CURRENT_TRACE.with(|c| c.borrow().clone())
}

impl Drop for TraceScopeGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// A pre-allocated runtime buffer.
enum Slot {
    /// Pressed activation map (possibly with padding margins).
    Bit(BitTensor),
    /// Float scratch map (conv integer counts before re-binarization).
    Map(Tensor),
    /// Float vector (FC counts / logits).
    Vec(Vec<f32>),
    /// Packed activation vector between FC layers.
    Packed(PackedMatrix),
}

impl Slot {
    /// What this slot holds (diagnostic face of the enum).
    fn kind(&self) -> SlotKind {
        match self {
            Slot::Bit(_) => SlotKind::Bit,
            Slot::Map(_) => SlotKind::Map,
            Slot::Vec(_) => SlotKind::Vec,
            Slot::Packed(_) => SlotKind::Packed,
        }
    }
    // The typed accessors: a mismatch yields the actual kind, and the
    // operator dispatch turns it into a `SlotTypeError` carrying the layer
    // name — one diagnosable path instead of eight anonymous panics.
    fn bit(&self) -> Result<&BitTensor, SlotKind> {
        match self {
            Slot::Bit(t) => Ok(t),
            other => Err(other.kind()),
        }
    }
    fn bit_mut(&mut self) -> Result<&mut BitTensor, SlotKind> {
        match self {
            Slot::Bit(t) => Ok(t),
            other => Err(other.kind()),
        }
    }
    fn map(&self) -> Result<&Tensor, SlotKind> {
        match self {
            Slot::Map(t) => Ok(t),
            other => Err(other.kind()),
        }
    }
    fn map_mut(&mut self) -> Result<&mut Tensor, SlotKind> {
        match self {
            Slot::Map(t) => Ok(t),
            other => Err(other.kind()),
        }
    }
    fn vec(&self) -> Result<&Vec<f32>, SlotKind> {
        match self {
            Slot::Vec(v) => Ok(v),
            other => Err(other.kind()),
        }
    }
    fn vec_mut(&mut self) -> Result<&mut Vec<f32>, SlotKind> {
        match self {
            Slot::Vec(v) => Ok(v),
            other => Err(other.kind()),
        }
    }
    fn packed(&self) -> Result<&PackedMatrix, SlotKind> {
        match self {
            Slot::Packed(p) => Ok(p),
            other => Err(other.kind()),
        }
    }
    fn packed_mut(&mut self) -> Result<&mut PackedMatrix, SlotKind> {
        match self {
            Slot::Packed(p) => Ok(p),
            other => Err(other.kind()),
        }
    }
    /// Approximate buffer size in bytes (for the memory plan).
    fn bytes(&self) -> usize {
        match self {
            Slot::Bit(t) => t.words().len() * 8,
            Slot::Map(t) => t.data().len() * 4,
            Slot::Vec(v) => v.len() * 4,
            Slot::Packed(p) => p.bytes(),
        }
    }
}

/// Logits plus the per-operator wall-clock times of the run that produced
/// them.
pub type ProfiledLogits = (Vec<f32>, Vec<(String, Duration)>);

/// One request inside a coalesced inference batch
/// ([`CompiledModel::try_infer_batch_cancellable`]): the input tensor, the
/// request's own cancel token, and the tag fault hooks see while it runs.
pub struct BatchItem<'a> {
    /// Input image.
    pub input: &'a Tensor,
    /// Cooperative cancellation for this item only.
    pub cancel: &'a CancelToken,
    /// Request tag reported to the installed [`FaultHook`] (use
    /// [`UNTAGGED`] for none).
    pub tag: u64,
    /// Request trace to collect this item's operator spans into (`None`
    /// when tracing is off). Entered via [`enter_trace_scope`] on whatever
    /// rayon worker runs the item.
    pub trace: Option<Arc<TraceBuilder>>,
}

/// Attaches layer context to a slot-kind mismatch, making it a
/// [`BitFlowError::SlotType`].
fn slot_type(layer: &str, expected: SlotKind) -> impl FnOnce(SlotKind) -> BitFlowError + '_ {
    move |actual| {
        BitFlowError::SlotType(SlotTypeError {
            layer: layer.to_string(),
            expected,
            actual,
        })
    }
}

/// The compile-time description of one runtime buffer: the model keeps the
/// *plan* (immutable, shareable), each [`InferenceContext`] allocates the
/// actual [`Slot`]s from it.
#[derive(Clone, Copy, Debug)]
enum SlotSpec {
    /// Pressed activation map of the given padded geometry.
    Bit { h: usize, w: usize, c: usize },
    /// Float scratch map.
    Map { h: usize, w: usize, c: usize },
    /// Float vector.
    Vec { len: usize },
    /// Single-row packed vector of `n` logical bits.
    Packed { n: usize },
}

impl SlotSpec {
    fn allocate(&self) -> Slot {
        match *self {
            SlotSpec::Bit { h, w, c } => Slot::Bit(BitTensor::zeros(h, w, c)),
            SlotSpec::Map { h, w, c } => {
                Slot::Map(Tensor::zeros(Shape::hwc(h, w, c), Layout::Nhwc))
            }
            SlotSpec::Vec { len } => Slot::Vec(vec![0.0f32; len]),
            SlotSpec::Packed { n } => Slot::Packed(PackedMatrix::zeros(1, n)),
        }
    }
}

/// Source of an FC layer's input.
#[derive(Clone, Copy)]
enum FcIn {
    /// Flattened pressed map in the given slot.
    Bit(usize),
    /// Packed vector from a previous FC.
    Packed(usize),
}

/// One compiled runtime operation.
enum RtOp {
    /// Float input map → pressed (padded) input buffer.
    BinarizeInput { out: usize, pad: usize },
    /// Fused PressedConv + integer-threshold sign epilogue → pressed
    /// (padded) output. The `scratch` slot is a `Vec` of `k` floats (one
    /// conv window of dots) — the h·w·k float count map never exists.
    ConvSign {
        name: String,
        bank: BitFilterBank,
        st: SignThresholds,
        stride: usize,
        level: SimdLevel,
        input: usize,
        scratch: usize,
        out: usize,
        out_pad: usize,
    },
    /// Unfused conv: PressedConv → float count map (`BITFLOW_FUSE=0` or a
    /// float-tapped chain). A [`RtOp::BnSign`] consumes the map.
    ConvFloat {
        name: String,
        bank: BitFilterBank,
        stride: usize,
        level: SimdLevel,
        input: usize,
        out: usize,
    },
    /// Standalone folded-BN threshold + sign + pack over a float count map
    /// (the unfused second pass).
    BnSign {
        name: String,
        thresholds: Vec<f32>,
        flip: Vec<bool>,
        input: usize,
        out: usize,
        out_pad: usize,
    },
    /// Binary max-pool → pressed (padded) output.
    Pool {
        name: String,
        kh: usize,
        kw: usize,
        stride: usize,
        level: SimdLevel,
        input: usize,
        out: usize,
        out_pad: usize,
    },
    /// Repack a pressed map into a flat packed vector (flatten with a
    /// non-word-aligned channel count — the rare general path).
    Reflatten { input: usize, out: usize },
    /// Binary FC + folded BN + integer-threshold sign → packed vector.
    FcSign {
        name: String,
        weights: BinaryFcWeights,
        st: SignThresholds,
        level: SimdLevel,
        input: FcIn,
        scratch: usize,
        out: usize,
    },
    /// Final binary FC producing float logits.
    FcOut {
        name: String,
        weights: BinaryFcWeights,
        level: SimdLevel,
        input: FcIn,
        out: usize,
    },
}

impl RtOp {
    fn name(&self) -> &str {
        match self {
            RtOp::BinarizeInput { .. } => "binarize-input",
            RtOp::Reflatten { .. } => "flatten",
            RtOp::ConvSign { name, .. }
            | RtOp::ConvFloat { name, .. }
            | RtOp::BnSign { name, .. }
            | RtOp::Pool { name, .. }
            | RtOp::FcSign { name, .. }
            | RtOp::FcOut { name, .. } => name,
        }
    }
}

/// The immutable compiled binary inference engine: packed weights, folded
/// batch-norm thresholds, per-layer kernel choices, and the activation
/// buffer plan. `Send + Sync` by construction — share one instance across
/// request threads via `Arc`, giving each thread its own
/// [`InferenceContext`].
pub struct CompiledModel {
    spec: NetworkSpec,
    plan: ExecPlan,
    ops: Vec<RtOp>,
    slot_specs: Vec<SlotSpec>,
    logits_slot: usize,
    float_bytes: usize,
    packed_bytes: usize,
    /// Telemetry is opt-in per model: empty until
    /// [`CompiledModel::enable_telemetry`], after which every serving
    /// thread records into the shared handle. The disabled cost is one
    /// `OnceLock::get` pointer check per request.
    telemetry: OnceLock<Arc<ModelTelemetry>>,
    /// Fault-injection hook, empty in production. Same first-caller-wins
    /// `OnceLock` discipline as telemetry.
    fault_hook: OnceLock<FaultHook>,
}

// Compile-enforced: an `Arc<CompiledModel>` must be usable from any thread.
// If a future weight/op representation picks up interior mutability or raw
// pointers without the matching guarantees, this line stops the build.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<CompiledModel>();

/// The mutable half of an inference session: the pre-allocated
/// activation/scratch buffers one in-flight request needs. Cheap to create
/// (a handful of zeroed buffers, no weight work) and tied to the
/// [`CompiledModel`] that produced it — using it with a different model
/// panics on the first geometry mismatch.
pub struct InferenceContext {
    slots: Vec<Slot>,
    /// Use the multi-threaded operator variants (over the installed rayon
    /// pool) for this session. Results are bit-identical either way.
    pub parallel: bool,
}

impl InferenceContext {
    /// Total pre-allocated activation/scratch memory in bytes.
    pub fn activation_bytes(&self) -> usize {
        self.slots.iter().map(Slot::bytes).sum()
    }
}

impl CompiledModel {
    /// Compiles a spec + weights into a ready engine (paper: all
    /// "pre-processions to save run time cost" happen here), reporting
    /// every malformed spec, spec/weight disagreement, or unschedulable
    /// kernel as a typed [`BitFlowError`] instead of panicking. Runs
    /// [`NetworkSpec::validate`] and
    /// [`NetworkWeights::validate_against`] first, so the build below
    /// works on geometry-checked data only.
    pub fn try_compile(spec: &NetworkSpec, weights: &NetworkWeights) -> Result<Self, BitFlowError> {
        Self::try_compile_with(spec, weights, &PlanOptions::from_env())
    }

    /// [`CompiledModel::try_compile`] with explicit [`PlanOptions`] instead
    /// of the environment's — the deterministic entry point for A/B and
    /// differential harnesses (`BITFLOW_FUSE` is process-global; options
    /// are not).
    pub fn try_compile_with(
        spec: &NetworkSpec,
        weights: &NetworkWeights,
        opts: &PlanOptions,
    ) -> Result<Self, BitFlowError> {
        let shapes = spec.validate()?;
        weights.validate_against(spec, &shapes)?;
        let plan = ExecPlan::build(spec, opts);
        let fused: std::collections::BTreeSet<&str> = plan.fused_convs().into_iter().collect();
        let scheduler = VectorScheduler::new();
        let mut ops = Vec::new();
        let mut slot_specs = Vec::new();

        // Input stage: binarize+pack the float input into a buffer padded
        // for the first layer.
        let in_pad = spec.layers[0].input_pad();
        slot_specs.push(SlotSpec::Bit {
            h: spec.input.h + 2 * in_pad,
            w: spec.input.w + 2 * in_pad,
            c: spec.input.c,
        });
        ops.push(RtOp::BinarizeInput {
            out: 0,
            pad: in_pad,
        });
        let mut cur = CurSlot::Bit(0);

        for (i, layer) in spec.layers.iter().enumerate() {
            let out_pad = spec.layers.get(i + 1).map_or(0, LayerSpec::input_pad);
            let (in_h, in_w, in_c) = match if i == 0 {
                LayerIo::Map {
                    h: spec.input.h,
                    w: spec.input.w,
                    c: spec.input.c,
                }
            } else {
                shapes[i - 1]
            } {
                LayerIo::Map { h, w, c } => (h, w, c),
                LayerIo::Vector { n } => (1, 1, n),
            };
            match (layer, &weights.layers[i]) {
                (LayerSpec::Conv { name, k, params }, LayerWeights::Conv { w, fshape, bn }) => {
                    debug_assert_eq!(*fshape, FilterShape::new(*k, params.kh, params.kw, in_c));
                    let bank = BitFilterBank::from_floats(w, *fshape);
                    let fold = bn.fold();
                    let (oh, ow) = match shapes[i] {
                        LayerIo::Map { h, w, .. } => (h, w),
                        _ => unreachable!(),
                    };
                    let level = scheduler.try_select(in_c)?.level;
                    let input = cur.bit_slot();
                    let out = if fused.contains(name.as_str()) {
                        // Fused Conv→BN→Sign: the scratch is one window of
                        // dots (k floats); the sign epilogue compares the
                        // integer dot against the folded threshold and
                        // writes the output already pressed.
                        let st = SignThresholds::from_fold(&fold, params.kh * params.kw * in_c);
                        let scratch = slot_specs.len();
                        slot_specs.push(SlotSpec::Vec { len: *k });
                        let out = slot_specs.len();
                        slot_specs.push(SlotSpec::Bit {
                            h: oh + 2 * out_pad,
                            w: ow + 2 * out_pad,
                            c: *k,
                        });
                        ops.push(RtOp::ConvSign {
                            name: name.clone(),
                            bank,
                            st,
                            stride: params.stride,
                            level,
                            input,
                            scratch,
                            out,
                            out_pad,
                        });
                        out
                    } else {
                        // Unfused reference dataflow: conv → float count
                        // map, then a separate BN+sign pass re-reads it.
                        let counts = slot_specs.len();
                        slot_specs.push(SlotSpec::Map {
                            h: oh,
                            w: ow,
                            c: *k,
                        });
                        let out = slot_specs.len();
                        slot_specs.push(SlotSpec::Bit {
                            h: oh + 2 * out_pad,
                            w: ow + 2 * out_pad,
                            c: *k,
                        });
                        ops.push(RtOp::ConvFloat {
                            name: name.clone(),
                            bank,
                            stride: params.stride,
                            level,
                            input,
                            out: counts,
                        });
                        ops.push(RtOp::BnSign {
                            name: format!("{name}:bnsign"),
                            thresholds: fold.thresholds,
                            flip: fold.flip,
                            input: counts,
                            out,
                            out_pad,
                        });
                        out
                    };
                    cur = CurSlot::Bit(out);
                }
                (LayerSpec::Pool { name, params }, LayerWeights::Pool) => {
                    let (oh, ow, oc) = match shapes[i] {
                        LayerIo::Map { h, w, c } => (h, w, c),
                        _ => unreachable!(),
                    };
                    let _ = (in_h, in_w);
                    let out = slot_specs.len();
                    slot_specs.push(SlotSpec::Bit {
                        h: oh + 2 * out_pad,
                        w: ow + 2 * out_pad,
                        c: oc,
                    });
                    ops.push(RtOp::Pool {
                        name: name.clone(),
                        kh: params.kh,
                        kw: params.kw,
                        stride: params.stride,
                        level: scheduler.try_select(in_c)?.level,
                        input: cur.bit_slot(),
                        out,
                        out_pad,
                    });
                    cur = CurSlot::Bit(out);
                }
                (LayerSpec::Fc { name, k }, LayerWeights::Fc { w, n, k: wk, bn }) => {
                    debug_assert_eq!(k, wk, "fc width mismatch");
                    let fc_in = match cur {
                        CurSlot::Bit(slot) => {
                            let (bh, bw, bc) = match slot_specs[slot] {
                                SlotSpec::Bit { h, w, c } => (h, w, c),
                                _ => unreachable!("FC input slot is pressed"),
                            };
                            // Direct flatten works when pixels are
                            // word-tight (no press-tail gaps between
                            // pixels) and the buffer carries no padding.
                            let tight = bc % 64 == 0 || (bh == 1 && bw == 1);
                            debug_assert_eq!(bh * bw * bc, *n, "flatten width");
                            if tight {
                                FcIn::Bit(slot)
                            } else {
                                let flat = slot_specs.len();
                                slot_specs.push(SlotSpec::Packed { n: *n });
                                ops.push(RtOp::Reflatten {
                                    input: slot,
                                    out: flat,
                                });
                                FcIn::Packed(flat)
                            }
                        }
                        CurSlot::Packed(slot) => FcIn::Packed(slot),
                    };
                    let weights_packed = BinaryFcWeights::pack(w, *n, *k);
                    let level = scheduler.streaming_level();
                    let is_last = i + 1 == spec.layers.len();
                    if is_last {
                        let out = slot_specs.len();
                        slot_specs.push(SlotSpec::Vec { len: *k });
                        ops.push(RtOp::FcOut {
                            name: name.clone(),
                            weights: weights_packed,
                            level,
                            input: fc_in,
                            out,
                        });
                        cur = CurSlot::Packed(usize::MAX); // terminal
                    } else {
                        // The FC dots are integer-valued (n − 2·popcount),
                        // so the same popcount-domain epilogue applies with
                        // window width n.
                        let st = SignThresholds::from_fold(&bn.fold(), *n);
                        let scratch = slot_specs.len();
                        slot_specs.push(SlotSpec::Vec { len: *k });
                        let out = slot_specs.len();
                        slot_specs.push(SlotSpec::Packed { n: *k });
                        ops.push(RtOp::FcSign {
                            name: name.clone(),
                            weights: weights_packed,
                            st,
                            level,
                            input: fc_in,
                            scratch,
                            out,
                        });
                        cur = CurSlot::Packed(out);
                    }
                }
                // validate_against() already rejected kind disagreements.
                (l, _) => unreachable!("spec/weights mismatch at layer {}", l.name()),
            }
        }

        let logits_slot = slot_specs.len() - 1;
        Ok(Self {
            spec: spec.clone(),
            plan,
            ops,
            slot_specs,
            logits_slot,
            float_bytes: weights.float_bytes(),
            packed_bytes: weights.packed_bytes(),
            telemetry: OnceLock::new(),
            fault_hook: OnceLock::new(),
        })
    }

    /// Compiles a spec + weights into a ready engine (panicking wrapper
    /// over [`CompiledModel::try_compile`] for trusted callers).
    ///
    /// # Panics
    /// On any [`BitFlowError`] `try_compile` would report: malformed spec,
    /// spec/weight disagreement, unschedulable kernel geometry.
    pub fn compile(spec: &NetworkSpec, weights: &NetworkWeights) -> Self {
        match Self::try_compile(spec, weights) {
            Ok(model) => model,
            Err(e) => panic!("{e}"),
        }
    }

    /// The execution plan this engine compiled to — introspection for
    /// tests and tools asserting exactly which Conv→BN→Sign chains fused.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// Names of convs whose sign epilogue fused, in execution order.
    pub fn fused_conv_names(&self) -> Vec<&str> {
        self.plan.fused_convs()
    }

    /// Allocates a fresh inference session: every activation/scratch buffer
    /// the plan describes, zeroed. One context per concurrent request.
    pub fn new_context(&self) -> InferenceContext {
        InferenceContext {
            slots: self.slot_specs.iter().map(SlotSpec::allocate).collect(),
            parallel: false,
        }
    }

    /// Fallible variant of [`CompiledModel::new_context`]: probes the
    /// allocator with `try_reserve` for every buffer the plan describes
    /// before materialising it, so a context the machine cannot afford
    /// comes back as [`BitFlowError::ResourceExhausted`] instead of an
    /// allocator abort. The probe is freed before the real allocation, so
    /// the transient overhead is one slot's bytes.
    pub fn try_new_context(&self) -> Result<InferenceContext, BitFlowError> {
        let mut slots: Vec<Slot> = Vec::new();
        slots
            .try_reserve_exact(self.slot_specs.len())
            .map_err(|_| BitFlowError::ResourceExhausted {
                what: "inference context",
                bytes: (self.slot_specs.len() * std::mem::size_of::<Slot>()) as u64,
            })?;
        for spec in &self.slot_specs {
            let bytes = slot_bytes(spec);
            let mut probe: Vec<u8> = Vec::new();
            probe
                .try_reserve_exact(bytes)
                .map_err(|_| BitFlowError::ResourceExhausted {
                    what: "inference context",
                    bytes: bytes as u64,
                })?;
            drop(probe);
            slots.push(spec.allocate());
        }
        Ok(InferenceContext {
            slots,
            parallel: false,
        })
    }

    /// The spec this engine was compiled from.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Float model size in bytes (what a full-precision network ships).
    pub fn float_model_bytes(&self) -> usize {
        self.float_bytes
    }

    /// Packed model size in bytes (what this engine holds) — Table V.
    pub fn packed_model_bytes(&self) -> usize {
        self.packed_bytes
    }

    /// Activation/scratch bytes each [`InferenceContext`] pre-allocates.
    pub fn context_bytes(&self) -> usize {
        // Planned sizes equal allocated sizes; summing a throwaway context
        // keeps one source of truth for the byte accounting.
        self.new_context().activation_bytes()
    }

    /// Enables per-operator telemetry with the default no-op span sink
    /// (metrics on, request tracing off) and returns the shared handle.
    /// Idempotent: once enabled, later calls return the existing handle.
    pub fn enable_telemetry(&self) -> Arc<ModelTelemetry> {
        self.telemetry
            .get_or_init(|| Arc::new(ModelTelemetry::new(&self.spec.name, self.op_descriptors())))
            .clone()
    }

    /// Enables telemetry with an explicit span sink. If telemetry was
    /// already enabled the existing handle is returned and `sink` is
    /// dropped — the first caller wins.
    pub fn enable_telemetry_with_sink(&self, sink: Box<dyn SpanSink>) -> Arc<ModelTelemetry> {
        self.telemetry
            .get_or_init(|| {
                Arc::new(ModelTelemetry::with_sink(
                    &self.spec.name,
                    self.op_descriptors(),
                    sink,
                ))
            })
            .clone()
    }

    /// The telemetry handle, if [`CompiledModel::enable_telemetry`] ran.
    pub fn telemetry(&self) -> Option<&Arc<ModelTelemetry>> {
        self.telemetry.get()
    }

    /// Point-in-time copy of every telemetry counter, or `None` while
    /// telemetry is disabled.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.telemetry.get().map(|t| t.snapshot())
    }

    /// Builds the static per-operator cost model: for each runtime op, how
    /// many effective xor+popcount bit-operations one call performs, how
    /// many bytes it moves, and (for GEMM-backed ops) the bgemm tile shape.
    /// Pure geometry — computed once here so the serving hot path records
    /// nothing but latency. Public so roofline/regression gates can compare
    /// fused vs. unfused bytes-moved without enabling telemetry.
    pub fn op_descriptors(&self) -> Vec<OpDescriptor> {
        self.ops
            .iter()
            .map(|op| {
                let (kind, cost) = match op {
                    RtOp::BinarizeInput { out, .. } => (
                        OpKind::Binarize,
                        OpCost {
                            bit_ops: 0,
                            bytes_read: (self.spec.input.numel() * 4) as u64,
                            bytes_written: slot_bytes(&self.slot_specs[*out]) as u64,
                            tile: None,
                        },
                    ),
                    RtOp::ConvSign {
                        bank,
                        input,
                        out,
                        out_pad,
                        ..
                    } => {
                        let f = bank.shape();
                        let cw = bank.c_words();
                        let (oh, ow) = match self.slot_specs[*out] {
                            SlotSpec::Bit { h, w, .. } => (h - 2 * out_pad, w - 2 * out_pad),
                            _ => (0, 0),
                        };
                        // One output element = one binary dot over the
                        // kh·kw window of pressed words; every evaluated
                        // bit position costs one xor + one
                        // popcount-accumulate.
                        let window_bits = (f.kh * f.kw * cw * 64) as u64;
                        (
                            OpKind::Conv,
                            OpCost {
                                bit_ops: 2 * (oh * ow * f.k) as u64 * window_bits,
                                bytes_read: (slot_bytes(&self.slot_specs[*input])
                                    + f.k * f.kh * f.kw * cw * 8)
                                    as u64,
                                bytes_written: slot_bytes(&self.slot_specs[*out]) as u64,
                                tile: None,
                            },
                        )
                    }
                    RtOp::ConvFloat {
                        bank, input, out, ..
                    } => {
                        let f = bank.shape();
                        let cw = bank.c_words();
                        let (oh, ow) = match self.slot_specs[*out] {
                            SlotSpec::Map { h, w, .. } => (h, w),
                            _ => (0, 0),
                        };
                        let window_bits = (f.kh * f.kw * cw * 64) as u64;
                        (
                            OpKind::Conv,
                            OpCost {
                                bit_ops: 2 * (oh * ow * f.k) as u64 * window_bits,
                                bytes_read: (slot_bytes(&self.slot_specs[*input])
                                    + f.k * f.kh * f.kw * cw * 8)
                                    as u64,
                                // The float count map the fused epilogue
                                // never materializes.
                                bytes_written: slot_bytes(&self.slot_specs[*out]) as u64,
                                tile: None,
                            },
                        )
                    }
                    RtOp::BnSign { input, out, .. } => (
                        OpKind::Binarize,
                        OpCost {
                            bit_ops: 0,
                            bytes_read: slot_bytes(&self.slot_specs[*input]) as u64,
                            bytes_written: slot_bytes(&self.slot_specs[*out]) as u64,
                            tile: None,
                        },
                    ),
                    RtOp::Pool { input, out, .. } => (
                        OpKind::Pool,
                        OpCost {
                            bit_ops: 0,
                            bytes_read: slot_bytes(&self.slot_specs[*input]) as u64,
                            bytes_written: slot_bytes(&self.slot_specs[*out]) as u64,
                            tile: None,
                        },
                    ),
                    RtOp::Reflatten { input, out } => (
                        OpKind::Flatten,
                        OpCost {
                            bit_ops: 0,
                            bytes_read: slot_bytes(&self.slot_specs[*input]) as u64,
                            bytes_written: slot_bytes(&self.slot_specs[*out]) as u64,
                            tile: None,
                        },
                    ),
                    RtOp::FcSign { weights, out, .. } => (
                        OpKind::Fc,
                        (fc_cost(weights, Some(slot_bytes(&self.slot_specs[*out])))),
                    ),
                    RtOp::FcOut { weights, .. } => (OpKind::FcOut, fc_cost(weights, None)),
                };
                OpDescriptor {
                    name: op.name().to_string(),
                    kind,
                    cost,
                }
            })
            .collect()
    }

    /// Checks one inference request against this model: input geometry,
    /// finiteness, and context provenance. Everything [`Self::try_infer`]
    /// needs to guarantee the operator chain below cannot fault.
    fn check_request(&self, ctx: &InferenceContext, input: &Tensor) -> Result<(), InputGeometry> {
        if input.shape() != self.spec.input {
            return Err(InputGeometry::ShapeMismatch {
                expected: self.spec.input,
                actual: input.shape(),
            });
        }
        if let Some(index) = input.data().iter().position(|x| !x.is_finite()) {
            return Err(InputGeometry::NonFinite { index });
        }
        if ctx.slots.len() != self.slot_specs.len() {
            return Err(InputGeometry::ContextMismatch {
                expected: self.slot_specs.len(),
                actual: ctx.slots.len(),
            });
        }
        Ok(())
    }

    /// Runs inference in `ctx`; returns the logits. Allocation-free apart
    /// from the returned logits vector. Malformed requests (wrong input
    /// shape, NaN/Inf values, a context from a different model) come back
    /// as typed errors before any operator runs.
    pub fn try_infer(
        &self,
        ctx: &mut InferenceContext,
        input: &Tensor,
    ) -> Result<Vec<f32>, BitFlowError> {
        self.try_infer_cancellable(ctx, input, &CancelToken::none())
    }

    /// [`CompiledModel::try_infer`] with a cooperative [`CancelToken`],
    /// checked at every operator boundary: a cancelled token surfaces as
    /// [`BitFlowError::Cancelled`], a passed deadline as
    /// [`BitFlowError::DeadlineExceeded`]. Abandoning a run between
    /// operators does not poison `ctx` — every operator fully overwrites
    /// its output interior and padding margins are never written, so the
    /// next complete run through the same context stays bit-identical to a
    /// fresh one.
    pub fn try_infer_cancellable(
        &self,
        ctx: &mut InferenceContext,
        input: &Tensor,
        cancel: &CancelToken,
    ) -> Result<Vec<f32>, BitFlowError> {
        self.check_request(ctx, input)?;
        match self.telemetry.get() {
            None => match current_trace() {
                None => {
                    for i in 0..self.ops.len() {
                        cancel.check()?;
                        self.run_op(&mut ctx.slots, ctx.parallel, i, input)?;
                    }
                }
                Some(tb) => {
                    for i in 0..self.ops.len() {
                        cancel.check()?;
                        let start_ns = tb.now_ns();
                        let t0 = Instant::now();
                        self.run_op(&mut ctx.slots, ctx.parallel, i, input)?;
                        tb.push_op(OpSpan {
                            op_index: i as u64,
                            name: self.ops[i].name().to_string(),
                            start_ns,
                            duration_ns: t0.elapsed().as_nanos() as u64,
                        });
                    }
                }
            },
            Some(t) => self.run_ops_recorded(t, ctx, input, cancel)?,
        }
        Ok(ctx.slots[self.logits_slot]
            .vec()
            .map_err(slot_type("logits", SlotKind::Vec))?
            .clone())
    }

    /// The telemetry-enabled operator loop: identical op sequence to the
    /// plain loop, plus one `Instant` pair and a few relaxed atomics per
    /// op. A [`RequestTrace`] is built only when the sink asks for traces,
    /// keeping the metrics-only path allocation-free.
    ///
    /// The whole loop runs inside [`ModelTelemetry::perf_request_scope`],
    /// so when hardware counters are available the request's cycles,
    /// instructions, and cache/branch misses accumulate into the model's
    /// perf totals; when they are not, the scope is one relaxed load.
    fn run_ops_recorded(
        &self,
        t: &ModelTelemetry,
        ctx: &mut InferenceContext,
        input: &Tensor,
        cancel: &CancelToken,
    ) -> Result<(), BitFlowError> {
        let request_id = t.next_request_id();
        let trace = current_trace();
        let sink_tracing = t.tracing_enabled();
        let tracing = sink_tracing || trace.is_some();
        let mut spans = Vec::new();
        let t_request = Instant::now();
        t.perf_request_scope(|| -> Result<(), BitFlowError> {
            for i in 0..self.ops.len() {
                cancel.check()?;
                let t0 = Instant::now();
                self.run_op(&mut ctx.slots, ctx.parallel, i, input)?;
                let ns = t0.elapsed().as_nanos() as u64;
                t.record_op(i, ns);
                if tracing {
                    spans.push(OpSpan {
                        op_index: i as u64,
                        name: self.ops[i].name().to_string(),
                        start_ns: t0.saturating_duration_since(t_request).as_nanos() as u64,
                        duration_ns: ns,
                    });
                }
            }
            Ok(())
        })?;
        let total_ns = t_request.elapsed().as_nanos() as u64;
        if let Some(tb) = &trace {
            // Re-base the op spans from this request's start onto the
            // trace's own origin (the connection accept / enqueue time).
            let base = tb.offset_ns(t_request);
            for s in &spans {
                tb.push_op(OpSpan {
                    start_ns: base.saturating_add(s.start_ns),
                    ..s.clone()
                });
            }
        }
        if sink_tracing {
            t.record_request(&RequestTrace::new(request_id, total_ns, spans));
        }
        Ok(())
    }

    /// Runs inference in `ctx`; returns the logits (panicking wrapper over
    /// [`CompiledModel::try_infer`]).
    ///
    /// # Panics
    /// On a malformed request (see [`crate::error::InputGeometry`]).
    pub fn infer(&self, ctx: &mut InferenceContext, input: &Tensor) -> Vec<f32> {
        match self.try_infer(ctx, input) {
            Ok(logits) => logits,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs inference with per-operator wall-clock timing, with the same
    /// error contract as [`CompiledModel::try_infer`].
    pub fn try_infer_profiled(
        &self,
        ctx: &mut InferenceContext,
        input: &Tensor,
    ) -> Result<ProfiledLogits, BitFlowError> {
        self.try_infer_profiled_cancellable(ctx, input, &CancelToken::none())
    }

    /// [`CompiledModel::try_infer_profiled`] with a cooperative
    /// [`CancelToken`] checked at every operator boundary (same contract
    /// as [`CompiledModel::try_infer_cancellable`]).
    pub fn try_infer_profiled_cancellable(
        &self,
        ctx: &mut InferenceContext,
        input: &Tensor,
        cancel: &CancelToken,
    ) -> Result<ProfiledLogits, BitFlowError> {
        self.check_request(ctx, input)?;
        let mut times = Vec::with_capacity(self.ops.len());
        for i in 0..self.ops.len() {
            cancel.check()?;
            let t0 = Instant::now();
            self.run_op(&mut ctx.slots, ctx.parallel, i, input)?;
            times.push((self.ops[i].name().to_string(), t0.elapsed()));
        }
        let logits = ctx.slots[self.logits_slot]
            .vec()
            .map_err(slot_type("logits", SlotKind::Vec))?
            .clone();
        Ok((logits, times))
    }

    /// Runs inference with per-operator wall-clock timing (panicking
    /// wrapper over [`CompiledModel::try_infer_profiled`]).
    ///
    /// # Panics
    /// On a malformed request.
    pub fn infer_profiled(
        &self,
        ctx: &mut InferenceContext,
        input: &Tensor,
    ) -> (Vec<f32>, Vec<(String, Duration)>) {
        match self.try_infer_profiled(ctx, input) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs a batch of images over the installed rayon pool with
    /// per-item results: the batch is split into contiguous chunks, each
    /// worker chunk gets its own [`InferenceContext`], and every image runs
    /// the serial operator path inside its worker.
    ///
    /// **Graceful degradation:** a malformed item (wrong shape, NaN) yields
    /// its own `Err` without poisoning the rest of the batch — every other
    /// item's logits are bit-identical to running it through
    /// [`CompiledModel::try_infer`] serially. As a backstop, a panic inside
    /// a worker is caught (`catch_unwind`), reported as
    /// [`BitFlowError::Internal`] for that item only, and the worker's
    /// session buffers are replaced before the next item runs.
    pub fn try_infer_batch(&self, inputs: &[Tensor]) -> Vec<Result<Vec<f32>, BitFlowError>> {
        use rayon::prelude::*;
        if inputs.is_empty() {
            return Vec::new();
        }
        let threads = rayon::current_num_threads().max(1);
        let chunk = inputs.len().div_ceil(threads).max(1);
        let telemetry = self.telemetry.get();
        if let Some(t) = telemetry {
            t.batch()
                .batch_started(inputs.len() as u64, inputs.len().div_ceil(chunk) as u64);
        }
        let mut out: Vec<Result<Vec<f32>, BitFlowError>> = Vec::with_capacity(inputs.len());
        out.resize_with(inputs.len(), || {
            Err(BitFlowError::Internal("item not reached".into()))
        });
        out.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(ci, outs)| {
                let mut ctx = self.new_context();
                for (j, o) in outs.iter_mut().enumerate() {
                    let input = &inputs[ci * chunk + j];
                    let result = self.catch_fault(|| self.try_infer(&mut ctx, input));
                    if matches!(result, Err(BitFlowError::Internal(_))) {
                        // A panic may have left the session buffers
                        // partially written — replace them so later
                        // items stay bit-identical to serial runs.
                        ctx = self.new_context();
                    }
                    *o = result;
                    if let Some(t) = telemetry {
                        t.batch().item_finished(o.is_ok());
                    }
                }
            });
        out
    }

    /// [`CompiledModel::try_infer_batch`] for serving: each item carries
    /// its own [`CancelToken`] (checked at every operator boundary) and a
    /// request tag that reaches the installed [`FaultHook`] on whatever
    /// rayon worker runs the item — so per-request chaos decisions and
    /// cancellations keep working when requests are coalesced into a
    /// batch. Per-item results, same graceful degradation and bit-exact
    /// guarantees as `try_infer_batch`.
    pub fn try_infer_batch_cancellable(
        &self,
        items: &[BatchItem<'_>],
    ) -> Vec<Result<Vec<f32>, BitFlowError>> {
        use rayon::prelude::*;
        if items.is_empty() {
            return Vec::new();
        }
        let threads = rayon::current_num_threads().max(1);
        let chunk = items.len().div_ceil(threads).max(1);
        let telemetry = self.telemetry.get();
        if let Some(t) = telemetry {
            t.batch()
                .batch_started(items.len() as u64, items.len().div_ceil(chunk) as u64);
        }
        let mut out: Vec<Result<Vec<f32>, BitFlowError>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || {
            Err(BitFlowError::Internal("item not reached".into()))
        });
        out.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(ci, outs)| {
                let mut ctx = self.new_context();
                for (j, o) in outs.iter_mut().enumerate() {
                    let item = &items[ci * chunk + j];
                    let result = self.catch_fault(|| {
                        // Guards inside the catch: a panicking hook unwinds
                        // through the guards' Drops, restoring the tag and
                        // trace before the next item runs on this worker.
                        let _tag = enter_infer_tag(item.tag);
                        let _trace = item
                            .trace
                            .as_ref()
                            .map(|tb| enter_trace_scope(Arc::clone(tb)));
                        self.try_infer_cancellable(&mut ctx, item.input, item.cancel)
                    });
                    if matches!(result, Err(BitFlowError::Internal(_))) {
                        ctx = self.new_context();
                    }
                    *o = result;
                    if let Some(t) = telemetry {
                        t.batch().item_finished(o.is_ok());
                    }
                }
            });
        out
    }

    /// Runs `f`, converting any panic into a typed
    /// [`BitFlowError::Internal`] whose message names the operator that
    /// was executing when the panic unwound (tracked in a thread-local the
    /// operator dispatch maintains). The backstop behind
    /// [`CompiledModel::try_infer_batch`] and the `bitflow-serve` workers.
    ///
    /// After a caught panic the [`InferenceContext`] that was running may
    /// hold partially-written buffers; replace it (cheap — a handful of
    /// zeroed allocations) before reusing it for bit-exact results.
    pub fn catch_fault<R>(
        &self,
        f: impl FnOnce() -> Result<R, BitFlowError>,
    ) -> Result<R, BitFlowError> {
        CURRENT_OP.with(|c| c.set(usize::MAX));
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(result) => result,
            Err(payload) => {
                // `&*payload`, not `&payload`: the latter would unsize the
                // `Box` itself into the `dyn Any` and every downcast of
                // the actual message would miss.
                let msg = panic_message(&*payload);
                let ctxd = match CURRENT_OP.with(Cell::get) {
                    usize::MAX => msg,
                    i => match self.ops.get(i) {
                        Some(op) => format!("operator `{}` (#{i}): {msg}", op.name()),
                        None => msg,
                    },
                };
                CURRENT_OP.with(|c| c.set(usize::MAX));
                Err(BitFlowError::Internal(ctxd))
            }
        }
    }

    /// Installs a [`FaultHook`] called at every operator boundary (chaos
    /// injection: the hook may sleep or panic). First caller wins, like
    /// [`CompiledModel::enable_telemetry`]; returns `false` when a hook
    /// was already installed. Disabled cost is one `OnceLock::get` per
    /// operator.
    pub fn install_fault_hook(&self, hook: FaultHook) -> bool {
        self.fault_hook.set(hook).is_ok()
    }

    /// Whether a fault hook is installed.
    pub fn fault_hook_installed(&self) -> bool {
        self.fault_hook.get().is_some()
    }

    /// Runs a batch of images over the installed rayon pool (panicking
    /// wrapper over [`CompiledModel::try_infer_batch`]). Images are
    /// independent, so the output is bit-identical to calling
    /// [`CompiledModel::infer`] on each input in order with a single
    /// context.
    ///
    /// # Panics
    /// If any item is a malformed request.
    pub fn infer_batch(&self, inputs: &[Tensor]) -> Vec<Vec<f32>> {
        self.try_infer_batch(inputs)
            .into_iter()
            .map(|r| match r {
                Ok(logits) => logits,
                Err(e) => panic!("{e}"),
            })
            .collect()
    }

    fn run_op(
        &self,
        slots: &mut [Slot],
        parallel: bool,
        i: usize,
        input: &Tensor,
    ) -> Result<(), BitFlowError> {
        let op_name = self.ops[i].name();
        // Record which operator this thread is in, so the catch_unwind
        // backstops can name it if a panic unwinds out of the kernels.
        CURRENT_OP.with(|c| c.set(i));
        if let Some(hook) = self.fault_hook.get() {
            hook(i, op_name, CURRENT_TAG.with(Cell::get));
        }
        match &self.ops[i] {
            RtOp::BinarizeInput { out, pad } => {
                binarize_pack_into(
                    input,
                    slots[*out]
                        .bit_mut()
                        .map_err(slot_type(op_name, SlotKind::Bit))?,
                    *pad,
                );
            }
            RtOp::ConvSign {
                bank,
                st,
                stride,
                level,
                input: in_slot,
                scratch,
                out,
                out_pad,
                ..
            } => {
                if parallel {
                    // Fused conv + integer sign epilogue, padded output
                    // rows over the installed rayon pool (each worker
                    // carries its own window of dots).
                    let (inp, dst) = two_slots(slots, *in_slot, *out);
                    pressed_conv_sign_parallel_into(
                        *level,
                        inp.bit().map_err(slot_type(op_name, SlotKind::Bit))?,
                        bank,
                        *stride,
                        st,
                        dst.bit_mut().map_err(slot_type(op_name, SlotKind::Bit))?,
                        *out_pad,
                    );
                } else {
                    // Fused single pass (conv + integer threshold + sign +
                    // pack), borrowing the layer's k-float scratch vector
                    // as the per-window dot buffer so the request
                    // allocates nothing.
                    let (inp, scr, dst) = three_slots(slots, *in_slot, *scratch, *out);
                    let dots = scr.vec_mut().map_err(slot_type(op_name, SlotKind::Vec))?;
                    pressed_conv_sign_scratch_into(
                        *level,
                        inp.bit().map_err(slot_type(op_name, SlotKind::Bit))?,
                        bank,
                        *stride,
                        st,
                        dots,
                        dst.bit_mut().map_err(slot_type(op_name, SlotKind::Bit))?,
                        *out_pad,
                    );
                }
            }
            RtOp::ConvFloat {
                bank,
                stride,
                level,
                input: in_slot,
                out,
                ..
            } => {
                let (inp, dst) = two_slots(slots, *in_slot, *out);
                let input = inp.bit().map_err(slot_type(op_name, SlotKind::Bit))?;
                let counts = dst.map_mut().map_err(slot_type(op_name, SlotKind::Map))?;
                if parallel {
                    pressed_conv_parallel_into(*level, input, bank, *stride, counts);
                } else {
                    pressed_conv_into(*level, input, bank, *stride, counts);
                }
            }
            RtOp::BnSign {
                thresholds,
                flip,
                input: in_slot,
                out,
                out_pad,
                ..
            } => {
                let (src, dst) = two_slots(slots, *in_slot, *out);
                binarize_threshold_into(
                    src.map().map_err(slot_type(op_name, SlotKind::Map))?,
                    thresholds,
                    flip,
                    dst.bit_mut().map_err(slot_type(op_name, SlotKind::Bit))?,
                    *out_pad,
                );
            }
            RtOp::Pool {
                kh,
                kw,
                stride,
                level,
                input: in_slot,
                out,
                out_pad,
                ..
            } => {
                let (inp, dst) = two_slots(slots, *in_slot, *out);
                binary_max_pool_into(
                    *level,
                    inp.bit().map_err(slot_type(op_name, SlotKind::Bit))?,
                    *kh,
                    *kw,
                    *stride,
                    dst.bit_mut().map_err(slot_type(op_name, SlotKind::Bit))?,
                    *out_pad,
                );
            }
            RtOp::Reflatten {
                input: in_slot,
                out,
            } => {
                let (inp, dst) = two_slots(slots, *in_slot, *out);
                reflatten(
                    inp.bit().map_err(slot_type(op_name, SlotKind::Bit))?,
                    dst.packed_mut()
                        .map_err(slot_type(op_name, SlotKind::Packed))?,
                );
            }
            RtOp::FcSign {
                weights,
                st,
                level,
                input: fc_in,
                scratch,
                out,
                ..
            } => {
                run_fc_into(op_name, slots, *fc_in, weights, *level, *scratch, parallel)?;
                let (scr, dst) = two_slots(slots, *scratch, *out);
                let packed = dst
                    .packed_mut()
                    .map_err(slot_type(op_name, SlotKind::Packed))?;
                pack_signed_dots_into(
                    scr.vec().map_err(slot_type(op_name, SlotKind::Vec))?,
                    st,
                    packed.row_mut(0),
                );
            }
            RtOp::FcOut {
                weights,
                level,
                input: fc_in,
                out,
                ..
            } => {
                run_fc_into(op_name, slots, *fc_in, weights, *level, *out, parallel)?;
            }
        }
        Ok(())
    }
}

/// Single-session convenience engine: one [`CompiledModel`] plus one
/// [`InferenceContext`], presenting the original owned `compile`/`infer`
/// API. For concurrent serving, use [`Network::into_model`] (or compile a
/// [`CompiledModel`] directly), wrap it in an `Arc`, and give each thread
/// its own context.
pub struct Network {
    model: CompiledModel,
    ctx: InferenceContext,
    /// Use the multi-threaded operator variants (over the installed rayon
    /// pool). Results are bit-identical either way.
    pub parallel: bool,
}

impl Network {
    /// Compiles a spec + weights into a ready single-session engine.
    ///
    /// # Panics
    /// See [`CompiledModel::compile`].
    pub fn compile(spec: &NetworkSpec, weights: &NetworkWeights) -> Self {
        let model = CompiledModel::compile(spec, weights);
        let ctx = model.new_context();
        Self {
            model,
            ctx,
            parallel: false,
        }
    }

    /// Fallible variant of [`Network::compile`]: validates the spec and
    /// the spec/weight agreement, returning a typed error instead of
    /// panicking.
    pub fn try_compile(spec: &NetworkSpec, weights: &NetworkWeights) -> Result<Self, BitFlowError> {
        let model = CompiledModel::try_compile(spec, weights)?;
        let ctx = model.new_context();
        Ok(Self {
            model,
            ctx,
            parallel: false,
        })
    }

    /// The shared, immutable half of this engine.
    pub fn model(&self) -> &CompiledModel {
        &self.model
    }

    /// Extracts the compiled model (dropping this session's buffers), e.g.
    /// to wrap it in an `Arc` for concurrent serving.
    pub fn into_model(self) -> CompiledModel {
        self.model
    }

    /// The spec this engine was compiled from.
    pub fn spec(&self) -> &NetworkSpec {
        self.model.spec()
    }

    /// Float model size in bytes (what a full-precision network ships).
    pub fn float_model_bytes(&self) -> usize {
        self.model.float_model_bytes()
    }

    /// Packed model size in bytes (what this engine holds) — Table V.
    pub fn packed_model_bytes(&self) -> usize {
        self.model.packed_model_bytes()
    }

    /// Total pre-allocated activation/scratch memory in bytes.
    pub fn activation_bytes(&self) -> usize {
        self.ctx.activation_bytes()
    }

    /// Runs inference; returns the logits. Allocation-free after compile.
    pub fn infer(&mut self, input: &Tensor) -> Vec<f32> {
        self.ctx.parallel = self.parallel;
        self.model.infer(&mut self.ctx, input)
    }

    /// Fallible variant of [`Network::infer`]: malformed requests come
    /// back as a typed [`BitFlowError`] instead of a panic.
    pub fn try_infer(&mut self, input: &Tensor) -> Result<Vec<f32>, BitFlowError> {
        self.ctx.parallel = self.parallel;
        self.model.try_infer(&mut self.ctx, input)
    }

    /// Runs inference with per-operator wall-clock timing.
    pub fn infer_profiled(&mut self, input: &Tensor) -> (Vec<f32>, Vec<(String, Duration)>) {
        self.ctx.parallel = self.parallel;
        self.model.infer_profiled(&mut self.ctx, input)
    }
}

/// Tracks which slot holds the live activation during compilation.
enum CurSlot {
    Bit(usize),
    Packed(usize),
}

impl CurSlot {
    fn bit_slot(&self) -> usize {
        match self {
            CurSlot::Bit(s) => *s,
            CurSlot::Packed(_) => panic!("spatial layer after FC"),
        }
    }
}

/// Planned size of a slot in bytes, mirroring [`SlotSpec::allocate`]'s
/// layout arithmetic without allocating.
fn slot_bytes(spec: &SlotSpec) -> usize {
    match *spec {
        SlotSpec::Bit { h, w, c } => h * w * c.div_ceil(64) * 8,
        SlotSpec::Map { h, w, c } => h * w * c * 4,
        SlotSpec::Vec { len } => len * 4,
        SlotSpec::Packed { n } => n.div_ceil(64) * 8,
    }
}

/// Static cost of one binary FC call: a 1×K bgemm reducing over N bits.
/// `packed_out_bytes` is the extra packed-activation write of the
/// sign-repack stage (FcSign only).
fn fc_cost(weights: &BinaryFcWeights, packed_out_bytes: Option<usize>) -> OpCost {
    let n_words = weights.n.div_ceil(64);
    let g = bitflow_gemm::tile_stats(1, weights.n, weights.k);
    OpCost {
        // Every output neuron evaluates n_words·64 bit positions, one xor +
        // one popcount-accumulate each.
        bit_ops: 2 * (weights.k * n_words * 64) as u64,
        bytes_read: ((1 + weights.k) * n_words * 8) as u64,
        bytes_written: (weights.k * 4 + packed_out_bytes.unwrap_or(0)) as u64,
        tile: Some(TileStats {
            m: g.m,
            k: g.k,
            n_words: g.n_words,
            quads: g.quads,
            tail: g.tail,
            par_k_chunk: g.par_k_chunk,
        }),
    }
}

/// Three distinct mutable slot borrows.
fn three_slots(
    slots: &mut [Slot],
    a: usize,
    b: usize,
    c: usize,
) -> (&mut Slot, &mut Slot, &mut Slot) {
    assert!(a != b && b != c && a != c, "aliasing slots");
    // Resolve via raw pointers after the distinctness check; a sort-based
    // split_at_mut chain over three arbitrary indices is strictly worse to
    // read and no safer.
    let base = slots.as_mut_ptr();
    assert!(a < slots.len() && b < slots.len() && c < slots.len());
    unsafe { (&mut *base.add(a), &mut *base.add(b), &mut *base.add(c)) }
}

/// Two distinct mutable slot borrows.
fn two_slots(slots: &mut [Slot], a: usize, b: usize) -> (&mut Slot, &mut Slot) {
    assert_ne!(a, b, "aliasing slots");
    if a < b {
        let (lo, hi) = slots.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = slots.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Runs the binary FC matmul allocation-free, reading from either a
/// flattened pressed map (whose word array, for word-tight channel counts,
/// *is* the packed activation vector) or a packed vector, writing the K dot
/// products into the vec slot `out`.
fn run_fc_into(
    op_name: &str,
    slots: &mut [Slot],
    fc_in: FcIn,
    weights: &BinaryFcWeights,
    level: SimdLevel,
    out: usize,
    parallel: bool,
) -> Result<(), BitFlowError> {
    let in_slot = match fc_in {
        FcIn::Bit(s) | FcIn::Packed(s) => s,
    };
    let (inp, dst) = two_slots(slots, in_slot, out);
    let words: &[u64] = match fc_in {
        FcIn::Bit(_) => inp
            .bit()
            .map_err(slot_type(op_name, SlotKind::Bit))?
            .words(),
        FcIn::Packed(_) => inp
            .packed()
            .map_err(slot_type(op_name, SlotKind::Packed))?
            .row(0),
    };
    let dst = dst.vec_mut().map_err(slot_type(op_name, SlotKind::Vec))?;
    if parallel {
        weights.forward_into_parallel(level, words, dst);
    } else {
        weights.forward_into(level, words, dst);
    }
    Ok(())
}

/// Renders a `catch_unwind` payload as a message for
/// [`BitFlowError::Internal`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".to_string()
    }
}

/// Bit-by-bit repack of a pressed map into a flat packed vector (general
/// flatten path for non-word-aligned channel counts).
fn reflatten(src: &BitTensor, dst: &mut PackedMatrix) {
    let n = src.h() * src.w() * src.c();
    assert_eq!(dst.n_logical, n);
    let row = dst.row_mut(0);
    row.fill(0);
    let mut bit = 0usize;
    for h in 0..src.h() {
        for w in 0..src.w() {
            for c in 0..src.c() {
                if src.get(h, w, c) > 0 {
                    row[bit / 64] |= 1 << (bit % 64);
                }
                bit += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Float baseline engine
// ---------------------------------------------------------------------------

/// The full-precision counterpart network: im2col conv + ReLU, float
/// max-pool, sgemm FC (+ ReLU between FCs). Weight transposes are hoisted
/// to compile time, mirroring what any production float engine does.
pub struct FloatNetwork {
    spec: NetworkSpec,
    layers: Vec<FloatRt>,
}

enum FloatRt {
    Conv {
        name: String,
        w: Vec<f32>,
        fshape: FilterShape,
        params: bitflow_ops::ConvParams,
    },
    Pool {
        name: String,
        params: bitflow_ops::ConvParams,
    },
    Fc {
        name: String,
        wt: Vec<f32>,
        n: usize,
        k: usize,
        last: bool,
    },
}

impl FloatNetwork {
    /// Compiles the float baseline from the same spec/weights as the binary
    /// engine (batch-norm statistics are ignored: the float VGG baseline is
    /// conv+ReLU, as in the original architecture).
    pub fn compile(spec: &NetworkSpec, weights: &NetworkWeights) -> Self {
        assert_eq!(spec.layers.len(), weights.layers.len());
        let n_layers = spec.layers.len();
        let layers = spec
            .layers
            .iter()
            .zip(&weights.layers)
            .enumerate()
            .map(|(i, (l, w))| match (l, w) {
                (LayerSpec::Conv { name, params, .. }, LayerWeights::Conv { w, fshape, .. }) => {
                    FloatRt::Conv {
                        name: name.clone(),
                        w: w.clone(),
                        fshape: *fshape,
                        params: *params,
                    }
                }
                (LayerSpec::Pool { name, params }, LayerWeights::Pool) => FloatRt::Pool {
                    name: name.clone(),
                    params: *params,
                },
                (LayerSpec::Fc { name, .. }, LayerWeights::Fc { w, n, k, .. }) => FloatRt::Fc {
                    name: name.clone(),
                    wt: transpose(w, *n, *k),
                    n: *n,
                    k: *k,
                    last: i + 1 == n_layers,
                },
                (l, _) => panic!("spec/weights mismatch at {}", l.name()),
            })
            .collect();
        Self {
            spec: spec.clone(),
            layers,
        }
    }

    /// Runs float inference (uses the parallel operator variants; install a
    /// 1-thread pool for single-core numbers).
    pub fn infer(&self, input: &Tensor) -> Vec<f32> {
        self.infer_profiled(input).0
    }

    /// Float inference with per-layer timings.
    pub fn infer_profiled(&self, input: &Tensor) -> (Vec<f32>, Vec<(String, Duration)>) {
        assert_eq!(input.shape(), self.spec.input);
        let mut times = Vec::with_capacity(self.layers.len());
        let mut map: Option<Tensor> = Some(input.clone());
        let mut vec: Option<Vec<f32>> = None;
        for layer in &self.layers {
            let t0 = Instant::now();
            match layer {
                FloatRt::Conv {
                    name,
                    w,
                    fshape,
                    params,
                } => {
                    let m = match map.as_ref() {
                        Some(m) => m,
                        None => panic!("conv after FC"),
                    };
                    let mut out = conv_im2col_parallel(m, w, *fshape, *params);
                    relu(&mut out);
                    map = Some(out);
                    times.push((name.clone(), t0.elapsed()));
                }
                FloatRt::Pool { name, params } => {
                    let m = match map.as_ref() {
                        Some(m) => m,
                        None => panic!("pool after FC"),
                    };
                    map = Some(max_pool_parallel(m, *params));
                    times.push((name.clone(), t0.elapsed()));
                }
                FloatRt::Fc {
                    name,
                    wt,
                    n,
                    k,
                    last,
                } => {
                    let flat: Vec<f32> = match (&map, &vec) {
                        (Some(m), _) => m.data().to_vec(),
                        (None, Some(v)) => v.clone(),
                        _ => unreachable!(),
                    };
                    assert_eq!(flat.len(), *n, "fc input width");
                    let mut out = fc_parallel(&flat, wt, *n, *k);
                    if !*last {
                        for x in &mut out {
                            if *x < 0.0 {
                                *x = 0.0;
                            }
                        }
                    }
                    map = None;
                    vec = Some(out);
                    times.push((name.clone(), t0.elapsed()));
                }
            }
        }
        let vec = match vec {
            Some(v) => v,
            None => panic!("network must end with FC"),
        };
        (vec, times)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::models::small_cnn;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup() -> (NetworkSpec, NetworkWeights, Tensor) {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(7);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
        (spec, weights, input)
    }

    #[test]
    fn compile_and_infer() {
        let (spec, weights, input) = setup();
        let mut net = Network::compile(&spec, &weights);
        let logits = net.infer(&input);
        assert_eq!(logits.len(), 10);
        assert!(logits.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn inference_is_deterministic_and_repeatable() {
        let (spec, weights, input) = setup();
        let mut net = Network::compile(&spec, &weights);
        let a = net.infer(&input);
        let b = net.infer(&input);
        assert_eq!(a, b, "second inference over reused buffers must agree");
    }

    #[test]
    fn parallel_matches_serial_bit_exactly() {
        let (spec, weights, input) = setup();
        let mut net = Network::compile(&spec, &weights);
        let serial = net.infer(&input);
        net.parallel = true;
        let parallel = net.infer(&input);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn profiled_matches_plain() {
        let (spec, weights, input) = setup();
        let mut net = Network::compile(&spec, &weights);
        let plain = net.infer(&input);
        let (profiled, times) = net.infer_profiled(&input);
        assert_eq!(plain, profiled);
        // input binarize + conv + pool + flatten (32-channel non-aligned
        // flatten inserts a repack op) + fc.
        assert_eq!(times.len(), spec.layers.len() + 2);
        assert_eq!(times[0].0, "binarize-input");
        assert_eq!(times[1].0, "conv1");
        assert!(times.iter().any(|(n, _)| n == "flatten"));
    }

    #[test]
    fn engine_matches_direct_op_chain() {
        // Hand-execute the same small network with the raw ops and compare.
        let (spec, weights, input) = setup();
        let mut net = Network::compile(&spec, &weights);
        let got = net.infer(&input);

        use bitflow_ops::binary::{
            binarize_pack_padded, binary_fc, binary_max_pool, pressed_conv, BinaryFcWeights,
        };
        let (cw, cf, cbn) = match &weights.layers[0] {
            LayerWeights::Conv { w, fshape, bn } => (w, fshape, bn),
            _ => unreachable!(),
        };
        let bank = BitFilterBank::from_floats(cw, *cf);
        let pressed = binarize_pack_padded(&input, 1);
        let counts = pressed_conv(SimdLevel::Avx512, &pressed, &bank, 1);
        let fold = cbn.fold();
        let signed = bitflow_ops::binary::binarize_threshold_padded(
            &counts,
            &fold.thresholds,
            &fold.flip,
            0,
        );
        let pooled = binary_max_pool(SimdLevel::Avx512, &signed, 2, 2, 2);
        let (fw, fn_, fk) = match &weights.layers[2] {
            LayerWeights::Fc { w, n, k, .. } => (w, *n, *k),
            _ => unreachable!(),
        };
        let flat = pooled.to_tensor();
        let packed_w = BinaryFcWeights::pack(fw, fn_, fk);
        let want = binary_fc(SimdLevel::Avx512, flat.data(), &packed_w);
        assert_eq!(got, want);
    }

    #[test]
    fn float_network_runs_and_differs_from_binary() {
        let (spec, weights, input) = setup();
        let fnet = FloatNetwork::compile(&spec, &weights);
        let (logits, times) = fnet.infer_profiled(&input);
        assert_eq!(logits.len(), 10);
        assert_eq!(times.len(), spec.layers.len());
        assert!(logits.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn model_size_accounting() {
        let (spec, weights, _) = setup();
        let net = Network::compile(&spec, &weights);
        assert_eq!(net.float_model_bytes(), weights.float_bytes());
        assert_eq!(net.packed_model_bytes(), weights.packed_bytes());
        assert!(net.activation_bytes() > 0);
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let (spec, weights, _) = setup();
        let mut net = Network::compile(&spec, &weights);
        let mut rng = StdRng::seed_from_u64(9);
        let bad = Tensor::random(Shape::hwc(4, 4, 3), Layout::Nhwc, &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.infer(&bad);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn model_context_split_matches_wrapper() {
        let (spec, weights, input) = setup();
        let mut net = Network::compile(&spec, &weights);
        let want = net.infer(&input);

        let model = CompiledModel::compile(&spec, &weights);
        let mut a = model.new_context();
        let mut b = model.new_context();
        assert_eq!(model.infer(&mut a, &input), want);
        assert_eq!(model.infer(&mut b, &input), want);
        // Contexts stay independent: running one again changes nothing.
        assert_eq!(model.infer(&mut a, &input), want);
        assert_eq!(model.context_bytes(), net.activation_bytes());
    }

    #[test]
    fn into_model_keeps_compiled_state() {
        let (spec, weights, input) = setup();
        let mut net = Network::compile(&spec, &weights);
        let want = net.infer(&input);
        let model = std::sync::Arc::new(net.into_model());
        let mut ctx = model.new_context();
        assert_eq!(model.infer(&mut ctx, &input), want);
    }

    #[test]
    fn infer_batch_bit_identical_to_serial() {
        let (spec, weights, _) = setup();
        let model = CompiledModel::compile(&spec, &weights);
        let mut rng = StdRng::seed_from_u64(13);
        let inputs: Vec<Tensor> = (0..7)
            .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
            .collect();
        let mut ctx = model.new_context();
        let serial: Vec<Vec<f32>> = inputs
            .iter()
            .map(|img| model.infer(&mut ctx, img))
            .collect();
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let batch = pool.install(|| model.infer_batch(&inputs));
            assert_eq!(batch, serial, "threads={threads}");
        }
        assert!(model.infer_batch(&[]).is_empty());
    }

    #[test]
    fn telemetry_disabled_by_default() {
        let (spec, weights, input) = setup();
        let model = CompiledModel::compile(&spec, &weights);
        assert!(model.telemetry().is_none());
        assert!(model.metrics_snapshot().is_none());
        let mut ctx = model.new_context();
        model.infer(&mut ctx, &input);
        assert!(
            model.metrics_snapshot().is_none(),
            "inference must not enable it"
        );
    }

    #[test]
    fn telemetry_counts_ops_and_derives_rates() {
        let (spec, weights, input) = setup();
        let model = CompiledModel::compile(&spec, &weights);
        let mut ctx = model.new_context();
        let before = model.infer(&mut ctx, &input);
        model.enable_telemetry();
        let after = model.infer(&mut ctx, &input);
        assert_eq!(before, after, "telemetry must not change logits");
        model.infer(&mut ctx, &input);

        let snap = model.metrics_snapshot().expect("enabled");
        assert_eq!(snap.model, spec.name);
        assert_eq!(snap.requests, 2);
        // binarize + conv + pool + flatten (non-aligned 32-channel) + fc.
        assert_eq!(snap.ops.len(), spec.layers.len() + 2);
        assert_eq!(snap.ops[0].name, "binarize-input");
        assert_eq!(snap.ops[1].name, "conv1");
        for op in &snap.ops {
            assert_eq!(op.calls, 2, "{}", op.name);
            assert!(op.total_ns > 0, "{}", op.name);
            assert!(op.p50_ns <= op.p95_ns && op.p95_ns <= op.p99_ns);
            assert!(op.max_ns as f64 >= op.mean_ns, "{}", op.name);
        }
        let conv = &snap.ops[1];
        assert!(conv.bit_ops_per_call > 0);
        assert!(conv.gops > 0.0);
        let fc = snap.ops.last().expect("ops");
        assert_eq!(fc.kind, bitflow_telemetry::OpKind::FcOut);
        let tile = fc.tile.expect("fc has tile stats");
        assert_eq!(tile.m, 1);
        assert_eq!(tile.k, 10);
        assert_eq!(tile.n_words, 8); // 512 flattened bits
    }

    #[test]
    fn telemetry_batch_gauges() {
        let (spec, weights, _) = setup();
        let model = CompiledModel::compile(&spec, &weights);
        model.enable_telemetry();
        let mut rng = StdRng::seed_from_u64(21);
        let mut inputs: Vec<Tensor> = (0..5)
            .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
            .collect();
        inputs[3] = Tensor::random(Shape::hwc(2, 2, 3), Layout::Nhwc, &mut rng); // malformed
        let results = model.try_infer_batch(&inputs);
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
        let snap = model.metrics_snapshot().expect("enabled");
        assert_eq!(snap.batch.batches, 1);
        assert_eq!(snap.batch.items, 5);
        assert_eq!(snap.batch.failed_items, 1);
        assert_eq!(snap.batch.max_batch, 5);
        assert_eq!(snap.batch.queued_items, 0, "gauge returns to idle");
        assert!(snap.batch.chunks >= 1);
    }

    #[test]
    fn telemetry_ring_sink_traces_requests() {
        let (spec, weights, input) = setup();
        let model = CompiledModel::compile(&spec, &weights);
        let sink = std::sync::Arc::new(bitflow_telemetry::RingSink::new(8));
        struct Fwd(std::sync::Arc<bitflow_telemetry::RingSink>);
        impl SpanSink for Fwd {
            fn record(&self, trace: &RequestTrace) {
                self.0.record(trace);
            }
        }
        model.enable_telemetry_with_sink(Box::new(Fwd(sink.clone())));
        let mut ctx = model.new_context();
        model.infer(&mut ctx, &input);
        model.infer(&mut ctx, &input);
        let traces = sink.drain();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].request_id, 0);
        assert_eq!(traces[1].request_id, 1);
        for t in &traces {
            assert_eq!(t.spans.len(), spec.layers.len() + 2);
            assert_eq!(t.spans[0].name, "binarize-input");
            assert!(t.total_ns >= t.spans.iter().map(|s| s.duration_ns).sum::<u64>() / 2);
        }
    }

    #[test]
    fn trace_scope_collects_op_spans_without_telemetry() {
        let (spec, weights, input) = setup();
        let model = CompiledModel::compile(&spec, &weights);
        let tb = Arc::new(bitflow_telemetry::TraceBuilder::new("req-a"));
        {
            let _scope = enter_trace_scope(Arc::clone(&tb));
            let mut ctx = model.new_context();
            model.infer(&mut ctx, &input);
        }
        assert!(current_trace().is_none(), "guard restores the empty scope");
        let trace = tb.finish();
        assert_eq!(trace.spans.len(), spec.layers.len() + 2);
        assert_eq!(trace.spans[0].name, "binarize-input");
        for w in trace.spans.windows(2) {
            assert!(
                w[0].start_ns <= w[1].start_ns,
                "op spans run in sequence on one thread"
            );
        }
    }

    #[test]
    fn batch_items_carry_their_traces_onto_workers() {
        let (spec, weights, _) = setup();
        let model = CompiledModel::compile(&spec, &weights);
        // Telemetry on: op spans flow through `run_ops_recorded`, which
        // must re-base them onto each trace's own origin.
        model.enable_telemetry();
        let mut rng = StdRng::seed_from_u64(23);
        let inputs: Vec<Tensor> = (0..4)
            .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
            .collect();
        let builders: Vec<Arc<bitflow_telemetry::TraceBuilder>> = (0..4)
            .map(|i| Arc::new(bitflow_telemetry::TraceBuilder::new(format!("req-{i}"))))
            .collect();
        let none = CancelToken::none();
        let items: Vec<BatchItem<'_>> = inputs
            .iter()
            .zip(&builders)
            .enumerate()
            .map(|(i, (input, tb))| BatchItem {
                input,
                cancel: &none,
                tag: i as u64,
                trace: Some(Arc::clone(tb)),
            })
            .collect();
        let results = model.try_infer_batch_cancellable(&items);
        assert!(results.iter().all(Result::is_ok));
        for (i, tb) in builders.iter().enumerate() {
            let trace = tb.finish();
            assert_eq!(trace.id, format!("req-{i}"));
            assert_eq!(
                trace.spans.len(),
                spec.layers.len() + 2,
                "item {i} must collect exactly its own op spans"
            );
        }
        assert!(current_trace().is_none());
    }

    #[test]
    fn enable_telemetry_is_idempotent() {
        let (spec, weights, _) = setup();
        let model = CompiledModel::compile(&spec, &weights);
        let a = model.enable_telemetry();
        let b = model.enable_telemetry();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        // A later with_sink call cannot replace the live handle.
        let c = model.enable_telemetry_with_sink(Box::new(bitflow_telemetry::NoopSink));
        assert!(std::sync::Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn batch_cancellable_matches_serial_and_honours_tokens() {
        let (spec, weights, _) = setup();
        let model = CompiledModel::compile(&spec, &weights);
        let mut rng = StdRng::seed_from_u64(17);
        let inputs: Vec<Tensor> = (0..6)
            .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
            .collect();
        let mut ctx = model.new_context();
        let serial: Vec<Vec<f32>> = inputs
            .iter()
            .map(|img| model.infer(&mut ctx, img))
            .collect();
        let tokens: Vec<CancelToken> = (0..6).map(|_| CancelToken::new()).collect();
        tokens[3].cancel();
        let items: Vec<BatchItem<'_>> = inputs
            .iter()
            .zip(&tokens)
            .enumerate()
            .map(|(i, (input, cancel))| BatchItem {
                input,
                cancel,
                tag: i as u64,
                trace: None,
            })
            .collect();
        let results = model.try_infer_batch_cancellable(&items);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                assert!(
                    matches!(r, Err(BitFlowError::Cancelled)),
                    "cancelled item must abort, got {r:?}"
                );
            } else {
                assert_eq!(
                    r.as_ref().expect("uncancelled item"),
                    &serial[i],
                    "item {i} diverged from serial inference"
                );
            }
        }
        assert!(model.try_infer_batch_cancellable(&[]).is_empty());
    }

    #[test]
    fn batch_items_report_their_tags_to_fault_hooks() {
        let (spec, weights, _) = setup();
        let model = CompiledModel::compile(&spec, &weights);
        let seen = Arc::new(std::sync::Mutex::new(std::collections::HashSet::new()));
        let sink = Arc::clone(&seen);
        assert!(model.install_fault_hook(Arc::new(move |_, _, tag| {
            sink.lock().expect("hook lock").insert(tag);
        })));
        let mut rng = StdRng::seed_from_u64(19);
        let inputs: Vec<Tensor> = (0..5)
            .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
            .collect();
        let none = CancelToken::none();
        let items: Vec<BatchItem<'_>> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| BatchItem {
                input,
                cancel: &none,
                tag: 100 + i as u64,
                trace: None,
            })
            .collect();
        let results = model.try_infer_batch_cancellable(&items);
        assert!(results.iter().all(Result::is_ok));
        {
            // Scoped: the hook locks this same mutex on this thread during
            // the untagged inference below.
            let seen = seen.lock().expect("lock");
            for i in 0..5u64 {
                assert!(
                    seen.contains(&(100 + i)),
                    "tag {} never reached the fault hook (rayon workers lose \
                     serve-side thread-locals — the tag must travel with the item)",
                    100 + i
                );
            }
        }
        // Untagged inference reports UNTAGGED, not a stale batch tag.
        let mut ctx = model.new_context();
        let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
        model.infer(&mut ctx, &input);
        assert!(seen.lock().expect("lock").contains(&UNTAGGED));
    }

    #[test]
    fn nondefault_bn_epsilon_matches_float_reference() {
        // A model whose BN layers use ε = 1e-1 over deliberately small
        // variances (so ε dominates the denominator), with β amplified so
        // the ε-induced threshold shift spans several integer count
        // levels: the engine must fold with the layer's own ε. The
        // reference computes the explicit float BN + sign path; a second
        // compile with the old hardcoded default shows the bug this
        // guards against.
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(77);
        let mut weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        for lw in &mut weights.layers {
            if let LayerWeights::Conv { bn, .. } | LayerWeights::Fc { bn, .. } = lw {
                bn.eps = 1e-1;
                for v in &mut bn.var {
                    *v *= 1e-3;
                }
                for b in &mut bn.beta {
                    *b *= 20.0;
                }
            }
        }
        let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
        let mut net = Network::compile(&spec, &weights);
        let got = net.infer(&input);

        // Hand-executed chain with explicit BN: y = γ·(x−μ)/√(σ²+ε) + β,
        // bit = y ≥ 0 — no folding anywhere.
        use bitflow_ops::binary::{
            binarize_pack_padded, binarize_threshold_padded, binary_fc, binary_max_pool,
            pressed_conv, BinaryFcWeights,
        };
        let (cw, cf, cbn) = match &weights.layers[0] {
            LayerWeights::Conv { w, fshape, bn } => (w, fshape, bn),
            _ => unreachable!(),
        };
        let bank = BitFilterBank::from_floats(cw, *cf);
        let pressed = binarize_pack_padded(&input, 1);
        let counts = pressed_conv(SimdLevel::Avx512, &pressed, &bank, 1);
        let k = cf.k;
        let mut bn_out = counts.clone();
        for (i, y) in bn_out.data_mut().iter_mut().enumerate() {
            let c = i % k;
            *y = cbn.gamma[c] * (*y - cbn.mean[c]) / (cbn.var[c] + cbn.eps).sqrt() + cbn.beta[c];
        }
        let zeros = vec![0.0f32; k];
        let no_flip = vec![false; k];
        let signed = binarize_threshold_padded(&bn_out, &zeros, &no_flip, 0);
        let pooled = binary_max_pool(SimdLevel::Avx512, &signed, 2, 2, 2);
        let (fw, fn_, fk) = match &weights.layers[2] {
            LayerWeights::Fc { w, n, k, .. } => (w, *n, *k),
            _ => unreachable!(),
        };
        let flat = pooled.to_tensor();
        let packed_w = BinaryFcWeights::pack(fw, fn_, fk);
        let want = binary_fc(SimdLevel::Avx512, flat.data(), &packed_w);
        assert_eq!(got, want, "engine must fold with the layer's ε");

        // Regression half: the old behavior (hardcoded 1e-5) folds
        // different thresholds, and with ε-dominated variances the logits
        // actually diverge.
        let mut old = weights.clone();
        for lw in &mut old.layers {
            if let LayerWeights::Conv { bn, .. } | LayerWeights::Fc { bn, .. } = lw {
                bn.eps = 1e-5;
            }
        }
        let old_logits = Network::compile(&spec, &old).infer(&input);
        assert_ne!(
            got, old_logits,
            "folding with the default ε must be observable on this model \
             (otherwise this test cannot catch the bug)"
        );
    }

    #[test]
    fn random_inputs_give_varied_logits() {
        let (spec, weights, _) = setup();
        let mut net = Network::compile(&spec, &weights);
        let mut rng = StdRng::seed_from_u64(11);
        let a = net.infer(&Tensor::random(spec.input, Layout::Nhwc, &mut rng));
        let b = net.infer(&Tensor::random(spec.input, Layout::Nhwc, &mut rng));
        assert_ne!(a, b, "different inputs should give different logits");
    }
}
