//! Typed errors for the serving path.
//!
//! The contract (documented in ARCHITECTURE.md §"Panic-free serving path"):
//!
//! * [`crate::spec::NetworkSpec::validate`] rejects every malformed spec as
//!   a [`SpecError`];
//! * [`crate::weights::NetworkWeights::validate_against`] rejects every
//!   spec/weight disagreement as a [`WeightMismatch`];
//! * [`crate::engine::CompiledModel::try_compile`] runs both and only then
//!   builds the engine — a compiled model is geometry-safe by construction;
//! * [`crate::engine::CompiledModel::try_infer`] /
//!   [`crate::engine::CompiledModel::try_infer_batch`] check the request
//!   (input shape, finiteness, context provenance) and report problems as
//!   [`InputGeometry`] values instead of aborting the worker.
//!
//! Everything converges on [`BitFlowError`], the per-subsystem sum type the
//! serving path returns end to end.

use bitflow_simd::scheduler::UnsupportedKernel;
use bitflow_tensor::{FilterShape, Shape};
use serde::{Serialize, Value};
use std::fmt;

/// What a runtime buffer slot holds (the typed face of the engine's
/// internal `Slot` enum, used in diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotKind {
    /// Pressed (bit-packed) activation map.
    Bit,
    /// Float scratch map.
    Map,
    /// Float vector.
    Vec,
    /// Packed activation vector.
    Packed,
}

impl fmt::Display for SlotKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotKind::Bit => write!(f, "pressed map"),
            SlotKind::Map => write!(f, "float map"),
            SlotKind::Vec => write!(f, "float vector"),
            SlotKind::Packed => write!(f, "packed vector"),
        }
    }
}

/// A runtime buffer held a different kind of data than the operator
/// expected — the typed replacement for the engine's old
/// `panic!("slot is not a ...")` accessors, carrying enough context to
/// diagnose *which* layer tripped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotTypeError {
    /// Layer (or pseudo-op) whose operand was wrong.
    pub layer: String,
    /// Slot kind the operator needed.
    pub expected: SlotKind,
    /// Slot kind actually present.
    pub actual: SlotKind,
}

impl fmt::Display for SlotTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layer {}: slot holds a {} where a {} was expected",
            self.layer, self.actual, self.expected
        )
    }
}

impl std::error::Error for SlotTypeError {}

/// A malformed [`crate::spec::NetworkSpec`]: rejected by
/// [`crate::spec::NetworkSpec::validate`] before any kernel is chosen.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The layer chain is empty.
    EmptyNetwork,
    /// The engine serves batch-1 inference; the spec asked for another n.
    Batch {
        /// Requested batch size.
        n: usize,
    },
    /// A zero-sized dimension somewhere in the chain.
    ZeroDim {
        /// Layer name (or "input").
        layer: String,
        /// Which dimension was zero.
        what: &'static str,
    },
    /// A spatial (conv/pool) layer appears after an FC flattened the map.
    SpatialAfterFc {
        /// The offending layer.
        layer: String,
    },
    /// The binary engine emits logits from a final FC layer.
    LastLayerNotFc {
        /// The actual last layer.
        layer: String,
    },
    /// The §III-B kernel selector cannot schedule this layer's geometry.
    Kernel {
        /// The offending layer.
        layer: String,
        /// Why the geometry is unschedulable.
        source: UnsupportedKernel,
    },
    /// A size computation (buffer elements, weight counts) overflows
    /// `usize` — no such network can be materialised.
    Overflow {
        /// The offending layer.
        layer: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyNetwork => write!(f, "network has no layers"),
            SpecError::Batch { n } => {
                write!(f, "engine serves batch-1 inference (spec input has n={n})")
            }
            SpecError::ZeroDim { layer, what } => {
                write!(f, "layer {layer}: zero-sized {what}")
            }
            SpecError::SpatialAfterFc { layer } => {
                write!(f, "spatial layer {layer} after FC")
            }
            SpecError::LastLayerNotFc { layer } => {
                write!(
                    f,
                    "binary engine requires a final FC layer (last is {layer})"
                )
            }
            SpecError::Kernel { layer, source } => {
                write!(f, "layer {layer}: {source}")
            }
            SpecError::Overflow { layer } => {
                write!(f, "layer {layer}: size arithmetic overflows")
            }
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Kernel { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A disagreement between a spec and the weights meant to populate it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WeightMismatch {
    /// Different layer counts.
    LayerCount {
        /// Layers in the spec.
        spec: usize,
        /// Layers in the weights.
        weights: usize,
    },
    /// A layer's weight kind does not match its spec kind.
    LayerKind {
        /// Layer name.
        layer: String,
        /// Kind the spec demands.
        expected: &'static str,
        /// Kind the weights carry.
        actual: &'static str,
    },
    /// Conv filter-bank geometry disagrees with the spec.
    FilterShape {
        /// Layer name.
        layer: String,
        /// Shape the spec demands.
        expected: FilterShape,
        /// Shape the weights carry.
        actual: FilterShape,
    },
    /// FC (n, k) geometry disagrees with the spec's flatten width / output.
    FcGeometry {
        /// Layer name.
        layer: String,
        /// (n, k) the spec demands.
        expected: (usize, usize),
        /// (n, k) the weights carry.
        actual: (usize, usize),
    },
    /// Flat weight vector has the wrong length for its declared geometry.
    WeightLen {
        /// Layer name.
        layer: String,
        /// Element count the geometry demands.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// Batch-norm statistic vectors have the wrong per-channel length.
    BnLen {
        /// Layer name.
        layer: String,
        /// Channel count the geometry demands.
        expected: usize,
        /// Actual statistic length.
        actual: usize,
    },
}

impl fmt::Display for WeightMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightMismatch::LayerCount { spec, weights } => {
                write!(f, "spec has {spec} layers, weights have {weights}")
            }
            WeightMismatch::LayerKind {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer {layer}: spec is a {expected} layer, weights are {actual}"
            ),
            WeightMismatch::FilterShape {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer {layer}: filter shape {actual:?} (spec demands {expected:?})"
            ),
            WeightMismatch::FcGeometry {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer {layer}: fc geometry {actual:?} (spec demands {expected:?})"
            ),
            WeightMismatch::WeightLen {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer {layer}: {actual} weight elements ({expected} expected)"
            ),
            WeightMismatch::BnLen {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer {layer}: batch-norm statistics over {actual} channels ({expected} expected)"
            ),
        }
    }
}

impl std::error::Error for WeightMismatch {}

/// A malformed inference request: the compiled model is fine, the caller's
/// input (or session context) is not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InputGeometry {
    /// Input tensor shape differs from the spec's input shape.
    ShapeMismatch {
        /// Shape the model was compiled for.
        expected: Shape,
        /// Shape the caller passed.
        actual: Shape,
    },
    /// Input contains a NaN or infinite value.
    NonFinite {
        /// Index of the first offending element.
        index: usize,
    },
    /// The [`crate::engine::InferenceContext`] was created by a different
    /// model (buffer plan mismatch).
    ContextMismatch {
        /// Slot count of this model's plan.
        expected: usize,
        /// Slot count of the context.
        actual: usize,
    },
}

impl fmt::Display for InputGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputGeometry::ShapeMismatch { expected, actual } => {
                write!(f, "input shape {actual:?} (model expects {expected:?})")
            }
            InputGeometry::NonFinite { index } => {
                write!(f, "input element {index} is NaN or infinite")
            }
            InputGeometry::ContextMismatch { expected, actual } => write!(
                f,
                "inference context has {actual} buffers, model plans {expected} \
                 (context from a different model?)"
            ),
        }
    }
}

impl std::error::Error for InputGeometry {}

/// Why the serving runtime refused to admit a request. Produced by
/// `bitflow-serve`'s `submit`, carried here so the whole request lifecycle
/// resolves to one [`BitFlowError`] value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RejectReason {
    /// The admission queue is at capacity and the shedding policy found no
    /// request it could drop instead.
    QueueFull,
    /// The server is deliberately shedding load (circuit breaker open
    /// after repeated worker faults).
    Shedding,
    /// The server is draining for shutdown and accepts no new work.
    Draining,
    /// The target model's admission quota is exhausted: as many of its
    /// requests are already queued or in flight as its tenancy config
    /// allows.
    QuotaExceeded,
    /// The resource governor's byte budget (global or per-tenant) cannot
    /// cover the request; admitting it would risk an allocator abort.
    MemoryPressure,
}

impl RejectReason {
    /// Stable snake-case label, used as a metric label and error code.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::Shedding => "shedding",
            RejectReason::Draining => "draining",
            RejectReason::QuotaExceeded => "quota",
            RejectReason::MemoryPressure => "memory",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "admission queue full"),
            RejectReason::Shedding => {
                write!(f, "shedding load (circuit breaker open)")
            }
            RejectReason::Draining => write!(f, "server draining"),
            RejectReason::QuotaExceeded => {
                write!(f, "model admission quota exhausted")
            }
            RejectReason::MemoryPressure => {
                write!(f, "memory budget exhausted")
            }
        }
    }
}

impl std::error::Error for RejectReason {}

/// The per-subsystem error sum type the serving path returns end to end.
#[derive(Debug)]
pub enum BitFlowError {
    /// Malformed network spec (shape inference / §III-B selectability).
    Spec(SpecError),
    /// Spec/weights disagreement.
    WeightMismatch(WeightMismatch),
    /// Malformed inference request.
    InputGeometry(InputGeometry),
    /// Corrupt or truncated serialized model.
    ModelCorrupt(crate::model_io::ModelIoError),
    /// Unschedulable kernel geometry outside spec validation.
    UnsupportedKernel(UnsupportedKernel),
    /// Runtime buffer held the wrong kind of data.
    SlotType(SlotTypeError),
    /// The request's deadline passed before inference completed; the run
    /// was abandoned at an operator boundary.
    DeadlineExceeded,
    /// The request's [`crate::cancel::CancelToken`] was cancelled (caller
    /// gone) before inference completed.
    Cancelled,
    /// The serving runtime refused to admit the request.
    Rejected(RejectReason),
    /// A fallible allocation failed: the allocator (or an injected fault)
    /// refused the bytes a large untrusted-size path asked for. An error
    /// value instead of an abort, so one oversized request cannot kill
    /// every tenant at once.
    ResourceExhausted {
        /// What was being allocated (e.g. "model payload",
        /// "inference context").
        what: &'static str,
        /// Bytes the failed reservation asked for.
        bytes: u64,
    },
    /// A panic caught by the batch backstop, converted to a value so one
    /// poisoned request cannot abort a worker.
    Internal(String),
}

impl BitFlowError {
    /// Stable snake-case error code, suitable for wire responses and
    /// metric labels. One code per variant; [`BitFlowError::Rejected`]
    /// refines it with the rejection reason.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            BitFlowError::Spec(_) => "spec",
            BitFlowError::WeightMismatch(_) => "weight_mismatch",
            BitFlowError::InputGeometry(_) => "input_geometry",
            BitFlowError::ModelCorrupt(_) => "model_corrupt",
            BitFlowError::UnsupportedKernel(_) => "unsupported_kernel",
            BitFlowError::SlotType(_) => "slot_type",
            BitFlowError::DeadlineExceeded => "deadline_exceeded",
            BitFlowError::Cancelled => "cancelled",
            BitFlowError::Rejected(RejectReason::QueueFull) => "rejected_queue_full",
            BitFlowError::Rejected(RejectReason::Shedding) => "rejected_shedding",
            BitFlowError::Rejected(RejectReason::Draining) => "rejected_draining",
            BitFlowError::Rejected(RejectReason::QuotaExceeded) => "rejected_quota",
            BitFlowError::Rejected(RejectReason::MemoryPressure) => "rejected_memory",
            BitFlowError::ResourceExhausted { .. } => "resource_exhausted",
            BitFlowError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for BitFlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitFlowError::Spec(e) => write!(f, "invalid spec: {e}"),
            BitFlowError::WeightMismatch(e) => write!(f, "spec/weights mismatch: {e}"),
            BitFlowError::InputGeometry(e) => write!(f, "bad inference input: {e}"),
            BitFlowError::ModelCorrupt(e) => write!(f, "corrupt model: {e}"),
            BitFlowError::UnsupportedKernel(e) => write!(f, "unsupported kernel: {e}"),
            BitFlowError::SlotType(e) => write!(f, "slot type error: {e}"),
            BitFlowError::DeadlineExceeded => {
                write!(f, "deadline exceeded before inference completed")
            }
            BitFlowError::Cancelled => write!(f, "request cancelled"),
            BitFlowError::Rejected(reason) => write!(f, "request rejected: {reason}"),
            BitFlowError::ResourceExhausted { what, bytes } => {
                write!(f, "allocation failed: {bytes} bytes for {what}")
            }
            BitFlowError::Internal(msg) => write!(f, "internal inference failure: {msg}"),
        }
    }
}

// Serialized as `{"code": ..., "message": ...}`: the stable machine face
// (code) plus the human rendering, so a serving frontend can return typed
// errors without a parallel error schema.
impl Serialize for BitFlowError {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("code".to_string(), Value::Str(self.code().to_string())),
            ("message".to_string(), Value::Str(self.to_string())),
        ])
    }
}

impl std::error::Error for BitFlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BitFlowError::Spec(e) => Some(e),
            BitFlowError::WeightMismatch(e) => Some(e),
            BitFlowError::InputGeometry(e) => Some(e),
            BitFlowError::ModelCorrupt(e) => Some(e),
            BitFlowError::UnsupportedKernel(e) => Some(e),
            BitFlowError::SlotType(e) => Some(e),
            BitFlowError::Rejected(e) => Some(e),
            BitFlowError::DeadlineExceeded | BitFlowError::Cancelled => None,
            BitFlowError::ResourceExhausted { .. } => None,
            BitFlowError::Internal(_) => None,
        }
    }
}

impl From<RejectReason> for BitFlowError {
    fn from(e: RejectReason) -> Self {
        BitFlowError::Rejected(e)
    }
}

impl From<SpecError> for BitFlowError {
    fn from(e: SpecError) -> Self {
        BitFlowError::Spec(e)
    }
}

impl From<WeightMismatch> for BitFlowError {
    fn from(e: WeightMismatch) -> Self {
        BitFlowError::WeightMismatch(e)
    }
}

impl From<InputGeometry> for BitFlowError {
    fn from(e: InputGeometry) -> Self {
        BitFlowError::InputGeometry(e)
    }
}

impl From<crate::model_io::ModelIoError> for BitFlowError {
    fn from(e: crate::model_io::ModelIoError) -> Self {
        BitFlowError::ModelCorrupt(e)
    }
}

impl From<UnsupportedKernel> for BitFlowError {
    fn from(e: UnsupportedKernel) -> Self {
        BitFlowError::UnsupportedKernel(e)
    }
}

impl From<SlotTypeError> for BitFlowError {
    fn from(e: SlotTypeError) -> Self {
        BitFlowError::SlotType(e)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = BitFlowError::SlotType(SlotTypeError {
            layer: "conv3.1".into(),
            expected: SlotKind::Bit,
            actual: SlotKind::Vec,
        });
        let msg = e.to_string();
        assert!(msg.contains("conv3.1"), "{msg}");
        assert!(msg.contains("pressed map"), "{msg}");
        assert!(msg.contains("float vector"), "{msg}");
    }

    #[test]
    fn overload_variants_display_and_code() {
        assert_eq!(BitFlowError::DeadlineExceeded.code(), "deadline_exceeded");
        assert!(BitFlowError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert_eq!(BitFlowError::Cancelled.code(), "cancelled");
        assert!(BitFlowError::Cancelled.to_string().contains("cancelled"));
        for (reason, code) in [
            (RejectReason::QueueFull, "rejected_queue_full"),
            (RejectReason::Shedding, "rejected_shedding"),
            (RejectReason::Draining, "rejected_draining"),
            (RejectReason::QuotaExceeded, "rejected_quota"),
            (RejectReason::MemoryPressure, "rejected_memory"),
        ] {
            let e = BitFlowError::Rejected(reason);
            assert_eq!(e.code(), code);
            assert!(e.to_string().contains("rejected"), "{e}");
            assert!(e.to_string().contains(&reason.to_string()), "{e}");
        }
    }

    #[test]
    fn errors_serialize_as_code_and_message() {
        let json = serde_json::to_string(&BitFlowError::Rejected(RejectReason::QueueFull)).unwrap();
        assert!(json.contains("\"code\""), "{json}");
        assert!(json.contains("rejected_queue_full"), "{json}");
        assert!(json.contains("admission queue full"), "{json}");
        let json = serde_json::to_string(&BitFlowError::DeadlineExceeded).unwrap();
        assert!(json.contains("deadline_exceeded"), "{json}");
    }

    #[test]
    fn resource_exhausted_carries_size_context() {
        let e = BitFlowError::ResourceExhausted {
            what: "model payload",
            bytes: 1 << 40,
        };
        assert_eq!(e.code(), "resource_exhausted");
        let msg = e.to_string();
        assert!(msg.contains("model payload"), "{msg}");
        assert!(msg.contains(&(1u64 << 40).to_string()), "{msg}");
    }

    #[test]
    fn source_chain_reaches_kernel_error() {
        use std::error::Error;
        let e = BitFlowError::Spec(SpecError::Kernel {
            layer: "conv1".into(),
            source: UnsupportedKernel::ZeroStride,
        });
        let spec_err = e.source().expect("spec source");
        assert!(spec_err.source().is_some(), "kernel source reachable");
    }
}
