//! # bitflow-graph
//!
//! The **network level** of BitFlow's three-level hierarchy (paper §IV):
//! a static-computational-graph inference engine.
//!
//! Network-level optimizations from the paper, all implemented here:
//!
//! * **Weight pre-binarization**: weights are constant during inference, so
//!   binarization + bit-packing (+ the fused transposition of Table III)
//!   happen once in [`engine::Network::compile`], never on the hot path.
//! * **Memory pre-allocation**: every activation, scratch and output buffer
//!   is sized by static shape inference over the graph and allocated at
//!   compile time; [`engine::Network::infer`] performs no allocation.
//! * **Zero-cost padding** (paper Fig. 5): each layer's output buffer is
//!   allocated at the *padded* size required by its consumer, pre-zeroed;
//!   producers write only the interior, so the next convolution reads a
//!   padded tensor that nobody ever spent time padding.
//!
//! The same [`spec::NetworkSpec`] compiles to either a **binary** engine
//! (PressedConv / binary FC / binary pool, with batch-norm folded into
//! per-channel sign thresholds) or a **float** engine (im2col conv + sgemm,
//! the "counterpart full-precision network" baseline).
//!
//! [`models`] provides VGG-16 / VGG-19 (paper Table IV geometry) and small
//! test networks.

//! ## Robustness contract
//!
//! The serving path is panic-free end to end: [`spec::NetworkSpec::validate`]
//! → [`engine::CompiledModel::try_compile`] →
//! [`engine::CompiledModel::try_infer`] /
//! [`engine::CompiledModel::try_infer_batch`] report every failure as a
//! typed [`error::BitFlowError`]. The panicking `compile`/`infer` APIs are
//! thin wrappers over the `try_` variants for trusted callers (tests,
//! benches, examples).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod cancel;
pub mod engine;
pub mod error;
pub mod model_io;
pub mod models;
pub mod plan;
pub mod spec;
pub mod weights;

pub use cancel::CancelToken;
pub use engine::{
    current_trace, enter_infer_tag, enter_trace_scope, BatchItem, CompiledModel, FaultHook,
    FloatNetwork, InferTagGuard, InferenceContext, Network, TraceScopeGuard, UNTAGGED,
};
pub use error::{
    BitFlowError, InputGeometry, RejectReason, SlotKind, SlotTypeError, SpecError, WeightMismatch,
};
pub use model_io::{load_model, save_model, ModelIoError};
pub use models::{small_cnn, vgg16, vgg19};
pub use plan::{fuse_enabled_from, ExecPlan, MemoryPlan, PlanNode, PlanOptions};
pub use spec::{LayerSpec, NetworkSpec};
pub use weights::{BnParams, LayerWeights, NetworkWeights, DEFAULT_BN_EPS};
