//! Model persistence: one self-describing binary container holding a
//! [`NetworkSpec`] plus its [`NetworkWeights`].
//!
//! Format (v3):
//!
//! ```text
//! magic "BTFM" | u32 version | u32 header_len | u64 payload_len
//!   | u64 fnv1a64(header ‖ payload) | JSON header | payload
//! ```
//!
//! The header is the spec plus per-layer payload descriptors and the
//! payload is raw little-endian `f32` runs (weights, then γ/β/μ/σ²/ε for
//! parametric layers). Keeps VGG-scale models loadable without a 2×-size
//! JSON blow-up.
//!
//! Version history: v3 appends the batch-norm ε (one `f32`) after each
//! layer's σ² run, fixing the bug where every decoded model silently
//! folded thresholds with the default ε. v2 containers (no ε run) still
//! decode, defaulting ε to [`DEFAULT_BN_EPS`].
//!
//! [`decode_model`] is part of the panic-free serving path: every length
//! field is bound-checked with overflow-safe arithmetic *before* any
//! allocation is sized from it, a FNV-1a-64 checksum rejects bit-level
//! corruption anywhere in the header or payload, and the decoded
//! spec/weights pair is validated (shape inference + spec/weight
//! agreement) before being returned — so a successfully decoded model is
//! always safe to hand to
//! [`CompiledModel::try_compile`](crate::engine::CompiledModel::try_compile).

use crate::spec::NetworkSpec;
use crate::weights::{BnParams, LayerWeights, NetworkWeights, DEFAULT_BN_EPS};
use bitflow_tensor::FilterShape;
use serde::{Deserialize, Serialize};

/// Container magic: "BTFM" (BitFlow model).
pub const MODEL_MAGIC: u32 = 0x4254_464D;

/// Container format version written by [`encode_model`].
pub const MODEL_VERSION: u32 = 3;

/// Oldest container version [`decode_model`] still accepts (v2 payloads
/// carry no ε run; decode defaults it to [`DEFAULT_BN_EPS`]).
pub const MIN_MODEL_VERSION: u32 = 2;

/// Fixed prefix: magic + version + header_len + payload_len + checksum.
const PREFIX_LEN: usize = 4 + 4 + 4 + 8 + 8;

/// Errors from decoding a model container.
#[derive(Debug)]
pub enum ModelIoError {
    /// Bad magic number.
    BadMagic,
    /// Header did not parse.
    BadHeader(String),
    /// Payload shorter than the header promises.
    Truncated,
    /// Integrity failure: checksum mismatch, trailing bytes, or a length
    /// field that cannot describe a real buffer.
    Corrupt(String),
    /// The container decoded, but the spec/weights it carries are not a
    /// servable model (failed validation).
    Invalid(String),
    /// Underlying I/O error.
    Io(std::io::Error),
    /// A fallible allocation sized by the (untrusted) container failed:
    /// the allocator refused the bytes, reported as an error value
    /// instead of an abort.
    ResourceExhausted {
        /// What was being allocated.
        what: &'static str,
        /// Bytes the failed reservation asked for.
        bytes: u64,
    },
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::BadMagic => write!(f, "bad magic (not a BitFlow model)"),
            ModelIoError::BadHeader(e) => write!(f, "malformed model header: {e}"),
            ModelIoError::Truncated => write!(f, "model payload truncated"),
            ModelIoError::Corrupt(e) => write!(f, "model container corrupt: {e}"),
            ModelIoError::Invalid(e) => write!(f, "model failed validation: {e}"),
            ModelIoError::Io(e) => write!(f, "i/o error: {e}"),
            ModelIoError::ResourceExhausted { what, bytes } => {
                write!(f, "allocation failed: {bytes} bytes for {what}")
            }
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

/// Per-layer payload descriptor (element counts of each f32 run).
#[derive(Clone, Debug, Serialize, Deserialize)]
enum LayerDesc {
    Conv { fshape: FilterShape, bn_c: usize },
    Fc { n: usize, k: usize, bn_c: usize },
    Pool,
}

#[derive(Serialize, Deserialize)]
struct Header {
    spec: NetworkSpec,
    layers: Vec<LayerDesc>,
}

/// FNV-1a 64-bit hash — the container's integrity check. Not
/// cryptographic; it exists to turn accidental corruption (bit rot,
/// truncated writes, bad transfers) into a typed decode error instead of
/// garbage weights.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_f32s(buf: &mut Vec<u8>, xs: &[f32]) {
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn read_f32s(data: &[u8], off: &mut usize, n: usize) -> Result<Vec<f32>, ModelIoError> {
    let need = n
        .checked_mul(4)
        .ok_or_else(|| ModelIoError::Corrupt(format!("element count {n} overflows")))?;
    let end = off
        .checked_add(need)
        .ok_or_else(|| ModelIoError::Corrupt("payload offset overflows".into()))?;
    if end > data.len() {
        return Err(ModelIoError::Truncated);
    }
    // Fallible reservation: `n` comes from the container, and even a
    // bounds-checked count can exceed what the allocator will grant.
    let mut out: Vec<f32> = Vec::new();
    out.try_reserve_exact(n)
        .map_err(|_| ModelIoError::ResourceExhausted {
            what: "model payload",
            bytes: need as u64,
        })?;
    out.extend(
        data[*off..end]
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])),
    );
    *off = end;
    Ok(out)
}

/// Element count a descriptor promises, with overflow-checked arithmetic
/// (descriptors come straight from an untrusted header). v3 payloads carry
/// one extra ε element per batch-norm run.
fn desc_elems(desc: &LayerDesc, version: u32) -> Result<usize, ModelIoError> {
    let over = || ModelIoError::Corrupt("layer descriptor size overflows".into());
    let eps_elems = if version >= 3 { 1 } else { 0 };
    let checked_bn = |bn_c: usize| {
        bn_c.checked_mul(4)
            .and_then(|x| x.checked_add(eps_elems))
            .ok_or_else(over)
    };
    match desc {
        LayerDesc::Conv { fshape, bn_c } => {
            let w = fshape
                .k
                .checked_mul(fshape.kh)
                .and_then(|x| x.checked_mul(fshape.kw))
                .and_then(|x| x.checked_mul(fshape.c))
                .ok_or_else(over)?;
            w.checked_add(checked_bn(*bn_c)?).ok_or_else(over)
        }
        LayerDesc::Fc { n, k, bn_c } => {
            let w = n.checked_mul(*k).ok_or_else(over)?;
            w.checked_add(checked_bn(*bn_c)?).ok_or_else(over)
        }
        LayerDesc::Pool => Ok(0),
    }
}

/// Serializes a model to bytes.
///
/// # Panics
/// If `spec` and `weights` disagree on layer count.
pub fn encode_model(spec: &NetworkSpec, weights: &NetworkWeights) -> Vec<u8> {
    assert_eq!(spec.layers.len(), weights.layers.len(), "spec/weights");
    let descs: Vec<LayerDesc> = weights
        .layers
        .iter()
        .map(|lw| match lw {
            LayerWeights::Conv { fshape, bn, .. } => LayerDesc::Conv {
                fshape: *fshape,
                bn_c: bn.gamma.len(),
            },
            LayerWeights::Fc { n, k, bn, .. } => LayerDesc::Fc {
                n: *n,
                k: *k,
                bn_c: bn.gamma.len(),
            },
            LayerWeights::Pool => LayerDesc::Pool,
        })
        .collect();
    let header = Header {
        spec: spec.clone(),
        layers: descs,
    };
    let header_json = match serde_json::to_vec(&header) {
        Ok(j) => j,
        // Header is a closed set of plain data types; serialization cannot
        // fail short of a serde-shim bug.
        Err(e) => unreachable!("header serialization failed: {e}"),
    };
    let mut body = Vec::with_capacity(header_json.len() + weights.float_bytes());
    body.extend_from_slice(&header_json);
    for lw in &weights.layers {
        match lw {
            LayerWeights::Conv { w, bn, .. } | LayerWeights::Fc { w, bn, .. } => {
                push_f32s(&mut body, w);
                push_f32s(&mut body, &bn.gamma);
                push_f32s(&mut body, &bn.beta);
                push_f32s(&mut body, &bn.mean);
                push_f32s(&mut body, &bn.var);
                push_f32s(&mut body, &[bn.eps]);
            }
            LayerWeights::Pool => {}
        }
    }
    let payload_len = (body.len() - header_json.len()) as u64;
    let mut buf = Vec::with_capacity(PREFIX_LEN + body.len());
    buf.extend_from_slice(&MODEL_MAGIC.to_le_bytes());
    buf.extend_from_slice(&MODEL_VERSION.to_le_bytes());
    buf.extend_from_slice(&(header_json.len() as u32).to_le_bytes());
    buf.extend_from_slice(&payload_len.to_le_bytes());
    buf.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    buf.extend_from_slice(&body);
    buf
}

/// Deserializes a model from bytes.
///
/// Never panics and never sizes an allocation from an unchecked length
/// field: any corruption — truncation, bit flips (caught by the
/// checksum), inflated length fields, or a decoded model that fails
/// validation — comes back as a typed [`ModelIoError`].
pub fn decode_model(data: &[u8]) -> Result<(NetworkSpec, NetworkWeights), ModelIoError> {
    if data.len() < 4 || data[..4] != MODEL_MAGIC.to_le_bytes() {
        return Err(ModelIoError::BadMagic);
    }
    if data.len() < PREFIX_LEN {
        return Err(ModelIoError::Truncated);
    }
    let version = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
    if !(MIN_MODEL_VERSION..=MODEL_VERSION).contains(&version) {
        return Err(ModelIoError::BadHeader(format!(
            "unsupported container version {version} \
             (expected {MIN_MODEL_VERSION}..={MODEL_VERSION})"
        )));
    }
    let hlen = u32::from_le_bytes([data[8], data[9], data[10], data[11]]) as usize;
    let plen = u64::from_le_bytes([
        data[12], data[13], data[14], data[15], data[16], data[17], data[18], data[19],
    ]);
    let checksum = u64::from_le_bytes([
        data[20], data[21], data[22], data[23], data[24], data[25], data[26], data[27],
    ]);
    // Bound-check the promised total size before touching the body. On a
    // 32-bit target a u64 payload_len may not even fit in usize.
    let plen = usize::try_from(plen)
        .map_err(|_| ModelIoError::Corrupt("payload length exceeds address space".into()))?;
    let body_len = hlen
        .checked_add(plen)
        .ok_or_else(|| ModelIoError::Corrupt("container size overflows".into()))?;
    let total = PREFIX_LEN
        .checked_add(body_len)
        .ok_or_else(|| ModelIoError::Corrupt("container size overflows".into()))?;
    if data.len() < total {
        return Err(ModelIoError::Truncated);
    }
    if data.len() > total {
        return Err(ModelIoError::Corrupt(format!(
            "{} trailing bytes after payload",
            data.len() - total
        )));
    }
    let body = &data[PREFIX_LEN..];
    let actual = fnv1a64(body);
    if actual != checksum {
        return Err(ModelIoError::Corrupt(format!(
            "checksum mismatch (stored {checksum:#018x}, computed {actual:#018x})"
        )));
    }
    let header: Header = serde_json::from_slice(&body[..hlen])
        .map_err(|e| ModelIoError::BadHeader(e.to_string()))?;
    // Cross-check the descriptors against the payload length before
    // allocating anything sized by them.
    let mut promised = 0usize;
    for desc in &header.layers {
        promised = promised
            .checked_add(desc_elems(desc, version)?)
            .ok_or_else(|| ModelIoError::Corrupt("layer descriptor size overflows".into()))?;
    }
    let promised_bytes = promised
        .checked_mul(4)
        .ok_or_else(|| ModelIoError::Corrupt("layer descriptor size overflows".into()))?;
    if promised_bytes > plen {
        return Err(ModelIoError::Truncated);
    }
    if promised_bytes < plen {
        return Err(ModelIoError::Corrupt(format!(
            "payload is {plen} bytes but descriptors account for {promised_bytes}"
        )));
    }
    let payload = &body[hlen..];
    let mut off = 0usize;
    let mut layers = Vec::new();
    layers
        .try_reserve_exact(header.layers.len())
        .map_err(|_| ModelIoError::ResourceExhausted {
            what: "layer table",
            bytes: (header.layers.len() as u64)
                .saturating_mul(std::mem::size_of::<LayerWeights>() as u64),
        })?;
    for desc in &header.layers {
        let lw = match desc {
            LayerDesc::Conv { fshape, bn_c } => {
                let w = read_f32s(payload, &mut off, fshape.numel())?;
                let bn = read_bn(payload, &mut off, *bn_c, version)?;
                LayerWeights::Conv {
                    w,
                    fshape: *fshape,
                    bn,
                }
            }
            LayerDesc::Fc { n, k, bn_c } => {
                let w = read_f32s(payload, &mut off, n * k)?;
                let bn = read_bn(payload, &mut off, *bn_c, version)?;
                LayerWeights::Fc {
                    w,
                    n: *n,
                    k: *k,
                    bn,
                }
            }
            LayerDesc::Pool => LayerWeights::Pool,
        };
        layers.push(lw);
    }
    let weights = NetworkWeights { layers };
    // A decoded model must be servable: full shape inference plus
    // spec/weight agreement, so downstream try_compile cannot fault.
    let shapes = header
        .spec
        .validate()
        .map_err(|e| ModelIoError::Invalid(e.to_string()))?;
    weights
        .validate_against(&header.spec, &shapes)
        .map_err(|e| ModelIoError::Invalid(e.to_string()))?;
    Ok((header.spec, weights))
}

fn read_bn(data: &[u8], off: &mut usize, c: usize, version: u32) -> Result<BnParams, ModelIoError> {
    let gamma = read_f32s(data, off, c)?;
    let beta = read_f32s(data, off, c)?;
    let mean = read_f32s(data, off, c)?;
    let var = read_f32s(data, off, c)?;
    // v2 containers predate the ε run; they were folded with the default.
    let eps = if version >= 3 {
        read_f32s(data, off, 1)?[0]
    } else {
        DEFAULT_BN_EPS
    };
    Ok(BnParams {
        gamma,
        beta,
        mean,
        var,
        eps,
    })
}

/// Saves a model to a file.
pub fn save_model(
    path: impl AsRef<std::path::Path>,
    spec: &NetworkSpec,
    weights: &NetworkWeights,
) -> Result<(), ModelIoError> {
    std::fs::write(path, encode_model(spec, weights))?;
    Ok(())
}

/// Loads a model from a file.
pub fn load_model(
    path: impl AsRef<std::path::Path>,
) -> Result<(NetworkSpec, NetworkWeights), ModelIoError> {
    decode_model(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::models::{small_cnn, tiered_cnn};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn round_trip_in_memory() {
        let spec = tiered_cnn();
        let mut rng = StdRng::seed_from_u64(8);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let bytes = encode_model(&spec, &weights);
        let (spec2, weights2) = decode_model(&bytes).unwrap();
        assert_eq!(spec, spec2);
        assert_eq!(weights, weights2);
    }

    #[test]
    fn round_trip_through_file_and_engine() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(9);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let dir = std::env::temp_dir().join("bitflow-model-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("small.btfm");
        save_model(&path, &spec, &weights).unwrap();
        let (spec2, weights2) = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Same logits from both engines.
        use bitflow_tensor::{Layout, Tensor};
        let img = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
        let a = crate::engine::Network::compile(&spec, &weights).infer(&img);
        let b = crate::engine::Network::compile(&spec2, &weights2).infer(&img);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_magic() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(10);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let mut bytes = encode_model(&spec, &weights);
        bytes[0] ^= 0xFF;
        assert!(matches!(decode_model(&bytes), Err(ModelIoError::BadMagic)));
    }

    #[test]
    fn rejects_truncated_payload() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(11);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let bytes = encode_model(&spec, &weights);
        let cut = &bytes[..bytes.len() - 100];
        assert!(matches!(decode_model(cut), Err(ModelIoError::Truncated)));
    }

    #[test]
    fn rejects_payload_bit_flip_via_checksum() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(13);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let mut bytes = encode_model(&spec, &weights);
        // Flip one bit deep in the f32 payload — without the checksum this
        // would decode "successfully" into silently-wrong weights.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode_model(&bytes),
            Err(ModelIoError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(14);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let mut bytes = encode_model(&spec, &weights);
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            decode_model(&bytes),
            Err(ModelIoError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_unsupported_version() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(15);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let mut bytes = encode_model(&spec, &weights);
        for bad in [1u32, 99] {
            let mut b = bytes.clone();
            b[4..8].copy_from_slice(&bad.to_le_bytes());
            assert!(
                matches!(decode_model(&b), Err(ModelIoError::BadHeader(_))),
                "version {bad} must be rejected"
            );
        }
        bytes[4..8].copy_from_slice(&MODEL_VERSION.to_le_bytes());
        assert!(decode_model(&bytes).is_ok());
    }

    /// Re-encodes a model in the legacy v2 layout (no ε run) so the
    /// backward-compat decode path can be exercised against real bytes.
    fn encode_model_v2(spec: &NetworkSpec, weights: &NetworkWeights) -> Vec<u8> {
        let descs: Vec<LayerDesc> = weights
            .layers
            .iter()
            .map(|lw| match lw {
                LayerWeights::Conv { fshape, bn, .. } => LayerDesc::Conv {
                    fshape: *fshape,
                    bn_c: bn.gamma.len(),
                },
                LayerWeights::Fc { n, k, bn, .. } => LayerDesc::Fc {
                    n: *n,
                    k: *k,
                    bn_c: bn.gamma.len(),
                },
                LayerWeights::Pool => LayerDesc::Pool,
            })
            .collect();
        let header = Header {
            spec: spec.clone(),
            layers: descs,
        };
        let header_json = serde_json::to_vec(&header).unwrap();
        let mut body = header_json.clone();
        for lw in &weights.layers {
            match lw {
                LayerWeights::Conv { w, bn, .. } | LayerWeights::Fc { w, bn, .. } => {
                    push_f32s(&mut body, w);
                    push_f32s(&mut body, &bn.gamma);
                    push_f32s(&mut body, &bn.beta);
                    push_f32s(&mut body, &bn.mean);
                    push_f32s(&mut body, &bn.var);
                }
                LayerWeights::Pool => {}
            }
        }
        let payload_len = (body.len() - header_json.len()) as u64;
        let mut buf = Vec::with_capacity(PREFIX_LEN + body.len());
        buf.extend_from_slice(&MODEL_MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&(header_json.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload_len.to_le_bytes());
        buf.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        buf.extend_from_slice(&body);
        buf
    }

    #[test]
    fn decodes_legacy_v2_container_with_default_eps() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(16);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let bytes = encode_model_v2(&spec, &weights);
        let (spec2, weights2) = decode_model(&bytes).unwrap();
        assert_eq!(spec, spec2);
        // A v2 payload has no ε run: every layer comes back with the
        // default, and everything else survives byte-exactly.
        for (a, b) in weights.layers.iter().zip(&weights2.layers) {
            match (a, b) {
                (LayerWeights::Conv { w, bn, .. }, LayerWeights::Conv { w: w2, bn: bn2, .. })
                | (LayerWeights::Fc { w, bn, .. }, LayerWeights::Fc { w: w2, bn: bn2, .. }) => {
                    assert_eq!(w, w2);
                    assert_eq!(bn.gamma, bn2.gamma);
                    assert_eq!(bn.beta, bn2.beta);
                    assert_eq!(bn.mean, bn2.mean);
                    assert_eq!(bn.var, bn2.var);
                    assert_eq!(bn2.eps, DEFAULT_BN_EPS);
                }
                (LayerWeights::Pool, LayerWeights::Pool) => {}
                _ => panic!("layer kinds diverged"),
            }
        }
    }

    /// Property-style round-trip sweep: across many random models with
    /// randomized per-layer ε, encode→decode is the identity, and the v2
    /// re-encoding of the same model decodes with ε collapsed to the
    /// default — covering both the new field and old-version decode.
    #[test]
    fn round_trip_property_covers_eps_and_legacy_decode() {
        for seed in 0..16u64 {
            let spec = if seed % 2 == 0 {
                small_cnn()
            } else {
                tiered_cnn()
            };
            let mut rng = StdRng::seed_from_u64(0xE9_5000 + seed);
            let mut weights = NetworkWeights::random_with_bn(&spec, &mut rng);
            for lw in &mut weights.layers {
                if let LayerWeights::Conv { bn, .. } | LayerWeights::Fc { bn, .. } = lw {
                    bn.eps = rng.gen_range(1e-6f32..1e-2);
                }
            }
            let (spec2, weights2) = decode_model(&encode_model(&spec, &weights)).unwrap();
            assert_eq!(spec, spec2, "seed {seed}: spec round-trip");
            assert_eq!(
                weights, weights2,
                "seed {seed}: weights (incl. ε) round-trip"
            );

            let (_, legacy) = decode_model(&encode_model_v2(&spec, &weights)).unwrap();
            for lw in &legacy.layers {
                if let LayerWeights::Conv { bn, .. } | LayerWeights::Fc { bn, .. } = lw {
                    assert_eq!(bn.eps, DEFAULT_BN_EPS, "seed {seed}: legacy ε default");
                }
            }
        }
    }

    #[test]
    fn payload_is_compact() {
        // Container overhead must be tiny relative to raw weights.
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(12);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let bytes = encode_model(&spec, &weights);
        let raw = weights.float_bytes();
        assert!(
            bytes.len() < raw + raw / 10 + 4096,
            "{} vs {}",
            bytes.len(),
            raw
        );
    }
}
