//! Model persistence: one self-describing binary container holding a
//! [`NetworkSpec`] plus its [`NetworkWeights`].
//!
//! Format: `magic ("BTFM") | u32 header_len | JSON header | payload`, where
//! the header is the spec plus per-layer payload descriptors and the
//! payload is raw little-endian `f32` runs (weights, then γ/β/μ/σ² for
//! parametric layers). Keeps VGG-scale models loadable without a 2×-size
//! JSON blow-up.

use crate::spec::NetworkSpec;
use crate::weights::{BnParams, LayerWeights, NetworkWeights};
use bitflow_tensor::FilterShape;
use serde::{Deserialize, Serialize};

/// Container magic: "BTFM" (BitFlow model).
pub const MODEL_MAGIC: u32 = 0x4254_464D;

/// Errors from decoding a model container.
#[derive(Debug)]
pub enum ModelIoError {
    /// Bad magic number.
    BadMagic,
    /// Header did not parse.
    BadHeader(String),
    /// Payload shorter than the header promises.
    Truncated,
    /// Underlying I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::BadMagic => write!(f, "bad magic (not a BitFlow model)"),
            ModelIoError::BadHeader(e) => write!(f, "malformed model header: {e}"),
            ModelIoError::Truncated => write!(f, "model payload truncated"),
            ModelIoError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

/// Per-layer payload descriptor (element counts of each f32 run).
#[derive(Clone, Debug, Serialize, Deserialize)]
enum LayerDesc {
    Conv { fshape: FilterShape, bn_c: usize },
    Fc { n: usize, k: usize, bn_c: usize },
    Pool,
}

#[derive(Serialize, Deserialize)]
struct Header {
    spec: NetworkSpec,
    layers: Vec<LayerDesc>,
}

fn push_f32s(buf: &mut Vec<u8>, xs: &[f32]) {
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn read_f32s(data: &[u8], off: &mut usize, n: usize) -> Result<Vec<f32>, ModelIoError> {
    let need = n * 4;
    if *off + need > data.len() {
        return Err(ModelIoError::Truncated);
    }
    let out = data[*off..*off + need]
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect();
    *off += need;
    Ok(out)
}

/// Serializes a model to bytes.
pub fn encode_model(spec: &NetworkSpec, weights: &NetworkWeights) -> Vec<u8> {
    assert_eq!(spec.layers.len(), weights.layers.len(), "spec/weights");
    let descs: Vec<LayerDesc> = weights
        .layers
        .iter()
        .map(|lw| match lw {
            LayerWeights::Conv { fshape, bn, .. } => LayerDesc::Conv {
                fshape: *fshape,
                bn_c: bn.gamma.len(),
            },
            LayerWeights::Fc { n, k, bn, .. } => LayerDesc::Fc {
                n: *n,
                k: *k,
                bn_c: bn.gamma.len(),
            },
            LayerWeights::Pool => LayerDesc::Pool,
        })
        .collect();
    let header = Header {
        spec: spec.clone(),
        layers: descs,
    };
    let header_json = serde_json::to_vec(&header).expect("header serializes");
    let mut buf = Vec::with_capacity(header_json.len() + 16 + weights.float_bytes());
    buf.extend_from_slice(&MODEL_MAGIC.to_le_bytes());
    buf.extend_from_slice(&(header_json.len() as u32).to_le_bytes());
    buf.extend_from_slice(&header_json);
    for lw in &weights.layers {
        match lw {
            LayerWeights::Conv { w, bn, .. } | LayerWeights::Fc { w, bn, .. } => {
                push_f32s(&mut buf, w);
                push_f32s(&mut buf, &bn.gamma);
                push_f32s(&mut buf, &bn.beta);
                push_f32s(&mut buf, &bn.mean);
                push_f32s(&mut buf, &bn.var);
            }
            LayerWeights::Pool => {}
        }
    }
    buf
}

/// Deserializes a model from bytes.
pub fn decode_model(data: &[u8]) -> Result<(NetworkSpec, NetworkWeights), ModelIoError> {
    if data.len() < 8 || data[..4] != MODEL_MAGIC.to_le_bytes() {
        return Err(ModelIoError::BadMagic);
    }
    let hlen = u32::from_le_bytes([data[4], data[5], data[6], data[7]]) as usize;
    if data.len() < 8 + hlen {
        return Err(ModelIoError::Truncated);
    }
    let header: Header = serde_json::from_slice(&data[8..8 + hlen])
        .map_err(|e| ModelIoError::BadHeader(e.to_string()))?;
    let mut off = 8 + hlen;
    let mut layers = Vec::with_capacity(header.layers.len());
    for desc in &header.layers {
        let lw = match desc {
            LayerDesc::Conv { fshape, bn_c } => {
                let w = read_f32s(data, &mut off, fshape.numel())?;
                let bn = read_bn(data, &mut off, *bn_c)?;
                LayerWeights::Conv {
                    w,
                    fshape: *fshape,
                    bn,
                }
            }
            LayerDesc::Fc { n, k, bn_c } => {
                let w = read_f32s(data, &mut off, n * k)?;
                let bn = read_bn(data, &mut off, *bn_c)?;
                LayerWeights::Fc {
                    w,
                    n: *n,
                    k: *k,
                    bn,
                }
            }
            LayerDesc::Pool => LayerWeights::Pool,
        };
        layers.push(lw);
    }
    Ok((header.spec, NetworkWeights { layers }))
}

fn read_bn(data: &[u8], off: &mut usize, c: usize) -> Result<BnParams, ModelIoError> {
    Ok(BnParams {
        gamma: read_f32s(data, off, c)?,
        beta: read_f32s(data, off, c)?,
        mean: read_f32s(data, off, c)?,
        var: read_f32s(data, off, c)?,
    })
}

/// Saves a model to a file.
pub fn save_model(
    path: impl AsRef<std::path::Path>,
    spec: &NetworkSpec,
    weights: &NetworkWeights,
) -> Result<(), ModelIoError> {
    std::fs::write(path, encode_model(spec, weights))?;
    Ok(())
}

/// Loads a model from a file.
pub fn load_model(
    path: impl AsRef<std::path::Path>,
) -> Result<(NetworkSpec, NetworkWeights), ModelIoError> {
    decode_model(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{small_cnn, tiered_cnn};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn round_trip_in_memory() {
        let spec = tiered_cnn();
        let mut rng = StdRng::seed_from_u64(8);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let bytes = encode_model(&spec, &weights);
        let (spec2, weights2) = decode_model(&bytes).unwrap();
        assert_eq!(spec, spec2);
        assert_eq!(weights, weights2);
    }

    #[test]
    fn round_trip_through_file_and_engine() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(9);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let dir = std::env::temp_dir().join("bitflow-model-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("small.btfm");
        save_model(&path, &spec, &weights).unwrap();
        let (spec2, weights2) = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Same logits from both engines.
        use bitflow_tensor::{Layout, Tensor};
        let img = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
        let a = crate::engine::Network::compile(&spec, &weights).infer(&img);
        let b = crate::engine::Network::compile(&spec2, &weights2).infer(&img);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_magic() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(10);
        let weights = NetworkWeights::random(&spec, &mut rng);
        let mut bytes = encode_model(&spec, &weights);
        bytes[0] ^= 0xFF;
        assert!(matches!(decode_model(&bytes), Err(ModelIoError::BadMagic)));
    }

    #[test]
    fn rejects_truncated_payload() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(11);
        let weights = NetworkWeights::random(&spec, &mut rng);
        let bytes = encode_model(&spec, &weights);
        let cut = &bytes[..bytes.len() - 100];
        assert!(matches!(decode_model(cut), Err(ModelIoError::Truncated)));
    }

    #[test]
    fn payload_is_compact() {
        // Container overhead must be tiny relative to raw weights.
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(12);
        let weights = NetworkWeights::random(&spec, &mut rng);
        let bytes = encode_model(&spec, &weights);
        let raw = weights.float_bytes();
        assert!(
            bytes.len() < raw + raw / 10 + 4096,
            "{} vs {}",
            bytes.len(),
            raw
        );
    }
}
