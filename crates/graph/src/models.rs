//! Model definitions: VGG-16 / VGG-19 (the paper's evaluation network,
//! Table IV geometry) and small networks for tests and examples.

use crate::spec::{LayerSpec, NetworkSpec};
use bitflow_ops::ConvParams;
use bitflow_tensor::Shape;

fn conv(name: &str, k: usize) -> LayerSpec {
    LayerSpec::Conv {
        name: name.into(),
        k,
        params: ConvParams::VGG_CONV,
    }
}

fn pool(name: &str) -> LayerSpec {
    LayerSpec::Pool {
        name: name.into(),
        params: ConvParams::VGG_POOL,
    }
}

fn fc(name: &str, k: usize) -> LayerSpec {
    LayerSpec::Fc {
        name: name.into(),
        k,
    }
}

/// VGG-16 (configuration D): 13 convolutions + 5 pools + 3 FCs over a
/// 224×224×3 input. Uses 3×3 stride-1 pad-1 filters exclusively, as the
/// paper notes.
pub fn vgg16() -> NetworkSpec {
    NetworkSpec {
        name: "VGG16".into(),
        input: Shape::hwc(224, 224, 3),
        layers: vec![
            conv("conv1.1", 64),
            conv("conv1.2", 64),
            pool("pool1"),
            conv("conv2.1", 128),
            conv("conv2.2", 128),
            pool("pool2"),
            conv("conv3.1", 256),
            conv("conv3.2", 256),
            conv("conv3.3", 256),
            pool("pool3"),
            conv("conv4.1", 512),
            conv("conv4.2", 512),
            conv("conv4.3", 512),
            pool("pool4"),
            conv("conv5.1", 512),
            conv("conv5.2", 512),
            conv("conv5.3", 512),
            pool("pool5"),
            fc("fc6", 4096),
            fc("fc7", 4096),
            fc("fc8", 1000),
        ],
    }
}

/// VGG-19 (configuration E): VGG-16 plus one extra conv in blocks 3–5
/// ("3 more convolution operators", paper §V).
pub fn vgg19() -> NetworkSpec {
    NetworkSpec {
        name: "VGG19".into(),
        input: Shape::hwc(224, 224, 3),
        layers: vec![
            conv("conv1.1", 64),
            conv("conv1.2", 64),
            pool("pool1"),
            conv("conv2.1", 128),
            conv("conv2.2", 128),
            pool("pool2"),
            conv("conv3.1", 256),
            conv("conv3.2", 256),
            conv("conv3.3", 256),
            conv("conv3.4", 256),
            pool("pool3"),
            conv("conv4.1", 512),
            conv("conv4.2", 512),
            conv("conv4.3", 512),
            conv("conv4.4", 512),
            pool("pool4"),
            conv("conv5.1", 512),
            conv("conv5.2", 512),
            conv("conv5.3", 512),
            conv("conv5.4", 512),
            pool("pool5"),
            fc("fc6", 4096),
            fc("fc7", 4096),
            fc("fc8", 1000),
        ],
    }
}

/// A small conv–pool–fc chain for fast tests: 8×8×16 input, one 32-filter
/// conv, one pool, a 10-way FC head. Its 32-channel conv output exercises
/// the non-word-aligned flatten path.
pub fn small_cnn() -> NetworkSpec {
    NetworkSpec {
        name: "SmallCNN".into(),
        input: Shape::hwc(8, 8, 16),
        layers: vec![conv("conv1", 32), pool("pool1"), fc("fc1", 10)],
    }
}

/// A deeper small network covering every scheduler tier in one model:
/// channels 3 → 64 → 128 → 256 → 512 with pools in between, FC head.
pub fn tiered_cnn() -> NetworkSpec {
    NetworkSpec {
        name: "TieredCNN".into(),
        input: Shape::hwc(32, 32, 3),
        layers: vec![
            conv("conv1", 64),
            pool("pool1"),
            conv("conv2", 128),
            pool("pool2"),
            conv("conv3", 256),
            pool("pool3"),
            conv("conv4", 512),
            pool("pool4"),
            fc("fc1", 128),
            fc("fc2", 10),
        ],
    }
}

/// A pure-MLP network (for FC-only experiments and the original BNN
/// paper's fully-connected setting): n-dim input, two hidden binary FC
/// layers, 10-way head.
pub fn mlp(input_dim: usize, hidden: usize) -> NetworkSpec {
    NetworkSpec {
        name: format!("MLP-{input_dim}-{hidden}"),
        input: Shape::vec(input_dim),
        layers: vec![fc("fc1", hidden), fc("fc2", hidden), fc("fc3", 10)],
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::spec::LayerIo;

    #[test]
    fn vgg16_table_iv_geometry() {
        // Paper Table IV rows: conv2.1 (112,112,64→128), conv3.1
        // (56,56,128→256), conv4.1 (28,28,256→512), conv5.1 (14,14,512→512),
        // fc6 (25088→4096), fc7 (4096→4096), pool4 (28²×512), pool5 (14²×512).
        let spec = vgg16();
        let shapes = spec.infer_shapes();
        let at = |name: &str| {
            let i = spec.layers.iter().position(|l| l.name() == name).unwrap();
            (i, shapes[i])
        };
        let (i, s) = at("conv2.1");
        assert_eq!(
            s,
            LayerIo::Map {
                h: 112,
                w: 112,
                c: 128
            }
        );
        assert_eq!(spec.input_width(i, &shapes), 64);
        let (i, s) = at("conv3.1");
        assert_eq!(
            s,
            LayerIo::Map {
                h: 56,
                w: 56,
                c: 256
            }
        );
        assert_eq!(spec.input_width(i, &shapes), 128);
        let (i, s) = at("conv4.1");
        assert_eq!(
            s,
            LayerIo::Map {
                h: 28,
                w: 28,
                c: 512
            }
        );
        assert_eq!(spec.input_width(i, &shapes), 256);
        let (i, s) = at("conv5.1");
        assert_eq!(
            s,
            LayerIo::Map {
                h: 14,
                w: 14,
                c: 512
            }
        );
        assert_eq!(spec.input_width(i, &shapes), 512);
        let (_, s) = at("pool4");
        assert_eq!(
            s,
            LayerIo::Map {
                h: 14,
                w: 14,
                c: 512
            }
        );
        let (_, s) = at("pool5");
        assert_eq!(s, LayerIo::Map { h: 7, w: 7, c: 512 });
        let (i, s) = at("fc6");
        assert_eq!(s, LayerIo::Vector { n: 4096 });
        assert_eq!(shapes[i - 1].numel(), 25088);
        let (_, s) = at("fc8");
        assert_eq!(s, LayerIo::Vector { n: 1000 });
    }

    #[test]
    fn vgg19_has_three_more_convs() {
        let convs16 = vgg16()
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Conv { .. }))
            .count();
        let convs19 = vgg19()
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Conv { .. }))
            .count();
        assert_eq!(convs16, 13);
        assert_eq!(convs19, 16);
    }

    #[test]
    fn vgg16_float_model_size_near_500mb() {
        // Paper Table V: full-precision VGG ≈ 528 MB, binarized ≈ 16.5 MB.
        use crate::weights::NetworkWeights;
        use rand::{rngs::StdRng, SeedableRng};
        let spec = vgg16();
        let mut rng = StdRng::seed_from_u64(0);
        let w = NetworkWeights::random(&spec, &mut rng);
        let float_mb = w.float_bytes() as f64 / (1024.0 * 1024.0);
        let packed_mb = w.packed_bytes() as f64 / (1024.0 * 1024.0);
        assert!((500.0..560.0).contains(&float_mb), "float {float_mb} MB");
        assert!((14.0..20.0).contains(&packed_mb), "packed {packed_mb} MB");
    }

    #[test]
    fn tiered_cnn_shapes() {
        let spec = tiered_cnn();
        let shapes = spec.infer_shapes();
        assert_eq!(*shapes.last().unwrap(), LayerIo::Vector { n: 10 });
        assert_eq!(shapes[6], LayerIo::Map { h: 4, w: 4, c: 512 });
    }

    #[test]
    fn mlp_is_vector_only() {
        let spec = mlp(784, 256);
        let shapes = spec.infer_shapes();
        assert_eq!(shapes[0], LayerIo::Vector { n: 256 });
        assert_eq!(shapes[2], LayerIo::Vector { n: 10 });
    }
}
