//! Static memory planning report.
//!
//! The paper's network-level optimization pre-allocates "all the memory
//! needed for storing the output and intermediate results by analysis of
//! the neural network as a static computational graph". The engine does
//! that at compile time — the plan lives in the shared
//! [`crate::engine::CompiledModel`], and every
//! [`crate::engine::InferenceContext`] allocates one copy of these buffers.
//! This module derives the same numbers *without* compiling, so tools and
//! docs can report a model's runtime footprint from its spec alone; for a
//! concurrent deployment, total activation memory is
//! [`MemoryPlan::contexts_bytes`] for the chosen session count on top of the
//! one shared packed-weight copy.

use crate::spec::{LayerIo, LayerSpec, NetworkSpec};
use serde::{Deserialize, Serialize};

/// One planned buffer.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedBuffer {
    /// Producing layer (or "input").
    pub producer: String,
    /// Buffer kind.
    pub kind: BufferKind,
    /// Logical activation elements (h·w·c or n), before padding/pressing.
    pub logical_elems: usize,
    /// Allocated bytes, including padding margins and press-tail.
    pub bytes: usize,
}

/// What a planned buffer holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferKind {
    /// Pressed (bit-packed) activation map, padded for its consumer.
    PressedMap,
    /// Float scratch map (conv counts).
    FloatMap,
    /// Packed or float vector.
    Vector,
}

/// The complete activation-memory plan of a binary network.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// Buffers in execution order.
    pub buffers: Vec<PlannedBuffer>,
}

impl MemoryPlan {
    /// Plans the binary engine's buffers for `spec` (mirrors
    /// [`crate::engine::Network::compile`]'s allocations).
    pub fn for_binary(spec: &NetworkSpec) -> Self {
        let shapes = spec.infer_shapes();
        let mut buffers = Vec::new();
        // Input pressed buffer (padded for layer 0).
        let pad0 = spec.layers.first().map_or(0, LayerSpec::input_pad);
        buffers.push(PlannedBuffer {
            producer: "input".into(),
            kind: BufferKind::PressedMap,
            logical_elems: spec.input.numel(),
            bytes: pressed_bytes(spec.input.h, spec.input.w, spec.input.c, pad0),
        });
        for (i, layer) in spec.layers.iter().enumerate() {
            let out_pad = spec.layers.get(i + 1).map_or(0, LayerSpec::input_pad);
            match (layer, shapes[i]) {
                (LayerSpec::Conv { name, k, .. }, LayerIo::Map { h, w, .. }) => {
                    // Scratch float counts + pressed signed output.
                    buffers.push(PlannedBuffer {
                        producer: name.clone(),
                        kind: BufferKind::FloatMap,
                        logical_elems: h * w * k,
                        bytes: h * w * k * 4,
                    });
                    buffers.push(PlannedBuffer {
                        producer: name.clone(),
                        kind: BufferKind::PressedMap,
                        logical_elems: h * w * k,
                        bytes: pressed_bytes(h, w, *k, out_pad),
                    });
                }
                (LayerSpec::Pool { name, .. }, LayerIo::Map { h, w, c }) => {
                    buffers.push(PlannedBuffer {
                        producer: name.clone(),
                        kind: BufferKind::PressedMap,
                        logical_elems: h * w * c,
                        bytes: pressed_bytes(h, w, c, out_pad),
                    });
                }
                (LayerSpec::Fc { name, k }, _) => {
                    let is_last = i + 1 == spec.layers.len();
                    // Counts vector (+ packed output when not last).
                    buffers.push(PlannedBuffer {
                        producer: name.clone(),
                        kind: BufferKind::Vector,
                        logical_elems: *k,
                        bytes: k * 4 + if is_last { 0 } else { k.div_ceil(64) * 8 },
                    });
                }
                (l, _) => panic!("inconsistent plan at {}", l.name()),
            }
        }
        Self { buffers }
    }

    /// Total planned bytes for one inference session (one
    /// [`crate::engine::InferenceContext`]).
    pub fn total_bytes(&self) -> usize {
        self.buffers.iter().map(|b| b.bytes).sum()
    }

    /// Activation bytes for `n` concurrent sessions sharing one compiled
    /// model: contexts scale linearly, the packed weights do not.
    pub fn contexts_bytes(&self, n: usize) -> usize {
        n * self.total_bytes()
    }

    /// Bytes a naive float engine would hold for the same activations
    /// (4 bytes/element, no pressing) — the compression the pressed layout
    /// buys at run time, on top of the 32× weight compression.
    pub fn float_equivalent_bytes(&self) -> usize {
        self.buffers
            .iter()
            .filter(|b| b.kind != BufferKind::FloatMap)
            .map(|b| b.logical_elems * 4)
            .sum()
    }
}

fn pressed_bytes(h: usize, w: usize, c: usize, pad: usize) -> usize {
    (h + 2 * pad) * (w + 2 * pad) * c.div_ceil(64) * 8
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::models::{small_cnn, vgg16};
    use crate::weights::NetworkWeights;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn plan_matches_compiled_engine() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(3);
        let weights = NetworkWeights::random(&spec, &mut rng);
        let net = crate::engine::Network::compile(&spec, &weights);
        let plan = MemoryPlan::for_binary(&spec);
        // The engine adds a Reflatten packed buffer for the non-aligned
        // flatten; the plan's total must match within that one buffer.
        let flatten_bytes = (4 * 4 * 32usize).div_ceil(64) * 8;
        assert_eq!(plan.total_bytes() + flatten_bytes, net.activation_bytes());
        assert_eq!(plan.contexts_bytes(3), 3 * plan.total_bytes());
    }

    #[test]
    fn plan_matches_every_fresh_context() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(4);
        let weights = NetworkWeights::random(&spec, &mut rng);
        let model = crate::engine::CompiledModel::compile(&spec, &weights);
        let a = model.new_context();
        let b = model.new_context();
        assert_eq!(a.activation_bytes(), model.context_bytes());
        assert_eq!(b.activation_bytes(), model.context_bytes());
    }

    #[test]
    fn vgg16_activation_memory_reasonable() {
        let plan = MemoryPlan::for_binary(&vgg16());
        let mb = plan.total_bytes() as f64 / (1024.0 * 1024.0);
        // Dominated by the conv scratch float maps (largest: 112·112·128
        // floats ≈ 6.1 MB) plus pressed maps ≈ a few hundred KB each.
        assert!(mb < 64.0, "plan too large: {mb} MB");
        assert!(plan.total_bytes() > 0);
        assert!(plan.float_equivalent_bytes() > plan.total_bytes() / 4);
    }

    #[test]
    fn buffer_inventory_names() {
        let plan = MemoryPlan::for_binary(&small_cnn());
        let names: Vec<&str> = plan.buffers.iter().map(|b| b.producer.as_str()).collect();
        assert_eq!(names, vec!["input", "conv1", "conv1", "pool1", "fc1"]);
    }
}
