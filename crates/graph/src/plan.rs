//! Static memory planning report.
//!
//! The paper's network-level optimization pre-allocates "all the memory
//! needed for storing the output and intermediate results by analysis of
//! the neural network as a static computational graph". The engine does
//! that at compile time — the plan lives in the shared
//! [`crate::engine::CompiledModel`], and every
//! [`crate::engine::InferenceContext`] allocates one copy of these buffers.
//! This module derives the same numbers *without* compiling, so tools and
//! docs can report a model's runtime footprint from its spec alone; for a
//! concurrent deployment, total activation memory is
//! [`MemoryPlan::contexts_bytes`] for the chosen session count on top of the
//! one shared packed-weight copy.

use crate::spec::{LayerIo, LayerSpec, NetworkSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Compile-time planning options, shared by [`MemoryPlan`] and
/// [`crate::engine::CompiledModel`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanOptions {
    /// Fuse Conv→BN→Sign chains into a single integer-threshold node
    /// (default). When false every conv materializes its float count map
    /// and a separate BN+sign pass re-reads it — the paper's unfused
    /// reference dataflow, kept as an A/B and debugging path.
    pub fuse: bool,
    /// Conv layers whose float output is observed by something other than
    /// the following BN+sign (e.g. a profiling tap). Fusion would make the
    /// float map unobservable, so these chains are never fused.
    pub float_taps: BTreeSet<String>,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            fuse: true,
            float_taps: BTreeSet::new(),
        }
    }
}

impl PlanOptions {
    /// Options honoring the `BITFLOW_FUSE` environment variable
    /// (`0`/`false`/`off`/`no` disable fusion; anything else, or unset,
    /// enables it).
    pub fn from_env() -> Self {
        Self {
            fuse: fuse_enabled_from(std::env::var("BITFLOW_FUSE").ok().as_deref()),
            ..Self::default()
        }
    }

    /// The unfused reference plan (equivalent to `BITFLOW_FUSE=0`).
    pub fn unfused() -> Self {
        Self {
            fuse: false,
            ..Self::default()
        }
    }
}

/// Interprets a `BITFLOW_FUSE` value: unset means fused; only explicit
/// `0`/`false`/`off`/`no` (case-insensitive) disable it.
pub fn fuse_enabled_from(v: Option<&str>) -> bool {
    match v {
        None => true,
        Some(s) => !matches!(
            s.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
    }
}

/// One node of the compiled execution plan — the introspectable shape of
/// what [`crate::engine::CompiledModel`] will run, before slot assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanNode {
    /// Binarize + press the float input tensor.
    BinarizeInput,
    /// Binary convolution. `fused_sign == true` means the BN+sign epilogue
    /// runs inside the conv on the integer dot products and the output is
    /// written already pressed; `false` means the conv writes a float count
    /// map consumed by a separate [`PlanNode::BnSign`].
    Conv {
        /// Layer name from the spec.
        name: String,
        /// Whether the sign epilogue is fused into the conv.
        fused_sign: bool,
    },
    /// Standalone BN-threshold + sign + pack pass over a float count map
    /// (only present in unfused plans or behind float taps).
    BnSign {
        /// Name of the conv layer whose counts this binarizes.
        name: String,
    },
    /// Binary max-pool.
    Pool {
        /// Layer name from the spec.
        name: String,
    },
    /// Hidden fully-connected layer: binary GEMV + BN+sign back to bits.
    FcSign {
        /// Layer name from the spec.
        name: String,
    },
    /// Final fully-connected layer emitting float logits (the softmax
    /// tail). Never fused: its float output *is* the network's result.
    FcOut {
        /// Layer name from the spec.
        name: String,
    },
}

impl PlanNode {
    /// The spec layer this node belongs to, if any.
    pub fn layer_name(&self) -> Option<&str> {
        match self {
            PlanNode::BinarizeInput => None,
            PlanNode::Conv { name, .. }
            | PlanNode::BnSign { name }
            | PlanNode::Pool { name }
            | PlanNode::FcSign { name }
            | PlanNode::FcOut { name } => Some(name),
        }
    }
}

/// The execution plan: the op chain after the fusion pass, exposed for
/// plan introspection (tests assert exactly which chains fused).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecPlan {
    nodes: Vec<PlanNode>,
}

impl ExecPlan {
    /// Builds the plan for `spec`: expands every conv into the unfused
    /// Conv+BnSign pair, then (when `opts.fuse`) collapses each legal
    /// Conv→BN→Sign chain into a fused conv node.
    ///
    /// Fusion legality: the chain's float count map must have exactly one
    /// consumer — the BN+sign that immediately follows it. Convs named in
    /// `opts.float_taps` keep their float map observable and stay unfused;
    /// the final FC (softmax tail) is never a candidate because its float
    /// output is the network's result.
    pub fn build(spec: &NetworkSpec, opts: &PlanOptions) -> Self {
        let mut nodes = vec![PlanNode::BinarizeInput];
        let last = spec.layers.len().saturating_sub(1);
        for (i, layer) in spec.layers.iter().enumerate() {
            match layer {
                LayerSpec::Conv { name, .. } => {
                    nodes.push(PlanNode::Conv {
                        name: name.clone(),
                        fused_sign: false,
                    });
                    nodes.push(PlanNode::BnSign { name: name.clone() });
                }
                LayerSpec::Pool { name, .. } => {
                    nodes.push(PlanNode::Pool { name: name.clone() });
                }
                LayerSpec::Fc { name, .. } => {
                    if i == last {
                        nodes.push(PlanNode::FcOut { name: name.clone() });
                    } else {
                        nodes.push(PlanNode::FcSign { name: name.clone() });
                    }
                }
            }
        }
        let mut plan = Self { nodes };
        if opts.fuse {
            plan.fuse(&opts.float_taps);
        }
        plan
    }

    /// The fusion pass: rewrites each `Conv{fused_sign: false}` directly
    /// followed by its own `BnSign` into `Conv{fused_sign: true}`, unless
    /// the conv's float output has another consumer (`float_taps`).
    fn fuse(&mut self, float_taps: &BTreeSet<String>) {
        let mut fused = Vec::with_capacity(self.nodes.len());
        let nodes = std::mem::take(&mut self.nodes);
        let mut iter = nodes.into_iter().peekable();
        while let Some(node) = iter.next() {
            match node {
                PlanNode::Conv {
                    name,
                    fused_sign: false,
                } if !float_taps.contains(&name)
                    && matches!(iter.peek(), Some(PlanNode::BnSign { name: bn }) if *bn == name) =>
                {
                    iter.next(); // consume the BnSign — it runs inside the conv now
                    fused.push(PlanNode::Conv {
                        name,
                        fused_sign: true,
                    });
                }
                other => fused.push(other),
            }
        }
        self.nodes = fused;
    }

    /// The node chain, in execution order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// Names of convs whose sign epilogue fused, in execution order.
    pub fn fused_convs(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                PlanNode::Conv {
                    name,
                    fused_sign: true,
                } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Names of convs still running the two-pass float dataflow.
    pub fn unfused_convs(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                PlanNode::Conv {
                    name,
                    fused_sign: false,
                } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }
}

/// One planned buffer.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedBuffer {
    /// Producing layer (or "input").
    pub producer: String,
    /// Buffer kind.
    pub kind: BufferKind,
    /// Logical activation elements (h·w·c or n), before padding/pressing.
    pub logical_elems: usize,
    /// Allocated bytes, including padding margins and press-tail.
    pub bytes: usize,
}

/// What a planned buffer holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferKind {
    /// Pressed (bit-packed) activation map, padded for its consumer.
    PressedMap,
    /// Float scratch map (conv counts).
    FloatMap,
    /// Packed or float vector.
    Vector,
}

/// The complete activation-memory plan of a binary network.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// Buffers in execution order.
    pub buffers: Vec<PlannedBuffer>,
}

impl MemoryPlan {
    /// Plans the binary engine's buffers for `spec` (mirrors
    /// [`crate::engine::Network::compile`]'s allocations) under the
    /// environment's planning options (`BITFLOW_FUSE`).
    pub fn for_binary(spec: &NetworkSpec) -> Self {
        Self::for_binary_with(spec, &PlanOptions::from_env())
    }

    /// Plans the binary engine's buffers for `spec` under explicit options.
    pub fn for_binary_with(spec: &NetworkSpec, opts: &PlanOptions) -> Self {
        let shapes = spec.infer_shapes();
        let plan = ExecPlan::build(spec, opts);
        let fused: BTreeSet<&str> = plan.fused_convs().into_iter().collect();
        let mut buffers = Vec::new();
        // Input pressed buffer (padded for layer 0).
        let pad0 = spec.layers.first().map_or(0, LayerSpec::input_pad);
        buffers.push(PlannedBuffer {
            producer: "input".into(),
            kind: BufferKind::PressedMap,
            logical_elems: spec.input.numel(),
            bytes: pressed_bytes(spec.input.h, spec.input.w, spec.input.c, pad0),
        });
        for (i, layer) in spec.layers.iter().enumerate() {
            let out_pad = spec.layers.get(i + 1).map_or(0, LayerSpec::input_pad);
            match (layer, shapes[i]) {
                (LayerSpec::Conv { name, k, .. }, LayerIo::Map { h, w, .. }) => {
                    // Scratch floats + pressed signed output. A fused conv
                    // only needs one window of dots (k floats) — the whole
                    // h·w·k count map disappears from the plan.
                    let scratch_elems = if fused.contains(name.as_str()) {
                        *k
                    } else {
                        h * w * k
                    };
                    buffers.push(PlannedBuffer {
                        producer: name.clone(),
                        kind: BufferKind::FloatMap,
                        logical_elems: scratch_elems,
                        bytes: scratch_elems * 4,
                    });
                    buffers.push(PlannedBuffer {
                        producer: name.clone(),
                        kind: BufferKind::PressedMap,
                        logical_elems: h * w * k,
                        bytes: pressed_bytes(h, w, *k, out_pad),
                    });
                }
                (LayerSpec::Pool { name, .. }, LayerIo::Map { h, w, c }) => {
                    buffers.push(PlannedBuffer {
                        producer: name.clone(),
                        kind: BufferKind::PressedMap,
                        logical_elems: h * w * c,
                        bytes: pressed_bytes(h, w, c, out_pad),
                    });
                }
                (LayerSpec::Fc { name, k }, _) => {
                    let is_last = i + 1 == spec.layers.len();
                    // Counts vector (+ packed output when not last).
                    buffers.push(PlannedBuffer {
                        producer: name.clone(),
                        kind: BufferKind::Vector,
                        logical_elems: *k,
                        bytes: k * 4 + if is_last { 0 } else { k.div_ceil(64) * 8 },
                    });
                }
                (l, _) => panic!("inconsistent plan at {}", l.name()),
            }
        }
        Self { buffers }
    }

    /// Total planned bytes for one inference session (one
    /// [`crate::engine::InferenceContext`]).
    pub fn total_bytes(&self) -> usize {
        self.buffers.iter().map(|b| b.bytes).sum()
    }

    /// Activation bytes for `n` concurrent sessions sharing one compiled
    /// model: contexts scale linearly, the packed weights do not.
    pub fn contexts_bytes(&self, n: usize) -> usize {
        n * self.total_bytes()
    }

    /// Bytes a naive float engine would hold for the same activations
    /// (4 bytes/element, no pressing) — the compression the pressed layout
    /// buys at run time, on top of the 32× weight compression.
    pub fn float_equivalent_bytes(&self) -> usize {
        self.buffers
            .iter()
            .filter(|b| b.kind != BufferKind::FloatMap)
            .map(|b| b.logical_elems * 4)
            .sum()
    }
}

fn pressed_bytes(h: usize, w: usize, c: usize, pad: usize) -> usize {
    (h + 2 * pad) * (w + 2 * pad) * c.div_ceil(64) * 8
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::models::{small_cnn, vgg16};
    use crate::weights::NetworkWeights;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn plan_matches_compiled_engine() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(3);
        let weights = NetworkWeights::random(&spec, &mut rng);
        let net = crate::engine::Network::compile(&spec, &weights);
        let plan = MemoryPlan::for_binary(&spec);
        // The engine adds a Reflatten packed buffer for the non-aligned
        // flatten; the plan's total must match within that one buffer.
        let flatten_bytes = (4 * 4 * 32usize).div_ceil(64) * 8;
        assert_eq!(plan.total_bytes() + flatten_bytes, net.activation_bytes());
        assert_eq!(plan.contexts_bytes(3), 3 * plan.total_bytes());
    }

    #[test]
    fn plan_matches_every_fresh_context() {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(4);
        let weights = NetworkWeights::random(&spec, &mut rng);
        let model = crate::engine::CompiledModel::compile(&spec, &weights);
        let a = model.new_context();
        let b = model.new_context();
        assert_eq!(a.activation_bytes(), model.context_bytes());
        assert_eq!(b.activation_bytes(), model.context_bytes());
    }

    #[test]
    fn vgg16_activation_memory_reasonable() {
        let plan = MemoryPlan::for_binary_with(&vgg16(), &PlanOptions::unfused());
        let mb = plan.total_bytes() as f64 / (1024.0 * 1024.0);
        // Unfused: dominated by the conv scratch float maps (largest:
        // 112·112·128 floats ≈ 6.1 MB) plus pressed maps ≈ a few hundred
        // KB each.
        assert!(mb < 64.0, "plan too large: {mb} MB");
        assert!(plan.total_bytes() > 0);
        assert!(plan.float_equivalent_bytes() > plan.total_bytes() / 4);
        // Fused: the h·w·k count maps collapse to one window of dots per
        // conv — the plan must shrink substantially.
        let fused = MemoryPlan::for_binary_with(&vgg16(), &PlanOptions::default());
        assert!(fused.total_bytes() * 2 < plan.total_bytes());
    }

    #[test]
    fn buffer_inventory_names() {
        let plan = MemoryPlan::for_binary(&small_cnn());
        let names: Vec<&str> = plan.buffers.iter().map(|b| b.producer.as_str()).collect();
        assert_eq!(names, vec!["input", "conv1", "conv1", "pool1", "fc1"]);
    }

    #[test]
    fn fuse_env_parsing() {
        assert!(fuse_enabled_from(None));
        assert!(fuse_enabled_from(Some("1")));
        assert!(fuse_enabled_from(Some("yes")));
        assert!(fuse_enabled_from(Some("")));
        assert!(!fuse_enabled_from(Some("0")));
        assert!(!fuse_enabled_from(Some("false")));
        assert!(!fuse_enabled_from(Some(" OFF ")));
        assert!(!fuse_enabled_from(Some("no")));
    }

    #[test]
    fn exec_plan_fuses_linear_chain() {
        let spec = small_cnn();
        let fused = ExecPlan::build(&spec, &PlanOptions::default());
        assert_eq!(fused.fused_convs(), vec!["conv1"]);
        assert!(fused.unfused_convs().is_empty());
        assert!(!fused
            .nodes()
            .iter()
            .any(|n| matches!(n, PlanNode::BnSign { .. })));

        let unfused = ExecPlan::build(&spec, &PlanOptions::unfused());
        assert!(unfused.fused_convs().is_empty());
        assert_eq!(unfused.unfused_convs(), vec!["conv1"]);
        assert!(unfused
            .nodes()
            .iter()
            .any(|n| matches!(n, PlanNode::BnSign { name } if name == "conv1")));
    }

    #[test]
    fn float_tap_blocks_fusion_of_that_conv_only() {
        let spec = vgg16();
        let mut opts = PlanOptions::default();
        opts.float_taps.insert("conv2.1".into());
        let plan = ExecPlan::build(&spec, &opts);
        assert_eq!(plan.unfused_convs(), vec!["conv2.1"]);
        assert_eq!(plan.fused_convs().len(), 12);
        // The tapped conv keeps its standalone BnSign consumer.
        assert!(plan
            .nodes()
            .iter()
            .any(|n| matches!(n, PlanNode::BnSign { name } if name == "conv2.1")));
    }
}
