//! Network specifications: the static graph the engine compiles.

use crate::error::SpecError;
use bitflow_ops::ConvParams;
use bitflow_simd::scheduler::VectorScheduler;
use bitflow_tensor::Shape;
use serde::{Deserialize, Serialize};

/// One layer of a (chain-structured) network. VGG-class networks — the
/// paper's evaluation target — are chains; the engine exploits that for
/// its padding and buffer planning.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Convolution with `k` filters. In binary networks each conv is
    /// followed by (folded) batch-norm + sign.
    Conv {
        /// Display name, e.g. "conv3.1".
        name: String,
        /// Number of filters.
        k: usize,
        /// Kernel/stride/padding geometry.
        params: ConvParams,
    },
    /// Max-pooling.
    Pool {
        /// Display name, e.g. "pool4".
        name: String,
        /// Window/stride geometry (pad must be 0).
        params: ConvParams,
    },
    /// Fully-connected with `k` output neurons; the first FC after a
    /// spatial layer implicitly flattens (h, w, c) → h·w·c.
    Fc {
        /// Display name, e.g. "fc6".
        name: String,
        /// Output width.
        k: usize,
    },
}

impl LayerSpec {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            LayerSpec::Conv { name, .. }
            | LayerSpec::Pool { name, .. }
            | LayerSpec::Fc { name, .. } => name,
        }
    }

    /// Spatial padding this layer requires on its *input* buffer — what the
    /// zero-cost-padding planner bakes into the producer's output buffer.
    pub fn input_pad(&self) -> usize {
        match self {
            LayerSpec::Conv { params, .. } => params.pad,
            _ => 0,
        }
    }
}

/// A whole network: input geometry plus a chain of layers.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Model name (e.g. "VGG16").
    pub name: String,
    /// Input activation shape (batch 1).
    pub input: Shape,
    /// Layer chain.
    pub layers: Vec<LayerSpec>,
}

/// The inferred geometry of one layer boundary (output of layer i).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerIo {
    /// Spatial activation map.
    Map {
        /// Height (unpadded).
        h: usize,
        /// Width (unpadded).
        w: usize,
        /// Channels.
        c: usize,
    },
    /// Flat vector (after FC layers).
    Vector {
        /// Width.
        n: usize,
    },
}

impl LayerIo {
    /// Total element count.
    pub fn numel(&self) -> usize {
        match *self {
            LayerIo::Map { h, w, c } => h * w * c,
            LayerIo::Vector { n } => n,
        }
    }
}

/// Checked element count of a layer boundary (`None` on overflow).
fn checked_numel(io: LayerIo) -> Option<usize> {
    match io {
        LayerIo::Map { h, w, c } => h.checked_mul(w)?.checked_mul(c),
        LayerIo::Vector { n } => Some(n),
    }
}

/// Checked size of a pressed buffer of geometry (h, w, c) with symmetric
/// spatial margin `pad`, in `u64` words (`None` on overflow). Mirrors what
/// each [`crate::engine::InferenceContext`] allocates.
fn checked_pressed_words(h: usize, w: usize, c: usize, pad: usize) -> Option<usize> {
    let margin = pad.checked_mul(2)?;
    h.checked_add(margin)?
        .checked_mul(w.checked_add(margin)?)?
        .checked_mul(c.div_ceil(64))
}

impl NetworkSpec {
    /// Validates the spec for the binary serving path: full shape inference
    /// with overflow-checked arithmetic, chain-structure rules (no spatial
    /// layer after FC, final layer is FC), and §III-B kernel-selectability
    /// of every layer's channel width. Returns the output geometry of every
    /// layer, index-aligned with `self.layers` — exactly what
    /// [`NetworkSpec::infer_shapes`] returns on the happy path.
    ///
    /// A spec that passes `validate` compiles and infers without error on
    /// any hardware: a missing ISA only demotes the kernel choice (the
    /// scheduler's cascade), never rejects the network.
    pub fn validate(&self) -> Result<Vec<LayerIo>, SpecError> {
        if self.layers.is_empty() {
            return Err(SpecError::EmptyNetwork);
        }
        if self.input.n != 1 {
            return Err(SpecError::Batch { n: self.input.n });
        }
        for (what, v) in [
            ("input height", self.input.h),
            ("input width", self.input.w),
            ("input channels", self.input.c),
        ] {
            if v == 0 {
                return Err(SpecError::ZeroDim {
                    layer: "input".into(),
                    what,
                });
            }
        }
        let scheduler = VectorScheduler::new();
        let kernel_err = |layer: &str| {
            let layer = layer.to_string();
            move |source| SpecError::Kernel { layer, source }
        };
        let overflow = |layer: &str| SpecError::Overflow {
            layer: layer.to_string(),
        };
        // The input buffer the engine allocates (padded for layer 0).
        let in_pad = self.layers[0].input_pad();
        checked_pressed_words(self.input.h, self.input.w, self.input.c, in_pad)
            .ok_or_else(|| overflow("input"))?;

        let mut cur = LayerIo::Map {
            h: self.input.h,
            w: self.input.w,
            c: self.input.c,
        };
        let mut out = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            let name = layer.name();
            let out_pad = self.layers.get(i + 1).map_or(0, LayerSpec::input_pad);
            cur = match (layer, cur) {
                (LayerSpec::Conv { k, params, .. }, LayerIo::Map { h, w, c }) => {
                    if *k == 0 {
                        return Err(SpecError::ZeroDim {
                            layer: name.into(),
                            what: "filter count",
                        });
                    }
                    // Kernel selectability of the input channel width
                    // (§III-B rules 1–5; rule 5 pads, so only zero and
                    // overflow widths are unservable).
                    scheduler.try_select(c).map_err(kernel_err(name))?;
                    let g = params
                        .try_conv_out(Shape::hwc(h, w, c), *k)
                        .map_err(kernel_err(name))?;
                    // Filter bank: k·kh·kw·c float weights, packed rows.
                    k.checked_mul(params.kh)
                        .and_then(|x| x.checked_mul(params.kw))
                        .and_then(|x| x.checked_mul(c))
                        .ok_or_else(|| overflow(name))?;
                    // Scratch float counts + padded pressed output.
                    g.out_h
                        .checked_mul(g.out_w)
                        .and_then(|x| x.checked_mul(*k))
                        .ok_or_else(|| overflow(name))?;
                    checked_pressed_words(g.out_h, g.out_w, *k, out_pad)
                        .ok_or_else(|| overflow(name))?;
                    LayerIo::Map {
                        h: g.out_h,
                        w: g.out_w,
                        c: *k,
                    }
                }
                (LayerSpec::Pool { params, .. }, LayerIo::Map { h, w, c }) => {
                    scheduler.try_select(c).map_err(kernel_err(name))?;
                    let g = params
                        .try_pool_out(Shape::hwc(h, w, c))
                        .map_err(kernel_err(name))?;
                    checked_pressed_words(g.out_h, g.out_w, c, out_pad)
                        .ok_or_else(|| overflow(name))?;
                    LayerIo::Map {
                        h: g.out_h,
                        w: g.out_w,
                        c,
                    }
                }
                (LayerSpec::Fc { k, .. }, prev) => {
                    if *k == 0 {
                        return Err(SpecError::ZeroDim {
                            layer: name.into(),
                            what: "output width",
                        });
                    }
                    // Flatten width and the N×K weight matrix must exist.
                    let n = checked_numel(prev).ok_or_else(|| overflow(name))?;
                    n.checked_mul(*k).ok_or_else(|| overflow(name))?;
                    // Packed rows: k rows of ⌈n/64⌉ words.
                    k.checked_mul(n.div_ceil(64))
                        .ok_or_else(|| overflow(name))?;
                    LayerIo::Vector { n: *k }
                }
                (l, LayerIo::Vector { .. }) => {
                    return Err(SpecError::SpatialAfterFc {
                        layer: l.name().to_string(),
                    })
                }
            };
            out.push(cur);
        }
        // The binary engine emits logits from a final FC layer. Checked
        // last so mid-chain structure errors (spatial-after-FC) win.
        match self.layers.last() {
            Some(LayerSpec::Fc { .. }) => Ok(out),
            Some(l) => Err(SpecError::LastLayerNotFc {
                layer: l.name().to_string(),
            }),
            None => Err(SpecError::EmptyNetwork),
        }
    }

    /// Runs shape inference over the chain (the shape-inferer component of
    /// the vector execution scheduler, applied network-wide). Returns the
    /// output geometry of every layer, index-aligned with `self.layers`.
    /// Panicking wrapper over [`NetworkSpec::validate`] for the trusted
    /// path (serving code uses `validate`).
    ///
    /// # Panics
    /// On malformed chains (spatial layer after FC, windows that don't fit).
    pub fn infer_shapes(&self) -> Vec<LayerIo> {
        match self.validate() {
            Ok(shapes) => shapes,
            Err(e) => panic!("{e}"),
        }
    }

    /// Input channel/vector width of layer `i` (what the scheduler's kernel
    /// selector sees).
    pub fn input_width(&self, i: usize, shapes: &[LayerIo]) -> usize {
        let io = if i == 0 {
            LayerIo::Map {
                h: self.input.h,
                w: self.input.w,
                c: self.input.c,
            }
        } else {
            shapes[i - 1]
        };
        match io {
            LayerIo::Map { c, .. } => c,
            LayerIo::Vector { n } => n,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn toy() -> NetworkSpec {
        NetworkSpec {
            name: "toy".into(),
            input: Shape::hwc(8, 8, 16),
            layers: vec![
                LayerSpec::Conv {
                    name: "conv1".into(),
                    k: 32,
                    params: ConvParams::VGG_CONV,
                },
                LayerSpec::Pool {
                    name: "pool1".into(),
                    params: ConvParams::VGG_POOL,
                },
                LayerSpec::Fc {
                    name: "fc1".into(),
                    k: 10,
                },
            ],
        }
    }

    #[test]
    fn shapes_flow_through_chain() {
        let spec = toy();
        let shapes = spec.infer_shapes();
        assert_eq!(shapes[0], LayerIo::Map { h: 8, w: 8, c: 32 });
        assert_eq!(shapes[1], LayerIo::Map { h: 4, w: 4, c: 32 });
        assert_eq!(shapes[2], LayerIo::Vector { n: 10 });
    }

    #[test]
    fn input_widths() {
        let spec = toy();
        let shapes = spec.infer_shapes();
        assert_eq!(spec.input_width(0, &shapes), 16);
        assert_eq!(spec.input_width(1, &shapes), 32);
        assert_eq!(spec.input_width(2, &shapes), 32); // flatten sees c
    }

    #[test]
    fn input_pad_only_for_conv() {
        let spec = toy();
        assert_eq!(spec.layers[0].input_pad(), 1);
        assert_eq!(spec.layers[1].input_pad(), 0);
        assert_eq!(spec.layers[2].input_pad(), 0);
    }

    #[test]
    #[should_panic(expected = "after FC")]
    fn spatial_after_fc_rejected() {
        let mut spec = toy();
        spec.layers.push(LayerSpec::Pool {
            name: "bad".into(),
            params: ConvParams::VGG_POOL,
        });
        let _ = spec.infer_shapes();
    }

    #[test]
    fn validate_accepts_valid_chain_and_matches_infer_shapes() {
        let spec = toy();
        let shapes = spec.validate().expect("toy spec is valid");
        assert_eq!(shapes, spec.infer_shapes());
    }

    #[test]
    fn validate_rejects_hostile_specs_with_typed_errors() {
        use crate::error::SpecError;

        let mut empty = toy();
        empty.layers.clear();
        assert_eq!(empty.validate(), Err(SpecError::EmptyNetwork));

        let mut zero_input = toy();
        zero_input.input = Shape::hwc(0, 8, 16);
        assert!(matches!(
            zero_input.validate(),
            Err(SpecError::ZeroDim { .. })
        ));

        let mut batched = toy();
        batched.input = Shape::new(4, 8, 8, 16);
        assert_eq!(batched.validate(), Err(SpecError::Batch { n: 4 }));

        let mut fc_first = toy();
        fc_first.layers.insert(
            0,
            LayerSpec::Fc {
                name: "fc0".into(),
                k: 32,
            },
        );
        assert!(matches!(
            fc_first.validate(),
            Err(SpecError::SpatialAfterFc { .. })
        ));

        let mut no_head = toy();
        no_head.layers.pop();
        assert!(matches!(
            no_head.validate(),
            Err(SpecError::LastLayerNotFc { .. })
        ));

        let mut zero_stride = toy();
        zero_stride.layers[0] = LayerSpec::Conv {
            name: "conv1".into(),
            k: 32,
            params: ConvParams::new(3, 3, 0, 1),
        };
        assert!(matches!(
            zero_stride.validate(),
            Err(SpecError::Kernel { .. })
        ));

        let mut overflow_fc = toy();
        overflow_fc.layers.push(LayerSpec::Fc {
            name: "fc-huge".into(),
            k: usize::MAX / 2,
        });
        // Pushed after the old head: spatial-after-FC does not apply (both
        // are FC); the N×K weight count must overflow instead.
        assert!(matches!(
            overflow_fc.validate(),
            Err(SpecError::Overflow { .. })
        ));

        let mut window_too_big = toy();
        window_too_big.layers[1] = LayerSpec::Pool {
            name: "pool1".into(),
            params: ConvParams::new(64, 64, 2, 0),
        };
        assert!(matches!(
            window_too_big.validate(),
            Err(SpecError::Kernel { .. })
        ));
    }
}
