//! Network specifications: the static graph the engine compiles.

use bitflow_ops::ConvParams;
use bitflow_tensor::Shape;
use serde::{Deserialize, Serialize};

/// One layer of a (chain-structured) network. VGG-class networks — the
/// paper's evaluation target — are chains; the engine exploits that for
/// its padding and buffer planning.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Convolution with `k` filters. In binary networks each conv is
    /// followed by (folded) batch-norm + sign.
    Conv {
        /// Display name, e.g. "conv3.1".
        name: String,
        /// Number of filters.
        k: usize,
        /// Kernel/stride/padding geometry.
        params: ConvParams,
    },
    /// Max-pooling.
    Pool {
        /// Display name, e.g. "pool4".
        name: String,
        /// Window/stride geometry (pad must be 0).
        params: ConvParams,
    },
    /// Fully-connected with `k` output neurons; the first FC after a
    /// spatial layer implicitly flattens (h, w, c) → h·w·c.
    Fc {
        /// Display name, e.g. "fc6".
        name: String,
        /// Output width.
        k: usize,
    },
}

impl LayerSpec {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            LayerSpec::Conv { name, .. }
            | LayerSpec::Pool { name, .. }
            | LayerSpec::Fc { name, .. } => name,
        }
    }

    /// Spatial padding this layer requires on its *input* buffer — what the
    /// zero-cost-padding planner bakes into the producer's output buffer.
    pub fn input_pad(&self) -> usize {
        match self {
            LayerSpec::Conv { params, .. } => params.pad,
            _ => 0,
        }
    }
}

/// A whole network: input geometry plus a chain of layers.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Model name (e.g. "VGG16").
    pub name: String,
    /// Input activation shape (batch 1).
    pub input: Shape,
    /// Layer chain.
    pub layers: Vec<LayerSpec>,
}

/// The inferred geometry of one layer boundary (output of layer i).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerIo {
    /// Spatial activation map.
    Map {
        /// Height (unpadded).
        h: usize,
        /// Width (unpadded).
        w: usize,
        /// Channels.
        c: usize,
    },
    /// Flat vector (after FC layers).
    Vector {
        /// Width.
        n: usize,
    },
}

impl LayerIo {
    /// Total element count.
    pub fn numel(&self) -> usize {
        match *self {
            LayerIo::Map { h, w, c } => h * w * c,
            LayerIo::Vector { n } => n,
        }
    }
}

impl NetworkSpec {
    /// Runs shape inference over the chain (the shape-inferer component of
    /// the vector execution scheduler, applied network-wide). Returns the
    /// output geometry of every layer, index-aligned with `self.layers`.
    ///
    /// # Panics
    /// On malformed chains (spatial layer after FC, windows that don't fit).
    pub fn infer_shapes(&self) -> Vec<LayerIo> {
        let mut cur = LayerIo::Map {
            h: self.input.h,
            w: self.input.w,
            c: self.input.c,
        };
        let mut out = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            cur = match (layer, cur) {
                (LayerSpec::Conv { k, params, .. }, LayerIo::Map { h, w, .. }) => {
                    let g = params.conv_out(Shape::hwc(h, w, 1), *k);
                    LayerIo::Map {
                        h: g.out_h,
                        w: g.out_w,
                        c: *k,
                    }
                }
                (LayerSpec::Pool { params, .. }, LayerIo::Map { h, w, c }) => {
                    let g = params.pool_out(Shape::hwc(h, w, c));
                    LayerIo::Map {
                        h: g.out_h,
                        w: g.out_w,
                        c,
                    }
                }
                (LayerSpec::Fc { k, .. }, _) => LayerIo::Vector { n: *k },
                (l, LayerIo::Vector { .. }) => {
                    panic!("spatial layer {} after FC", l.name())
                }
            };
            out.push(cur);
        }
        out
    }

    /// Input channel/vector width of layer `i` (what the scheduler's kernel
    /// selector sees).
    pub fn input_width(&self, i: usize, shapes: &[LayerIo]) -> usize {
        let io = if i == 0 {
            LayerIo::Map {
                h: self.input.h,
                w: self.input.w,
                c: self.input.c,
            }
        } else {
            shapes[i - 1]
        };
        match io {
            LayerIo::Map { c, .. } => c,
            LayerIo::Vector { n } => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> NetworkSpec {
        NetworkSpec {
            name: "toy".into(),
            input: Shape::hwc(8, 8, 16),
            layers: vec![
                LayerSpec::Conv {
                    name: "conv1".into(),
                    k: 32,
                    params: ConvParams::VGG_CONV,
                },
                LayerSpec::Pool {
                    name: "pool1".into(),
                    params: ConvParams::VGG_POOL,
                },
                LayerSpec::Fc {
                    name: "fc1".into(),
                    k: 10,
                },
            ],
        }
    }

    #[test]
    fn shapes_flow_through_chain() {
        let spec = toy();
        let shapes = spec.infer_shapes();
        assert_eq!(shapes[0], LayerIo::Map { h: 8, w: 8, c: 32 });
        assert_eq!(shapes[1], LayerIo::Map { h: 4, w: 4, c: 32 });
        assert_eq!(shapes[2], LayerIo::Vector { n: 10 });
    }

    #[test]
    fn input_widths() {
        let spec = toy();
        let shapes = spec.infer_shapes();
        assert_eq!(spec.input_width(0, &shapes), 16);
        assert_eq!(spec.input_width(1, &shapes), 32);
        assert_eq!(spec.input_width(2, &shapes), 32); // flatten sees c
    }

    #[test]
    fn input_pad_only_for_conv() {
        let spec = toy();
        assert_eq!(spec.layers[0].input_pad(), 1);
        assert_eq!(spec.layers[1].input_pad(), 0);
        assert_eq!(spec.layers[2].input_pad(), 0);
    }

    #[test]
    #[should_panic(expected = "after FC")]
    fn spatial_after_fc_rejected() {
        let mut spec = toy();
        spec.layers.push(LayerSpec::Pool {
            name: "bad".into(),
            params: ConvParams::VGG_POOL,
        });
        let _ = spec.infer_shapes();
    }
}
