//! Network parameters: float master weights plus batch-norm statistics.
//!
//! The float weights are the "shadow" parameters a BNN trains; the engine
//! binarizes+packs them once at compile time. Model-size accounting for the
//! paper's Table V compares the float form (what a full-precision VGG
//! ships) against the packed form (what BitFlow ships).

use crate::spec::{LayerSpec, NetworkSpec};
use bitflow_tensor::FilterShape;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Inference-time batch-norm statistics for one layer (per output channel).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BnParams {
    /// Scale.
    pub gamma: Vec<f32>,
    /// Shift.
    pub beta: Vec<f32>,
    /// Running mean.
    pub mean: Vec<f32>,
    /// Running variance.
    pub var: Vec<f32>,
}

impl BnParams {
    /// Identity batch-norm (γ=1, β=0, μ=0, σ²=1): sign thresholds collapse
    /// to 0 — the configuration used by all performance experiments.
    pub fn identity(c: usize) -> Self {
        Self {
            gamma: vec![1.0; c],
            beta: vec![0.0; c],
            mean: vec![0.0; c],
            var: vec![1.0; c],
        }
    }

    /// Random-but-plausible statistics (positive variance, mixed-sign γ).
    pub fn random(c: usize, rng: &mut impl Rng) -> Self {
        Self {
            gamma: (0..c).map(|_| rng.gen_range(0.2f32..2.0)).collect(),
            beta: (0..c).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            mean: (0..c).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
            var: (0..c).map(|_| rng.gen_range(0.2f32..2.0)).collect(),
        }
    }
}

/// Parameters of one layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LayerWeights {
    /// Convolution weights in (K, kh, kw, C) order + batch-norm.
    Conv {
        /// Flat weights.
        w: Vec<f32>,
        /// Filter-bank geometry.
        fshape: FilterShape,
        /// Batch-norm statistics over the K output features.
        bn: BnParams,
    },
    /// FC weights, N×K row-major + batch-norm over K.
    Fc {
        /// Flat weights.
        w: Vec<f32>,
        /// Input width.
        n: usize,
        /// Output width.
        k: usize,
        /// Batch-norm statistics over the K outputs.
        bn: BnParams,
    },
    /// Pooling has no parameters.
    Pool,
}

impl LayerWeights {
    /// Float parameter bytes (4 per weight; BN folds away at compile time
    /// and is negligible either way, matching the paper's 500 MB vs 16 MB
    /// accounting which is weight-dominated).
    pub fn float_bytes(&self) -> usize {
        match self {
            LayerWeights::Conv { w, .. } | LayerWeights::Fc { w, .. } => w.len() * 4,
            LayerWeights::Pool => 0,
        }
    }

    /// Packed (1 bit/weight, padded to whole words) parameter bytes.
    pub fn packed_bytes(&self) -> usize {
        match self {
            LayerWeights::Conv { fshape, .. } => {
                fshape.k * fshape.kh * fshape.kw * fshape.c.div_ceil(64) * 8
            }
            LayerWeights::Fc { n, k, .. } => k * n.div_ceil(64) * 8,
            LayerWeights::Pool => 0,
        }
    }
}

/// All parameters of a network, index-aligned with its spec's layers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkWeights {
    /// Per-layer parameters.
    pub layers: Vec<LayerWeights>,
}

impl NetworkWeights {
    /// Draws random weights matching `spec` (uniform in [−1, 1), identity
    /// batch-norm). Inference *speed* is weight-independent, so this is what
    /// every performance experiment uses.
    pub fn random(spec: &NetworkSpec, rng: &mut impl Rng) -> Self {
        Self::generate(spec, rng, false)
    }

    /// Random weights with random (non-identity) batch-norm — used by tests
    /// that must exercise threshold folding.
    pub fn random_with_bn(spec: &NetworkSpec, rng: &mut impl Rng) -> Self {
        Self::generate(spec, rng, true)
    }

    fn generate(spec: &NetworkSpec, rng: &mut impl Rng, random_bn: bool) -> Self {
        let shapes = spec.infer_shapes();
        let mut layers = Vec::with_capacity(spec.layers.len());
        for (i, layer) in spec.layers.iter().enumerate() {
            let in_width = spec.input_width(i, &shapes);
            let lw = match layer {
                LayerSpec::Conv { k, params, .. } => {
                    let fshape = FilterShape::new(*k, params.kh, params.kw, in_width);
                    let w = (0..fshape.numel())
                        .map(|_| rng.gen_range(-1.0f32..1.0))
                        .collect();
                    let bn = if random_bn {
                        BnParams::random(*k, rng)
                    } else {
                        BnParams::identity(*k)
                    };
                    LayerWeights::Conv { w, fshape, bn }
                }
                LayerSpec::Pool { .. } => LayerWeights::Pool,
                LayerSpec::Fc { k, .. } => {
                    // Flatten: vector width is h·w·c of the producing map.
                    let n = if i == 0 {
                        spec.input.numel()
                    } else {
                        shapes[i - 1].numel()
                    };
                    let w = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                    let bn = if random_bn {
                        BnParams::random(*k, rng)
                    } else {
                        BnParams::identity(*k)
                    };
                    LayerWeights::Fc { w, n, k: *k, bn }
                }
            };
            layers.push(lw);
        }
        Self { layers }
    }

    /// Total float model size in bytes.
    pub fn float_bytes(&self) -> usize {
        self.layers.iter().map(LayerWeights::float_bytes).sum()
    }

    /// Total packed model size in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.layers.iter().map(LayerWeights::packed_bytes).sum()
    }

    /// Flatten-order note: FC weights expect the producer's (h, w, c) NHWC
    /// flatten order; this helper returns the flattened input width of
    /// layer `i` for validation.
    pub fn expect_fc_width(spec: &NetworkSpec, i: usize) -> usize {
        let shapes = spec.infer_shapes();
        if i == 0 {
            spec.input.numel()
        } else {
            shapes[i - 1].numel()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitflow_ops::ConvParams;
    use bitflow_tensor::Shape;
    use rand::{rngs::StdRng, SeedableRng};

    fn toy() -> NetworkSpec {
        NetworkSpec {
            name: "toy".into(),
            input: Shape::hwc(8, 8, 16),
            layers: vec![
                LayerSpec::Conv {
                    name: "conv1".into(),
                    k: 32,
                    params: ConvParams::VGG_CONV,
                },
                LayerSpec::Pool {
                    name: "pool1".into(),
                    params: ConvParams::VGG_POOL,
                },
                LayerSpec::Fc {
                    name: "fc1".into(),
                    k: 10,
                },
            ],
        }
    }

    #[test]
    fn random_weights_match_spec() {
        let spec = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let w = NetworkWeights::random(&spec, &mut rng);
        match &w.layers[0] {
            LayerWeights::Conv { w, fshape, bn } => {
                assert_eq!(*fshape, FilterShape::new(32, 3, 3, 16));
                assert_eq!(w.len(), 32 * 9 * 16);
                assert_eq!(bn.gamma.len(), 32);
            }
            _ => panic!("expected conv"),
        }
        match &w.layers[2] {
            LayerWeights::Fc { n, k, w, .. } => {
                assert_eq!((*n, *k), (4 * 4 * 32, 10));
                assert_eq!(w.len(), 4 * 4 * 32 * 10);
            }
            _ => panic!("expected fc"),
        }
    }

    #[test]
    fn size_accounting_32x() {
        let spec = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let w = NetworkWeights::random(&spec, &mut rng);
        // conv: c=16 → padded to one word per 16 channels… packed words
        // round 16 bits up to 64, so the conv ratio here is 8×, while the
        // fc (n = 512, a multiple of 64) achieves the full 32×.
        let fc = &w.layers[2];
        assert_eq!(fc.float_bytes() / fc.packed_bytes(), 32);
        assert!(w.float_bytes() > w.packed_bytes());
    }

    #[test]
    fn identity_bn_thresholds_are_zero() {
        let bn = BnParams::identity(4);
        let fold = bitflow_ops::binary::fold_bn_into_thresholds(
            &bn.gamma, &bn.beta, &bn.mean, &bn.var, 0.0,
        );
        assert!(fold.thresholds.iter().all(|&t| t == 0.0));
        assert!(fold.flip.iter().all(|&f| !f));
    }
}
