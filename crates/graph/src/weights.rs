//! Network parameters: float master weights plus batch-norm statistics.
//!
//! The float weights are the "shadow" parameters a BNN trains; the engine
//! binarizes+packs them once at compile time. Model-size accounting for the
//! paper's Table V compares the float form (what a full-precision VGG
//! ships) against the packed form (what BitFlow ships).

use crate::error::WeightMismatch;
use crate::spec::{LayerIo, LayerSpec, NetworkSpec};
use bitflow_tensor::FilterShape;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The normalization epsilon used when none was recorded: the BatchNorm
/// default, and what every pre-`eps` model container implicitly used.
pub const DEFAULT_BN_EPS: f32 = 1e-5;

/// Inference-time batch-norm statistics for one layer (per output channel).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BnParams {
    /// Scale.
    pub gamma: Vec<f32>,
    /// Shift.
    pub beta: Vec<f32>,
    /// Running mean.
    pub mean: Vec<f32>,
    /// Running variance.
    pub var: Vec<f32>,
    /// Normalization epsilon (`y = γ·(x−μ)/√(σ²+ε) + β`). Part of the
    /// trained model: folding with a different ε than training used shifts
    /// every sign threshold, so it must survive export and persistence.
    pub eps: f32,
}

impl BnParams {
    /// Identity batch-norm (γ=1, β=0, μ=0, σ²=1): sign thresholds collapse
    /// to 0 — the configuration used by all performance experiments.
    pub fn identity(c: usize) -> Self {
        Self {
            gamma: vec![1.0; c],
            beta: vec![0.0; c],
            mean: vec![0.0; c],
            var: vec![1.0; c],
            eps: DEFAULT_BN_EPS,
        }
    }

    /// Random-but-plausible statistics (positive variance, mixed-sign γ).
    pub fn random(c: usize, rng: &mut impl Rng) -> Self {
        Self {
            gamma: (0..c).map(|_| rng.gen_range(0.2f32..2.0)).collect(),
            beta: (0..c).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            mean: (0..c).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
            var: (0..c).map(|_| rng.gen_range(0.2f32..2.0)).collect(),
            eps: DEFAULT_BN_EPS,
        }
    }

    /// Folds these statistics into per-channel sign thresholds using this
    /// layer's own ε — the single fold entry point for the engine, so the
    /// epsilon can never diverge between call sites again.
    pub fn fold(&self) -> bitflow_ops::binary::BnFold {
        bitflow_ops::binary::fold_bn_into_thresholds(
            &self.gamma,
            &self.beta,
            &self.mean,
            &self.var,
            self.eps,
        )
    }
}

/// Parameters of one layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LayerWeights {
    /// Convolution weights in (K, kh, kw, C) order + batch-norm.
    Conv {
        /// Flat weights.
        w: Vec<f32>,
        /// Filter-bank geometry.
        fshape: FilterShape,
        /// Batch-norm statistics over the K output features.
        bn: BnParams,
    },
    /// FC weights, N×K row-major + batch-norm over K.
    Fc {
        /// Flat weights.
        w: Vec<f32>,
        /// Input width.
        n: usize,
        /// Output width.
        k: usize,
        /// Batch-norm statistics over the K outputs.
        bn: BnParams,
    },
    /// Pooling has no parameters.
    Pool,
}

impl LayerWeights {
    /// Float parameter bytes (4 per weight; BN folds away at compile time
    /// and is negligible either way, matching the paper's 500 MB vs 16 MB
    /// accounting which is weight-dominated).
    pub fn float_bytes(&self) -> usize {
        match self {
            LayerWeights::Conv { w, .. } | LayerWeights::Fc { w, .. } => w.len() * 4,
            LayerWeights::Pool => 0,
        }
    }

    /// Packed (1 bit/weight, padded to whole words) parameter bytes.
    pub fn packed_bytes(&self) -> usize {
        match self {
            LayerWeights::Conv { fshape, .. } => {
                fshape.k * fshape.kh * fshape.kw * fshape.c.div_ceil(64) * 8
            }
            LayerWeights::Fc { n, k, .. } => k * n.div_ceil(64) * 8,
            LayerWeights::Pool => 0,
        }
    }
}

/// All parameters of a network, index-aligned with its spec's layers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkWeights {
    /// Per-layer parameters.
    pub layers: Vec<LayerWeights>,
}

impl NetworkWeights {
    /// Draws random weights matching `spec` (uniform in [−1, 1), identity
    /// batch-norm). Inference *speed* is weight-independent, so this is what
    /// every performance experiment uses.
    pub fn random(spec: &NetworkSpec, rng: &mut impl Rng) -> Self {
        Self::generate(spec, rng, false)
    }

    /// Random weights with random (non-identity) batch-norm — used by tests
    /// that must exercise threshold folding.
    pub fn random_with_bn(spec: &NetworkSpec, rng: &mut impl Rng) -> Self {
        Self::generate(spec, rng, true)
    }

    fn generate(spec: &NetworkSpec, rng: &mut impl Rng, random_bn: bool) -> Self {
        let shapes = spec.infer_shapes();
        let mut layers = Vec::with_capacity(spec.layers.len());
        for (i, layer) in spec.layers.iter().enumerate() {
            let in_width = spec.input_width(i, &shapes);
            let lw = match layer {
                LayerSpec::Conv { k, params, .. } => {
                    let fshape = FilterShape::new(*k, params.kh, params.kw, in_width);
                    let w = (0..fshape.numel())
                        .map(|_| rng.gen_range(-1.0f32..1.0))
                        .collect();
                    let bn = if random_bn {
                        BnParams::random(*k, rng)
                    } else {
                        BnParams::identity(*k)
                    };
                    LayerWeights::Conv { w, fshape, bn }
                }
                LayerSpec::Pool { .. } => LayerWeights::Pool,
                LayerSpec::Fc { k, .. } => {
                    // Flatten: vector width is h·w·c of the producing map.
                    let n = if i == 0 {
                        spec.input.numel()
                    } else {
                        shapes[i - 1].numel()
                    };
                    let w = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                    let bn = if random_bn {
                        BnParams::random(*k, rng)
                    } else {
                        BnParams::identity(*k)
                    };
                    LayerWeights::Fc { w, n, k: *k, bn }
                }
            };
            layers.push(lw);
        }
        Self { layers }
    }

    /// Total float model size in bytes.
    pub fn float_bytes(&self) -> usize {
        self.layers.iter().map(LayerWeights::float_bytes).sum()
    }

    /// Total packed model size in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.layers.iter().map(LayerWeights::packed_bytes).sum()
    }

    /// Checks that these weights can populate `spec` (whose `validate`
    /// already produced `shapes`): layer counts and kinds line up, filter
    /// banks and FC matrices have the spec's geometry, flat weight vectors
    /// have the right length, and batch-norm statistics cover every output
    /// channel. Any disagreement is a typed [`WeightMismatch`] — the
    /// serving path surfaces it from
    /// [`crate::engine::CompiledModel::try_compile`] instead of panicking.
    pub fn validate_against(
        &self,
        spec: &NetworkSpec,
        shapes: &[LayerIo],
    ) -> Result<(), WeightMismatch> {
        if spec.layers.len() != self.layers.len() {
            return Err(WeightMismatch::LayerCount {
                spec: spec.layers.len(),
                weights: self.layers.len(),
            });
        }
        let kind = |lw: &LayerWeights| match lw {
            LayerWeights::Conv { .. } => "conv",
            LayerWeights::Fc { .. } => "fc",
            LayerWeights::Pool => "pool",
        };
        for (i, (layer, lw)) in spec.layers.iter().zip(&self.layers).enumerate() {
            let name = layer.name();
            let in_width = spec.input_width(i, shapes);
            match (layer, lw) {
                (LayerSpec::Conv { k, params, .. }, LayerWeights::Conv { w, fshape, bn }) => {
                    let expected = FilterShape::new(*k, params.kh, params.kw, in_width);
                    if *fshape != expected {
                        return Err(WeightMismatch::FilterShape {
                            layer: name.into(),
                            expected,
                            actual: *fshape,
                        });
                    }
                    // Geometry was overflow-checked by spec.validate().
                    let want = k * params.kh * params.kw * in_width;
                    if w.len() != want {
                        return Err(WeightMismatch::WeightLen {
                            layer: name.into(),
                            expected: want,
                            actual: w.len(),
                        });
                    }
                    check_bn(name, bn, *k)?;
                }
                (LayerSpec::Pool { .. }, LayerWeights::Pool) => {}
                (LayerSpec::Fc { k, .. }, LayerWeights::Fc { w, n, k: wk, bn }) => {
                    let want_n = if i == 0 {
                        spec.input.numel()
                    } else {
                        shapes[i - 1].numel()
                    };
                    if (*n, *wk) != (want_n, *k) {
                        return Err(WeightMismatch::FcGeometry {
                            layer: name.into(),
                            expected: (want_n, *k),
                            actual: (*n, *wk),
                        });
                    }
                    let want = want_n * k;
                    if w.len() != want {
                        return Err(WeightMismatch::WeightLen {
                            layer: name.into(),
                            expected: want,
                            actual: w.len(),
                        });
                    }
                    check_bn(name, bn, *k)?;
                }
                (l, lw) => {
                    return Err(WeightMismatch::LayerKind {
                        layer: l.name().into(),
                        expected: match l {
                            LayerSpec::Conv { .. } => "conv",
                            LayerSpec::Pool { .. } => "pool",
                            LayerSpec::Fc { .. } => "fc",
                        },
                        actual: kind(lw),
                    })
                }
            }
        }
        Ok(())
    }

    /// Flatten-order note: FC weights expect the producer's (h, w, c) NHWC
    /// flatten order; this helper returns the flattened input width of
    /// layer `i` for validation.
    pub fn expect_fc_width(spec: &NetworkSpec, i: usize) -> usize {
        let shapes = spec.infer_shapes();
        if i == 0 {
            spec.input.numel()
        } else {
            shapes[i - 1].numel()
        }
    }
}

/// Batch-norm statistic lengths must cover every output channel.
fn check_bn(layer: &str, bn: &BnParams, c: usize) -> Result<(), WeightMismatch> {
    for len in [bn.gamma.len(), bn.beta.len(), bn.mean.len(), bn.var.len()] {
        if len != c {
            return Err(WeightMismatch::BnLen {
                layer: layer.into(),
                expected: c,
                actual: len,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use bitflow_ops::ConvParams;
    use bitflow_tensor::Shape;
    use rand::{rngs::StdRng, SeedableRng};

    fn toy() -> NetworkSpec {
        NetworkSpec {
            name: "toy".into(),
            input: Shape::hwc(8, 8, 16),
            layers: vec![
                LayerSpec::Conv {
                    name: "conv1".into(),
                    k: 32,
                    params: ConvParams::VGG_CONV,
                },
                LayerSpec::Pool {
                    name: "pool1".into(),
                    params: ConvParams::VGG_POOL,
                },
                LayerSpec::Fc {
                    name: "fc1".into(),
                    k: 10,
                },
            ],
        }
    }

    #[test]
    fn random_weights_match_spec() {
        let spec = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let w = NetworkWeights::random(&spec, &mut rng);
        match &w.layers[0] {
            LayerWeights::Conv { w, fshape, bn } => {
                assert_eq!(*fshape, FilterShape::new(32, 3, 3, 16));
                assert_eq!(w.len(), 32 * 9 * 16);
                assert_eq!(bn.gamma.len(), 32);
            }
            _ => panic!("expected conv"),
        }
        match &w.layers[2] {
            LayerWeights::Fc { n, k, w, .. } => {
                assert_eq!((*n, *k), (4 * 4 * 32, 10));
                assert_eq!(w.len(), 4 * 4 * 32 * 10);
            }
            _ => panic!("expected fc"),
        }
    }

    #[test]
    fn size_accounting_32x() {
        let spec = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let w = NetworkWeights::random(&spec, &mut rng);
        // conv: c=16 → padded to one word per 16 channels… packed words
        // round 16 bits up to 64, so the conv ratio here is 8×, while the
        // fc (n = 512, a multiple of 64) achieves the full 32×.
        let fc = &w.layers[2];
        assert_eq!(fc.float_bytes() / fc.packed_bytes(), 32);
        assert!(w.float_bytes() > w.packed_bytes());
    }

    #[test]
    fn validate_against_accepts_generated_weights() {
        let spec = toy();
        let mut rng = StdRng::seed_from_u64(5);
        let w = NetworkWeights::random_with_bn(&spec, &mut rng);
        let shapes = spec.validate().expect("valid spec");
        assert_eq!(w.validate_against(&spec, &shapes), Ok(()));
    }

    #[test]
    fn validate_against_catches_disagreements() {
        let spec = toy();
        let shapes = spec.validate().expect("valid spec");
        let mut rng = StdRng::seed_from_u64(6);

        let mut short = NetworkWeights::random(&spec, &mut rng);
        short.layers.pop();
        assert!(matches!(
            short.validate_against(&spec, &shapes),
            Err(WeightMismatch::LayerCount { .. })
        ));

        let mut swapped = NetworkWeights::random(&spec, &mut rng);
        swapped.layers.swap(1, 2);
        assert!(matches!(
            swapped.validate_against(&spec, &shapes),
            Err(WeightMismatch::LayerKind { .. })
        ));

        let mut wrong_fshape = NetworkWeights::random(&spec, &mut rng);
        if let LayerWeights::Conv { fshape, .. } = &mut wrong_fshape.layers[0] {
            fshape.c += 1;
        }
        assert!(matches!(
            wrong_fshape.validate_against(&spec, &shapes),
            Err(WeightMismatch::FilterShape { .. })
        ));

        let mut truncated = NetworkWeights::random(&spec, &mut rng);
        if let LayerWeights::Conv { w, .. } = &mut truncated.layers[0] {
            w.pop();
        }
        assert!(matches!(
            truncated.validate_against(&spec, &shapes),
            Err(WeightMismatch::WeightLen { .. })
        ));

        let mut bad_bn = NetworkWeights::random(&spec, &mut rng);
        if let LayerWeights::Fc { bn, .. } = &mut bad_bn.layers[2] {
            bn.mean.pop();
        }
        assert!(matches!(
            bad_bn.validate_against(&spec, &shapes),
            Err(WeightMismatch::BnLen { .. })
        ));

        let mut wrong_n = NetworkWeights::random(&spec, &mut rng);
        if let LayerWeights::Fc { n, .. } = &mut wrong_n.layers[2] {
            *n += 64;
        }
        assert!(matches!(
            wrong_n.validate_against(&spec, &shapes),
            Err(WeightMismatch::FcGeometry { .. })
        ));
    }

    #[test]
    fn identity_bn_thresholds_are_zero() {
        let bn = BnParams::identity(4);
        let fold = bn.fold();
        assert!(fold.thresholds.iter().all(|&t| t == 0.0));
        assert!(fold.flip.iter().all(|&f| !f));
    }

    #[test]
    fn fold_uses_the_layers_own_epsilon() {
        // A coarse ε (1e-1) against a small variance moves the threshold
        // visibly; folding with the default ε instead would be wrong.
        let bn = BnParams {
            gamma: vec![1.0],
            beta: vec![1.0],
            mean: vec![0.0],
            var: vec![0.01],
            eps: 1e-1,
        };
        let fold = bn.fold();
        let expected = bitflow_ops::binary::fold_bn_into_thresholds(
            &bn.gamma, &bn.beta, &bn.mean, &bn.var, 1e-1,
        );
        assert_eq!(fold.thresholds, expected.thresholds);
        let wrong = bitflow_ops::binary::fold_bn_into_thresholds(
            &bn.gamma,
            &bn.beta,
            &bn.mean,
            &bn.var,
            DEFAULT_BN_EPS,
        );
        assert_ne!(
            fold.thresholds, wrong.thresholds,
            "ε must actually reach the fold"
        );
    }

    #[test]
    fn negative_gamma_flips_comparison_direction() {
        use bitflow_ops::binary::{PopCmp, SignThresholds};
        // γ = −1, σ² = 1 − ε ⇒ s = −1 exactly ⇒ t = mean − β/s = mean + β.
        // With β = 0 the threshold is exactly the (integer) mean, making
        // the tie reachable by an integer dot product.
        let bn = BnParams {
            gamma: vec![-1.0],
            beta: vec![0.0],
            mean: vec![3.0],
            var: vec![1.0 - DEFAULT_BN_EPS],
            eps: DEFAULT_BN_EPS,
        };
        let fold = bn.fold();
        assert_eq!(fold.thresholds, vec![3.0]);
        assert_eq!(fold.flip, vec![true]);
        // Fold semantics: +1 iff x <= t, equality included — BN(3) = 0 and
        // sign(0) = +1.
        let n = 9usize; // window of 9 bits: dots in {−9,−7,…,7,9} ∪ parity
        let st = SignThresholds::from_fold(&fold, n);
        assert_eq!(st.direction(0), PopCmp::Ge, "negative γ compares downward");
        assert!(st.bit_from_dot(0, 3), "tie x == t is +1");
        assert!(st.bit_from_dot(0, 1), "below t is +1 when flipped");
        assert!(!st.bit_from_dot(0, 5), "above t is −1 when flipped");
    }

    #[test]
    fn out_of_range_thresholds_saturate_to_constant_channels() {
        use bitflow_ops::binary::SignThresholds;
        let n = 27usize;
        // β so large the threshold leaves the reachable dot range [−n, n]
        // in both directions, for both signs of γ.
        let bn = BnParams {
            gamma: vec![1.0, 1.0, -1.0, -1.0],
            beta: vec![1e6, -1e6, 1e6, -1e6],
            mean: vec![0.0; 4],
            var: vec![1.0 - DEFAULT_BN_EPS; 4],
            eps: DEFAULT_BN_EPS,
        };
        let st = SignThresholds::from_fold(&bn.fold(), n);
        // BN(x) = s·x + β − s·mean: once |β| dwarfs the reachable dot
        // range the activation is sign(β) for every input, whatever γ's
        // sign — the integer bound must saturate to a constant channel.
        assert!(st.always_pos(0) && !st.always_neg(0), "γ>0, β≫0: always +1");
        assert!(st.always_neg(1) && !st.always_pos(1), "γ>0, β≪0: never +1");
        assert!(st.always_pos(2) && !st.always_neg(2), "γ<0, β≫0: always +1");
        assert!(st.always_neg(3) && !st.always_pos(3), "γ<0, β≪0: never +1");
        for dot in [-(n as i64), -1, 0, 1, n as i64] {
            assert!(st.bit_from_dot(0, dot));
            assert!(!st.bit_from_dot(1, dot));
            assert!(st.bit_from_dot(2, dot));
            assert!(!st.bit_from_dot(3, dot));
        }
    }

    #[test]
    fn zero_gamma_is_constant_sign_of_beta() {
        use bitflow_ops::binary::SignThresholds;
        let bn = BnParams {
            gamma: vec![0.0, 0.0, 0.0],
            beta: vec![2.5, -2.5, 0.0],
            mean: vec![7.0; 3],
            var: vec![1.0; 3],
            eps: DEFAULT_BN_EPS,
        };
        let fold = bn.fold();
        // Zero scale degenerates to sign(β); sign(0) = +1.
        let st = SignThresholds::from_fold(&fold, 9);
        for dot in [-9i64, -3, 0, 3, 9] {
            assert!(st.bit_from_dot(0, dot), "β>0 is always +1");
            assert!(!st.bit_from_dot(1, dot), "β<0 is always −1");
            assert!(st.bit_from_dot(2, dot), "β=0 is +1 (sign(0) = +1)");
        }
    }
}
