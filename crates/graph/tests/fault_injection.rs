//! Fault-injection harness for the serving path: hostile specs, malformed
//! inference requests, and batch-degradation semantics. Everything here
//! must surface as a typed [`BitFlowError`] — a panic is a failed test.

use bitflow_graph::error::{BitFlowError, InputGeometry, SpecError};
use bitflow_graph::models::small_cnn;
use bitflow_graph::spec::{LayerSpec, NetworkSpec};
use bitflow_graph::weights::NetworkWeights;
use bitflow_graph::CompiledModel;
use bitflow_ops::ConvParams;
use bitflow_tensor::{Layout, Shape, Tensor};
use rand::{rngs::StdRng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn compiled() -> (CompiledModel, Tensor) {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(42);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let model = match CompiledModel::try_compile(&spec, &weights) {
        Ok(m) => m,
        Err(e) => panic!("seed model must compile: {e}"),
    };
    (model, input)
}

fn conv(name: &str, k: usize) -> LayerSpec {
    LayerSpec::Conv {
        name: name.into(),
        k,
        params: ConvParams::VGG_CONV,
    }
}

fn fc(name: &str, k: usize) -> LayerSpec {
    LayerSpec::Fc {
        name: name.into(),
        k,
    }
}

/// `try_compile` on a hostile spec must return `Err` without panicking.
fn expect_spec_error(spec: NetworkSpec) -> SpecError {
    let weights = NetworkWeights { layers: Vec::new() };
    let r = catch_unwind(AssertUnwindSafe(|| {
        CompiledModel::try_compile(&spec, &weights)
    }));
    match r {
        Ok(Err(BitFlowError::Spec(e))) => e,
        Ok(Err(other)) => panic!("expected SpecError, got {other}"),
        Ok(Ok(_)) => panic!("hostile spec compiled"),
        Err(_) => panic!("try_compile panicked on hostile spec"),
    }
}

#[test]
fn zero_dimension_specs_are_rejected() {
    let e = expect_spec_error(NetworkSpec {
        name: "zero-input".into(),
        input: Shape::hwc(0, 8, 3),
        layers: vec![conv("c0", 8), fc("f0", 10)],
    });
    assert!(matches!(e, SpecError::ZeroDim { .. }), "{e}");

    let e = expect_spec_error(NetworkSpec {
        name: "zero-filters".into(),
        input: Shape::hwc(8, 8, 3),
        layers: vec![conv("c0", 0), fc("f0", 10)],
    });
    assert!(matches!(e, SpecError::ZeroDim { .. }), "{e}");
}

#[test]
fn overflow_channel_specs_are_rejected() {
    let e = expect_spec_error(NetworkSpec {
        name: "overflow".into(),
        input: Shape::hwc(8, 8, usize::MAX / 2),
        layers: vec![conv("c0", 8), fc("f0", 10)],
    });
    assert!(
        matches!(e, SpecError::Kernel { .. } | SpecError::Overflow { .. }),
        "{e}"
    );

    let e = expect_spec_error(NetworkSpec {
        name: "overflow-fc".into(),
        input: Shape::hwc(4, 4, 3),
        layers: vec![fc("f0", usize::MAX / 2), fc("f1", 10)],
    });
    assert!(matches!(e, SpecError::Overflow { .. }), "{e}");
}

#[test]
fn spatial_after_fc_is_rejected() {
    let e = expect_spec_error(NetworkSpec {
        name: "conv-after-fc".into(),
        input: Shape::hwc(8, 8, 3),
        layers: vec![fc("f0", 32), conv("c1", 8), fc("f1", 10)],
    });
    assert!(matches!(e, SpecError::SpatialAfterFc { .. }), "{e}");
}

#[test]
fn missing_fc_head_is_rejected() {
    let e = expect_spec_error(NetworkSpec {
        name: "no-head".into(),
        input: Shape::hwc(8, 8, 3),
        layers: vec![conv("c0", 8)],
    });
    assert!(matches!(e, SpecError::LastLayerNotFc { .. }), "{e}");

    let e = expect_spec_error(NetworkSpec {
        name: "empty".into(),
        input: Shape::hwc(8, 8, 3),
        layers: vec![],
    });
    assert_eq!(e, SpecError::EmptyNetwork);
}

#[test]
fn oversized_kernel_is_rejected() {
    let e = expect_spec_error(NetworkSpec {
        name: "big-window".into(),
        input: Shape::hwc(2, 2, 32),
        layers: vec![
            LayerSpec::Pool {
                name: "p0".into(),
                params: ConvParams {
                    kh: 5,
                    kw: 5,
                    stride: 1,
                    pad: 0,
                },
            },
            fc("f0", 10),
        ],
    });
    assert!(matches!(e, SpecError::Kernel { .. }), "{e}");
}

#[test]
fn wrong_shape_input_is_a_typed_error() {
    let (model, _) = compiled();
    let mut ctx = model.new_context();
    let mut rng = StdRng::seed_from_u64(7);
    let bad = Tensor::random(Shape::hwc(5, 5, 3), Layout::Nhwc, &mut rng);
    match model.try_infer(&mut ctx, &bad) {
        Err(BitFlowError::InputGeometry(InputGeometry::ShapeMismatch { .. })) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
}

#[test]
fn nan_and_inf_inputs_are_typed_errors() {
    let (model, good) = compiled();
    let mut ctx = model.new_context();
    for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let mut data = good.data().to_vec();
        let mid = data.len() / 2;
        data[mid] = poison;
        let bad = Tensor::from_vec(data, good.shape(), Layout::Nhwc);
        match model.try_infer(&mut ctx, &bad) {
            Err(BitFlowError::InputGeometry(InputGeometry::NonFinite { index })) => {
                assert_eq!(index, mid);
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }
}

#[test]
fn context_from_another_model_is_a_typed_error() {
    let (model, input) = compiled();
    // A context for a different network has a different slot count.
    let other_spec = NetworkSpec {
        name: "other".into(),
        input: Shape::hwc(8, 8, 3),
        layers: vec![fc("f0", 10)],
    };
    let mut rng = StdRng::seed_from_u64(3);
    let other_weights = NetworkWeights::random_with_bn(&other_spec, &mut rng);
    let other = match CompiledModel::try_compile(&other_spec, &other_weights) {
        Ok(m) => m,
        Err(e) => panic!("other model must compile: {e}"),
    };
    let mut foreign_ctx = other.new_context();
    match model.try_infer(&mut foreign_ctx, &input) {
        Err(BitFlowError::InputGeometry(InputGeometry::ContextMismatch { .. })) => {}
        other => panic!("expected ContextMismatch, got {other:?}"),
    }
}

/// One malformed item must not poison the batch: every other item's
/// logits stay bit-identical to a serial run over a single context.
#[test]
fn bad_batch_item_degrades_gracefully() {
    let (model, _) = compiled();
    let mut rng = StdRng::seed_from_u64(11);
    let shape = model.spec().input;
    let mut inputs: Vec<Tensor> = (0..16)
        .map(|_| Tensor::random(shape, Layout::Nhwc, &mut rng))
        .collect();
    // Poison two items in different worker chunks: one wrong shape, one NaN.
    inputs[3] = Tensor::random(Shape::hwc(2, 2, 3), Layout::Nhwc, &mut rng);
    let mut poisoned = inputs[12].data().to_vec();
    poisoned[0] = f32::NAN;
    inputs[12] = Tensor::from_vec(poisoned, shape, Layout::Nhwc);

    let results = model.try_infer_batch(&inputs);
    assert_eq!(results.len(), inputs.len());

    // Serial oracle over one context.
    let mut ctx = model.new_context();
    for (i, (input, result)) in inputs.iter().zip(&results).enumerate() {
        if i == 3 || i == 12 {
            assert!(result.is_err(), "poisoned item {i} must fail");
            continue;
        }
        let want = match model.try_infer(&mut ctx, input) {
            Ok(l) => l,
            Err(e) => panic!("serial oracle failed on good item {i}: {e}"),
        };
        match result {
            Ok(got) => assert_eq!(got, &want, "item {i} diverged from serial inference"),
            Err(e) => panic!("good item {i} failed: {e}"),
        }
    }

    // The typed variants are the ones the injector planted.
    assert!(matches!(
        results[3],
        Err(BitFlowError::InputGeometry(
            InputGeometry::ShapeMismatch { .. }
        ))
    ));
    assert!(matches!(
        results[12],
        Err(BitFlowError::InputGeometry(InputGeometry::NonFinite { .. }))
    ));
}

/// An all-bad batch returns all errors, no panics, correct length.
#[test]
fn all_bad_batch_returns_all_errors() {
    let (model, _) = compiled();
    let mut rng = StdRng::seed_from_u64(13);
    let inputs: Vec<Tensor> = (0..8)
        .map(|_| Tensor::random(Shape::hwc(1, 1, 1), Layout::Nhwc, &mut rng))
        .collect();
    let results = model.try_infer_batch(&inputs);
    assert_eq!(results.len(), 8);
    assert!(results.iter().all(Result::is_err));
}

/// Empty batches are a no-op, not an edge-case crash.
#[test]
fn empty_batch_is_empty() {
    let (model, _) = compiled();
    assert!(model.try_infer_batch(&[]).is_empty());
}
