//! Fault-injection harness for the serving path: hostile specs, malformed
//! inference requests, and batch-degradation semantics. Everything here
//! must surface as a typed [`BitFlowError`] — a panic is a failed test.

use bitflow_graph::error::{BitFlowError, InputGeometry, RejectReason, SpecError};
use bitflow_graph::models::small_cnn;
use bitflow_graph::spec::{LayerSpec, NetworkSpec};
use bitflow_graph::weights::NetworkWeights;
use bitflow_graph::{CancelToken, CompiledModel};
use bitflow_ops::ConvParams;
use bitflow_tensor::{Layout, Shape, Tensor};
use rand::{rngs::StdRng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn compiled() -> (CompiledModel, Tensor) {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(42);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let model = match CompiledModel::try_compile(&spec, &weights) {
        Ok(m) => m,
        Err(e) => panic!("seed model must compile: {e}"),
    };
    (model, input)
}

fn conv(name: &str, k: usize) -> LayerSpec {
    LayerSpec::Conv {
        name: name.into(),
        k,
        params: ConvParams::VGG_CONV,
    }
}

fn fc(name: &str, k: usize) -> LayerSpec {
    LayerSpec::Fc {
        name: name.into(),
        k,
    }
}

/// `try_compile` on a hostile spec must return `Err` without panicking.
fn expect_spec_error(spec: NetworkSpec) -> SpecError {
    let weights = NetworkWeights { layers: Vec::new() };
    let r = catch_unwind(AssertUnwindSafe(|| {
        CompiledModel::try_compile(&spec, &weights)
    }));
    match r {
        Ok(Err(BitFlowError::Spec(e))) => e,
        Ok(Err(other)) => panic!("expected SpecError, got {other}"),
        Ok(Ok(_)) => panic!("hostile spec compiled"),
        Err(_) => panic!("try_compile panicked on hostile spec"),
    }
}

#[test]
fn zero_dimension_specs_are_rejected() {
    let e = expect_spec_error(NetworkSpec {
        name: "zero-input".into(),
        input: Shape::hwc(0, 8, 3),
        layers: vec![conv("c0", 8), fc("f0", 10)],
    });
    assert!(matches!(e, SpecError::ZeroDim { .. }), "{e}");

    let e = expect_spec_error(NetworkSpec {
        name: "zero-filters".into(),
        input: Shape::hwc(8, 8, 3),
        layers: vec![conv("c0", 0), fc("f0", 10)],
    });
    assert!(matches!(e, SpecError::ZeroDim { .. }), "{e}");
}

#[test]
fn overflow_channel_specs_are_rejected() {
    let e = expect_spec_error(NetworkSpec {
        name: "overflow".into(),
        input: Shape::hwc(8, 8, usize::MAX / 2),
        layers: vec![conv("c0", 8), fc("f0", 10)],
    });
    assert!(
        matches!(e, SpecError::Kernel { .. } | SpecError::Overflow { .. }),
        "{e}"
    );

    let e = expect_spec_error(NetworkSpec {
        name: "overflow-fc".into(),
        input: Shape::hwc(4, 4, 3),
        layers: vec![fc("f0", usize::MAX / 2), fc("f1", 10)],
    });
    assert!(matches!(e, SpecError::Overflow { .. }), "{e}");
}

#[test]
fn spatial_after_fc_is_rejected() {
    let e = expect_spec_error(NetworkSpec {
        name: "conv-after-fc".into(),
        input: Shape::hwc(8, 8, 3),
        layers: vec![fc("f0", 32), conv("c1", 8), fc("f1", 10)],
    });
    assert!(matches!(e, SpecError::SpatialAfterFc { .. }), "{e}");
}

#[test]
fn missing_fc_head_is_rejected() {
    let e = expect_spec_error(NetworkSpec {
        name: "no-head".into(),
        input: Shape::hwc(8, 8, 3),
        layers: vec![conv("c0", 8)],
    });
    assert!(matches!(e, SpecError::LastLayerNotFc { .. }), "{e}");

    let e = expect_spec_error(NetworkSpec {
        name: "empty".into(),
        input: Shape::hwc(8, 8, 3),
        layers: vec![],
    });
    assert_eq!(e, SpecError::EmptyNetwork);
}

#[test]
fn oversized_kernel_is_rejected() {
    let e = expect_spec_error(NetworkSpec {
        name: "big-window".into(),
        input: Shape::hwc(2, 2, 32),
        layers: vec![
            LayerSpec::Pool {
                name: "p0".into(),
                params: ConvParams {
                    kh: 5,
                    kw: 5,
                    stride: 1,
                    pad: 0,
                },
            },
            fc("f0", 10),
        ],
    });
    assert!(matches!(e, SpecError::Kernel { .. }), "{e}");
}

#[test]
fn wrong_shape_input_is_a_typed_error() {
    let (model, _) = compiled();
    let mut ctx = model.new_context();
    let mut rng = StdRng::seed_from_u64(7);
    let bad = Tensor::random(Shape::hwc(5, 5, 3), Layout::Nhwc, &mut rng);
    match model.try_infer(&mut ctx, &bad) {
        Err(BitFlowError::InputGeometry(InputGeometry::ShapeMismatch { .. })) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
}

#[test]
fn nan_and_inf_inputs_are_typed_errors() {
    let (model, good) = compiled();
    let mut ctx = model.new_context();
    for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let mut data = good.data().to_vec();
        let mid = data.len() / 2;
        data[mid] = poison;
        let bad = Tensor::from_vec(data, good.shape(), Layout::Nhwc);
        match model.try_infer(&mut ctx, &bad) {
            Err(BitFlowError::InputGeometry(InputGeometry::NonFinite { index })) => {
                assert_eq!(index, mid);
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }
}

#[test]
fn context_from_another_model_is_a_typed_error() {
    let (model, input) = compiled();
    // A context for a different network has a different slot count.
    let other_spec = NetworkSpec {
        name: "other".into(),
        input: Shape::hwc(8, 8, 3),
        layers: vec![fc("f0", 10)],
    };
    let mut rng = StdRng::seed_from_u64(3);
    let other_weights = NetworkWeights::random_with_bn(&other_spec, &mut rng);
    let other = match CompiledModel::try_compile(&other_spec, &other_weights) {
        Ok(m) => m,
        Err(e) => panic!("other model must compile: {e}"),
    };
    let mut foreign_ctx = other.new_context();
    match model.try_infer(&mut foreign_ctx, &input) {
        Err(BitFlowError::InputGeometry(InputGeometry::ContextMismatch { .. })) => {}
        other => panic!("expected ContextMismatch, got {other:?}"),
    }
}

/// One malformed item must not poison the batch: every other item's
/// logits stay bit-identical to a serial run over a single context.
#[test]
fn bad_batch_item_degrades_gracefully() {
    let (model, _) = compiled();
    let mut rng = StdRng::seed_from_u64(11);
    let shape = model.spec().input;
    let mut inputs: Vec<Tensor> = (0..16)
        .map(|_| Tensor::random(shape, Layout::Nhwc, &mut rng))
        .collect();
    // Poison two items in different worker chunks: one wrong shape, one NaN.
    inputs[3] = Tensor::random(Shape::hwc(2, 2, 3), Layout::Nhwc, &mut rng);
    let mut poisoned = inputs[12].data().to_vec();
    poisoned[0] = f32::NAN;
    inputs[12] = Tensor::from_vec(poisoned, shape, Layout::Nhwc);

    let results = model.try_infer_batch(&inputs);
    assert_eq!(results.len(), inputs.len());

    // Serial oracle over one context.
    let mut ctx = model.new_context();
    for (i, (input, result)) in inputs.iter().zip(&results).enumerate() {
        if i == 3 || i == 12 {
            assert!(result.is_err(), "poisoned item {i} must fail");
            continue;
        }
        let want = match model.try_infer(&mut ctx, input) {
            Ok(l) => l,
            Err(e) => panic!("serial oracle failed on good item {i}: {e}"),
        };
        match result {
            Ok(got) => assert_eq!(got, &want, "item {i} diverged from serial inference"),
            Err(e) => panic!("good item {i} failed: {e}"),
        }
    }

    // The typed variants are the ones the injector planted.
    assert!(matches!(
        results[3],
        Err(BitFlowError::InputGeometry(
            InputGeometry::ShapeMismatch { .. }
        ))
    ));
    assert!(matches!(
        results[12],
        Err(BitFlowError::InputGeometry(InputGeometry::NonFinite { .. }))
    ));
}

/// An all-bad batch returns all errors, no panics, correct length.
#[test]
fn all_bad_batch_returns_all_errors() {
    let (model, _) = compiled();
    let mut rng = StdRng::seed_from_u64(13);
    let inputs: Vec<Tensor> = (0..8)
        .map(|_| Tensor::random(Shape::hwc(1, 1, 1), Layout::Nhwc, &mut rng))
        .collect();
    let results = model.try_infer_batch(&inputs);
    assert_eq!(results.len(), 8);
    assert!(results.iter().all(Result::is_err));
}

/// Empty batches are a no-op, not an edge-case crash.
#[test]
fn empty_batch_is_empty() {
    let (model, _) = compiled();
    assert!(model.try_infer_batch(&[]).is_empty());
}

/// A cancelled token surfaces as `Err(Cancelled)` — not a panic — and the
/// abandoned context is not poisoned: the next complete run through it is
/// bit-identical to a fresh context.
#[test]
fn cancellation_is_typed_and_does_not_poison_the_context() {
    let (model, input) = compiled();
    let mut ctx = model.new_context();
    let golden = match model.try_infer(&mut ctx, &input) {
        Ok(l) => l,
        Err(e) => panic!("golden run failed: {e}"),
    };

    let token = CancelToken::new();
    token.cancel();
    let r = catch_unwind(AssertUnwindSafe(|| {
        model.try_infer_cancellable(&mut ctx, &input, &token)
    }));
    match r {
        Ok(Err(BitFlowError::Cancelled)) => {}
        Ok(other) => panic!("expected Cancelled, got {other:?}"),
        Err(_) => panic!("cancellation panicked"),
    }

    let again = match model.try_infer(&mut ctx, &input) {
        Ok(l) => l,
        Err(e) => panic!("post-cancel run failed: {e}"),
    };
    assert_eq!(again, golden, "cancelled run poisoned the context");
}

/// A deadline in the past surfaces as `Err(DeadlineExceeded)`, and a
/// deadline crossed *mid-run* (planted via the fault hook slowing one
/// operator) aborts at the next operator boundary, again without
/// poisoning the context.
#[test]
fn deadline_exceeded_is_typed_and_does_not_poison_the_context() {
    let (model, input) = compiled();
    let mut ctx = model.new_context();
    let golden = match model.try_infer(&mut ctx, &input) {
        Ok(l) => l,
        Err(e) => panic!("golden run failed: {e}"),
    };

    // Already-expired deadline: rejected at the first checkpoint.
    let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
    match model.try_infer_cancellable(&mut ctx, &input, &expired) {
        Err(BitFlowError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // Deadline that expires inside operator #0 (the hook stalls it past
    // the budget): the run must stop at the next boundary.
    assert!(model.install_fault_hook(Arc::new(|op, _name, _tag| {
        if op == 0 {
            std::thread::sleep(Duration::from_millis(30));
        }
    })));
    let tight = CancelToken::with_budget(Duration::from_millis(5));
    match model.try_infer_cancellable(&mut ctx, &input, &tight) {
        Err(BitFlowError::DeadlineExceeded) => {}
        other => panic!("expected mid-run DeadlineExceeded, got {other:?}"),
    }

    let again = match model.try_infer(&mut ctx, &input) {
        Ok(l) => l,
        Err(e) => panic!("post-deadline run failed: {e}"),
    };
    assert_eq!(again, golden, "deadline-aborted run poisoned the context");
}

/// A panic planted inside one operator of a batch degrades to a typed
/// `Internal` error that names the operator; the other items survive
/// bit-identical, and the model keeps serving afterwards.
#[test]
fn batch_panic_is_attributed_to_the_operator() {
    let (model, _) = compiled();
    let mut rng = StdRng::seed_from_u64(17);
    let shape = model.spec().input;
    let inputs: Vec<Tensor> = (0..4)
        .map(|_| Tensor::random(shape, Layout::Nhwc, &mut rng))
        .collect();

    // One-shot bomb in operator #1: exactly one invocation panics.
    let fired = Arc::new(AtomicUsize::new(0));
    let hook_fired = Arc::clone(&fired);
    assert!(model.install_fault_hook(Arc::new(move |op, name, _tag| {
        if op == 1 && hook_fired.fetch_add(1, Ordering::SeqCst) == 0 {
            panic!("planted fault in {name}");
        }
    })));

    let results = model.try_infer_batch(&inputs);
    assert_eq!(results.len(), inputs.len());
    let internals: Vec<&BitFlowError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert_eq!(internals.len(), 1, "exactly one item hits the bomb");
    match internals[0] {
        BitFlowError::Internal(msg) => {
            let telemetry = model.enable_telemetry();
            let op1 = match telemetry.op_name(1) {
                Some(n) => n.to_string(),
                None => panic!("model has no operator #1"),
            };
            assert!(
                msg.contains(&format!("operator `{op1}`")) && msg.contains("#1"),
                "panic not attributed to operator `{op1}`: {msg}"
            );
            assert!(msg.contains("planted fault"), "payload text lost: {msg}");
        }
        other => panic!("expected Internal, got {other}"),
    }

    // The survivors match a serial oracle and the model still serves.
    let mut ctx = model.new_context();
    for (input, result) in inputs.iter().zip(&results) {
        if let Ok(got) = result {
            let want = match model.try_infer(&mut ctx, input) {
                Ok(l) => l,
                Err(e) => panic!("oracle failed: {e}"),
            };
            assert_eq!(got, &want, "survivor diverged from serial inference");
        }
    }
}

/// The overload-control variants are ordinary values: Display, error
/// codes, and serde all cover them (the serving layer returns these to
/// clients, so their wire shape is part of the contract).
#[test]
fn overload_errors_are_typed_values() {
    for (reason, label) in [
        (RejectReason::QueueFull, "queue_full"),
        (RejectReason::Shedding, "shedding"),
        (RejectReason::Draining, "draining"),
    ] {
        assert_eq!(reason.label(), label);
        let err = BitFlowError::from(reason);
        assert_eq!(err.code(), format!("rejected_{label}"));
        assert!(!err.to_string().is_empty());
    }
    assert_eq!(BitFlowError::DeadlineExceeded.code(), "deadline_exceeded");
    assert_eq!(BitFlowError::Cancelled.code(), "cancelled");
}
