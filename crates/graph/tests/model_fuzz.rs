//! Corpus fuzzer for [`bitflow_graph::model_io::decode_model`]: thousands
//! of mutated model containers — truncations, bit flips, length-field
//! inflation, and checksum-repaired structural corruptions — must every
//! one come back as a typed `Err`. A panic or an `Ok` on a corrupted
//! buffer is a bug in the serving path.

use bitflow_graph::model_io::{decode_model, encode_model};
use bitflow_graph::models::small_cnn;
use bitflow_graph::weights::NetworkWeights;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Fixed prefix layout of the v2 container (kept in sync with model_io):
/// magic(4) | version(4) | header_len(4) | payload_len(8) | checksum(8).
const PREFIX_LEN: usize = 28;

fn corpus_model() -> Vec<u8> {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(0xB17F);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    encode_model(&spec, &weights)
}

/// FNV-1a 64 (mirrors the container's integrity hash) so structural
/// mutations can re-sign the body and drive corruption past the checksum
/// into the header/descriptor layers of the decoder.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn resign(bytes: &mut [u8]) {
    let sum = fnv1a64(&bytes[PREFIX_LEN..]);
    bytes[20..28].copy_from_slice(&sum.to_le_bytes());
}

/// Decode must return `Err` without panicking. Returns a description of
/// the violation, if any.
fn must_reject(bytes: &[u8], what: &str) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| decode_model(bytes))) {
        Ok(Err(_)) => None,
        Ok(Ok(_)) => Some(format!("{what}: decoded Ok from corrupted buffer")),
        Err(_) => Some(format!("{what}: decode_model panicked")),
    }
}

#[test]
fn pristine_corpus_decodes() {
    assert!(decode_model(&corpus_model()).is_ok());
}

/// ≥10k mutations, all rejected, none panicking. Split across mutation
/// families so a regression report names the failing family.
#[test]
fn ten_thousand_mutations_all_rejected() {
    let base = corpus_model();
    let mut rng = StdRng::seed_from_u64(0xFA57);
    let mut violations: Vec<String> = Vec::new();
    let mut record = |v: Option<String>| {
        if let Some(v) = v {
            if violations.len() < 10 {
                violations.push(v);
            }
        }
    };

    // Family 1: truncations — every prefix of the prefix region, plus
    // random cuts through header and payload. (~2.5k cases)
    for cut in 0..PREFIX_LEN.min(base.len()) {
        record(must_reject(&base[..cut], &format!("truncate to {cut}")));
    }
    for _ in 0..2500 {
        let cut = rng.gen_range(0..base.len());
        record(must_reject(&base[..cut], &format!("truncate to {cut}")));
    }

    // Family 2: single-bit flips anywhere in the container. (~4k cases)
    for _ in 0..4000 {
        let mut m = base.clone();
        let i = rng.gen_range(0..m.len());
        let bit = 1u8 << rng.gen_range(0..8);
        m[i] ^= bit;
        record(must_reject(&m, &format!("bit flip at byte {i}")));
    }

    // Family 3: length-field inflation — overwrite header_len /
    // payload_len with hostile values (huge, overflow-adjacent, zero),
    // checksum left stale and also re-signed. (~2k cases)
    let hostile_u32 = [0u32, 1, u32::MAX, u32::MAX - 3, 1 << 30];
    let hostile_u64 = [
        0u64,
        1,
        u64::MAX,
        u64::MAX - 7,
        (usize::MAX as u64) - 8,
        1 << 62,
    ];
    for _ in 0..1000 {
        let mut m = base.clone();
        m[8..12].copy_from_slice(&hostile_u32[rng.gen_range(0..hostile_u32.len())].to_le_bytes());
        m[12..20].copy_from_slice(&hostile_u64[rng.gen_range(0..hostile_u64.len())].to_le_bytes());
        if rng.gen_bool(0.5) {
            resign(&mut m);
        }
        record(must_reject(&m, "length-field inflation"));
    }
    for _ in 0..1000 {
        // Random garbage in the whole prefix after the magic.
        let mut m = base.clone();
        for b in &mut m[4..PREFIX_LEN] {
            *b = rng.gen();
        }
        record(must_reject(&m, "randomized prefix"));
    }

    // Family 4: checksum-repaired structural corruption — flip bytes in
    // the JSON header or payload, then re-sign so the mutation reaches
    // the parser / descriptor cross-checks instead of the checksum.
    // (~2k cases)
    for _ in 0..2000 {
        let mut m = base.clone();
        let i = rng.gen_range(PREFIX_LEN..m.len());
        m[i] ^= 1u8 << rng.gen_range(0..8);
        resign(&mut m);
        // A re-signed container is, by definition, correctly signed: a
        // flip in a payload f32 (or a harmless header digit) may decode
        // Ok. The contract here is no panic and no unbounded allocation —
        // hostile descriptors must still die in the cross-checks.
        match catch_unwind(AssertUnwindSafe(|| decode_model(&m))) {
            Ok(_) => {}
            Err(_) => record(Some(format!("re-signed flip at byte {i}: panic"))),
        }
    }

    // Family 5: appended garbage and doubled bodies. (~500 cases)
    for _ in 0..500 {
        let mut m = base.clone();
        let extra = rng.gen_range(1..64);
        for _ in 0..extra {
            m.push(rng.gen());
        }
        record(must_reject(&m, "trailing garbage"));
    }

    assert!(
        violations.is_empty(),
        "decode_model violated the corruption contract:\n{}",
        violations.join("\n")
    );
}
