//! Corpus fuzzer for [`bitflow_graph::model_io::decode_model`]: thousands
//! of mutated model containers — truncations, bit flips, length-field
//! inflation, and checksum-repaired structural corruptions — must every
//! one come back as a typed `Err`. A panic or an `Ok` on a corrupted
//! buffer is a bug in the serving path.

use bitflow_graph::model_io::{decode_model, encode_model};
use bitflow_graph::models::small_cnn;
use bitflow_graph::weights::NetworkWeights;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Fixed prefix layout of the v2 container (kept in sync with model_io):
/// magic(4) | version(4) | header_len(4) | payload_len(8) | checksum(8).
const PREFIX_LEN: usize = 28;

fn corpus_model() -> Vec<u8> {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(0xB17F);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    encode_model(&spec, &weights)
}

/// FNV-1a 64 (mirrors the container's integrity hash) so structural
/// mutations can re-sign the body and drive corruption past the checksum
/// into the header/descriptor layers of the decoder.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn resign(bytes: &mut [u8]) {
    let sum = fnv1a64(&bytes[PREFIX_LEN..]);
    bytes[20..28].copy_from_slice(&sum.to_le_bytes());
}

/// Decode must return `Err` without panicking. Returns a description of
/// the violation, if any.
fn must_reject(bytes: &[u8], what: &str) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| decode_model(bytes))) {
        Ok(Err(_)) => None,
        Ok(Ok(_)) => Some(format!("{what}: decoded Ok from corrupted buffer")),
        Err(_) => Some(format!("{what}: decode_model panicked")),
    }
}

#[test]
fn pristine_corpus_decodes() {
    assert!(decode_model(&corpus_model()).is_ok());
}

/// ≥10k mutations, all rejected, none panicking. Split across mutation
/// families so a regression report names the failing family.
#[test]
fn ten_thousand_mutations_all_rejected() {
    let base = corpus_model();
    let mut rng = StdRng::seed_from_u64(0xFA57);
    let mut violations: Vec<String> = Vec::new();
    let mut record = |v: Option<String>| {
        if let Some(v) = v {
            if violations.len() < 10 {
                violations.push(v);
            }
        }
    };

    // Family 1: truncations — every prefix of the prefix region, plus
    // random cuts through header and payload. (~2.5k cases)
    for cut in 0..PREFIX_LEN.min(base.len()) {
        record(must_reject(&base[..cut], &format!("truncate to {cut}")));
    }
    for _ in 0..2500 {
        let cut = rng.gen_range(0..base.len());
        record(must_reject(&base[..cut], &format!("truncate to {cut}")));
    }

    // Family 2: single-bit flips anywhere in the container. (~4k cases)
    for _ in 0..4000 {
        let mut m = base.clone();
        let i = rng.gen_range(0..m.len());
        let bit = 1u8 << rng.gen_range(0..8);
        m[i] ^= bit;
        record(must_reject(&m, &format!("bit flip at byte {i}")));
    }

    // Family 3: length-field inflation — overwrite header_len /
    // payload_len with hostile values (huge, overflow-adjacent, zero),
    // checksum left stale and also re-signed. (~2k cases)
    let hostile_u32 = [0u32, 1, u32::MAX, u32::MAX - 3, 1 << 30];
    let hostile_u64 = [
        0u64,
        1,
        u64::MAX,
        u64::MAX - 7,
        (usize::MAX as u64) - 8,
        1 << 62,
    ];
    for _ in 0..1000 {
        let mut m = base.clone();
        m[8..12].copy_from_slice(&hostile_u32[rng.gen_range(0..hostile_u32.len())].to_le_bytes());
        m[12..20].copy_from_slice(&hostile_u64[rng.gen_range(0..hostile_u64.len())].to_le_bytes());
        if rng.gen_bool(0.5) {
            resign(&mut m);
        }
        record(must_reject(&m, "length-field inflation"));
    }
    for _ in 0..1000 {
        // Random garbage in the whole prefix after the magic.
        let mut m = base.clone();
        for b in &mut m[4..PREFIX_LEN] {
            *b = rng.gen();
        }
        record(must_reject(&m, "randomized prefix"));
    }

    // Family 4: checksum-repaired structural corruption — flip bytes in
    // the JSON header or payload, then re-sign so the mutation reaches
    // the parser / descriptor cross-checks instead of the checksum.
    // (~2k cases)
    for _ in 0..2000 {
        let mut m = base.clone();
        let i = rng.gen_range(PREFIX_LEN..m.len());
        m[i] ^= 1u8 << rng.gen_range(0..8);
        resign(&mut m);
        // A re-signed container is, by definition, correctly signed: a
        // flip in a payload f32 (or a harmless header digit) may decode
        // Ok. The contract here is no panic and no unbounded allocation —
        // hostile descriptors must still die in the cross-checks.
        match catch_unwind(AssertUnwindSafe(|| decode_model(&m))) {
            Ok(_) => {}
            Err(_) => record(Some(format!("re-signed flip at byte {i}: panic"))),
        }
    }

    // Family 5: appended garbage and doubled bodies. (~500 cases)
    for _ in 0..500 {
        let mut m = base.clone();
        let extra = rng.gen_range(1..64);
        for _ in 0..extra {
            m.push(rng.gen());
        }
        record(must_reject(&m, "trailing garbage"));
    }

    assert!(
        violations.is_empty(),
        "decode_model violated the corruption contract:\n{}",
        violations.join("\n")
    );
}

/// Integer leaves in a JSON tree, in deterministic traversal order.
fn count_numbers(v: &serde::Value) -> usize {
    match v {
        serde::Value::Int(_) | serde::Value::UInt(_) => 1,
        serde::Value::Array(a) => a.iter().map(count_numbers).sum(),
        serde::Value::Object(o) => o.iter().map(|(_, x)| count_numbers(x)).sum(),
        _ => 0,
    }
}

/// Replaces the `target`-th integer leaf (same traversal order as
/// [`count_numbers`]) with `val`.
fn replace_nth_number(v: &mut serde::Value, target: usize, val: u64, seen: &mut usize) {
    match v {
        serde::Value::Int(_) | serde::Value::UInt(_) => {
            if *seen == target {
                *v = serde::Value::UInt(val);
            }
            *seen += 1;
        }
        serde::Value::Array(a) => {
            for x in a {
                replace_nth_number(x, target, val, seen);
            }
        }
        serde::Value::Object(o) => {
            for (_, x) in o.iter_mut() {
                replace_nth_number(x, target, val, seen);
            }
        }
        _ => {}
    }
}

/// Mutable lookup of an object field (the vendored `Value` exposes only a
/// shared-reference `field`).
fn field_mut<'a>(v: &'a mut serde::Value, name: &str) -> &'a mut serde::Value {
    match v {
        serde::Value::Object(fields) => fields
            .iter_mut()
            .find(|(k, _)| k == name)
            .map(|(_, x)| x)
            .unwrap_or_else(|| panic!("corpus header has `{name}`")),
        _ => panic!("corpus header is an object"),
    }
}

/// Rebuilds a container around a replacement header: prefix lengths
/// updated, body re-signed, payload carried over from `base` verbatim.
fn with_header(base: &[u8], orig_hlen: usize, header_json: &[u8]) -> Vec<u8> {
    let payload = &base[PREFIX_LEN + orig_hlen..];
    let hlen = u32::try_from(header_json.len()).expect("mutant header fits in u32");
    let mut m = Vec::with_capacity(PREFIX_LEN + header_json.len() + payload.len());
    m.extend_from_slice(&base[..8]); // magic + version
    m.extend_from_slice(&hlen.to_le_bytes());
    m.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    m.extend_from_slice(&[0u8; 8]); // checksum, re-signed below
    m.extend_from_slice(header_json);
    m.extend_from_slice(payload);
    resign(&mut m);
    m
}

/// Checksum-valid containers whose headers *declare* near-`usize::MAX`
/// layer/shape counts. The integrity hash passes by construction, so the
/// decoder's overflow-checked cross-checks and fallible reservations are
/// the only line of defense against allocation-sized-by-attacker.
///
/// Descriptor element counts gate payload allocation directly, so every
/// descriptor mutation must come back as a typed `Err`
/// (`Corrupt`/`Truncated`/`ResourceExhausted`) — never an abort. Spec
/// geometry must die in shape inference's checked arithmetic; a mutated
/// spec that happens to stay self-consistent may legally decode, so the
/// hard contract there is no panic and no abort.
#[test]
fn hostile_declared_sizes_reject_without_aborting() {
    let base = corpus_model();
    let hlen = u32::from_le_bytes([base[8], base[9], base[10], base[11]]) as usize;
    let header: serde::Value =
        serde_json::from_slice(&base[PREFIX_LEN..PREFIX_LEN + hlen]).expect("corpus header parses");

    let hostile: [u64; 6] = [
        usize::MAX as u64,
        (usize::MAX as u64) - 1,
        (usize::MAX as u64) >> 1,
        (usize::MAX as u64) >> 2,
        u64::from(u32::MAX),
        1 << 48,
    ];
    let mut violations: Vec<String> = Vec::new();
    let mut record = |v: Option<String>| {
        if let Some(v) = v {
            if violations.len() < 10 {
                violations.push(v);
            }
        }
    };

    // Every numeric field in the layer descriptor table — element counts,
    // filter geometry, batch-norm widths — set to each hostile value, one
    // at a time. All of these feed `try_reserve`-guarded payload reads, so
    // a typed Err is mandatory.
    let n_desc = count_numbers(header.field("layers").expect("corpus header has layers"));
    assert!(n_desc > 0, "corpus descriptors carry numeric fields");
    for target in 0..n_desc {
        for &v in &hostile {
            let mut mutated = header.clone();
            let mut seen = 0usize;
            replace_nth_number(field_mut(&mut mutated, "layers"), target, v, &mut seen);
            let json = serde_json::to_vec(&mutated).expect("mutant header serializes");
            let m = with_header(&base, hlen, &json);
            record(must_reject(
                &m,
                &format!("descriptor number {target} = {v}"),
            ));
        }
    }

    // Same sweep over the spec: hostile input/filter geometry. A header
    // that stays self-consistent after the swap may decode Ok (it is then
    // an honest container); the invariant under test is no panic.
    let n_spec = count_numbers(header.field("spec").expect("corpus header has spec"));
    assert!(n_spec > 0, "corpus spec carries numeric fields");
    for target in 0..n_spec {
        for &v in &hostile {
            let mut mutated = header.clone();
            let mut seen = 0usize;
            replace_nth_number(field_mut(&mut mutated, "spec"), target, v, &mut seen);
            let json = serde_json::to_vec(&mutated).expect("mutant header serializes");
            let m = with_header(&base, hlen, &json);
            match catch_unwind(AssertUnwindSafe(|| decode_model(&m))) {
                Ok(_) => {}
                Err(_) => record(Some(format!("spec number {target} = {v}: panic"))),
            }
        }
    }

    // A layer table that balloons structurally: tens of thousands of
    // parameter-free layers over the original payload. The promised
    // payload size (zero) disagrees with the actual payload length, so
    // the decoder must reject before materializing the layer table.
    {
        let mut mutated = header.clone();
        let pools = vec![serde::Value::Str("Pool".into()); 50_000];
        *field_mut(&mut mutated, "layers") = serde::Value::Array(pools);
        let json = serde_json::to_vec(&mutated).expect("mutant header serializes");
        let m = with_header(&base, hlen, &json);
        record(must_reject(&m, "50k-layer header"));
    }

    assert!(
        violations.is_empty(),
        "decode_model violated the hostile-size contract:\n{}",
        violations.join("\n")
    );
}
