//! Spec fuzzer: random valid chain networks are compiled and executed, and
//! the engine's output is compared against a straight-line interpretation
//! using the raw operators — for every generated topology.

use bitflow_graph::spec::{LayerSpec, NetworkSpec};
use bitflow_graph::weights::{LayerWeights, NetworkWeights};
use bitflow_graph::{BitFlowError, CompiledModel, Network};
use bitflow_ops::binary::{
    binarize_pack_padded, binarize_threshold_padded, binary_max_pool, pressed_conv, BinaryFcWeights,
};
use bitflow_ops::{ConvParams, SimdLevel};
use bitflow_tensor::{BitFilterBank, Layout, Shape, Tensor};
use proptest::prelude::*;

/// Straight-line interpreter over the raw ops (the oracle).
fn interpret(spec: &NetworkSpec, weights: &NetworkWeights, input: &Tensor) -> Vec<f32> {
    enum Cur {
        Bits(bitflow_tensor::BitTensor),
        Vec(Vec<f32>),
    }
    let first_pad = spec.layers.first().map_or(0, |l| l.input_pad());
    let mut cur = Cur::Bits(binarize_pack_padded(input, first_pad));
    for (i, (layer, lw)) in spec.layers.iter().zip(&weights.layers).enumerate() {
        let next_pad = spec.layers.get(i + 1).map_or(0, |l| l.input_pad());
        let is_last = i + 1 == spec.layers.len();
        cur = match (layer, lw, cur) {
            (
                LayerSpec::Conv { params, k, .. },
                LayerWeights::Conv { w, fshape, bn },
                Cur::Bits(bits),
            ) => {
                let bank = BitFilterBank::from_floats(w, *fshape);
                let counts = pressed_conv(SimdLevel::Avx512, &bits, &bank, params.stride);
                let fold = bn.fold();
                let _ = k;
                Cur::Bits(binarize_threshold_padded(
                    &counts,
                    &fold.thresholds,
                    &fold.flip,
                    next_pad,
                ))
            }
            (LayerSpec::Pool { params, .. }, LayerWeights::Pool, Cur::Bits(bits)) => {
                let pooled = binary_max_pool(
                    SimdLevel::Avx512,
                    &bits,
                    params.kh,
                    params.kw,
                    params.stride,
                );
                // Re-pad for the next consumer (the oracle pays the copy the
                // engine's zero-cost padding avoids).
                let as_tensor = pooled.to_tensor();
                Cur::Bits(binarize_pack_padded(&as_tensor, next_pad))
            }
            (LayerSpec::Fc { .. }, LayerWeights::Fc { w, n, k, bn }, prev) => {
                let flat: Vec<f32> = match prev {
                    Cur::Bits(bits) => bits.to_tensor().data().to_vec(),
                    Cur::Vec(v) => v,
                };
                assert_eq!(flat.len(), *n);
                let packed = BinaryFcWeights::pack(w, *n, *k);
                let counts = bitflow_ops::binary::binary_fc(SimdLevel::Avx512, &flat, &packed);
                if is_last {
                    Cur::Vec(counts)
                } else {
                    let fold = bn.fold();
                    let signed: Vec<f32> = counts
                        .iter()
                        .enumerate()
                        .map(|(j, &x)| {
                            if (x >= fold.thresholds[j]) ^ fold.flip[j] {
                                1.0
                            } else {
                                -1.0
                            }
                        })
                        .collect();
                    Cur::Vec(signed)
                }
            }
            _ => unreachable!("spec/weights mismatch"),
        };
    }
    match cur {
        Cur::Vec(v) => v,
        Cur::Bits(_) => panic!("network must end with FC"),
    }
}

/// Random chain generator: [conv|pool]* then fc+, with geometry kept valid.
fn arb_spec() -> impl Strategy<Value = NetworkSpec> {
    (
        4usize..10,                                              // input side
        prop_oneof![Just(3usize), Just(16), Just(64), Just(70)], // input channels
        proptest::collection::vec(0u8..3, 0..3),                 // body layer picks
        1usize..3,                                               // fc count
    )
        .prop_map(|(side, c, body, fcs)| {
            let mut layers = Vec::new();
            let mut h = side;
            let mut cc = c;
            for (i, pick) in body.iter().enumerate() {
                match pick {
                    0 => {
                        layers.push(LayerSpec::Conv {
                            name: format!("conv{i}"),
                            k: [8usize, 32, 64][i % 3],
                            params: ConvParams::VGG_CONV,
                        });
                        cc = [8usize, 32, 64][i % 3];
                    }
                    1 if h >= 2 => {
                        layers.push(LayerSpec::Pool {
                            name: format!("pool{i}"),
                            params: ConvParams::VGG_POOL,
                        });
                        h /= 2;
                    }
                    _ => {}
                }
            }
            let _ = cc;
            for f in 0..fcs {
                layers.push(LayerSpec::Fc {
                    name: format!("fc{f}"),
                    k: if f + 1 == fcs { 10 } else { 24 },
                });
            }
            NetworkSpec {
                name: "fuzz".into(),
                input: Shape::hwc(side, side, c),
                layers,
            }
        })
}

/// Anything-goes generator: unconstrained layer chains — zero dims, giant
/// channel counts, padded pools, FC-before-conv, missing FC heads. Most
/// outputs are invalid; some are servable. Validation must sort them.
fn arb_hostile_spec() -> impl Strategy<Value = NetworkSpec> {
    let side = prop_oneof![Just(0usize), 1usize..12, Just(16usize)];
    let chan = prop_oneof![
        Just(0usize),
        Just(3usize),
        Just(32usize),
        Just(64usize),
        Just(usize::MAX / 2),
    ];
    let conv = (0usize..66, 0usize..5, 0usize..4, 0usize..3).prop_map(|(k, kh, stride, pad)| {
        LayerSpec::Conv {
            name: "c".into(),
            k,
            params: ConvParams {
                kh,
                kw: kh,
                stride,
                pad,
            },
        }
    });
    let pool = (0usize..4, 0usize..4, 0usize..2).prop_map(|(kh, stride, pad)| LayerSpec::Pool {
        name: "p".into(),
        params: ConvParams {
            kh,
            kw: kh,
            stride,
            pad,
        },
    });
    let fc =
        prop_oneof![Just(0usize), 1usize..48, Just(usize::MAX / 2)].prop_map(|k| LayerSpec::Fc {
            name: "f".into(),
            k,
        });
    let layer = prop_oneof![conv, pool, fc];
    (side, chan, proptest::collection::vec(layer, 0..5)).prop_map(|(side, c, mut layers)| {
        for (i, l) in layers.iter_mut().enumerate() {
            match l {
                LayerSpec::Conv { name, .. } => *name = format!("c{i}"),
                LayerSpec::Pool { name, .. } => *name = format!("p{i}"),
                LayerSpec::Fc { name, .. } => *name = format!("f{i}"),
            }
        }
        NetworkSpec {
            name: "hostile".into(),
            input: Shape::hwc(side, side, c),
            layers,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_interpreter(spec in arb_spec(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
        let mut net = Network::compile(&spec, &weights);
        let got = net.infer(&input);
        let want = interpret(&spec, &weights, &input);
        // The interpreter's FC path emits ±1 for hidden layers and counts
        // for the head; the engine's logits are counts — same thing.
        prop_assert_eq!(got, want);

        // And the parallel path agrees.
        net.parallel = true;
        let par = net.infer(&input);
        let serial = {
            net.parallel = false;
            net.infer(&input)
        };
        prop_assert_eq!(par, serial);
    }

    /// Container round-trip over arbitrary valid topologies and ε values:
    /// encode→decode is the identity (the v3 payload carries each layer's
    /// ε), and the legacy-version decode path accepts a v2-stamped
    /// container only when its payload has the v2 layout.
    #[test]
    fn container_round_trip_preserves_eps(
        spec in arb_spec(),
        seed in any::<u64>(),
        eps in 1e-6f32..1e-2,
    ) {
        use bitflow_graph::model_io::{decode_model, encode_model};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        for lw in &mut weights.layers {
            if let LayerWeights::Conv { bn, .. } | LayerWeights::Fc { bn, .. } = lw {
                bn.eps = eps;
            }
        }
        let bytes = encode_model(&spec, &weights);
        let (spec2, weights2) = match decode_model(&bytes) {
            Ok(pair) => pair,
            Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e}"))),
        };
        prop_assert_eq!(&spec, &spec2);
        prop_assert_eq!(&weights, &weights2);

        // Re-stamping the version as v2 without removing the ε runs makes
        // the descriptors disagree with the payload length — the decoder
        // must reject it rather than misread the runs.
        let mut v2_stamped = bytes.clone();
        v2_stamped[4..8].copy_from_slice(&2u32.to_le_bytes());
        prop_assert!(decode_model(&v2_stamped).is_err());
    }

    /// The validate → compile → infer contract: a spec that passes
    /// `validate()` must compile and serve cleanly, and a spec that fails
    /// must be rejected by `try_compile` with exactly the same variant.
    #[test]
    fn validate_agrees_with_try_compile(spec in arb_hostile_spec(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        match spec.validate() {
            Ok(shapes) => {
                prop_assert!(!shapes.is_empty());
                let mut rng = StdRng::seed_from_u64(seed);
                let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
                let model = match CompiledModel::try_compile(&spec, &weights) {
                    Ok(m) => m,
                    Err(e) => return Err(TestCaseError::fail(format!(
                        "validate() passed but try_compile rejected: {e}"
                    ))),
                };
                let mut ctx = model.new_context();
                let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
                let logits = match model.try_infer(&mut ctx, &input) {
                    Ok(l) => l,
                    Err(e) => return Err(TestCaseError::fail(format!(
                        "validate() passed but try_infer failed: {e}"
                    ))),
                };
                prop_assert!(logits.iter().all(|x| x.is_finite()));
            }
            Err(want) => {
                // Weights are irrelevant: spec validation runs first.
                let weights = NetworkWeights { layers: Vec::new() };
                match CompiledModel::try_compile(&spec, &weights) {
                    Err(BitFlowError::Spec(got)) => prop_assert_eq!(got, want),
                    Err(other) => return Err(TestCaseError::fail(format!(
                        "expected Spec({want}), got {other}"
                    ))),
                    Ok(_) => return Err(TestCaseError::fail(format!(
                        "validate() rejected ({want}) but try_compile accepted"
                    ))),
                }
            }
        }
    }
}
