//! Network front-end configuration: bind address, connection cap, body
//! bound, and the per-connection deadlines that make slow clients a
//! bounded cost instead of a resource leak.

use std::time::Duration;

/// Full front-end configuration. `Default` binds an ephemeral loopback
/// port with small sane limits; see [`NetConfig::from_env`] for the
/// environment knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// Bind address, e.g. `127.0.0.1:8080`. Port `0` asks the OS for an
    /// ephemeral port ([`crate::NetServer::local_addr`] reports it).
    pub addr: String,
    /// Most connections served concurrently; the accept loop sheds the
    /// excess with an immediate `503`. Clamped to ≥ 1.
    pub max_conns: usize,
    /// Largest accepted request body, bytes. Bigger declared bodies are
    /// refused with `413` before any body byte is read. Clamped to ≥ 1.
    pub max_body_bytes: usize,
    /// Slowloris guard: the whole request head (request line + headers)
    /// must arrive within this budget, however many packets it drips in
    /// over. Also bounds how long an idle keep-alive connection is held.
    pub header_timeout: Duration,
    /// Budget for reading the request body once the head is complete.
    pub read_timeout: Duration,
    /// Budget for writing one response.
    pub write_timeout: Duration,
    /// How long a graceful shutdown waits for open connections to finish
    /// their in-flight request before giving up on them.
    pub drain_timeout: Duration,
    /// Expose the live debug routes (`GET /debug/trace`,
    /// `GET /debug/requests/{id}`). Off by default: until enabled the
    /// routes 404 exactly like any unknown path, so production instances
    /// leak nothing. The routes additionally require the serving runtime
    /// to carry a flight recorder (`BITFLOW_TRACE=1`), else they `503`.
    pub debug_endpoints: bool,
    /// Emit a `server-timing` header on `POST /v1/infer` responses with
    /// the request's queue/exec/total durations from its trace. Off by
    /// default; enabling it opens a per-request trace even without a
    /// flight recorder.
    pub server_timing: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_conns: 64,
            max_body_bytes: 4 << 20,
            header_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(5),
            debug_endpoints: false,
            server_timing: false,
        }
    }
}

impl NetConfig {
    /// Defaults overridden by the environment:
    ///
    /// * `BITFLOW_NET_ADDR` — bind address (`host:port`).
    /// * `BITFLOW_NET_MAX_CONNS` — concurrent-connection cap.
    /// * `BITFLOW_NET_MAX_BODY` — request-body bound, bytes.
    /// * `BITFLOW_NET_HEADER_TIMEOUT_MS` — slowloris header deadline.
    /// * `BITFLOW_NET_READ_TIMEOUT_MS` — body-read deadline.
    /// * `BITFLOW_NET_WRITE_TIMEOUT_MS` — response-write deadline.
    /// * `BITFLOW_NET_DRAIN_TIMEOUT_MS` — graceful-shutdown drain budget.
    /// * `BITFLOW_NET_DEBUG` — truthy (`1`/`true`/`on`/`yes`) exposes the
    ///   `/debug/trace` and `/debug/requests/{id}` routes.
    /// * `BITFLOW_NET_SERVER_TIMING` — truthy adds a `server-timing`
    ///   header to inference responses.
    ///
    /// Malformed values are ignored (the default stands): configuration
    /// must never take the listener down.
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("BITFLOW_NET_ADDR") {
            let v = v.trim();
            if !v.is_empty() {
                cfg.addr = v.to_string();
            }
        }
        if let Some(v) = env_u64("BITFLOW_NET_MAX_CONNS") {
            cfg.max_conns = (v as usize).max(1);
        }
        if let Some(v) = env_u64("BITFLOW_NET_MAX_BODY") {
            cfg.max_body_bytes = (v as usize).max(1);
        }
        if let Some(v) = env_u64("BITFLOW_NET_HEADER_TIMEOUT_MS") {
            cfg.header_timeout = Duration::from_millis(v.max(1));
        }
        if let Some(v) = env_u64("BITFLOW_NET_READ_TIMEOUT_MS") {
            cfg.read_timeout = Duration::from_millis(v.max(1));
        }
        if let Some(v) = env_u64("BITFLOW_NET_WRITE_TIMEOUT_MS") {
            cfg.write_timeout = Duration::from_millis(v.max(1));
        }
        if let Some(v) = env_u64("BITFLOW_NET_DRAIN_TIMEOUT_MS") {
            cfg.drain_timeout = Duration::from_millis(v);
        }
        if env_flag("BITFLOW_NET_DEBUG") {
            cfg.debug_endpoints = true;
        }
        if env_flag("BITFLOW_NET_SERVER_TIMING") {
            cfg.server_timing = true;
        }
        cfg
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Truthy env parse matching the recorder's `BITFLOW_TRACE` convention.
fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| {
        matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "1" | "true" | "on" | "yes"
        )
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = NetConfig::default();
        assert!(cfg.max_conns >= 1);
        assert!(cfg.max_body_bytes >= 1);
        assert!(cfg.header_timeout > Duration::ZERO);
        assert!(cfg.read_timeout > Duration::ZERO);
        assert!(cfg.write_timeout > Duration::ZERO);
        assert!(
            cfg.addr.ends_with(":0"),
            "default must not squat a fixed port"
        );
        assert!(!cfg.debug_endpoints, "debug routes must be opt-in");
        assert!(!cfg.server_timing, "server-timing must be opt-in");
    }
}
