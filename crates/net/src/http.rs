//! Minimal HTTP/1.1 grammar: request-head parsing and response building.
//!
//! Only what the front-end needs, parsed defensively: a request line, a
//! bounded header block, `content-length`-framed bodies. Anything else —
//! chunked transfer coding, obsolete line folding, a missing version —
//! is refused with a typed error the caller turns into a 4xx/5xx. The
//! socket handling (deadlines, chaos, byte accounting) lives in
//! [`crate::server`]; this module is pure bytes-in, values-out and is
//! unit-tested as such.

use std::fmt;

/// Largest accepted request head (request line + headers), bytes. A head
/// that has not terminated within this bound is hostile or broken.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Why a request head was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Not parseable as an HTTP/1.x request head.
    Malformed(&'static str),
    /// The request declared a transfer coding this front-end rejects
    /// (only `content-length` framing is served).
    UnsupportedTransferEncoding,
    /// A body-carrying method arrived without a `content-length`.
    LengthRequired,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "only content-length framing is supported")
            }
            ParseError::LengthRequired => write!(f, "content-length required"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed request head: method, target, and lower-cased header names.
#[derive(Clone, Debug)]
pub struct Head {
    /// Request method, as sent (methods are case-sensitive).
    pub method: String,
    /// Request target (origin form, e.g. `/v1/infer/default`).
    pub target: String,
    /// Whether the request was HTTP/1.1 (governs the keep-alive default).
    pub http11: bool,
    headers: Vec<(String, String)>,
}

impl Head {
    /// The first value of header `name` (ASCII case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The declared body length. `Ok(None)` when absent; an unparseable
    /// value or a rejected transfer coding is an error, never a guess.
    pub fn content_length(&self) -> Result<Option<usize>, ParseError> {
        if self.header("transfer-encoding").is_some() {
            return Err(ParseError::UnsupportedTransferEncoding);
        }
        match self.header("content-length") {
            None => Ok(None),
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map(Some)
                .map_err(|_| ParseError::Malformed("content-length not a number")),
        }
    }

    /// Whether the connection should be kept open after the response:
    /// HTTP/1.1 defaults to yes, HTTP/1.0 to no, `connection: close`
    /// always wins.
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Position one past the `\r\n\r\n` head terminator, if present.
#[must_use]
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parses a complete request head (everything before the terminating
/// blank line, which may be included).
pub fn parse_head(bytes: &[u8]) -> Result<Head, ParseError> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| ParseError::Malformed("head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.chars().all(|c| c.is_ascii_uppercase()))
        .ok_or(ParseError::Malformed("bad method"))?;
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or(ParseError::Malformed("bad request target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("missing version"))?;
    if parts.next().is_some() {
        return Err(ParseError::Malformed("extra request-line fields"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::Malformed("unsupported HTTP version")),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        // Obsolete line folding (a header continued on an indented line)
        // is a known request-smuggling vector: refuse it.
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(ParseError::Malformed("folded header"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Head {
        method: method.to_string(),
        target: target.to_string(),
        http11,
        headers,
    })
}

/// Canonical reason phrase for the statuses this front-end emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// One response, rendered to bytes in a single buffer so the socket
/// writer deals in whole responses (and truncation is the *chaos*
/// injection's job, never an accident of buffering).
#[derive(Clone, Debug)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    #[must_use]
    pub fn new(status: u16) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// The response status.
    #[must_use]
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Appends one header.
    #[must_use]
    pub fn header(mut self, name: &str, value: impl fmt::Display) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets the body.
    #[must_use]
    pub fn body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Sets a plain-text body.
    #[must_use]
    pub fn text(self, body: &str) -> Self {
        self.header("content-type", "text/plain; charset=utf-8")
            .body(body.as_bytes().to_vec())
    }

    /// Renders the full wire form. `content-length` and `connection` are
    /// always emitted so clients can frame the body and pipeline safely.
    #[must_use]
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        self.render(keep_alive, None)
    }

    /// [`Response::to_bytes`] plus an `x-bitflow-request-id` echo header.
    /// The front-end routes every response through this, so clients can
    /// correlate even errors with the id they sent (or were assigned).
    #[must_use]
    pub fn to_bytes_tagged(&self, keep_alive: bool, request_id: &str) -> Vec<u8> {
        self.render(keep_alive, Some(request_id))
    }

    fn render(&self, keep_alive: bool, request_id: Option<&str>) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status)).as_bytes(),
        );
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if let Some(id) = request_id {
            out.extend_from_slice(format!("x-bitflow-request-id: {id}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(
            format!(
                "connection: {}\r\n\r\n",
                if keep_alive { "keep-alive" } else { "close" }
            )
            .as_bytes(),
        );
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn parses_a_full_head() {
        let head =
            parse_head(b"POST /v1/infer/default HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\n")
                .unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.target, "/v1/infer/default");
        assert!(head.http11);
        assert_eq!(head.header("content-length"), Some("12"));
        assert_eq!(head.header("CONTENT-LENGTH"), Some("12"));
        assert_eq!(head.content_length().unwrap(), Some(12));
        assert!(head.keep_alive());
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let head = parse_head(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!head.keep_alive());
        let head = parse_head(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert!(!head.http11);
        assert!(!head.keep_alive());
        let head = parse_head(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(head.keep_alive());
    }

    #[test]
    fn refuses_garbage() {
        for bad in [
            &b"garbage\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/2\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            b"GET /x HTTP/1.1\r\na: b\r\n folded\r\n\r\n",
            b"\xff\xfe /x HTTP/1.1\r\n\r\n",
        ] {
            assert!(
                parse_head(bad).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn rejects_transfer_encoding_and_bad_lengths() {
        let head = parse_head(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap();
        assert_eq!(
            head.content_length(),
            Err(ParseError::UnsupportedTransferEncoding)
        );
        let head = parse_head(b"POST /x HTTP/1.1\r\nContent-Length: -4\r\n\r\n").unwrap();
        assert!(head.content_length().is_err());
        let head = parse_head(b"POST /x HTTP/1.1\r\nContent-Length: lots\r\n\r\n").unwrap();
        assert!(head.content_length().is_err());
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r"), None);
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nBODY"), Some(18));
    }

    #[test]
    fn response_wire_form() {
        let bytes = Response::new(429)
            .header("retry-after", 2)
            .text("slow down")
            .to_bytes(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("content-length: 9\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nslow down"));
        let closed = Response::new(200).to_bytes(false);
        assert!(String::from_utf8(closed)
            .unwrap()
            .contains("connection: close"));
    }

    #[test]
    fn tagged_wire_form_echoes_the_request_id() {
        let bytes = Response::new(200).text("ok").to_bytes_tagged(true, "c7-r0");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("x-bitflow-request-id: c7-r0\r\n"), "{text}");
        assert!(
            !String::from_utf8(Response::new(200).to_bytes(true))
                .unwrap()
                .contains("x-bitflow-request-id"),
            "untagged render must not invent an id"
        );
    }
}
