//! # bitflow-net
//!
//! HTTP/1.1 network front-end for the BitFlow serving runtime: the wire
//! face of [`bitflow_serve::Server`], built directly on
//! [`std::net::TcpListener`] — no async runtime, no HTTP library, one
//! thread per connection bounded by a connection cap.
//!
//! ## Wire contract
//!
//! * `POST /v1/infer` and `POST /v1/infer/{tenant}` — body is a BitFlow
//!   tensor container ([`bitflow_tensor::io::encode_tensor`]); a `200`
//!   carries the raw little-endian `f32` logits
//!   (`content-type: application/octet-stream`). An optional
//!   `x-bitflow-deadline-ms` request header sets the per-request latency
//!   budget.
//! * **Request ids** — every response (including errors and pre-parse
//!   refusals) carries an `x-bitflow-request-id` header. A
//!   client-supplied `x-bitflow-request-id` is honored when it is 1..=64
//!   bytes of `[A-Za-z0-9._-]`; otherwise a `c{conn}-r{req}` id is
//!   generated. The same id names the request's trace in the flight
//!   recorder, so a client can quote it to `/debug/requests/{id}`.
//! * **`server-timing`** ([`NetConfig::server_timing`]) — inference
//!   responses carry `queue`/`exec`/`app` durations (milliseconds) from
//!   the request's trace; the write stage cannot ride in its own
//!   response and is observable as the `bitflow_stage_write_ns`
//!   histogram instead.
//! * Typed failures map onto wire statuses in one exhaustive match
//!   ([`status::reject_status`] / [`status::error_status`]): queue-full
//!   and breaker shedding are `429` with a `Retry-After` derived from the
//!   queue depth and the tenant's batch-latency EWMA, quota exhaustion is
//!   `429` with an `x-bitflow-quota` header, draining is `503`, a missed
//!   deadline is `504`. Error bodies are the engine's own
//!   `{"code", "message"}` JSON ([`bitflow_graph::BitFlowError`]).
//! * `GET /metrics` — Prometheus text exposition of the default tenant.
//! * `GET /healthz` — `200 ok` while the circuit breaker is closed and
//!   the server is not draining; `503` otherwise.
//! * `GET /debug/trace` and `GET /debug/requests/{id}`
//!   ([`NetConfig::debug_endpoints`], default off — the routes `404`
//!   like any unknown path until enabled) — live extraction from the
//!   flight recorder: the full retained dump as a JSON trace list (or a
//!   Perfetto-loadable Chrome trace document with `?format=chrome`), and
//!   one trace looked up by request id. `503` when the serving runtime
//!   carries no recorder (`BITFLOW_TRACE` unset).
//!
//! ## Hostile-client hardening
//!
//! Every connection gets a slowloris header deadline, a bounded header
//! block, a length-checked bounded body, read/write deadlines, and
//! partial-write-safe responses; the accept loop sheds connections past
//! the cap with an immediate `503`. Shutdown is a graceful drain: stop
//! accepting, finish requests already on a connection, then close. All
//! of it is observable through the `net_*` counters on the default
//! tenant's [`bitflow_telemetry::ServeGauges`], and all of it is
//! chaos-injectable (connection kills, stalled reads, truncated writes)
//! from the same seeded [`bitflow_serve::ChaosConfig`] streams as the
//! serving runtime.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod config;
pub mod http;
pub mod server;
pub mod status;

pub use config::NetConfig;
pub use server::NetServer;
