//! The listener: accept loop, per-connection threads, hostile-client
//! hardening, and graceful drain.
//!
//! One OS thread per connection, bounded by [`NetConfig::max_conns`] —
//! past the cap the accept loop sheds with an immediate `503` and never
//! blocks. Every socket interaction is deadline-bounded: the request head
//! must complete within `header_timeout` however slowly it drips in
//! (slowloris), bodies are length-checked before a byte is read and
//! bounded by `read_timeout`, responses by `write_timeout`. Reads poll in
//! short slices so an idle keep-alive connection notices a drain within
//! ~100 ms instead of holding shutdown hostage.
//!
//! Chaos: when the serving runtime carries a seeded
//! [`bitflow_serve::ChaosConfig`], the listener injects from the same
//! deterministic streams — connection kills at accept, read stalls that
//! burn poll slices, truncated writes that close mid-response. The
//! `net_*` counters ([`bitflow_telemetry::ServeGauges`]) account for all
//! of it: `malformed_requests` counts every request refused at the HTTP
//! layer (bad grammar, bad framing, oversized head or body), the
//! timeout/byte counters track the socket work itself.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bitflow_graph::{BitFlowError, RejectReason};
use bitflow_serve::{ChaosConfig, DegradationState, Server};
use bitflow_telemetry::{
    to_chrome_trace, FlightRecorder, MetricsSnapshot, ServeGauges, Stage, TraceBuilder,
};

use crate::config::NetConfig;
use crate::http::{self, ParseError, Response};
use crate::status::{error_status, reject_status, reject_wants_retry_after};

/// How often blocked socket reads/waits re-check the shutdown flag.
const POLL_SLICE: Duration = Duration::from_millis(100);

/// Accept-error backoff bounds: the first failure sleeps the minimum,
/// consecutive failures double it up to the maximum, and any successful
/// accept (or a plain empty queue) resets it. An exhausted fd table or
/// a flapping interface thus costs an idle-ish loop, not a hot spin at
/// 500 failures/second.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(2);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

fn next_accept_backoff(cur: Duration) -> Duration {
    cur.saturating_mul(2).min(ACCEPT_BACKOFF_MAX)
}

/// The HTTP front-end: a bound listener plus its accept thread.
///
/// Dropping (or calling [`NetServer::shutdown`]) drains gracefully:
/// stop accepting, let requests already on a connection finish, then
/// close — bounded by [`NetConfig::drain_timeout`].
pub struct NetServer {
    shared: Arc<NetShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

struct NetShared {
    config: NetConfig,
    server: Arc<Server>,
    chaos: Option<ChaosConfig>,
    shutdown: AtomicBool,
    open_conns: AtomicUsize,
    conn_ids: AtomicU64,
    gauges: Arc<ServeGauges>,
    /// The serving runtime's flight recorder, if tracing is enabled.
    /// Finished traces for every request on this listener are offered
    /// here; the debug routes read it back.
    recorder: Option<Arc<FlightRecorder>>,
}

impl NetShared {
    /// Whether a per-request trace should be opened at all: either a
    /// recorder wants finished traces, or `server-timing` needs the
    /// stage durations.
    fn tracing(&self) -> bool {
        self.recorder.is_some() || self.config.server_timing
    }
}

/// Decrements the open-connection count when a handler thread exits —
/// by any path, including a panic unwinding through it.
struct ConnGuard(Arc<NetShared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.open_conns.fetch_sub(1, Ordering::AcqRel);
    }
}

impl NetServer {
    /// Binds `config.addr` and starts serving `server` over HTTP.
    ///
    /// Chaos and the `net_*` counters both ride on the serving runtime:
    /// injection streams come from the server's [`ChaosConfig`] (if any),
    /// counters land on the default tenant's gauges so they surface in
    /// `/metrics` and in [`bitflow_serve::Server::metrics`].
    pub fn bind(server: Arc<Server>, config: NetConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let gauges = server.gauges();
        let chaos = server.chaos().cloned();
        let recorder = server.recorder();
        let shared = Arc::new(NetShared {
            config,
            server,
            chaos,
            shutdown: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
            conn_ids: AtomicU64::new(0),
            gauges,
            recorder,
        });
        let loop_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("bitflow-net-accept".to_string())
            .spawn(move || accept_loop(&loop_shared, &listener))?;
        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port `0` to the ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    #[must_use]
    pub fn open_conns(&self) -> usize {
        self.shared.open_conns.load(Ordering::Acquire)
    }

    /// The serving runtime behind this listener.
    #[must_use]
    pub fn server(&self) -> &Arc<Server> {
        &self.shared.server
    }

    /// Graceful drain: stop accepting, wait for open connections to
    /// finish their in-flight request (idle keep-alive connections close
    /// within one poll slice), then return. `true` when every connection
    /// drained inside [`NetConfig::drain_timeout`]; `false` when
    /// stragglers were abandoned to their own deadlines.
    pub fn shutdown(mut self) -> bool {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> bool {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        loop {
            if self.shared.open_conns.load(Ordering::Acquire) == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            let _ = self.shutdown_inner();
        }
    }
}

fn accept_loop(shared: &Arc<NetShared>, listener: &TcpListener) {
    let mut backoff = ACCEPT_BACKOFF_MIN;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                backoff = ACCEPT_BACKOFF_MIN;
                let conn = shared.conn_ids.fetch_add(1, Ordering::Relaxed);
                if let Some(chaos) = &shared.chaos {
                    if chaos.conn_kill_hit(conn) {
                        // Injected abrupt disconnect: accepted, then gone
                        // before a single byte moves either way.
                        shared.gauges.conn_accepted();
                        drop(stream);
                        continue;
                    }
                }
                if shared.open_conns.load(Ordering::Acquire) >= shared.config.max_conns {
                    shared.gauges.conn_rejected();
                    shed(shared, stream);
                    continue;
                }
                shared.gauges.conn_accepted();
                shared.open_conns.fetch_add(1, Ordering::AcqRel);
                let conn_shared = Arc::clone(shared);
                // The stream rides in a take-able cell so a failed spawn
                // can recover it: the closure owns the cell, but until
                // the thread actually runs the stream is still reachable
                // from this side.
                let cell = Arc::new(Mutex::new(Some(stream)));
                let thread_cell = Arc::clone(&cell);
                let spawned = thread::Builder::new()
                    .name(format!("bitflow-net-conn-{conn}"))
                    .spawn(move || {
                        let _guard = ConnGuard(Arc::clone(&conn_shared));
                        let taken = thread_cell
                            .lock()
                            .map(|mut slot| slot.take())
                            .unwrap_or(None);
                        if let Some(stream) = taken {
                            handle_conn(&conn_shared, stream, conn);
                        }
                    });
                if spawned.is_err() {
                    // The guard never existed; undo the reservation. A
                    // spawn failure is resource exhaustion, not a cap
                    // hit: counted on its own gauge and answered with a
                    // best-effort 503 + retry-after instead of a silent
                    // drop.
                    shared.open_conns.fetch_sub(1, Ordering::AcqRel);
                    shared.gauges.spawn_shed();
                    let recovered = cell.lock().map(|mut slot| slot.take()).unwrap_or(None);
                    if let Some(stream) = recovered {
                        shed(shared, stream);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Healthy empty accept queue, not a failure.
                backoff = ACCEPT_BACKOFF_MIN;
                thread::sleep(ACCEPT_BACKOFF_MIN);
            }
            Err(_) => {
                // EMFILE, ENFILE, ECONNABORTED storms, interface flaps:
                // count it, back off exponentially, keep listening.
                shared.gauges.accept_error();
                thread::sleep(backoff);
                backoff = next_accept_backoff(backoff);
            }
        }
    }
}

/// Best-effort `503` to a connection past the cap — one bounded write,
/// never a thread.
fn shed(shared: &NetShared, mut stream: TcpStream) {
    let bytes = Response::new(503)
        .header("retry-after", 1)
        .text("connection limit reached")
        .to_bytes(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    if let Ok(n) = stream.write(&bytes) {
        shared.gauges.add_bytes_out(n as u64);
    }
    let _ = stream.shutdown(Shutdown::Both);
}

enum HeadOutcome {
    /// Head complete; value is one past the terminating blank line.
    Complete(usize),
    /// Close silently (peer gone, idle expiry, or drain).
    Close,
    /// Respond with this status, then close.
    Fail(u16),
}

enum ReadOutcome {
    Data,
    Nothing,
    Closed,
}

enum RouteOutcome {
    /// Respond; connection may stay open per keep-alive rules.
    Respond(Response),
    /// Respond, then close (unread body bytes may still be in flight).
    RespondClose(Response),
    /// Close without responding.
    Close,
}

/// A client-supplied `x-bitflow-request-id` is honored when it is 1..=64
/// bytes of `[A-Za-z0-9._-]`; anything else (or no header) is replaced
/// with a generated `c{conn}-r{req}` id. The charset/length bound keeps
/// hostile ids out of response headers and the flight recorder.
fn wire_request_id(head: &http::Head, conn: u64, req_no: u64) -> String {
    head.header("x-bitflow-request-id")
        .map(str::trim)
        .filter(|v| {
            (1..=64).contains(&v.len())
                && v.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        })
        .map(str::to_string)
        .unwrap_or_else(|| format!("c{conn}-r{req_no}"))
}

/// Records a trace for a request refused before (or while) parsing its
/// head, so HTTP-layer failures are visible in the flight recorder too.
fn offer_refused(shared: &NetShared, wire_id: String, from: Instant, status: u16) {
    if let Some(rec) = &shared.recorder {
        let tb = TraceBuilder::with_origin(wire_id, from);
        tb.stage(Stage::Parse, from, Instant::now());
        tb.set_outcome(&format!("http:{status}"));
        rec.offer(tb.finish());
    }
}

fn handle_conn(shared: &Arc<NetShared>, mut stream: TcpStream, conn: u64) {
    let accepted_at = Instant::now();
    let mut buf: Vec<u8> = Vec::new();
    let mut read_no: u64 = 0;
    let mut req_no: u64 = 0;
    loop {
        let head_start = Instant::now();
        let head_end = match read_head(shared, &mut stream, conn, &mut buf, &mut read_no) {
            HeadOutcome::Complete(end) => end,
            HeadOutcome::Close => return,
            HeadOutcome::Fail(status) => {
                let wire_id = format!("c{conn}-r{req_no}");
                let resp = Response::new(status).text(http::reason(status));
                let _ = write_response(shared, &mut stream, conn, req_no, &wire_id, &resp, false);
                offer_refused(shared, wire_id, head_start, status);
                return;
            }
        };
        let head_bytes: Vec<u8> = buf[..head_end].to_vec();
        buf.drain(..head_end);
        let head = match http::parse_head(&head_bytes) {
            Ok(head) => head,
            Err(e) => {
                shared.gauges.malformed_request();
                let wire_id = format!("c{conn}-r{req_no}");
                let resp = Response::new(400).text(&e.to_string());
                let _ = write_response(shared, &mut stream, conn, req_no, &wire_id, &resp, false);
                offer_refused(shared, wire_id, head_start, 400);
                return;
            }
        };
        let wire_id = wire_request_id(&head, conn, req_no);
        let parsed_at = Instant::now();
        // The trace timeline starts when the request could first have
        // been attributed to this connection: the accept for the first
        // request, the start of head-reading for keep-alive successors
        // (idle time between requests belongs to no request).
        let trace = shared.tracing().then(|| {
            let origin = if req_no == 0 { accepted_at } else { head_start };
            let tb = Arc::new(TraceBuilder::with_origin(wire_id.clone(), origin));
            if req_no == 0 {
                tb.stage(Stage::Accept, accepted_at, head_start);
            }
            tb.stage(Stage::Parse, head_start, parsed_at);
            tb
        });
        // Draining: finish this request, but advertise (and enforce) that
        // the connection closes after it.
        let keep_alive = head.keep_alive() && !shared.shutdown.load(Ordering::Acquire);
        let (resp, keep_alive) = match route(
            shared,
            &mut stream,
            conn,
            &mut buf,
            &mut read_no,
            &head,
            trace.as_ref(),
        ) {
            RouteOutcome::Respond(resp) => (resp, keep_alive),
            RouteOutcome::RespondClose(resp) => (resp, false),
            RouteOutcome::Close => return,
        };
        let write_start = Instant::now();
        let wrote = write_response(
            shared,
            &mut stream,
            conn,
            req_no,
            &wire_id,
            &resp,
            keep_alive,
        );
        if let Some(tb) = &trace {
            tb.stage(Stage::Write, write_start, Instant::now());
            // The serving runtime's verdicts (rejected:*, cancelled,
            // error:panic, ...) take precedence; only label what no
            // deeper layer already explained.
            if wrote.is_err() {
                tb.set_outcome_if_empty("error:write");
            } else if resp.status() >= 400 {
                tb.set_outcome_if_empty(&format!("http:{}", resp.status()));
            }
            if let Some(rec) = &shared.recorder {
                rec.offer(tb.finish());
            }
        }
        if wrote.is_err() {
            return;
        }
        req_no += 1;
        if !keep_alive {
            return;
        }
    }
}

/// Reads until one full request head is buffered. The whole head shares
/// one `header_timeout` budget no matter how many packets it arrives in —
/// the slowloris guard.
fn read_head(
    shared: &NetShared,
    stream: &mut TcpStream,
    conn: u64,
    buf: &mut Vec<u8>,
    read_no: &mut u64,
) -> HeadOutcome {
    let deadline = Instant::now() + shared.config.header_timeout;
    loop {
        if let Some(end) = http::find_head_end(buf) {
            if end > http::MAX_HEAD_BYTES {
                shared.gauges.malformed_request();
                return HeadOutcome::Fail(431);
            }
            return HeadOutcome::Complete(end);
        }
        if buf.len() > http::MAX_HEAD_BYTES {
            shared.gauges.malformed_request();
            return HeadOutcome::Fail(431);
        }
        if shared.shutdown.load(Ordering::Acquire) && buf.is_empty() {
            // Idle keep-alive connection during drain: nothing in flight,
            // close now so shutdown is not held hostage.
            return HeadOutcome::Close;
        }
        let now = Instant::now();
        if now >= deadline {
            if buf.is_empty() {
                // Idle keep-alive expiry, not an attack: close silently.
                return HeadOutcome::Close;
            }
            shared.gauges.read_timeout();
            return HeadOutcome::Fail(408);
        }
        match read_some(shared, stream, conn, read_no, deadline - now, buf) {
            ReadOutcome::Data | ReadOutcome::Nothing => {}
            ReadOutcome::Closed => return HeadOutcome::Close,
        }
    }
}

/// One bounded read: at most one [`POLL_SLICE`] of blocking, so callers
/// can re-check deadlines and the shutdown flag between reads.
fn read_some(
    shared: &NetShared,
    stream: &mut TcpStream,
    conn: u64,
    read_no: &mut u64,
    remaining: Duration,
    buf: &mut Vec<u8>,
) -> ReadOutcome {
    let slice = remaining.min(POLL_SLICE).max(Duration::from_millis(1));
    if stream.set_read_timeout(Some(slice)).is_err() {
        return ReadOutcome::Closed;
    }
    let this_read = *read_no;
    *read_no += 1;
    if let Some(chaos) = &shared.chaos {
        if chaos.read_stall_hit(conn, this_read) {
            // Injected network stall: burn one poll slice without data,
            // exactly as a wedged client would.
            thread::sleep(slice);
            return ReadOutcome::Nothing;
        }
    }
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) => ReadOutcome::Closed,
        Ok(n) => {
            shared.gauges.add_bytes_in(n as u64);
            buf.extend_from_slice(&chunk[..n]);
            ReadOutcome::Data
        }
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
            ) =>
        {
            ReadOutcome::Nothing
        }
        Err(_) => ReadOutcome::Closed,
    }
}

/// Reads exactly `len` body bytes (the head's `content-length`, already
/// checked against the body bound) within the `read_timeout` budget.
fn read_body(
    shared: &NetShared,
    stream: &mut TcpStream,
    conn: u64,
    buf: &mut Vec<u8>,
    read_no: &mut u64,
    len: usize,
) -> Result<Vec<u8>, HeadOutcome> {
    let deadline = Instant::now() + shared.config.read_timeout;
    loop {
        if buf.len() >= len {
            // Fallible copy: a hostile content-length that slipped past
            // the byte bound (or genuine exhaustion) answers 507, never
            // an abort.
            let mut body: Vec<u8> = Vec::new();
            if body.try_reserve_exact(len).is_err() {
                return Err(HeadOutcome::Fail(507));
            }
            body.extend_from_slice(&buf[..len]);
            buf.drain(..len);
            return Ok(body);
        }
        let now = Instant::now();
        if now >= deadline {
            shared.gauges.read_timeout();
            return Err(HeadOutcome::Fail(408));
        }
        match read_some(shared, stream, conn, read_no, deadline - now, buf) {
            ReadOutcome::Data | ReadOutcome::Nothing => {}
            ReadOutcome::Closed => return Err(HeadOutcome::Close),
        }
    }
}

fn route(
    shared: &Arc<NetShared>,
    stream: &mut TcpStream,
    conn: u64,
    buf: &mut Vec<u8>,
    read_no: &mut u64,
    head: &http::Head,
    trace: Option<&Arc<TraceBuilder>>,
) -> RouteOutcome {
    let target = head.target.as_str();
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let is_infer = target == "/v1/infer" || target.starts_with("/v1/infer/");
    let is_debug = path == "/debug/trace" || path.starts_with("/debug/requests/");
    match (head.method.as_str(), target) {
        ("GET", "/healthz") => RouteOutcome::Respond(healthz(shared)),
        ("GET", "/metrics") => RouteOutcome::Respond(metrics(shared)),
        (_, "/healthz" | "/metrics") => {
            RouteOutcome::Respond(Response::new(405).header("allow", "GET").text("GET only"))
        }
        ("POST", _) if is_infer => infer(shared, stream, conn, buf, read_no, head, trace),
        (_, _) if is_infer => {
            RouteOutcome::Respond(Response::new(405).header("allow", "POST").text("POST only"))
        }
        (method, _) if is_debug => RouteOutcome::Respond(debug_route(shared, method, path, query)),
        _ => RouteOutcome::Respond(Response::new(404).text("no such route")),
    }
}

/// Live trace extraction. Config-gated: unless
/// [`NetConfig::debug_endpoints`] is set the routes answer `404` exactly
/// like any unknown path (their existence is not leaked), and they `503`
/// when the process carries no flight recorder to read.
fn debug_route(shared: &NetShared, method: &str, path: &str, query: &str) -> Response {
    if !shared.config.debug_endpoints {
        return Response::new(404).text("no such route");
    }
    if method != "GET" {
        return Response::new(405).header("allow", "GET").text("GET only");
    }
    if shared.server.degradation_state() != DegradationState::Normal {
        // Trace dumps allocate serialized copies of everything retained —
        // exactly the wrong work under memory pressure.
        return Response::new(503)
            .header("retry-after", 1)
            .text("degraded: debug endpoints are disabled under pressure");
    }
    let Some(rec) = &shared.recorder else {
        return Response::new(503).text("tracing is not enabled (set BITFLOW_TRACE=1)");
    };
    if let Some(id) = path.strip_prefix("/debug/requests/") {
        return match rec.find(id) {
            Some(trace) => Response::new(200)
                .header("content-type", "application/json")
                .body(serde_json::to_vec(&trace).unwrap_or_default()),
            None => Response::new(404).text("no retained trace with that id"),
        };
    }
    let traces = rec.dump();
    if query.split('&').any(|kv| kv == "format=chrome") {
        // Perfetto / chrome://tracing loadable.
        Response::new(200)
            .header("content-type", "application/json")
            .body(to_chrome_trace(&traces).into_bytes())
    } else {
        Response::new(200)
            .header("content-type", "application/json")
            .body(serde_json::to_vec(&traces).unwrap_or_default())
    }
}

/// `200 ok` while the instance can take traffic; `503` once the circuit
/// breaker opens, a drain begins, or the governor reaches `Shed` (load
/// balancers stop routing here). `Brownout` still answers `200` — the
/// instance serves normal- and high-priority work — but the body names
/// the state so operators see the degradation. Polling this endpoint
/// re-evaluates the state machine, which is what lets an idle instance
/// recover autonomously.
fn healthz(shared: &NetShared) -> Response {
    if shared.server.breaker_open() {
        return Response::new(503).text("breaker open");
    }
    if shared.server.draining() || shared.shutdown.load(Ordering::Acquire) {
        return Response::new(503).text("draining");
    }
    match shared.server.degradation_state() {
        DegradationState::Normal => Response::new(200).text("ok"),
        DegradationState::Brownout => Response::new(200).text("degraded: brownout"),
        DegradationState::Shed => Response::new(503)
            .header("retry-after", 1)
            .text("shedding: resource pressure"),
    }
}

/// Prometheus exposition for the default tenant. With telemetry enabled
/// this is the full snapshot (ops, roofline, serve); without it, a
/// serve-only snapshot so the `net_*` and admission counters are always
/// scrapeable.
fn metrics(shared: &NetShared) -> Response {
    let snapshot = shared.server.registry().entries().first().map(|entry| {
        match entry.current().metrics_snapshot() {
            Some(snap) => snap,
            None => MetricsSnapshot::serve_only(entry.name(), entry.gauges().snapshot()),
        }
    });
    match snapshot {
        Some(snap) => Response::new(200)
            .header("content-type", "text/plain; version=0.0.4; charset=utf-8")
            .body(snap.to_prometheus().into_bytes()),
        None => Response::new(500).text("no model registered"),
    }
}

fn infer(
    shared: &Arc<NetShared>,
    stream: &mut TcpStream,
    conn: u64,
    buf: &mut Vec<u8>,
    read_no: &mut u64,
    head: &http::Head,
    trace: Option<&Arc<TraceBuilder>>,
) -> RouteOutcome {
    let content_length = match head.content_length() {
        Ok(Some(n)) => n,
        Ok(None) => {
            shared.gauges.malformed_request();
            return RouteOutcome::RespondClose(Response::new(411).text("content-length required"));
        }
        Err(ParseError::UnsupportedTransferEncoding) => {
            shared.gauges.malformed_request();
            return RouteOutcome::RespondClose(
                Response::new(501).text("only content-length framing is supported"),
            );
        }
        Err(e) => {
            shared.gauges.malformed_request();
            return RouteOutcome::RespondClose(Response::new(400).text(&e.to_string()));
        }
    };
    if content_length > shared.config.max_body_bytes {
        // Refused from the header alone — not a single body byte is read.
        shared.gauges.malformed_request();
        return RouteOutcome::RespondClose(
            Response::new(413)
                .header("x-bitflow-max-body", shared.config.max_body_bytes)
                .text("request body exceeds the configured bound"),
        );
    }
    let tenant = head
        .target
        .strip_prefix("/v1/infer/")
        .filter(|name| !name.is_empty());
    // Charge the declared body size against the tenant's byte budget
    // before reading it: under memory pressure the refusal costs a head,
    // not a buffered body. The lease lives to the end of this request.
    let _body_lease = match shared.server.reserve_body(tenant, content_length as u64) {
        Ok(lease) => lease,
        Err(reason) => {
            let mut resp = Response::new(reject_status(reason))
                .header("content-type", "application/json")
                .body(serde_json::to_vec(&BitFlowError::Rejected(reason)).unwrap_or_default());
            if reject_wants_retry_after(reason) {
                resp = resp.header(
                    "retry-after",
                    shared.server.retry_after_hint().as_secs().max(1),
                );
            }
            return RouteOutcome::RespondClose(resp);
        }
    };
    let body_start = Instant::now();
    let body = match read_body(shared, stream, conn, buf, read_no, content_length) {
        Ok(body) => body,
        Err(HeadOutcome::Fail(status)) => {
            return RouteOutcome::RespondClose(Response::new(status).text(http::reason(status)));
        }
        Err(_) => return RouteOutcome::Close,
    };
    let decode_start = Instant::now();
    if let Some(tb) = trace {
        tb.stage(Stage::ReadBody, body_start, decode_start);
    }
    let tensor = match bitflow_tensor::io::decode_tensor(&body) {
        Ok(t) => t,
        Err(e) => {
            // Body fully consumed, so the connection can survive this.
            shared.gauges.malformed_request();
            // Same {"code","message"} shape as BitFlowError; DecodeError
            // messages are fixed strings with nothing to escape.
            let json = format!("{{\"code\":\"bad_tensor\",\"message\":\"{e}\"}}");
            return RouteOutcome::Respond(
                Response::new(400)
                    .header("content-type", "application/json")
                    .body(json.into_bytes()),
            );
        }
    };
    if let Some(tb) = trace {
        tb.stage(Stage::Decode, decode_start, Instant::now());
    }
    let deadline = head
        .header("x-bitflow-deadline-ms")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis);

    // With a trace, submission routes through the traced entry points —
    // the serving runtime records admit/queue/batch/exec stages and the
    // engine its operator spans into the same builder. Deadline policy is
    // identical either way.
    let (result, retry_hint, quota) = match tenant {
        None => (
            match trace {
                Some(tb) => shared
                    .server
                    .submit_traced(tensor, deadline, Arc::clone(tb)),
                None => match deadline {
                    Some(budget) => shared.server.submit_with_deadline(tensor, budget),
                    None => shared.server.submit(tensor),
                },
            },
            shared.server.retry_after_hint(),
            shared
                .server
                .registry()
                .entries()
                .first()
                .and_then(|entry| entry.quota()),
        ),
        Some(name) => {
            let Some(client) = shared.server.client(name) else {
                return RouteOutcome::Respond(Response::new(404).text("unknown model"));
            };
            let result = match trace {
                Some(tb) => client.submit_traced(tensor, deadline, Arc::clone(tb)),
                None => match deadline {
                    Some(budget) => client.submit_with_deadline(tensor, budget),
                    None => client.submit(tensor),
                },
            };
            (result, client.retry_after_hint(), client.entry().quota())
        }
    };

    let mut resp = match result {
        Err(reason) => {
            let mut resp = Response::new(reject_status(reason))
                .header("content-type", "application/json")
                .body(serde_json::to_vec(&BitFlowError::Rejected(reason)).unwrap_or_default());
            if reject_wants_retry_after(reason) {
                resp = resp.header("retry-after", retry_hint.as_secs().max(1));
            }
            if matches!(reason, RejectReason::QuotaExceeded) {
                if let Some(q) = quota {
                    resp = resp.header("x-bitflow-quota", q);
                }
            }
            resp
        }
        Ok(handle) => match handle.wait() {
            Ok(logits) => {
                let mut body = Vec::with_capacity(logits.len() * 4);
                for v in &logits {
                    body.extend_from_slice(&v.to_le_bytes());
                }
                Response::new(200)
                    .header("content-type", "application/octet-stream")
                    .body(body)
            }
            Err(err) => Response::new(error_status(&err))
                .header("content-type", "application/json")
                .body(serde_json::to_vec(&err).unwrap_or_default()),
        },
    };
    if shared.config.server_timing {
        if let Some(tb) = trace {
            // The write stage has not happened yet, so it cannot ride in
            // its own response; `bitflow_stage_write_ns` covers it.
            let ms = |ns: u64| ns as f64 / 1_000_000.0;
            let queue = tb.stage_total_ns(Stage::QueueWait).unwrap_or(0);
            let exec = tb.stage_total_ns(Stage::Exec).unwrap_or(0);
            resp = resp.header(
                "server-timing",
                format!(
                    "queue;dur={:.3}, exec;dur={:.3}, app;dur={:.3}",
                    ms(queue),
                    ms(exec),
                    ms(tb.now_ns())
                ),
            );
        }
    }
    RouteOutcome::Respond(resp)
}

/// Writes one whole rendered response under the `write_timeout` budget,
/// handling partial writes; a failure (peer gone, timeout, injected
/// truncation) returns `Err` and the caller closes the connection —
/// never a panic, never a half-tracked byte count. Every response echoes
/// the request's wire id, and every write lands in the
/// `bitflow_stage_write_ns` histogram whether or not the request is
/// traced.
fn write_response(
    shared: &NetShared,
    stream: &mut TcpStream,
    conn: u64,
    req_no: u64,
    wire_id: &str,
    resp: &Response,
    keep_alive: bool,
) -> Result<(), ()> {
    let t0 = Instant::now();
    let out = write_response_inner(shared, stream, conn, req_no, wire_id, resp, keep_alive);
    shared
        .gauges
        .record_write_ns(t0.elapsed().as_nanos() as u64);
    out
}

fn write_response_inner(
    shared: &NetShared,
    stream: &mut TcpStream,
    conn: u64,
    req_no: u64,
    wire_id: &str,
    resp: &Response,
    keep_alive: bool,
) -> Result<(), ()> {
    let bytes = resp.to_bytes_tagged(keep_alive, wire_id);
    let mut limit = bytes.len();
    let mut truncate = false;
    if let Some(chaos) = &shared.chaos {
        if chaos.trunc_write_hit(conn, req_no) {
            // Injected mid-response disconnect: half the bytes, then RST.
            limit = bytes.len() / 2;
            truncate = true;
        }
    }
    let deadline = Instant::now() + shared.config.write_timeout;
    let _ = stream.set_write_timeout(Some(POLL_SLICE));
    let mut written = 0usize;
    while written < limit {
        if Instant::now() >= deadline {
            shared.gauges.write_timeout();
            return Err(());
        }
        match stream.write(&bytes[written..limit]) {
            Ok(0) => return Err(()),
            Ok(n) => {
                written += n;
                shared.gauges.add_bytes_out(n as u64);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return Err(()),
        }
    }
    if truncate {
        let _ = stream.shutdown(Shutdown::Both);
        return Err(());
    }
    let _ = stream.flush();
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn accept_backoff_doubles_and_caps() {
        let mut cur = ACCEPT_BACKOFF_MIN;
        let mut seen = vec![cur];
        for _ in 0..12 {
            cur = next_accept_backoff(cur);
            seen.push(cur);
        }
        assert_eq!(seen[0], Duration::from_millis(2));
        assert_eq!(seen[1], Duration::from_millis(4));
        assert_eq!(seen[2], Duration::from_millis(8));
        assert!(
            seen.windows(2).all(|w| w[1] >= w[0]),
            "backoff is monotone: {seen:?}"
        );
        assert_eq!(*seen.last().expect("nonempty"), ACCEPT_BACKOFF_MAX);
        assert!(
            seen.iter().all(|d| *d <= ACCEPT_BACKOFF_MAX),
            "never exceeds the cap: {seen:?}"
        );
    }
}
