//! The one place admission semantics become protocol semantics: every
//! [`RejectReason`] and every terminal [`BitFlowError`] maps to a wire
//! status in a single exhaustive `match` — adding a variant upstream is a
//! compile error here, not a silent `500`.

use bitflow_graph::{BitFlowError, RejectReason};

/// Wire status for a submission the serving runtime refused to admit.
///
/// * Queue-full and breaker shedding are transient overload: `429`, and
///   the caller should honour the accompanying `Retry-After`.
/// * Quota exhaustion is also `429` — the tenant's own backlog, flagged
///   with an `x-bitflow-quota` header rather than a server-wide hint.
/// * Draining is `503`: this instance is going away, try another.
/// * Memory pressure is `507 Insufficient Storage`: the byte budget, not
///   the queue, refused the request — transient, so retry with backoff.
#[must_use]
pub fn reject_status(reason: RejectReason) -> u16 {
    match reason {
        RejectReason::QueueFull => 429,
        RejectReason::Shedding => 429,
        RejectReason::Draining => 503,
        RejectReason::QuotaExceeded => 429,
        RejectReason::MemoryPressure => 507,
    }
}

/// Whether a rejection should carry a `Retry-After` backoff hint.
#[must_use]
pub fn reject_wants_retry_after(reason: RejectReason) -> bool {
    match reason {
        RejectReason::QueueFull | RejectReason::Shedding | RejectReason::MemoryPressure => true,
        RejectReason::Draining | RejectReason::QuotaExceeded => false,
    }
}

/// Wire status for a request that was admitted (or refused) and resolved
/// to a terminal [`BitFlowError`].
///
/// Client-caused failures are 4xx: a bad tensor is `400`, a missed
/// deadline `504` (the budget the client set expired inside the server),
/// a client that walked away `499`. Model/server defects are `500`.
#[must_use]
pub fn error_status(err: &BitFlowError) -> u16 {
    match err {
        BitFlowError::Spec(_) => 500,
        BitFlowError::WeightMismatch(_) => 500,
        BitFlowError::InputGeometry(_) => 400,
        BitFlowError::ModelCorrupt(_) => 500,
        BitFlowError::UnsupportedKernel(_) => 500,
        BitFlowError::SlotType(_) => 500,
        BitFlowError::DeadlineExceeded => 504,
        BitFlowError::Cancelled => 499,
        BitFlowError::Rejected(reason) => reject_status(*reason),
        BitFlowError::ResourceExhausted { .. } => 507,
        BitFlowError::Internal(_) => 500,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use bitflow_graph::error::{InputGeometry, SlotKind, SlotTypeError, SpecError, WeightMismatch};
    use bitflow_graph::ModelIoError;
    use bitflow_simd::scheduler::UnsupportedKernel;

    #[test]
    fn every_reject_reason_has_a_status() {
        // One row per variant; a new variant must be added here AND in the
        // match (which the compiler already enforces).
        let table = [
            (RejectReason::QueueFull, 429, true),
            (RejectReason::Shedding, 429, true),
            (RejectReason::Draining, 503, false),
            (RejectReason::QuotaExceeded, 429, false),
            (RejectReason::MemoryPressure, 507, true),
        ];
        for (reason, status, wants_hint) in table {
            assert_eq!(reject_status(reason), status, "{reason:?}");
            assert_eq!(
                reject_wants_retry_after(reason),
                wants_hint,
                "{reason:?} retry-after"
            );
        }
    }

    #[test]
    fn every_error_variant_has_a_status() {
        let table: Vec<(BitFlowError, u16)> = vec![
            (BitFlowError::Spec(SpecError::EmptyNetwork), 500),
            (
                BitFlowError::WeightMismatch(WeightMismatch::LayerCount {
                    spec: 1,
                    weights: 2,
                }),
                500,
            ),
            (
                BitFlowError::InputGeometry(InputGeometry::NonFinite { index: 0 }),
                400,
            ),
            (BitFlowError::ModelCorrupt(ModelIoError::BadMagic), 500),
            (
                BitFlowError::UnsupportedKernel(UnsupportedKernel::ZeroStride),
                500,
            ),
            (
                BitFlowError::SlotType(SlotTypeError {
                    layer: "conv1".into(),
                    expected: SlotKind::Bit,
                    actual: SlotKind::Vec,
                }),
                500,
            ),
            (BitFlowError::DeadlineExceeded, 504),
            (BitFlowError::Cancelled, 499),
            (BitFlowError::Rejected(RejectReason::QueueFull), 429),
            (BitFlowError::Rejected(RejectReason::Shedding), 429),
            (BitFlowError::Rejected(RejectReason::Draining), 503),
            (BitFlowError::Rejected(RejectReason::QuotaExceeded), 429),
            (BitFlowError::Rejected(RejectReason::MemoryPressure), 507),
            (
                BitFlowError::ResourceExhausted {
                    what: "inference context",
                    bytes: 4096,
                },
                507,
            ),
            (BitFlowError::Internal("panic".into()), 500),
        ];
        for (err, status) in &table {
            assert_eq!(error_status(err), *status, "{err:?}");
        }
        // 4xx/5xx sanity: every mapped status is an error status a real
        // client stack will surface, never a 2xx/3xx.
        for (err, status) in &table {
            assert!((400..600).contains(status), "{err:?} -> {status}");
        }
    }
}
