//! Hostile-client integration tests for the HTTP front-end.
//!
//! Every scenario here is a real TCP client doing something wrong —
//! dripping a header byte at a time, declaring an enormous body, sending
//! bytes that are not HTTP, disconnecting mid-response, piling past the
//! connection cap — and every one must produce a typed rejection on the
//! wire and a counter bump, never a panicked worker or a wedged accept
//! loop. The final request of each test is a clean inference that must
//! still return bit-identical logits: the listener survives its clients.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use bitflow_graph::{small_cnn, CompiledModel, NetworkWeights};
use bitflow_net::{NetConfig, NetServer};
use bitflow_serve::{Server, ServerConfig};
use bitflow_tensor::io::encode_tensor;
use bitflow_tensor::{Layout, Tensor};
use rand::{rngs::StdRng, SeedableRng};

/// One compiled model, its serving runtime, a listener, one well-formed
/// input, and the serial-oracle logits for that input.
struct Stack {
    net: NetServer,
    server: Arc<Server>,
    input: Tensor,
    oracle: Vec<f32>,
}

fn stack(cfg: NetConfig) -> Stack {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(42);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let model = Arc::new(CompiledModel::compile(&spec, &weights));
    let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let mut ctx = model.new_context();
    let oracle = model.infer(&mut ctx, &input);
    let server = Arc::new(Server::start(
        Arc::clone(&model),
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    ));
    let net = NetServer::bind(Arc::clone(&server), cfg).expect("bind loopback");
    Stack {
        net,
        server,
        input,
        oracle,
    }
}

fn connect(stack: &Stack) -> TcpStream {
    let stream = TcpStream::connect(stack.net.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

fn infer_request(path: &str, body: &[u8], extra_headers: &str) -> Vec<u8> {
    let mut req = format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\n{extra_headers}content-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    req
}

/// Reads one full response (status, headers, body). `None` when the
/// server closed the connection without sending one.
#[allow(clippy::type_complexity)]
fn read_response(stream: &mut TcpStream) -> Option<(u16, Vec<(String, String)>, Vec<u8>)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    Some((status, headers, body))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Round-trips one clean inference and checks the logits against the
/// serial oracle — the "listener still works" probe every test ends on.
fn assert_clean_inference(stack: &Stack) {
    let mut stream = connect(stack);
    let body = encode_tensor(&stack.input);
    stream
        .write_all(&infer_request("/v1/infer", &body, ""))
        .expect("write request");
    let (status, headers, body) = read_response(&mut stream).expect("a response");
    assert_eq!(status, 200, "clean inference must succeed");
    assert!(
        header(&headers, "x-bitflow-request-id").is_some(),
        "200 carries a request id"
    );
    let logits: Vec<f32> = body
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    assert_eq!(
        logits, stack.oracle,
        "wire logits must match serial inference"
    );
}

#[test]
fn slowloris_header_drip_gets_408_and_counted() {
    let stack = stack(NetConfig {
        header_timeout: Duration::from_millis(300),
        ..NetConfig::default()
    });
    let mut stream = connect(&stack);
    // Drip a plausible request head one fragment at a time, never
    // finishing it. The whole head shares one budget, so the drip must
    // trip the deadline no matter how lively each fragment looks.
    stream
        .write_all(b"POST /v1/infer HTTP/1.1\r\n")
        .expect("write");
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(100));
        if stream.write_all(b"x-drip: y\r\n").is_err() {
            break; // server already gave up on us — that's the point
        }
    }
    if let Some((status, _, _)) = read_response(&mut stream) {
        assert_eq!(status, 408, "slowloris must be cut off with 408");
    }
    let snap = stack.server.gauges().snapshot();
    assert!(
        snap.net_timeouts_read >= 1,
        "the read-timeout counter must record the drip"
    );
    assert_clean_inference(&stack);
}

#[test]
fn oversized_body_is_refused_before_reading_it() {
    // Big enough for the clean-probe tensor, far below the hostile claim.
    let stack = stack(NetConfig {
        max_body_bytes: 64 * 1024,
        ..NetConfig::default()
    });
    let mut stream = connect(&stack);
    // Declare a body far past the bound but send none of it: the refusal
    // must come from the header alone.
    stream
        .write_all(b"POST /v1/infer HTTP/1.1\r\ncontent-length: 10485760\r\n\r\n")
        .expect("write");
    let (status, headers, _) = read_response(&mut stream).expect("a response");
    assert_eq!(status, 413);
    assert_eq!(header(&headers, "x-bitflow-max-body"), Some("65536"));
    assert_eq!(header(&headers, "connection"), Some("close"));
    let snap = stack.server.gauges().snapshot();
    assert!(snap.net_malformed_requests >= 1);
    assert_clean_inference(&stack);
}

#[test]
fn garbage_bytes_get_400_not_a_panic() {
    let stack = stack(NetConfig::default());
    for garbage in [
        &b"\x16\x03\x01\x02\x00 TLS hello to a plaintext port\r\n\r\n"[..],
        b"GET not-a-target HTTP/1.1\r\n\r\n",
        b"POST /v1/infer HTTP/9.9\r\n\r\n",
    ] {
        let mut stream = connect(&stack);
        stream.write_all(garbage).expect("write");
        let (status, _, _) = read_response(&mut stream).expect("a response");
        assert_eq!(status, 400, "garbage must be answered with 400");
    }
    let snap = stack.server.gauges().snapshot();
    assert!(
        snap.net_malformed_requests >= 3,
        "each garbage request must be counted"
    );
    assert_clean_inference(&stack);
}

#[test]
fn bad_framing_and_bad_tensors_get_typed_rejections() {
    let stack = stack(NetConfig::default());

    // POST without a content-length: 411.
    let mut stream = connect(&stack);
    stream
        .write_all(b"POST /v1/infer HTTP/1.1\r\n\r\n")
        .expect("write");
    let (status, _, _) = read_response(&mut stream).expect("a response");
    assert_eq!(status, 411);

    // Chunked transfer coding: 501 (content-length framing only).
    let mut stream = connect(&stack);
    stream
        .write_all(b"POST /v1/infer HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")
        .expect("write");
    let (status, _, _) = read_response(&mut stream).expect("a response");
    assert_eq!(status, 501);

    // A well-framed body that is not a tensor container: 400 with the
    // engine's JSON error shape, and the connection survives.
    let mut stream = connect(&stack);
    stream
        .write_all(&infer_request("/v1/infer", b"not a tensor at all", ""))
        .expect("write");
    let (status, headers, body) = read_response(&mut stream).expect("a response");
    assert_eq!(status, 400);
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    let text = String::from_utf8_lossy(&body).to_string();
    assert!(text.contains("\"code\":\"bad_tensor\""), "{text}");
    // Same connection, clean request: keep-alive survived the bad body.
    let enc = encode_tensor(&stack.input);
    stream
        .write_all(&infer_request("/v1/infer", &enc, ""))
        .expect("write");
    let (status, _, _) = read_response(&mut stream).expect("a response");
    assert_eq!(status, 200, "connection must survive a decode failure");

    assert_clean_inference(&stack);
}

#[test]
fn routing_and_methods_are_enforced() {
    let stack = stack(NetConfig::default());
    let enc = encode_tensor(&stack.input);
    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"GET /healthz HTTP/1.1\r\n\r\n".to_vec(), 200),
        (b"GET /metrics HTTP/1.1\r\n\r\n".to_vec(), 200),
        (b"DELETE /healthz HTTP/1.1\r\n\r\n".to_vec(), 405),
        (b"GET /nope HTTP/1.1\r\n\r\n".to_vec(), 404),
        (b"GET /v1/infer HTTP/1.1\r\n\r\n".to_vec(), 405),
        (infer_request("/v1/infer/no-such-model", &enc, ""), 404),
        (infer_request("/v1/infer", &enc, ""), 200),
    ];
    for (req, want) in cases {
        let mut stream = connect(&stack);
        stream.write_all(&req).expect("write");
        let (status, _, _) = read_response(&mut stream).expect("a response");
        assert_eq!(
            status,
            want,
            "request {:?}",
            String::from_utf8_lossy(&req[..req.len().min(40)])
        );
    }

    // /metrics must expose the net counter families.
    let mut stream = connect(&stack);
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\n\r\n")
        .expect("write");
    let (_, _, body) = read_response(&mut stream).expect("a response");
    let text = String::from_utf8_lossy(&body).to_string();
    for family in [
        "bitflow_net_accepted_conns_total",
        "bitflow_net_malformed_requests_total",
        "bitflow_net_bytes_in_total",
    ] {
        assert!(text.contains(family), "/metrics missing {family}");
    }
}

#[test]
fn hopeless_deadline_maps_to_504() {
    let stack = stack(NetConfig::default());
    let enc = encode_tensor(&stack.input);
    let mut stream = connect(&stack);
    stream
        .write_all(&infer_request(
            "/v1/infer",
            &enc,
            "x-bitflow-deadline-ms: 0\r\n",
        ))
        .expect("write");
    let (status, _, body) = read_response(&mut stream).expect("a response");
    assert_eq!(
        status, 504,
        "an already-expired deadline is a gateway timeout"
    );
    let text = String::from_utf8_lossy(&body).to_string();
    assert!(text.contains("deadline"), "{text}");
    assert_clean_inference(&stack);
}

#[test]
fn mid_response_disconnect_never_wedges_the_listener() {
    let stack = stack(NetConfig::default());
    // A wave of clients that send a full valid request and vanish without
    // reading a byte of the response.
    for _ in 0..8 {
        let mut stream = connect(&stack);
        let enc = encode_tensor(&stack.input);
        stream
            .write_all(&infer_request("/v1/infer", &enc, ""))
            .expect("write");
        let _ = stream.shutdown(Shutdown::Both);
        drop(stream);
    }
    // The listener must still serve clean traffic afterwards.
    assert_clean_inference(&stack);
    // And the abandoned handlers must all retire.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while stack.net.open_conns() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "abandoned connections must not leak handler threads"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn connection_cap_sheds_with_503() {
    let stack = stack(NetConfig {
        max_conns: 1,
        header_timeout: Duration::from_secs(10),
        ..NetConfig::default()
    });
    // First connection parks in the handler (idle, waiting for a head).
    let parked = connect(&stack);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while stack.net.open_conns() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "handler never spawned"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Second connection must be shed by the accept loop itself.
    let mut extra = connect(&stack);
    let (status, headers, _) = read_response(&mut extra).expect("shed response");
    assert_eq!(status, 503, "past the cap the accept loop sheds");
    assert!(header(&headers, "retry-after").is_some());
    let snap = stack.server.gauges().snapshot();
    assert_eq!(snap.net_rejected_conns, 1);
    drop(parked);
}

/// Satellite: graceful shutdown. Requests already on a connection finish
/// with full responses, the listener refuses new work, and afterwards the
/// per-tenant gauges obey the conservation law — no request lost, none
/// double-counted.
#[test]
fn graceful_shutdown_drains_in_flight_and_conserves_gauges() {
    let stack = stack(NetConfig::default());
    let addr = stack.net.local_addr();
    let enc = encode_tensor(&stack.input);
    let oracle = stack.oracle.clone();

    // A few client threads each run sequential keep-alive requests while
    // the main thread pulls the plug mid-stream.
    let clients: Vec<std::thread::JoinHandle<(u64, u64)>> = (0..4)
        .map(|_| {
            let enc = enc.to_vec();
            let oracle = oracle.clone();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut closed = 0u64;
                for _ in 0..6 {
                    let Ok(mut stream) = TcpStream::connect(addr) else {
                        closed += 1;
                        continue;
                    };
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let req = format!(
                        "POST /v1/infer HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                        enc.len()
                    );
                    if stream.write_all(req.as_bytes()).is_err() || stream.write_all(&enc).is_err()
                    {
                        closed += 1;
                        continue;
                    }
                    match read_response(&mut stream) {
                        Some((200, _, body)) => {
                            // Anything the listener answered 200 must be the
                            // exact oracle bytes — even during the drain.
                            let logits: Vec<f32> = body
                                .chunks_exact(4)
                                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                                .collect();
                            assert_eq!(logits, oracle, "drained response corrupted");
                            ok += 1;
                        }
                        Some(_) => closed += 1,
                        None => closed += 1,
                    }
                }
                (ok, closed)
            })
        })
        .collect();

    // Let some traffic land, then drain.
    std::thread::sleep(Duration::from_millis(30));
    let Stack { net, server, .. } = stack;
    assert!(
        net.shutdown(),
        "drain must complete within the drain budget"
    );

    let mut ok_total = 0u64;
    for client in clients {
        let (ok, _closed) = client.join().expect("client thread");
        ok_total += ok;
    }
    assert!(ok_total > 0, "some requests must have completed");

    // After the drain: no open connections, and the serving gauges
    // conserve exactly — every admitted request resolved exactly once.
    let snap = server.gauges().snapshot();
    let rejected = snap.rejected_queue_full
        + snap.rejected_shedding
        + snap.rejected_draining
        + snap.rejected_quota;
    assert_eq!(snap.submitted, snap.accepted + rejected);
    assert_eq!(
        snap.accepted,
        snap.completed + snap.failed + snap.shed_deadline + snap.deadline_missed + snap.cancelled,
        "graceful drain must not lose or double-resolve a request"
    );
    assert_eq!(
        snap.completed, ok_total,
        "every 200 on the wire is one completion"
    );
    assert!(snap.net_accepted_conns > 0);
    assert!(snap.net_bytes_in > 0);
    assert!(snap.net_bytes_out > 0);
}
