//! Integration tests for request-lifecycle tracing on the wire: client
//! request ids, the `server-timing` header, the live debug endpoints,
//! and the end-to-end span taxonomy of a traced request.
//!
//! Each test drives a real TCP client against a bound listener, exactly
//! like `hostile.rs` — the assertions here are about what tracing adds
//! to the wire contract, not about hardening (which `hostile.rs` owns).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bitflow_graph::{small_cnn, CompiledModel, NetworkWeights};
use bitflow_net::{NetConfig, NetServer};
use bitflow_serve::{Server, ServerConfig};
use bitflow_telemetry::{FlightRecorder, RecorderConfig, RequestTrace, Stage};
use bitflow_tensor::io::encode_tensor;
use bitflow_tensor::{Layout, Tensor};
use rand::{rngs::StdRng, SeedableRng};

struct Stack {
    net: NetServer,
    input: Tensor,
}

fn stack(net_cfg: NetConfig, recorder: Option<Arc<FlightRecorder>>) -> Stack {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(42);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let model = Arc::new(CompiledModel::compile(&spec, &weights));
    let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let server = Arc::new(Server::start(
        Arc::clone(&model),
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            recorder,
            ..ServerConfig::default()
        },
    ));
    let net = NetServer::bind(server, net_cfg).expect("bind loopback");
    Stack { net, input }
}

fn connect(stack: &Stack) -> TcpStream {
    let stream = TcpStream::connect(stack.net.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

fn infer_request(path: &str, body: &[u8], extra_headers: &str) -> Vec<u8> {
    let mut req = format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\n{extra_headers}content-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    req
}

#[allow(clippy::type_complexity)]
fn read_response(stream: &mut TcpStream) -> Option<(u16, Vec<(String, String)>, Vec<u8>)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
        }
    }
    Some((status, headers, body))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// One request → one full response on a fresh connection.
#[allow(clippy::type_complexity)]
fn roundtrip(stack: &Stack, req: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = connect(stack);
    stream.write_all(req).expect("write request");
    read_response(&mut stream).expect("a response")
}

#[test]
fn client_request_ids_are_honored_validated_and_echoed_on_errors() {
    let stack = stack(NetConfig::default(), None);
    let enc = encode_tensor(&stack.input);

    // A well-formed client id rides through to the response.
    let (status, headers, _) = roundtrip(
        &stack,
        &infer_request("/v1/infer", &enc, "x-bitflow-request-id: my-id.42_A\r\n"),
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-bitflow-request-id"), Some("my-id.42_A"));

    // A hostile id (bad charset) is replaced with a generated one, never
    // echoed verbatim.
    let (_, headers, _) = roundtrip(
        &stack,
        &infer_request("/v1/infer", &enc, "x-bitflow-request-id: bad id&<x>\r\n"),
    );
    let echoed = header(&headers, "x-bitflow-request-id").expect("an id");
    assert!(echoed.starts_with('c') && echoed.contains("-r"), "{echoed}");

    // Over-long ids are replaced too.
    let long = "x".repeat(65);
    let (_, headers, _) = roundtrip(
        &stack,
        &infer_request(
            "/v1/infer",
            &enc,
            &format!("x-bitflow-request-id: {long}\r\n"),
        ),
    );
    assert_ne!(
        header(&headers, "x-bitflow-request-id"),
        Some(long.as_str())
    );

    // Errors echo the id as well: a routing 404 with a client id...
    let (status, headers, _) = roundtrip(
        &stack,
        b"GET /nope HTTP/1.1\r\nx-bitflow-request-id: lost.req\r\n\r\n",
    );
    assert_eq!(status, 404);
    assert_eq!(header(&headers, "x-bitflow-request-id"), Some("lost.req"));

    // ...and even a pre-parse failure carries a generated id.
    let (status, headers, _) = roundtrip(&stack, b"garbage\r\n\r\n");
    assert_eq!(status, 400);
    assert!(header(&headers, "x-bitflow-request-id").is_some());
}

#[test]
fn server_timing_header_is_flag_gated() {
    let enc_stack = stack(
        NetConfig {
            server_timing: true,
            ..NetConfig::default()
        },
        None,
    );
    let enc = encode_tensor(&enc_stack.input);
    let (status, headers, _) = roundtrip(&enc_stack, &infer_request("/v1/infer", &enc, ""));
    assert_eq!(status, 200);
    let timing = header(&headers, "server-timing").expect("server-timing with the flag on");
    assert!(timing.contains("queue;dur="), "{timing}");
    assert!(timing.contains("exec;dur="), "{timing}");
    assert!(timing.contains("app;dur="), "{timing}");

    let plain_stack = stack(NetConfig::default(), None);
    let enc = encode_tensor(&plain_stack.input);
    let (_, headers, _) = roundtrip(&plain_stack, &infer_request("/v1/infer", &enc, ""));
    assert!(
        header(&headers, "server-timing").is_none(),
        "server-timing must be opt-in"
    );
}

/// Fetches a retained trace by wire id, polling briefly: the recorder
/// offer happens just after the response bytes leave, so a client that
/// turns around instantly can win the race.
fn fetch_trace(stack: &Stack, id: &str) -> Option<RequestTrace> {
    for _ in 0..50 {
        let (status, _, body) = roundtrip(
            stack,
            format!("GET /debug/requests/{id} HTTP/1.1\r\n\r\n").as_bytes(),
        );
        if status == 200 {
            return serde_json::from_slice::<RequestTrace>(&body).ok();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    None
}

#[test]
fn debug_endpoints_serve_traces_with_the_full_span_taxonomy() {
    let stack = stack(
        NetConfig {
            debug_endpoints: true,
            ..NetConfig::default()
        },
        Some(Arc::new(FlightRecorder::new(RecorderConfig::default()))),
    );
    let enc = encode_tensor(&stack.input);
    let (status, headers, _) = roundtrip(
        &stack,
        &infer_request("/v1/infer", &enc, "x-bitflow-request-id: trace-me-1\r\n"),
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-bitflow-request-id"), Some("trace-me-1"));

    // The retained trace carries the whole lifecycle, front-end and
    // serving-runtime stages stitched onto one timeline.
    let trace = fetch_trace(&stack, "trace-me-1").expect("trace retained and served");
    assert_eq!(trace.id, "trace-me-1");
    assert!(trace.outcome.is_empty(), "a 200 is an ok trace");
    assert!(trace.batch_size >= 1);
    assert!(!trace.spans.is_empty(), "engine op spans must nest inside");
    for stage in [
        Stage::Accept,
        Stage::Parse,
        Stage::ReadBody,
        Stage::Decode,
        Stage::Admit,
        Stage::QueueWait,
        Stage::BatchWait,
        Stage::Exec,
        Stage::Write,
    ] {
        assert!(
            trace.stages.iter().any(|s| s.stage == stage),
            "missing stage {}",
            stage.as_str()
        );
    }
    // Stages are sorted, stay inside the request window, and account for
    // (almost) all of the wall-clock latency: the uncovered gaps are pure
    // in-process compute between adjacent stages.
    let mut prev_start = 0u64;
    let mut covered = 0u64;
    for s in &trace.stages {
        assert!(s.start_ns >= prev_start, "stages must be sorted");
        prev_start = s.start_ns;
        assert!(
            s.start_ns + s.duration_ns <= trace.total_ns + trace.total_ns / 20,
            "stage {} overruns the request window",
            s.stage.as_str()
        );
        covered += s.duration_ns;
    }
    assert!(
        covered <= trace.total_ns + trace.total_ns / 20 + 500_000,
        "stages sum past wall-clock: {covered} > {}",
        trace.total_ns
    );
    assert!(
        covered >= trace.total_ns / 2,
        "stages cover too little of the request: {covered} of {}",
        trace.total_ns
    );

    // An error request is always retained (tail-based sampling keeps
    // every non-ok trace) and reports the serving runtime's verdict.
    let (status, _, _) = roundtrip(
        &stack,
        &infer_request(
            "/v1/infer",
            &enc,
            "x-bitflow-request-id: doomed-1\r\nx-bitflow-deadline-ms: 0\r\n",
        ),
    );
    assert_eq!(status, 504);
    let doomed = fetch_trace(&stack, "doomed-1").expect("error trace retained");
    assert!(!doomed.outcome.is_empty(), "error traces carry a verdict");

    // The recorder dump, both shapes.
    let (status, _, body) = roundtrip(&stack, b"GET /debug/trace HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    let all: Vec<RequestTrace> = serde_json::from_slice(&body).expect("a JSON trace list");
    assert!(all.iter().any(|t| t.id == "trace-me-1"));
    let (status, _, body) = roundtrip(&stack, b"GET /debug/trace?format=chrome HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("utf-8");
    assert!(text.starts_with("{\"traceEvents\":"), "{text}");

    // Method enforcement mirrors the other routes.
    let (status, _, _) = roundtrip(
        &stack,
        b"POST /debug/trace HTTP/1.1\r\ncontent-length: 0\r\n\r\n",
    );
    assert_eq!(status, 405);
}

#[test]
fn debug_routes_hide_without_the_flag_and_degrade_without_a_recorder() {
    // Flag off: the routes do not exist, recorder or not.
    let hidden = stack(
        NetConfig::default(),
        Some(Arc::new(FlightRecorder::new(RecorderConfig::default()))),
    );
    let (status, _, _) = roundtrip(&hidden, b"GET /debug/trace HTTP/1.1\r\n\r\n");
    assert_eq!(status, 404, "debug routes must be opt-in");

    // Flag on, no recorder: the route exists but reports the gap.
    let degraded = stack(
        NetConfig {
            debug_endpoints: true,
            ..NetConfig::default()
        },
        None,
    );
    let (status, _, _) = roundtrip(&degraded, b"GET /debug/trace HTTP/1.1\r\n\r\n");
    assert_eq!(status, 503, "no recorder means 503, not a panic");
    let (status, _, _) = roundtrip(&degraded, b"GET /debug/requests/xyz HTTP/1.1\r\n\r\n");
    assert_eq!(status, 503);
}
