//! Arithmetic-intensity (AIT) analysis of convolution algorithms —
//! paper §III-A, Eqs. 4–8.
//!
//! AIT = arithmetic operations / memory operations. The paper's argument
//! against image-to-column for binary convolution is quantitative: the
//! unfolded matrix `U` inflates the memory traffic (it is written and read
//! once each, hence the `2|U|` term), and after bit-packing shrinks `I` and
//! `W` by 32×, the relative weight of that overhead grows. These
//! calculators back the `ablation` bench and the DESIGN/EXPERIMENTS
//! discussion with the paper's own formulas.

use bitflow_tensor::{FilterShape, Shape};
use serde::{Deserialize, Serialize};

/// The AIT terms of one convolution operator (paper Eqs. 4–8), counted in
/// elements (floats for the full-precision case, packed words × 1 for the
/// binary case — see [`ConvAit::binary`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConvAit {
    /// Arithmetic operations `A = 2·C·H·W·K·h·w` (Eq. 4).
    pub arithmetic: f64,
    /// Input size `|I| = C·H·W` (Eq. 5).
    pub input: f64,
    /// Weight size `|W| = K·C·h·w` (Eq. 6).
    pub weights: f64,
    /// Output size `|O| = K·(H−h+1)·(W−w+1)` (Eq. 7).
    pub output: f64,
    /// Unfolded size `|U| = (H−h+1)·(W−w+1)·C·h·w` (Eq. 8).
    pub unfolded: f64,
}

impl ConvAit {
    /// Full-precision AIT terms for a stride-1, unpadded convolution (the
    /// setting of the paper's formulas).
    pub fn full_precision(input: Shape, f: FilterShape) -> Self {
        assert_eq!(input.c, f.c);
        let (cc, hh, ww) = (input.c as f64, input.h as f64, input.w as f64);
        let (k, h, w) = (f.k as f64, f.kh as f64, f.kw as f64);
        let (oh, ow) = (hh - h + 1.0, ww - w + 1.0);
        Self {
            arithmetic: 2.0 * cc * hh * ww * k * h * w,
            input: cc * hh * ww,
            weights: k * cc * h * w,
            output: k * oh * ow,
            unfolded: oh * ow * cc * h * w,
        }
    }

    /// Binary AIT terms: input, weights and unfolded sizes shrink by the
    /// packing factor (32 in the paper's `unsigned int` packing; 64 for our
    /// `u64` words), arithmetic shrinks by the same factor because each
    /// word-op covers `pack` multiplications and accumulations, and the
    /// output (integer counts) stays full-width.
    pub fn binary(input: Shape, f: FilterShape, pack: f64) -> Self {
        let fp = Self::full_precision(input, f);
        Self {
            arithmetic: fp.arithmetic / pack,
            input: fp.input / pack,
            weights: fp.weights / pack,
            unfolded: fp.unfolded / pack,
            output: fp.output,
        }
    }

    /// Intrinsic AIT of the direct convolution: `A / (|I|+|W|+|O|)`.
    pub fn intrinsic(&self) -> f64 {
        self.arithmetic / (self.input + self.weights + self.output)
    }

    /// AIT achievable through image-to-column: `A / (2|U|+|W|+|O|)`
    /// (paper: the unfolded input is stored then read, doubling its
    /// traffic).
    pub fn im2col(&self) -> f64 {
        self.arithmetic / (2.0 * self.unfolded + self.weights + self.output)
    }

    /// The paper's bound on the fraction of intrinsic AIT image-to-column
    /// can reach: `(|I|+|W|+|O|) / (2|U|+|W|+|O|)`.
    pub fn im2col_fraction(&self) -> f64 {
        (self.input + self.weights + self.output)
            / (2.0 * self.unfolded + self.weights + self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vgg_conv31() -> (Shape, FilterShape) {
        (Shape::hwc(56, 56, 128), FilterShape::new(256, 3, 3, 128))
    }

    #[test]
    fn formulas_match_paper_eqs() {
        let (s, f) = vgg_conv31();
        let a = ConvAit::full_precision(s, f);
        assert_eq!(a.arithmetic, 2.0 * 128.0 * 56.0 * 56.0 * 256.0 * 9.0);
        assert_eq!(a.input, 128.0 * 56.0 * 56.0);
        assert_eq!(a.weights, 256.0 * 128.0 * 9.0);
        assert_eq!(a.output, 256.0 * 54.0 * 54.0);
        assert_eq!(a.unfolded, 54.0 * 54.0 * 128.0 * 9.0);
    }

    #[test]
    fn im2col_always_below_intrinsic() {
        for (h, c, k) in [
            (14usize, 512usize, 512usize),
            (56, 128, 256),
            (112, 64, 128),
        ] {
            let s = Shape::hwc(h, h, c);
            let f = FilterShape::new(k, 3, 3, c);
            let a = ConvAit::full_precision(s, f);
            assert!(a.im2col() < a.intrinsic());
            assert!(a.im2col_fraction() < 1.0);
            assert!(a.im2col_fraction() > 0.0);
        }
    }

    #[test]
    fn binary_packing_lowers_achievable_ait() {
        // Paper §III-A: after bit-packing, arithmetic shrinks by the pack
        // factor while the (unpacked) output keeps memory traffic high, so
        // the AIT achievable through image-to-column "becomes even lower".
        let (s, f) = vgg_conv31();
        let fp = ConvAit::full_precision(s, f);
        let bin = ConvAit::binary(s, f, 64.0);
        assert!(
            bin.im2col() < fp.im2col(),
            "binary {} vs float {}",
            bin.im2col(),
            fp.im2col()
        );
        assert!(bin.intrinsic() < fp.intrinsic());
    }

    #[test]
    fn binary_output_not_packed() {
        let (s, f) = vgg_conv31();
        let bin = ConvAit::binary(s, f, 64.0);
        let fp = ConvAit::full_precision(s, f);
        assert_eq!(bin.output, fp.output);
        assert_eq!(bin.input * 64.0, fp.input);
    }
}
