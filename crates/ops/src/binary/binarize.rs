//! Fused binarize+pack operators and batch-norm folding.
//!
//! The binarization stage between BNN layers — `sign(BN(x))` — collapses to
//! a per-channel threshold compare at inference time, and the compare fuses
//! with bit-packing. These operators are the network-level glue: a float
//! feature map (e.g. a binary conv's integer counts) becomes the next
//! layer's pressed input in one pass, optionally written into the interior
//! of a pre-zeroed padded buffer (zero-cost padding).

use bitflow_simd::pack::pack_f32;
use bitflow_tensor::{BitTensor, Layout, Tensor};

/// Binarize+pack a float NHWC tensor (threshold 0, no padding). Same result
/// as [`BitTensor::from_tensor`], but the per-pixel pack uses the AVX-512
/// mask-compare kernel when available.
pub fn binarize_pack(t: &Tensor) -> BitTensor {
    binarize_pack_padded(t, 0)
}

/// Binarize+pack into the interior of a pre-zeroed padded pressed tensor.
pub fn binarize_pack_padded(t: &Tensor, pad: usize) -> BitTensor {
    let s = t.shape();
    let mut out = BitTensor::zeros(s.h + 2 * pad, s.w + 2 * pad, s.c);
    binarize_pack_into(t, &mut out, pad);
    out
}

/// Binarize+pack into a pre-allocated padded pressed tensor (allocation-free
/// engine path). Margins of `out` are assumed already zero and left alone.
pub fn binarize_pack_into(t: &Tensor, out: &mut BitTensor, pad: usize) {
    assert_eq!(t.layout(), Layout::Nhwc);
    let s = t.shape();
    assert_eq!(s.n, 1);
    assert_eq!(out.c(), s.c, "channel count");
    assert_eq!(out.h(), s.h + 2 * pad, "height incl. padding");
    assert_eq!(out.w(), s.w + 2 * pad, "width incl. padding");
    let cw = out.c_words();
    for h in 0..s.h {
        for w in 0..s.w {
            let src = t.pixel_channels(0, h, w);
            let base = out.pixel_words_index(h + pad, w + pad);
            pack_f32(src, &mut out.words_mut()[base..base + cw]);
        }
    }
}

/// Per-channel threshold binarization: bit c = `x_c >= thresholds[c]`, or
/// `x_c <= thresholds[c]` for flipped (negative-scale) channels, packed
/// into the interior of a padded pressed tensor. This is `sign∘BN` after
/// [`fold_bn_into_thresholds`].
pub fn binarize_threshold_padded(
    t: &Tensor,
    thresholds: &[f32],
    flip: &[bool],
    pad: usize,
) -> BitTensor {
    let s = t.shape();
    let mut out = BitTensor::zeros(s.h + 2 * pad, s.w + 2 * pad, s.c);
    binarize_threshold_into(t, thresholds, flip, &mut out, pad);
    out
}

/// Per-channel threshold binarization into a pre-allocated padded pressed
/// tensor (allocation-free engine path).
pub fn binarize_threshold_into(
    t: &Tensor,
    thresholds: &[f32],
    flip: &[bool],
    out: &mut BitTensor,
    pad: usize,
) {
    assert_eq!(t.layout(), Layout::Nhwc);
    let s = t.shape();
    assert_eq!(s.n, 1);
    assert_eq!(thresholds.len(), s.c);
    assert_eq!(flip.len(), s.c);
    assert_eq!(out.c(), s.c, "channel count");
    assert_eq!(out.h(), s.h + 2 * pad, "height incl. padding");
    assert_eq!(out.w(), s.w + 2 * pad, "width incl. padding");
    let cw = out.c_words();
    for h in 0..s.h {
        for w in 0..s.w {
            let src = t.pixel_channels(0, h, w);
            let base = out.pixel_words_index(h + pad, w + pad);
            let words = &mut out.words_mut()[base..base + cw];
            for (wi, word) in words.iter_mut().enumerate() {
                let lo = wi * 64;
                let hi = (lo + 64).min(s.c);
                let mut v = 0u64;
                for c in lo..hi {
                    let bit = if flip[c] {
                        src[c] <= thresholds[c]
                    } else {
                        src[c] >= thresholds[c]
                    };
                    v |= (bit as u64) << (c - lo);
                }
                *word = v;
            }
        }
    }
}

/// The result of folding inference-time batch normalization into the sign
/// activation that follows it.
#[derive(Clone, Debug, PartialEq)]
pub struct BnFold {
    /// Per-channel thresholds `t_c` such that `sign(BN(x)) = +1 ⇔
    /// x >= t_c` (or `x <= t_c` for flipped channels).
    pub thresholds: Vec<f32>,
    /// Channels whose BN scale is negative, inverting the comparison
    /// direction: the activation is +1 iff `x <= t_c`, equality included
    /// (sign(0) = +1 on both sides of the fold).
    pub flip: Vec<bool>,
}

/// Folds `sign(gamma·(x−mean)/sqrt(var+eps) + beta)` into a per-channel
/// threshold compare:
///
/// with `s = gamma/sqrt(var+eps)` the activation is +1 iff
/// `s·x + (beta − s·mean) >= 0`, i.e. `x >= (s·mean − beta)/s` when `s > 0`
/// and `x <= …` (flipped) when `s < 0`. A zero scale degenerates to the
/// constant `sign(beta)`, encoded as threshold ∓∞.
pub fn fold_bn_into_thresholds(
    gamma: &[f32],
    beta: &[f32],
    mean: &[f32],
    var: &[f32],
    eps: f32,
) -> BnFold {
    let c = gamma.len();
    assert_eq!(beta.len(), c);
    assert_eq!(mean.len(), c);
    assert_eq!(var.len(), c);
    let mut thresholds = Vec::with_capacity(c);
    let mut flip = Vec::with_capacity(c);
    for i in 0..c {
        let s = gamma[i] / (var[i] + eps).sqrt();
        if s > 0.0 {
            thresholds.push(mean[i] - beta[i] / s);
            flip.push(false);
        } else if s < 0.0 {
            // s·x + b >= 0  ⇔  x <= −b/s + mean = mean − beta/s. The
            // consumer compares `x <= t` for flipped channels, so equality
            // lands on the +1 side exactly like the unflipped case — the
            // tie matters for the integer dot products BNN layers produce,
            // where `x == t` is reachable whenever t is an integer.
            thresholds.push(mean[i] - beta[i] / s);
            flip.push(true);
        } else {
            // Constant activation: sign(beta).
            if beta[i] >= 0.0 {
                thresholds.push(f32::NEG_INFINITY);
                flip.push(false);
            } else {
                thresholds.push(f32::INFINITY);
                flip.push(false);
            }
        }
    }
    BnFold { thresholds, flip }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::activation::batch_norm;
    use bitflow_tensor::Shape;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn binarize_pack_matches_tensor_pack() {
        let mut rng = StdRng::seed_from_u64(130);
        for c in [1usize, 64, 100, 300] {
            let t = Tensor::random(Shape::hwc(4, 5, c), Layout::Nhwc, &mut rng);
            let a = binarize_pack(&t);
            let b = BitTensor::from_tensor(&t);
            assert_eq!(a.words(), b.words(), "c={c}");
        }
    }

    #[test]
    fn padded_variant_matches_tensor_padded_pack() {
        let mut rng = StdRng::seed_from_u64(131);
        let t = Tensor::random(Shape::hwc(3, 3, 70), Layout::Nhwc, &mut rng);
        let a = binarize_pack_padded(&t, 1);
        let b = BitTensor::from_tensor_padded(&t, 1);
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn threshold_binarize_semantics() {
        let t = Tensor::from_vec(
            vec![0.5, -0.5, 3.0, 1.0, -1.0],
            Shape::hwc(1, 1, 5),
            Layout::Nhwc,
        );
        let out = binarize_threshold_padded(
            &t,
            &[0.0, -1.0, 5.0, 1.0, -1.0],
            &[false, true, false, false, true],
            0,
        );
        assert_eq!(out.get(0, 0, 0), 1); // 0.5 >= 0
        assert_eq!(out.get(0, 0, 1), -1); // -0.5 > -1, flipped: not <=
        assert_eq!(out.get(0, 0, 2), -1); // 3 < 5
        assert_eq!(out.get(0, 0, 3), 1); // 1 >= 1: tie is +1
        assert_eq!(out.get(0, 0, 4), 1); // -1 <= -1 flipped: tie is +1 too
    }

    #[test]
    fn bn_fold_matches_explicit_bn_then_sign() {
        let mut rng = StdRng::seed_from_u64(132);
        let c = 32usize;
        let gamma: Vec<f32> = (0..c)
            .map(|_| rng.gen_range(0.1f32..2.0) * if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let beta: Vec<f32> = (0..c).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mean: Vec<f32> = (0..c).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let var: Vec<f32> = (0..c).map(|_| rng.gen_range(0.1f32..3.0)).collect();
        let fold = fold_bn_into_thresholds(&gamma, &beta, &mean, &var, 1e-5);

        let t = Tensor::random(Shape::hwc(6, 6, c), Layout::Nhwc, &mut rng);
        // Explicit path: BN then sign.
        let mut explicit = t.clone();
        batch_norm(&mut explicit, &gamma, &beta, &mean, &var, 1e-5);
        let want = explicit.sign();
        // Folded path.
        let got = binarize_threshold_padded(&t, &fold.thresholds, &fold.flip, 0).to_tensor();
        // Ties (BN output exactly 0) are measure-zero for random floats;
        // allow zero mismatches here.
        assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    #[test]
    fn bn_fold_zero_scale_is_constant() {
        let fold =
            fold_bn_into_thresholds(&[0.0, 0.0], &[1.0, -1.0], &[0.0, 0.0], &[1.0, 1.0], 0.0);
        let t = Tensor::from_vec(
            vec![5.0, 5.0, -5.0, -5.0],
            Shape::hwc(2, 1, 2),
            Layout::Nhwc,
        );
        let out = binarize_threshold_padded(&t, &fold.thresholds, &fold.flip, 0);
        assert_eq!(out.get(0, 0, 0), 1);
        assert_eq!(out.get(0, 0, 1), -1);
        assert_eq!(out.get(1, 0, 0), 1);
        assert_eq!(out.get(1, 0, 1), -1);
    }

    #[test]
    fn press_tail_invariant_held() {
        let mut rng = StdRng::seed_from_u64(133);
        let t = Tensor::random(Shape::hwc(2, 2, 65), Layout::Nhwc, &mut rng);
        let out = binarize_threshold_padded(&t, &vec![0.0; 65], &[false; 65], 1);
        assert!(out.tail_is_zero());
    }
}
