//! Conv/bgemm epilogues: integer-threshold sign in the popcount domain.
//!
//! Every binary reduction in BitFlow — a PressedConv window or a binary FC
//! row — is `dot = n − 2·pop`, where `n` is the number of logical bits in
//! the window and `pop = popcount(a ⊕ b)`. The dot product is therefore an
//! exact integer with the same parity as `n`, and the folded batch-norm
//! sign activation `(dot ≥ t)` / `(dot ≤ t)` (see
//! [`crate::binary::binarize::fold_bn_into_thresholds`]) can be decided
//! directly on the **popcount accumulator** with an integer compare:
//!
//! * `γ > 0` (no flip): `bit ⇔ dot ≥ t ⇔ dot ≥ ⌈t⌉ ⇔ pop ≤ ⌊(n − ⌈t⌉)/2⌋`
//! * `γ < 0` (flip):   `bit ⇔ dot ≤ t ⇔ dot ≤ ⌊t⌋ ⇔ pop ≥ ⌈(n − ⌊t⌋)/2⌉`
//!
//! Rounding through `⌈t⌉`/`⌊t⌋` is *exact* for integer dots — no float
//! compare survives into the fused inner loop — and the negative-γ case is
//! handled by flipping the comparison **direction** ([`PopCmp`]), not by
//! negating operands. Thresholds outside the reachable popcount range
//! `[0, n]` saturate naturally into always-+1 / always-−1 channels
//! (`β` pushing the boundary out of range, or the degenerate γ = 0 fold,
//! which encodes `sign(β)` as a ∓∞ threshold).
//!
//! [`ConvEpilogue`] is the operator-level description of what happens to
//! the accumulator before it is stored: the fused graph plan selects
//! [`ConvEpilogue::SignThreshold`] so conv output is written *already
//! pressed* (no float intermediate), while the unfused reference plan —
//! and any conv whose float output is consumed elsewhere — keeps
//! [`ConvEpilogue::FloatOut`]. The network's final FC is the float tail:
//! its logits stay `FloatOut` by construction and are never sign-fused.

use crate::binary::binarize::BnFold;

/// Comparison direction applied to the popcount accumulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopCmp {
    /// `bit = pop ≤ bound` — the positive-scale (γ > 0) direction.
    Le,
    /// `bit = pop ≥ bound` — the flipped, negative-scale (γ < 0) direction.
    Ge,
}

/// Per-channel integer sign thresholds over the popcount domain, derived
/// once at compile time from a [`BnFold`] and the reduction width.
///
/// The equivalence with the float threshold compare is exact (see module
/// docs), so a fused conv/FC using these bounds is bit-identical to the
/// unfused float-scratch reference path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignThresholds {
    bounds: Vec<i64>,
    cmp: Vec<PopCmp>,
    /// Logical bits per reduction (`kh·kw·c` for a conv window, `n` for an
    /// FC row): `dot = window_bits − 2·pop`.
    window_bits: i64,
}

impl SignThresholds {
    /// Derives the integer popcount bounds for a reduction of
    /// `window_bits` logical bits from folded batch-norm thresholds.
    pub fn from_fold(fold: &BnFold, window_bits: usize) -> Self {
        assert_eq!(fold.thresholds.len(), fold.flip.len());
        let n = window_bits as i64;
        let mut bounds = Vec::with_capacity(fold.thresholds.len());
        let mut cmp = Vec::with_capacity(fold.flip.len());
        for (&t, &flip) in fold.thresholds.iter().zip(&fold.flip) {
            let (bound, dir) = if t.is_nan() {
                // `x ≥ NaN` and `x ≤ NaN` are both false: constant −1.
                (-1, PopCmp::Le)
            } else if !flip {
                // bit ⇔ dot ≥ ⌈t⌉ ⇔ pop ≤ ⌊(n − ⌈t⌉)/2⌋. The cast
                // saturates ±∞; clamping to ±(n+2) keeps the subtraction
                // in range without changing the decision for any
                // reachable dot ∈ [−n, n].
                let d = (t.ceil() as i64).clamp(-(n + 2), n + 2);
                ((n - d).div_euclid(2), PopCmp::Le)
            } else {
                // bit ⇔ dot ≤ ⌊t⌋ ⇔ pop ≥ ⌈(n − ⌊t⌋)/2⌉.
                let d = (t.floor() as i64).clamp(-(n + 2), n + 2);
                ((n - d + 1).div_euclid(2), PopCmp::Ge)
            };
            bounds.push(bound);
            cmp.push(dir);
        }
        Self {
            bounds,
            cmp,
            window_bits: n,
        }
    }

    /// Number of output channels.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Whether there are no channels.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Logical bits per reduction window.
    pub fn window_bits(&self) -> usize {
        self.window_bits as usize
    }

    /// The popcount bound of channel `c`.
    pub fn bound(&self, c: usize) -> i64 {
        self.bounds[c]
    }

    /// The comparison direction of channel `c`.
    pub fn direction(&self, c: usize) -> PopCmp {
        self.cmp[c]
    }

    /// The sign bit of channel `c` for popcount accumulator `pop`.
    #[inline]
    pub fn bit_from_pop(&self, c: usize, pop: i64) -> bool {
        match self.cmp[c] {
            PopCmp::Le => pop <= self.bounds[c],
            PopCmp::Ge => pop >= self.bounds[c],
        }
    }

    /// The sign bit of channel `c` for integer dot product `dot`
    /// (`pop = (window_bits − dot)/2`, an exact integer by parity).
    #[inline]
    pub fn bit_from_dot(&self, c: usize, dot: i64) -> bool {
        self.bit_from_pop(c, (self.window_bits - dot) >> 1)
    }

    /// Channel `c` is +1 for every reachable popcount (threshold saturated
    /// below the range, or the γ = 0, β ≥ 0 fold).
    pub fn always_pos(&self, c: usize) -> bool {
        match self.cmp[c] {
            PopCmp::Le => self.bounds[c] >= self.window_bits,
            PopCmp::Ge => self.bounds[c] <= 0,
        }
    }

    /// Channel `c` is −1 for every reachable popcount (threshold saturated
    /// above the range, a NaN threshold, or the γ = 0, β < 0 fold).
    pub fn always_neg(&self, c: usize) -> bool {
        match self.cmp[c] {
            PopCmp::Le => self.bounds[c] < 0,
            PopCmp::Ge => self.bounds[c] > self.window_bits,
        }
    }
}

/// What a binary conv / bgemm reduction does with its accumulator before
/// storing it — the operator-level epilogue the graph planner selects per
/// node.
#[derive(Clone, Debug)]
pub enum ConvEpilogue {
    /// Store the raw integer dot products as `f32` (the unfused reference
    /// path, float taps, and the network's float-logits tail).
    FloatOut,
    /// Threshold-sign in the popcount domain and store pressed bits — the
    /// fused Conv→BN→Sign path: no float intermediate is materialized.
    SignThreshold(SignThresholds),
}

impl ConvEpilogue {
    /// Whether this epilogue writes pressed output.
    pub fn is_fused_sign(&self) -> bool {
        matches!(self, ConvEpilogue::SignThreshold(_))
    }
}

/// Sign-threshold + pack a vector of integer-valued dot products (the
/// bgemm/FC epilogue): bit `i` of `out` is `st.bit_from_dot(i, dots[i])`.
/// `out` must hold `⌈len/64⌉` words; press-tail bits are zeroed.
pub fn pack_signed_dots_into(dots: &[f32], st: &SignThresholds, out: &mut [u64]) {
    assert_eq!(dots.len(), st.len(), "one threshold per output");
    assert_eq!(out.len(), dots.len().div_ceil(64), "output word count");
    out.fill(0);
    for (i, &x) in dots.iter().enumerate() {
        if st.bit_from_dot(i, x as i64) {
            out[i / 64] |= 1 << (i % 64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold(thresholds: Vec<f32>, flip: Vec<bool>) -> BnFold {
        BnFold { thresholds, flip }
    }

    /// Exhaustive equivalence with the (tie-exact) float compare over every
    /// reachable dot value, for a spread of thresholds in and out of range.
    #[test]
    fn integer_bounds_match_float_compare_exhaustively() {
        for n in [9usize, 16, 27, 576] {
            let ts: Vec<f32> = vec![
                0.0,
                0.5,
                -0.5,
                3.0,
                -3.0,
                (n as f32) - 1.0,
                n as f32,
                (n as f32) + 10.5,
                -(n as f32) - 10.5,
                f32::INFINITY,
                f32::NEG_INFINITY,
            ];
            for flip in [false, true] {
                let f = fold(ts.clone(), vec![flip; ts.len()]);
                let st = SignThresholds::from_fold(&f, n);
                // dot runs over every parity-consistent integer in [−n, n].
                let mut dot = -(n as i64);
                while dot <= n as i64 {
                    for (c, &t) in ts.iter().enumerate() {
                        let x = dot as f32;
                        let want = if flip { x <= t } else { x >= t };
                        assert_eq!(
                            st.bit_from_dot(c, dot),
                            want,
                            "n={n} t={t} flip={flip} dot={dot}"
                        );
                    }
                    dot += 2;
                }
            }
        }
    }

    #[test]
    fn tie_goes_to_plus_one_in_both_directions() {
        // dot == t exactly: sign(0) = +1 must hold for γ > 0 (x ≥ t) and
        // for γ < 0 (x ≤ t) — the flipped side owns equality too.
        let n = 9usize;
        let st_pos = SignThresholds::from_fold(&fold(vec![3.0], vec![false]), n);
        let st_neg = SignThresholds::from_fold(&fold(vec![3.0], vec![true]), n);
        assert!(st_pos.bit_from_dot(0, 3));
        assert!(st_neg.bit_from_dot(0, 3));
        assert!(!st_pos.bit_from_dot(0, 1));
        assert!(st_neg.bit_from_dot(0, 1));
        assert!(st_pos.bit_from_dot(0, 5));
        assert!(!st_neg.bit_from_dot(0, 5));
        assert_eq!(st_pos.direction(0), PopCmp::Le);
        assert_eq!(st_neg.direction(0), PopCmp::Ge);
    }

    #[test]
    fn out_of_range_thresholds_saturate() {
        let n = 16usize;
        // Below the reachable dot range: always +1 (γ > 0).
        let lo = SignThresholds::from_fold(&fold(vec![-100.0], vec![false]), n);
        assert!(lo.always_pos(0) && !lo.always_neg(0));
        // Above the range: always −1 (γ > 0).
        let hi = SignThresholds::from_fold(&fold(vec![100.0], vec![false]), n);
        assert!(hi.always_neg(0) && !hi.always_pos(0));
        // Flipped directions invert the saturation side.
        let lo_f = SignThresholds::from_fold(&fold(vec![-100.0], vec![true]), n);
        assert!(lo_f.always_neg(0));
        let hi_f = SignThresholds::from_fold(&fold(vec![100.0], vec![true]), n);
        assert!(hi_f.always_pos(0));
        // The γ = 0 fold encodes sign(β) as ∓∞.
        let z = SignThresholds::from_fold(&fold(vec![f32::NEG_INFINITY], vec![false]), n);
        assert!(z.always_pos(0));
        let z = SignThresholds::from_fold(&fold(vec![f32::INFINITY], vec![false]), n);
        assert!(z.always_neg(0));
        // NaN thresholds compare false either way: constant −1.
        let nan = SignThresholds::from_fold(&fold(vec![f32::NAN], vec![false]), n);
        assert!(nan.always_neg(0));
        let nan = SignThresholds::from_fold(&fold(vec![f32::NAN], vec![true]), n);
        assert!(nan.always_neg(0));
    }

    #[test]
    fn pack_signed_dots_matches_scalar_bits() {
        let n = 64usize;
        let k = 70usize; // partial final word
        let thresholds: Vec<f32> = (0..k).map(|i| i as f32 - 35.0).collect();
        let flip: Vec<bool> = (0..k).map(|i| i % 3 == 0).collect();
        let st = SignThresholds::from_fold(&fold(thresholds.clone(), flip.clone()), n);
        let dots: Vec<f32> = (0..k)
            .map(|i| ((i as i64 * 7) % 65 - 32) * 2) // even dots
            .map(|d| d as f32)
            .collect();
        let mut out = vec![u64::MAX; k.div_ceil(64)];
        pack_signed_dots_into(&dots, &st, &mut out);
        for (i, &d) in dots.iter().enumerate() {
            let want = if flip[i] {
                d <= thresholds[i]
            } else {
                d >= thresholds[i]
            };
            assert_eq!((out[i / 64] >> (i % 64)) & 1 == 1, want, "i={i}");
        }
        // Press tail zeroed.
        assert_eq!(out[1] >> (k - 64), 0);
    }
}
