//! Binary fully-connected operator (paper §III-C).
//!
//! "Binary fully connected operator is in essence doing binary matrix
//! matrix multiplication" — the operator wraps `bitflow-gemm`'s bgemm with
//! weights packed once at construction (network-level optimization:
//! binarize + pack + transpose weights during initialization, once and for
//! all). Vector parallelism runs over the N (input-neuron) dimension,
//! multi-core parallelism over the K (output-neuron) dimension.

use bitflow_gemm::bgemm::{bgemm_packed, bgemm_packed_parallel};
use bitflow_gemm::pack::{pack_b_fused, PackedMatrix};
use bitflow_simd::kernels::SimdLevel;
use bitflow_simd::pack::pack_f32;

/// Pre-packed binary FC weights: the fused binarize+pack+transpose product
/// of an N×K float weight matrix (paper Table III).
#[derive(Clone, Debug)]
pub struct BinaryFcWeights {
    packed: PackedMatrix,
    /// Input width.
    pub n: usize,
    /// Output width.
    pub k: usize,
}

impl BinaryFcWeights {
    /// Packs an N×K row-major float weight matrix.
    pub fn pack(weights: &[f32], n: usize, k: usize) -> Self {
        assert_eq!(weights.len(), n * k);
        Self {
            packed: pack_b_fused(weights, n, k),
            n,
            k,
        }
    }

    /// Packed bytes (for model-size accounting).
    pub fn packed_bytes(&self) -> usize {
        self.packed.bytes()
    }

    /// Forward pass over an already-packed input given as raw words
    /// (length `ceil(n/64)`, press-tail zeros), writing the K dot products
    /// into `out`. Allocation-free — the engine's hot path.
    pub fn forward_into(&self, level: SimdLevel, input_words: &[u64], out: &mut [f32]) {
        assert_eq!(
            input_words.len(),
            self.packed.words_per_row,
            "input word count"
        );
        assert_eq!(out.len(), self.k, "output width");
        for (kk, o) in out.iter_mut().enumerate() {
            *o = bitflow_simd::binary_dot(level, input_words, self.packed.row(kk), self.n) as f32;
        }
    }

    /// Multi-threaded [`Self::forward_into`] (output neurons over the
    /// installed rayon pool).
    pub fn forward_into_parallel(&self, level: SimdLevel, input_words: &[u64], out: &mut [f32]) {
        use rayon::prelude::*;
        assert_eq!(
            input_words.len(),
            self.packed.words_per_row,
            "input word count"
        );
        assert_eq!(out.len(), self.k, "output width");
        out.par_iter_mut()
            .enumerate()
            .with_min_len(8)
            .for_each(|(kk, o)| {
                *o = bitflow_simd::binary_dot(level, input_words, self.packed.row(kk), self.n)
                    as f32;
            });
    }
}

/// Binary FC: binarize+pack the input vector, then K binary dot products.
pub fn binary_fc(level: SimdLevel, input: &[f32], weights: &BinaryFcWeights) -> Vec<f32> {
    let pin = pack_input(input, weights.n);
    let mut out = vec![0.0f32; weights.k];
    bgemm_packed(level, &pin, &weights.packed, &mut out);
    out
}

/// Multi-threaded binary FC (output neurons over the installed pool).
pub fn binary_fc_parallel(level: SimdLevel, input: &[f32], weights: &BinaryFcWeights) -> Vec<f32> {
    let pin = pack_input(input, weights.n);
    let mut out = vec![0.0f32; weights.k];
    bgemm_packed_parallel(level, &pin, &weights.packed, &mut out);
    out
}

/// Binary FC over an input that is already packed (chained binary layers).
pub fn binary_fc_packed(
    level: SimdLevel,
    input: &PackedMatrix,
    weights: &BinaryFcWeights,
) -> Vec<f32> {
    assert_eq!(input.rows, 1, "batch-1 FC");
    assert_eq!(input.n_logical, weights.n, "input width");
    let mut out = vec![0.0f32; weights.k];
    bgemm_packed(level, input, &weights.packed, &mut out);
    out
}

fn pack_input(input: &[f32], n: usize) -> PackedMatrix {
    assert_eq!(input.len(), n, "input width");
    let mut pin = PackedMatrix::zeros(1, n);
    pack_f32(input, pin.row_mut(0));
    pin
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sign(x: f32) -> f32 {
        if x >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    #[test]
    fn matches_float_reference() {
        let mut rng = StdRng::seed_from_u64(110);
        for (n, k) in [(64usize, 10usize), (100, 7), (512, 32), (25088 / 49, 16)] {
            let input: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let weights: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let packed = BinaryFcWeights::pack(&weights, n, k);
            let got = binary_fc(SimdLevel::Avx512, &input, &packed);
            for kk in 0..k {
                let want: f32 = (0..n)
                    .map(|i| sign(input[i]) * sign(weights[i * k + kk]))
                    .sum();
                assert_eq!(got[kk], want, "n={n} k={k} kk={kk}");
            }
        }
    }

    #[test]
    fn parallel_and_packed_variants_agree() {
        let mut rng = StdRng::seed_from_u64(111);
        let (n, k) = (300usize, 21usize);
        let input: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let weights: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let packed = BinaryFcWeights::pack(&weights, n, k);
        let a = binary_fc(SimdLevel::Scalar, &input, &packed);
        let b = binary_fc_parallel(SimdLevel::Avx2, &input, &packed);
        let pin = pack_input(&input, n);
        let c = binary_fc_packed(SimdLevel::Sse, &pin, &packed);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn weight_compression() {
        let (n, k) = (4096usize, 4096usize);
        let packed = BinaryFcWeights::pack(&vec![0.5f32; n * k], n, k);
        assert_eq!((n * k * 4) / packed.packed_bytes(), 32);
    }
}
