//! Binary convolution via the conventional image-to-column method — the
//! algorithmic baseline PressedConv replaces (paper §III-A).
//!
//! The float input is unfolded exactly as in the float path (one row of
//! `kh·kw·C` values per output pixel), then each row is binarized and
//! packed, the filter bank is packed to matching rows, and the convolution
//! becomes a binary GEMM. The paper's two criticisms are visible directly
//! in this code:
//!
//! 1. the unfolded matrix `U` is materialized (≈ `kh·kw`× the input) and
//!    written+read once each, collapsing arithmetic intensity (Eq. 8); and
//! 2. the packed row length `kh·kw·C` is rarely a multiple of the SIMD
//!    width, so the kernel spends time in tails.
//!
//! With `level = SimdLevel::Scalar` this operator *is* the paper's
//! "unoptimized BNN implementation": bitwise xor+popcount binary
//! convolution with no vector parallelism. (The figure-7 harness uses the
//! scalar **PressedConv** as the unvectorized baseline so that exactly one
//! variable — vectorization — changes; this operator additionally changes
//! the algorithm, which is what the `ablation` bench quantifies.)

use crate::float::conv::im2col;
use crate::params::ConvParams;
use bitflow_gemm::pack::{pack_a_rows, PackedMatrix};
use bitflow_simd::binary_dot;
use bitflow_simd::kernels::SimdLevel;
use bitflow_tensor::{FilterShape, Layout, Shape, Tensor};

/// Packs the filter bank as rows of `kh·kw·C` bits, matching the unfolded
/// row layout `(i, j, c)`. Weights come in (K, kh, kw, C) order, which is
/// already `(i, j, c)`-major per filter, so each filter packs contiguously.
pub fn pack_filters_as_rows(weights: &[f32], fshape: FilterShape) -> PackedMatrix {
    assert_eq!(weights.len(), fshape.numel());
    pack_a_rows(weights, fshape.k, fshape.per_filter())
}

/// Image-to-column binary convolution.
///
/// Note the **−1 padding** semantics difference from the float path: the
/// unfolded matrix zero-fills out-of-bounds taps with the float 0.0, which
/// binarizes to **+1** (sign(0) = +1, paper Eq. 3). To keep the same
/// padding semantics as PressedConv (pad = −1), out-of-bounds taps are
/// re-filled with −1.0 before binarization.
pub fn binary_conv_im2col(
    level: SimdLevel,
    input: &Tensor,
    weights: &[f32],
    fshape: FilterShape,
    params: ConvParams,
) -> Tensor {
    assert_eq!(input.layout(), Layout::Nhwc);
    let s = input.shape();
    assert_eq!(s.c, fshape.c, "channel mismatch");
    let g = params.conv_out(s, fshape.k);
    let cols = fshape.per_filter();

    // Unfold with −1 fill so padding matches the pressed path.
    let mut u = if params.pad > 0 {
        im2col_fill(input, params, fshape.kh, fshape.kw, -1.0)
    } else {
        im2col(input, params, fshape.kh, fshape.kw)
    };
    debug_assert_eq!(u.len(), g.out_h * g.out_w * cols);

    // Binarize + pack the unfolded rows (this pass over the full U is the
    // AIT overhead the paper analyzes).
    let pu = pack_a_rows(&u, g.out_h * g.out_w, cols);
    u.clear();
    let pw = pack_filters_as_rows(weights, fshape);

    let mut out = Tensor::zeros(Shape::hwc(g.out_h, g.out_w, fshape.k), Layout::Nhwc);
    let k = fshape.k;
    for px in 0..g.out_h * g.out_w {
        let urow = pu.row(px);
        let orow = &mut out.data_mut()[px * k..(px + 1) * k];
        for (kk, o) in orow.iter_mut().enumerate() {
            *o = binary_dot(level, urow, pw.row(kk), cols) as f32;
        }
    }
    out
}

/// `im2col` with a custom fill value for out-of-bounds taps.
fn im2col_fill(input: &Tensor, params: ConvParams, kh: usize, kw: usize, fill: f32) -> Vec<f32> {
    let s = input.shape();
    let g = params.conv_out(s, 1);
    let cols = kh * kw * s.c;
    let mut u = vec![fill; g.out_h * g.out_w * cols];
    let (ih, iw) = (s.h as isize, s.w as isize);
    for oy in 0..g.out_h {
        for ox in 0..g.out_w {
            let row = &mut u[(oy * g.out_w + ox) * cols..][..cols];
            for i in 0..kh {
                let y = (oy * params.stride + i) as isize - params.pad as isize;
                if y < 0 || y >= ih {
                    continue;
                }
                for j in 0..kw {
                    let x = (ox * params.stride + j) as isize - params.pad as isize;
                    if x < 0 || x >= iw {
                        continue;
                    }
                    let src = input.pixel_channels(0, y as usize, x as usize);
                    row[(i * kw + j) * s.c..][..s.c].copy_from_slice(src);
                }
            }
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::pressed_conv::pressed_conv;
    use bitflow_tensor::{BitFilterBank, BitTensor};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rand_pm1(rng: &mut StdRng, n: usize) -> Vec<f32> {
        (0..n)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect()
    }

    #[test]
    fn agrees_with_pressed_conv() {
        let mut rng = StdRng::seed_from_u64(100);
        for (c, pad, stride) in [(3usize, 1usize, 1usize), (64, 1, 1), (64, 0, 1), (96, 1, 2)] {
            let shape = Shape::hwc(6, 5, c);
            let fshape = FilterShape::new(5, 3, 3, c);
            let input = Tensor::from_vec(rand_pm1(&mut rng, shape.numel()), shape, Layout::Nhwc);
            let weights = rand_pm1(&mut rng, fshape.numel());
            let params = ConvParams::new(3, 3, stride, pad);
            let a = binary_conv_im2col(SimdLevel::Scalar, &input, &weights, fshape, params);
            let pressed = BitTensor::from_tensor_padded(&input, pad);
            let bank = BitFilterBank::from_floats(&weights, fshape);
            let b = pressed_conv(SimdLevel::Avx512, &pressed, &bank, stride);
            assert_eq!(a.max_abs_diff(&b), 0.0, "c={c} pad={pad} stride={stride}");
        }
    }

    #[test]
    fn all_levels_agree() {
        let mut rng = StdRng::seed_from_u64(101);
        let shape = Shape::hwc(5, 5, 32);
        let fshape = FilterShape::new(3, 3, 3, 32);
        let input = Tensor::from_vec(rand_pm1(&mut rng, shape.numel()), shape, Layout::Nhwc);
        let weights = rand_pm1(&mut rng, fshape.numel());
        let base = binary_conv_im2col(
            SimdLevel::Scalar,
            &input,
            &weights,
            fshape,
            ConvParams::VGG_CONV,
        );
        for level in [SimdLevel::Sse, SimdLevel::Avx2, SimdLevel::Avx512] {
            let got = binary_conv_im2col(level, &input, &weights, fshape, ConvParams::VGG_CONV);
            assert_eq!(base.max_abs_diff(&got), 0.0, "{level}");
        }
    }

    #[test]
    fn filter_row_packing_matches_bank() {
        let mut rng = StdRng::seed_from_u64(102);
        let fshape = FilterShape::new(4, 3, 3, 8);
        let weights = rand_pm1(&mut rng, fshape.numel());
        let rows = pack_filters_as_rows(&weights, fshape);
        assert_eq!(rows.rows, 4);
        assert_eq!(rows.n_logical, 72);
        // Spot-check bit (k=2, i=1, j=2, c=5) → row 2, bit (1*3+2)*8+5 = 45.
        let flat = ((2 * 3 + 1) * 3 + 2) * 8 + 5;
        let want = weights[flat] >= 0.0;
        assert_eq!((rows.row(2)[0] >> 45) & 1 == 1, want);
    }
}
