//! Binary operators — the paper's contribution.
//!
//! * [`pressed_conv`] — PressedConv (paper §III-B, Algorithm 1).
//! * [`im2col_conv`] — binary convolution via the conventional
//!   image-to-column route (paper §III-A), kept as the algorithmic
//!   baseline whose low arithmetic intensity PressedConv fixes. Run at
//!   [`bitflow_simd::kernels::SimdLevel::Scalar`] this doubles as the
//!   paper's "unoptimized BNN implementation".
//! * [`fc`] — binary fully-connected over `bitflow-gemm`'s bgemm.
//! * [`pool`] — binary max-pool: OR over pressed words (§III-C).
//! * [`binarize`] — fused sign+pack operators and batch-norm folding.
//! * [`epilogue`] — integer-threshold conv epilogues: the folded BN+sign
//!   moved into the popcount domain so fused convs never materialize a
//!   float map.
//!
//! ## Padding semantics
//!
//! Zero-cost padding stores all-zero words in the margin. In the bit
//! encoding (+1 ↦ 1, −1 ↦ 0) an all-zero pixel *is* the all-(−1) pixel:
//! binary convolution pads with **−1**, not with the float 0 (which does
//! not exist in the {−1,+1} domain). This matches standard BNN practice
//! and training in `bitflow-train` uses the same convention, so training
//! and inference agree. Float-vs-binary equivalence tests pad the float
//! reference input with −1.0 explicitly.

pub mod binarize;
pub mod epilogue;
pub mod fc;
pub mod im2col_conv;
pub mod pool;
pub mod pressed_conv;

pub use binarize::{
    binarize_pack, binarize_pack_into, binarize_pack_padded, binarize_threshold_into,
    binarize_threshold_padded, fold_bn_into_thresholds, BnFold,
};
pub use epilogue::{pack_signed_dots_into, ConvEpilogue, PopCmp, SignThresholds};
pub use fc::{binary_fc, binary_fc_parallel, BinaryFcWeights};
pub use im2col_conv::binary_conv_im2col;
pub use pool::{binary_max_pool, binary_max_pool_into, binary_max_pool_parallel};
pub use pressed_conv::{
    pressed_conv, pressed_conv_into, pressed_conv_parallel, pressed_conv_parallel_into,
    pressed_conv_sign_into, pressed_conv_sign_parallel_into, pressed_conv_sign_scratch_into,
};
