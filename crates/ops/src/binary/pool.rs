//! Binary max-pooling: bitwise OR over pressed words (paper §III-C).
//!
//! In the {−1,+1} domain with the +1 ↦ 1 encoding, `max` of a window is 1
//! exactly when any element is 1 — a bitwise OR. The operator keeps the
//! NHWC pressed layout and ORs whole channel-word vectors, so it runs at
//! memory speed with the same kernels widths as PressedConv.

use bitflow_simd::kernels::SimdLevel;
use bitflow_simd::or_accumulate;
use bitflow_simd::scheduler::infer_pool;
use bitflow_tensor::BitTensor;
use rayon::prelude::*;

/// Binary max-pool with a `kh×kw` window and `stride`.
pub fn binary_max_pool(
    level: SimdLevel,
    input: &BitTensor,
    kh: usize,
    kw: usize,
    stride: usize,
) -> BitTensor {
    let g = infer_pool(input.h(), input.w(), input.c(), kh, kw, stride);
    let mut out = BitTensor::zeros(g.out_h, g.out_w, input.c());
    binary_max_pool_into(level, input, kh, kw, stride, &mut out, 0);
    out
}

/// Binary max-pool into the interior of a pre-allocated (optionally padded)
/// output tensor — the allocation-free engine path, with zero-cost padding
/// for the following convolution baked into `out`.
pub fn binary_max_pool_into(
    level: SimdLevel,
    input: &BitTensor,
    kh: usize,
    kw: usize,
    stride: usize,
    out: &mut BitTensor,
    out_pad: usize,
) {
    let g = infer_pool(input.h(), input.w(), input.c(), kh, kw, stride);
    assert_eq!(out.c(), input.c(), "channel count");
    assert_eq!(
        out.h(),
        g.out_h + 2 * out_pad,
        "output height incl. padding"
    );
    assert_eq!(out.w(), g.out_w + 2 * out_pad, "output width incl. padding");
    let cw = input.c_words();
    for oy in 0..g.out_h {
        for ox in 0..g.out_w {
            let base = out.pixel_words_index(oy + out_pad, ox + out_pad);
            pool_window(level, input, kh, kw, stride, oy, ox, {
                &mut out.words_mut()[base..base + cw]
            });
        }
    }
}

/// Multi-threaded binary max-pool (output pixels over the installed pool).
/// Bit-identical to the serial version.
pub fn binary_max_pool_parallel(
    level: SimdLevel,
    input: &BitTensor,
    kh: usize,
    kw: usize,
    stride: usize,
) -> BitTensor {
    let g = infer_pool(input.h(), input.w(), input.c(), kh, kw, stride);
    let mut out = BitTensor::zeros(g.out_h, g.out_w, input.c());
    let cw = input.c_words();
    let out_w = g.out_w;
    out.words_mut()
        .par_chunks_mut(cw)
        .enumerate()
        .with_min_len(32)
        .for_each(|(px, owords)| {
            pool_window(level, input, kh, kw, stride, px / out_w, px % out_w, owords);
        });
    out
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn pool_window(
    level: SimdLevel,
    input: &BitTensor,
    kh: usize,
    kw: usize,
    stride: usize,
    oy: usize,
    ox: usize,
    owords: &mut [u64],
) {
    let (iy, ix) = (oy * stride, ox * stride);
    owords.copy_from_slice(input.pixel_words(iy, ix));
    for i in 0..kh {
        for j in 0..kw {
            if i == 0 && j == 0 {
                continue;
            }
            or_accumulate(level, owords, input.pixel_words(iy + i, ix + j));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::pool::max_pool;
    use crate::params::ConvParams;
    use bitflow_tensor::{Layout, Shape, Tensor};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rand_pm1_tensor(rng: &mut StdRng, h: usize, w: usize, c: usize) -> Tensor {
        Tensor::from_fn(Shape::hwc(h, w, c), Layout::Nhwc, |_, _, _, _| {
            if rng.gen::<bool>() {
                1.0
            } else {
                -1.0
            }
        })
    }

    #[test]
    fn matches_float_max_pool_on_pm1() {
        let mut rng = StdRng::seed_from_u64(120);
        for c in [1usize, 33, 64, 130, 512] {
            let t = rand_pm1_tensor(&mut rng, 8, 8, c);
            let want = max_pool(&t, ConvParams::VGG_POOL);
            let pressed = BitTensor::from_tensor(&t);
            for level in [
                SimdLevel::Scalar,
                SimdLevel::Sse,
                SimdLevel::Avx2,
                SimdLevel::Avx512,
            ] {
                let got = binary_max_pool(level, &pressed, 2, 2, 2).to_tensor();
                assert_eq!(got.max_abs_diff(&want), 0.0, "c={c} {level}");
            }
        }
    }

    #[test]
    fn parallel_bit_identical() {
        let mut rng = StdRng::seed_from_u64(121);
        let t = rand_pm1_tensor(&mut rng, 14, 14, 256);
        let pressed = BitTensor::from_tensor(&t);
        let a = binary_max_pool(SimdLevel::Avx512, &pressed, 2, 2, 2);
        let b = binary_max_pool_parallel(SimdLevel::Avx512, &pressed, 2, 2, 2);
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn all_minus_one_window_stays_minus_one() {
        let t = Tensor::from_vec(vec![-1.0; 4 * 4 * 64], Shape::hwc(4, 4, 64), Layout::Nhwc);
        let pressed = BitTensor::from_tensor(&t);
        let out = binary_max_pool(SimdLevel::Scalar, &pressed, 2, 2, 2);
        assert!(out.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn single_plus_one_dominates_window() {
        let mut t = Tensor::from_vec(vec![-1.0; 2 * 2 * 64], Shape::hwc(2, 2, 64), Layout::Nhwc);
        *t.at_mut(0, 1, 1, 63) = 1.0;
        let pressed = BitTensor::from_tensor(&t);
        let out = binary_max_pool(SimdLevel::Scalar, &pressed, 2, 2, 2);
        assert_eq!(out.get(0, 0, 63), 1);
        assert_eq!(out.get(0, 0, 62), -1);
    }

    #[test]
    fn overlapping_stride_1_windows() {
        let mut rng = StdRng::seed_from_u64(122);
        let t = rand_pm1_tensor(&mut rng, 5, 5, 64);
        let want = max_pool(&t, ConvParams::new(2, 2, 1, 0));
        let pressed = BitTensor::from_tensor(&t);
        let got = binary_max_pool(SimdLevel::Avx2, &pressed, 2, 2, 1).to_tensor();
        assert_eq!(got.max_abs_diff(&want), 0.0);
    }
}
