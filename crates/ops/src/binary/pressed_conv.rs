//! PressedConv — efficient binary convolution with locality-aware layout
//! and vector parallelism (paper §III-B, Algorithm 1).
//!
//! The input arrives as a [`BitTensor`]: NHWC, channels pressed ×64 into
//! `u64` words, spatial padding pre-baked as all-zero margins (paper
//! Fig. 5). Filters arrive as a [`BitFilterBank`], pressed the same way at
//! network initialization. A convolution window then reduces to `kh` pairs
//! of *contiguous* word runs of length `kw·c_words` — one xor+popcount
//! stream per filter row — because width and pressed channels are adjacent
//! in memory. That contiguity is the entire point of the locality-aware
//! layout: no unfolding, no gather, no layout change on the output.
//!
//! Parallelism (Algorithm 1, step 3): vector parallelism runs along the
//! pressed channel words inside [`bitflow_simd::xor_popcount`]; multi-core
//! parallelism runs over the fused H×W output-pixel range.

use crate::binary::epilogue::SignThresholds;
use bitflow_simd::conv::{conv_window as simd_conv_window, WindowGeom};
use bitflow_simd::kernels::SimdLevel;
use bitflow_tensor::{BitFilterBank, BitTensor, Layout, Shape, Tensor};
use rayon::prelude::*;

/// Validates operand geometry and returns (out_h, out_w).
fn geometry(input: &BitTensor, filters: &BitFilterBank, stride: usize) -> (usize, usize) {
    let f = filters.shape();
    assert_eq!(input.c(), f.c, "channel mismatch");
    assert_eq!(
        input.c_words(),
        filters.c_words(),
        "press width mismatch between input and filters"
    );
    assert!(stride > 0, "stride must be positive");
    assert!(
        f.kh <= input.h() && f.kw <= input.w(),
        "kernel larger than (padded) input"
    );
    (
        (input.h() - f.kh) / stride + 1,
        (input.w() - f.kw) / stride + 1,
    )
}

/// Computes all K binary dot products of the window anchored at input pixel
/// (iy, ix), writing them as `f32` into `orow` (length K).
///
/// The window's kh rows are contiguous runs of `kw · c_words` words in both
/// operands (the locality-aware layout at work); the per-tier fused kernel
/// in `bitflow-simd` streams them with one dispatch per *pixel*, amortized
/// over all K filters.
#[inline]
fn conv_window(
    level: SimdLevel,
    input: &BitTensor,
    filters: &BitFilterBank,
    iy: usize,
    ix: usize,
    orow: &mut [f32],
) {
    let f = filters.shape();
    let cw = input.c_words();
    let geom = WindowGeom {
        base: input.pixel_words_index(iy, ix),
        row_stride: input.w() * cw,
        row_len: f.kw * cw,
        kh: f.kh,
        n_logical: (f.kh * f.kw * f.c) as i32,
    };
    simd_conv_window(level, input.words(), filters.filter_words_all(), geom, orow);
}

/// PressedConv, single-threaded: binary convolution of a pressed input
/// against a pressed filter bank. Returns the integer dot products as an
/// f32 NHWC tensor of shape (out_h, out_w, K).
///
/// Spatial padding must be pre-baked into `input`
/// ([`BitTensor::from_tensor_padded`] or the graph memory planner); pad
/// pixels are all-zero words, i.e. logical −1 (see module docs of
/// [`crate::binary`]).
pub fn pressed_conv(
    level: SimdLevel,
    input: &BitTensor,
    filters: &BitFilterBank,
    stride: usize,
) -> Tensor {
    let (out_h, out_w) = geometry(input, filters, stride);
    let k = filters.shape().k;
    let mut out = Tensor::zeros(Shape::hwc(out_h, out_w, k), Layout::Nhwc);
    pressed_conv_into(level, input, filters, stride, &mut out);
    out
}

/// PressedConv writing into a pre-allocated output tensor (allocation-free
/// inference path; the graph engine pre-allocates `out` at plan time).
pub fn pressed_conv_into(
    level: SimdLevel,
    input: &BitTensor,
    filters: &BitFilterBank,
    stride: usize,
    out: &mut Tensor,
) {
    let (out_h, out_w) = geometry(input, filters, stride);
    let k = filters.shape().k;
    assert_eq!(out.shape(), Shape::hwc(out_h, out_w, k), "output shape");
    for oy in 0..out_h {
        for ox in 0..out_w {
            let start = (oy * out_w + ox) * k;
            conv_window(
                level,
                input,
                filters,
                oy * stride,
                ox * stride,
                &mut out.data_mut()[start..start + k],
            );
        }
    }
}

/// PressedConv, multi-threaded: output pixels (fused H×W, per Algorithm 1)
/// are distributed over the installed rayon pool. Bit-identical to the
/// single-threaded result.
pub fn pressed_conv_parallel(
    level: SimdLevel,
    input: &BitTensor,
    filters: &BitFilterBank,
    stride: usize,
) -> Tensor {
    let (out_h, out_w) = geometry(input, filters, stride);
    let k = filters.shape().k;
    let mut out = Tensor::zeros(Shape::hwc(out_h, out_w, k), Layout::Nhwc);
    pressed_conv_parallel_into(level, input, filters, stride, &mut out);
    out
}

/// Multi-threaded PressedConv into a pre-allocated output tensor.
pub fn pressed_conv_parallel_into(
    level: SimdLevel,
    input: &BitTensor,
    filters: &BitFilterBank,
    stride: usize,
    out: &mut Tensor,
) {
    let (out_h, out_w) = geometry(input, filters, stride);
    let k = filters.shape().k;
    assert_eq!(out.shape(), Shape::hwc(out_h, out_w, k), "output shape");
    out.data_mut()
        .par_chunks_mut(k)
        .enumerate()
        .with_min_len(8)
        .for_each(|(px, orow)| {
            let (oy, ox) = (px / out_w, px % out_w);
            conv_window(level, input, filters, oy * stride, ox * stride, orow);
        });
}

/// Fused PressedConv + integer-threshold sign epilogue, writing packed
/// bits straight into the **interior** of a pre-zeroed padded output
/// [`BitTensor`] — the producer side of zero-cost padding (paper Fig. 5):
/// the next layer reads `out` directly, margins already "padded", and no
/// float intermediate map is ever materialized.
///
/// For output feature k the sign bit is decided on the integer dot product
/// via [`SignThresholds::bit_from_dot`] — an exact popcount-domain compare
/// derived from the folded batch-norm (negative scales flip the comparison
/// direction, see [`crate::binary::epilogue`]).
pub fn pressed_conv_sign_into(
    level: SimdLevel,
    input: &BitTensor,
    filters: &BitFilterBank,
    stride: usize,
    st: &SignThresholds,
    out: &mut BitTensor,
    out_pad: usize,
) {
    let mut dots = vec![0.0f32; filters.shape().k];
    pressed_conv_sign_scratch_into(level, input, filters, stride, st, &mut dots, out, out_pad);
}

/// [`pressed_conv_sign_into`] with a caller-provided per-window scratch
/// buffer (at least `k` floats) — the truly allocation-free engine path:
/// the engine lends the layer's float scratch vector instead of allocating
/// a fresh dot buffer per request.
#[allow(clippy::too_many_arguments)]
pub fn pressed_conv_sign_scratch_into(
    level: SimdLevel,
    input: &BitTensor,
    filters: &BitFilterBank,
    stride: usize,
    st: &SignThresholds,
    dots: &mut [f32],
    out: &mut BitTensor,
    out_pad: usize,
) {
    let (out_h, out_w) = geometry(input, filters, stride);
    let k = filters.shape().k;
    check_sign_geometry(filters, st, out, out_h, out_w, out_pad);
    assert!(dots.len() >= k, "scratch must hold one dot per feature");
    let dots = &mut dots[..k];
    let c_words = out.c_words();
    for oy in 0..out_h {
        for ox in 0..out_w {
            conv_window(level, input, filters, oy * stride, ox * stride, dots);
            let base = out.pixel_words_index(oy + out_pad, ox + out_pad);
            sign_pack_pixel(dots, st, &mut out.words_mut()[base..base + c_words]);
        }
    }
}

/// Multi-threaded fused PressedConv + sign epilogue: padded output rows are
/// distributed over the installed rayon pool, each worker carrying its own
/// per-window dot scratch. Bit-identical to
/// [`pressed_conv_sign_scratch_into`] — per-pixel work is independent and
/// every worker writes disjoint whole rows.
pub fn pressed_conv_sign_parallel_into(
    level: SimdLevel,
    input: &BitTensor,
    filters: &BitFilterBank,
    stride: usize,
    st: &SignThresholds,
    out: &mut BitTensor,
    out_pad: usize,
) {
    let (out_h, out_w) = geometry(input, filters, stride);
    let k = filters.shape().k;
    check_sign_geometry(filters, st, out, out_h, out_w, out_pad);
    let c_words = out.c_words();
    let row_words = (out_w + 2 * out_pad) * c_words;
    out.words_mut()
        .par_chunks_mut(row_words)
        .enumerate()
        .for_each(|(row, words)| {
            // Margin rows stay all-zero (logical −1 padding).
            if row < out_pad || row >= out_pad + out_h {
                return;
            }
            let oy = row - out_pad;
            let mut dots = vec![0.0f32; k];
            for ox in 0..out_w {
                conv_window(level, input, filters, oy * stride, ox * stride, &mut dots);
                let base = (out_pad + ox) * c_words;
                sign_pack_pixel(&dots, st, &mut words[base..base + c_words]);
            }
        });
}

/// Shared geometry checks of the fused sign variants.
fn check_sign_geometry(
    filters: &BitFilterBank,
    st: &SignThresholds,
    out: &BitTensor,
    out_h: usize,
    out_w: usize,
    out_pad: usize,
) {
    let f = filters.shape();
    assert_eq!(st.len(), f.k, "one threshold per output feature");
    assert_eq!(
        st.window_bits(),
        f.kh * f.kw * f.c,
        "threshold window width must match the filter window"
    );
    assert_eq!(out.c(), f.k, "output channel count");
    assert_eq!(out.h(), out_h + 2 * out_pad, "output height incl. padding");
    assert_eq!(out.w(), out_w + 2 * out_pad, "output width incl. padding");
}

/// Packs one pixel's K dot products into `c_words` output words using the
/// integer sign epilogue.
#[inline]
fn sign_pack_pixel(dots: &[f32], st: &SignThresholds, words: &mut [u64]) {
    let k = dots.len();
    for (wi, word) in words.iter_mut().enumerate() {
        let mut w = 0u64;
        let lo = wi * 64;
        let hi = (lo + 64).min(k);
        for (i, &dot) in dots[lo..hi].iter().enumerate() {
            let bit = st.bit_from_dot(lo + i, dot as i64);
            w |= (bit as u64) << i;
        }
        *word = w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::binarize::BnFold;
    use crate::float::conv::conv_direct;
    use crate::params::ConvParams;
    use bitflow_tensor::FilterShape;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rand_pm1(rng: &mut StdRng, n: usize) -> Vec<f32> {
        (0..n)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect()
    }

    /// Float reference with −1 padding: pre-pad the ±1 input with −1.0 and
    /// run the direct convolution with pad 0.
    fn reference(
        input: &Tensor,
        weights: &[f32],
        fshape: FilterShape,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let s = input.shape();
        let padded = Tensor::from_fn(
            Shape::hwc(s.h + 2 * pad, s.w + 2 * pad, s.c),
            Layout::Nhwc,
            |_, h, w, c| {
                if h < pad || h >= s.h + pad || w < pad || w >= s.w + pad {
                    -1.0
                } else {
                    input.at(0, h - pad, w - pad, c)
                }
            },
        );
        conv_direct(
            &padded,
            weights,
            fshape,
            ConvParams::new(fshape.kh, fshape.kw, stride, 0),
        )
    }

    fn levels() -> [SimdLevel; 4] {
        [
            SimdLevel::Scalar,
            SimdLevel::Sse,
            SimdLevel::Avx2,
            SimdLevel::Avx512,
        ]
    }

    #[test]
    fn matches_float_reference_across_channel_widths() {
        let mut rng = StdRng::seed_from_u64(90);
        // Channel widths hitting every scheduler tier incl. the padded one.
        for c in [3usize, 32, 64, 128, 160, 256] {
            let shape = Shape::hwc(5, 6, c);
            let fshape = FilterShape::new(7, 3, 3, c);
            let raw = Tensor::from_vec(rand_pm1(&mut rng, shape.numel()), shape, Layout::Nhwc);
            let weights = rand_pm1(&mut rng, fshape.numel());
            let want = reference(&raw, &weights, fshape, 1, 1);
            let pressed = BitTensor::from_tensor_padded(&raw, 1);
            let bank = BitFilterBank::from_floats(&weights, fshape);
            for level in levels() {
                let got = pressed_conv(level, &pressed, &bank, 1);
                assert_eq!(got.max_abs_diff(&want), 0.0, "c={c} {level}");
            }
        }
    }

    #[test]
    fn matches_reference_no_padding_and_strides() {
        let mut rng = StdRng::seed_from_u64(91);
        for (stride, pad) in [(1usize, 0usize), (2, 0), (2, 1), (3, 0)] {
            let shape = Shape::hwc(9, 9, 64);
            let fshape = FilterShape::new(4, 3, 3, 64);
            let raw = Tensor::from_vec(rand_pm1(&mut rng, shape.numel()), shape, Layout::Nhwc);
            let weights = rand_pm1(&mut rng, fshape.numel());
            let want = reference(&raw, &weights, fshape, stride, pad);
            let pressed = BitTensor::from_tensor_padded(&raw, pad);
            let bank = BitFilterBank::from_floats(&weights, fshape);
            let got = pressed_conv(SimdLevel::Avx512, &pressed, &bank, stride);
            assert_eq!(got.max_abs_diff(&want), 0.0, "stride={stride} pad={pad}");
        }
    }

    #[test]
    fn parallel_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(92);
        let shape = Shape::hwc(8, 8, 128);
        let fshape = FilterShape::new(16, 3, 3, 128);
        let raw = Tensor::from_vec(rand_pm1(&mut rng, shape.numel()), shape, Layout::Nhwc);
        let weights = rand_pm1(&mut rng, fshape.numel());
        let pressed = BitTensor::from_tensor_padded(&raw, 1);
        let bank = BitFilterBank::from_floats(&weights, fshape);
        let a = pressed_conv(SimdLevel::Avx2, &pressed, &bank, 1);
        let b = pressed_conv_parallel(SimdLevel::Avx2, &pressed, &bank, 1);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn one_by_one_kernel_is_channel_dot() {
        let mut rng = StdRng::seed_from_u64(93);
        let shape = Shape::hwc(3, 3, 64);
        let fshape = FilterShape::new(2, 1, 1, 64);
        let raw = Tensor::from_vec(rand_pm1(&mut rng, shape.numel()), shape, Layout::Nhwc);
        let weights = rand_pm1(&mut rng, fshape.numel());
        let pressed = BitTensor::from_tensor(&raw);
        let bank = BitFilterBank::from_floats(&weights, fshape);
        let got = pressed_conv(SimdLevel::Scalar, &pressed, &bank, 1);
        for h in 0..3 {
            for w in 0..3 {
                for k in 0..2 {
                    let want: f32 = (0..64)
                        .map(|c| raw.at(0, h, w, c) * weights[k * 64 + c])
                        .sum();
                    assert_eq!(got.at(0, h, w, k), want);
                }
            }
        }
    }

    #[test]
    fn all_margin_window_gives_full_anticorrelation() {
        // 1x1 input padded by 1, 3x3 all-(+1) filter: window at (0,0) sees
        // 8 margin pixels (−1) and the single real pixel.
        let raw = Tensor::from_vec(vec![1.0; 4], Shape::hwc(1, 1, 4), Layout::Nhwc);
        let fshape = FilterShape::new(1, 3, 3, 4);
        let weights = vec![1.0f32; fshape.numel()];
        let pressed = BitTensor::from_tensor_padded(&raw, 1);
        let bank = BitFilterBank::from_floats(&weights, fshape);
        let got = pressed_conv(SimdLevel::Scalar, &pressed, &bank, 1);
        // dot = 8·4·(−1) + 4·(+1) = −28.
        assert_eq!(got.at(0, 0, 0, 0), -28.0);
    }

    #[test]
    fn sign_into_matches_threshold_on_counts() {
        let mut rng = StdRng::seed_from_u64(94);
        let shape = Shape::hwc(6, 6, 64);
        let k = 70usize; // non-multiple of 64 exercises partial out words
        let fshape = FilterShape::new(k, 3, 3, 64);
        let raw = Tensor::from_vec(rand_pm1(&mut rng, shape.numel()), shape, Layout::Nhwc);
        let weights = rand_pm1(&mut rng, fshape.numel());
        let pressed = BitTensor::from_tensor_padded(&raw, 1);
        let bank = BitFilterBank::from_floats(&weights, fshape);
        let thresholds: Vec<f32> = (0..k).map(|i| (i as f32) - 35.0).collect();
        let flip: Vec<bool> = (0..k).map(|i| i % 7 == 0).collect();
        let fold = BnFold {
            thresholds: thresholds.clone(),
            flip: flip.clone(),
        };
        let st = SignThresholds::from_fold(&fold, 3 * 3 * 64);
        let counts = pressed_conv(SimdLevel::Avx512, &pressed, &bank, 1);
        let mut out = BitTensor::zeros(6 + 2, 6 + 2, k);
        pressed_conv_sign_into(SimdLevel::Avx512, &pressed, &bank, 1, &st, &mut out, 1);
        assert!(out.tail_is_zero());
        for h in 0..6 {
            for w in 0..6 {
                for kk in 0..k {
                    let x = counts.at(0, h, w, kk);
                    let bit = if flip[kk] {
                        x <= thresholds[kk]
                    } else {
                        x >= thresholds[kk]
                    };
                    let want = if bit { 1 } else { -1 };
                    assert_eq!(out.get(h + 1, w + 1, kk), want, "({h},{w},{kk})");
                }
            }
        }
        // Margins untouched.
        for w in 0..8 {
            assert!(out.pixel_words(0, w).iter().all(|&x| x == 0));
            assert!(out.pixel_words(7, w).iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn parallel_sign_matches_serial() {
        let mut rng = StdRng::seed_from_u64(95);
        let shape = Shape::hwc(7, 5, 64);
        let k = 70usize;
        let fshape = FilterShape::new(k, 3, 3, 64);
        let raw = Tensor::from_vec(rand_pm1(&mut rng, shape.numel()), shape, Layout::Nhwc);
        let weights = rand_pm1(&mut rng, fshape.numel());
        let pressed = BitTensor::from_tensor_padded(&raw, 1);
        let bank = BitFilterBank::from_floats(&weights, fshape);
        let fold = BnFold {
            thresholds: (0..k).map(|i| (i as f32) - 35.0).collect(),
            flip: (0..k).map(|i| i % 7 == 0).collect(),
        };
        let st = SignThresholds::from_fold(&fold, 3 * 3 * 64);
        let mut serial = BitTensor::zeros(7 + 2, 5 + 2, k);
        pressed_conv_sign_into(SimdLevel::Avx512, &pressed, &bank, 1, &st, &mut serial, 1);
        let mut par = BitTensor::zeros(7 + 2, 5 + 2, k);
        pressed_conv_sign_parallel_into(SimdLevel::Avx512, &pressed, &bank, 1, &st, &mut par, 1);
        assert_eq!(serial.words(), par.words());
        assert!(par.tail_is_zero());
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_rejected() {
        let input = BitTensor::zeros(4, 4, 64);
        let bank = BitFilterBank::zeros(FilterShape::new(2, 3, 3, 128));
        let _ = pressed_conv(SimdLevel::Scalar, &input, &bank, 1);
    }
}
