//! Pointwise float layers: ReLU, sign, batch-norm (inference form), softmax.

use bitflow_tensor::Tensor;

/// In-place ReLU.
pub fn relu(t: &mut Tensor) {
    for x in t.data_mut() {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

/// Elementwise sign into {−1.0, +1.0} (paper Eq. 3) — reference form of the
/// binarizing activation.
pub fn sign_tensor(t: &Tensor) -> Tensor {
    t.sign()
}

/// Inference-time batch normalization over the channel dimension:
/// `y = gamma·(x − mean)/sqrt(var + eps) + beta`, per channel.
///
/// In BNN inference this is typically *folded* into the per-channel sign
/// threshold of the following binarization (see
/// [`crate::binary::binarize::fold_bn_into_thresholds`]); the explicit form
/// here is the float baseline and the training-side reference.
pub fn batch_norm(
    t: &mut Tensor,
    gamma: &[f32],
    beta: &[f32],
    mean: &[f32],
    var: &[f32],
    eps: f32,
) {
    let c = t.shape().c;
    assert_eq!(gamma.len(), c);
    assert_eq!(beta.len(), c);
    assert_eq!(mean.len(), c);
    assert_eq!(var.len(), c);
    // NHWC: channels innermost, so walk flat data modulo c.
    assert_eq!(t.layout(), bitflow_tensor::Layout::Nhwc);
    let scale: Vec<f32> = (0..c).map(|i| gamma[i] / (var[i] + eps).sqrt()).collect();
    let shift: Vec<f32> = (0..c).map(|i| beta[i] - mean[i] * scale[i]).collect();
    for (i, x) in t.data_mut().iter_mut().enumerate() {
        let ci = i % c;
        *x = *x * scale[ci] + shift[ci];
    }
}

/// Numerically-stable softmax over a flat vector.
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitflow_tensor::{Layout, Shape};

    #[test]
    fn relu_clamps() {
        let mut t = Tensor::from_vec(vec![-1.0, 0.0, 2.0], Shape::vec(3), Layout::Nhwc);
        relu(&mut t);
        assert_eq!(t.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn batch_norm_identity() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::hwc(2, 1, 2), Layout::Nhwc);
        let ones = vec![1.0, 1.0];
        let zeros = vec![0.0, 0.0];
        batch_norm(&mut t, &ones, &zeros, &zeros, &ones, 0.0);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn batch_norm_scales_per_channel() {
        let mut t = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], Shape::hwc(2, 1, 2), Layout::Nhwc);
        batch_norm(
            &mut t,
            &[2.0, 3.0],
            &[10.0, -10.0],
            &[1.0, 1.0],
            &[1.0, 1.0],
            0.0,
        );
        // x = mean → y = beta.
        assert_eq!(t.data(), &[10.0, -10.0, 10.0, -10.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_stable_for_large_inputs() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p.iter().all(|x| x.is_finite()));
    }
}
