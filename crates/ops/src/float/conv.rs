//! Float convolution: direct reference and image-to-column production path.
//!
//! The image-to-column method (paper §II-B, Fig. 2) unfolds each input
//! window into a row of a matrix `U` of (out_h·out_w) × (kh·kw·C), builds a
//! weight matrix `W` of K × (kh·kw·C), and computes the convolution as the
//! GEMM `U · Wᵀ`. This is the conventional approach BitFlow keeps for the
//! *float* baseline while abandoning it for binary convolution.

use crate::params::ConvParams;
use bitflow_gemm::sgemm::sgemm_pretransposed;
use bitflow_tensor::{FilterShape, Layout, Shape, Tensor};
use rayon::prelude::*;

/// Direct (seven-loop) convolution over NHWC input, used as the correctness
/// oracle for every other convolution in the workspace (paper Eq. 2).
///
/// `weights` are in (K, kh, kw, C) order. Output is NHWC (out_h, out_w, K).
pub fn conv_direct(
    input: &Tensor,
    weights: &[f32],
    fshape: FilterShape,
    params: ConvParams,
) -> Tensor {
    assert_eq!(input.layout(), Layout::Nhwc);
    let s = input.shape();
    assert_eq!(s.n, 1, "batch-1 inference engine");
    assert_eq!(s.c, fshape.c, "channel mismatch");
    assert_eq!(weights.len(), fshape.numel());
    assert_eq!((fshape.kh, fshape.kw), (params.kh, params.kw));
    let g = params.conv_out(s, fshape.k);
    let mut out = Tensor::zeros(Shape::hwc(g.out_h, g.out_w, g.out_c), Layout::Nhwc);
    let (ih, iw) = (s.h as isize, s.w as isize);
    for oy in 0..g.out_h {
        for ox in 0..g.out_w {
            for k in 0..fshape.k {
                let mut acc = 0.0f32;
                for i in 0..fshape.kh {
                    for j in 0..fshape.kw {
                        let y = (oy * params.stride + i) as isize - params.pad as isize;
                        let x = (ox * params.stride + j) as isize - params.pad as isize;
                        if y < 0 || y >= ih || x < 0 || x >= iw {
                            continue; // zero padding contributes nothing
                        }
                        for c in 0..fshape.c {
                            acc += input.at(0, y as usize, x as usize, c)
                                * weights[((k * fshape.kh + i) * fshape.kw + j) * fshape.c + c];
                        }
                    }
                }
                *out.at_mut(0, oy, ox, k) = acc;
            }
        }
    }
    out
}

/// The unfold step of image-to-column (paper Fig. 2b): each output position
/// becomes one row of `(kh·kw·C)` values, zero-filled where the window
/// hangs over the border. Returns the unfolded matrix, row-major.
pub fn im2col(input: &Tensor, params: ConvParams, kh: usize, kw: usize) -> Vec<f32> {
    assert_eq!(input.layout(), Layout::Nhwc);
    let s = input.shape();
    let g = params.conv_out(s, 1);
    let cols = kh * kw * s.c;
    let mut u = vec![0.0f32; g.out_h * g.out_w * cols];
    let (ih, iw) = (s.h as isize, s.w as isize);
    for oy in 0..g.out_h {
        for ox in 0..g.out_w {
            let row = &mut u[(oy * g.out_w + ox) * cols..][..cols];
            for i in 0..kh {
                let y = (oy * params.stride + i) as isize - params.pad as isize;
                if y < 0 || y >= ih {
                    continue;
                }
                for j in 0..kw {
                    let x = (ox * params.stride + j) as isize - params.pad as isize;
                    if x < 0 || x >= iw {
                        continue;
                    }
                    let src = input.pixel_channels(0, y as usize, x as usize);
                    row[(i * kw + j) * s.c..][..s.c].copy_from_slice(src);
                }
            }
        }
    }
    u
}

/// Image-to-column convolution: unfold + tiled sgemm — the float production
/// baseline of all performance figures.
pub fn conv_im2col(
    input: &Tensor,
    weights: &[f32],
    fshape: FilterShape,
    params: ConvParams,
) -> Tensor {
    let (u, g, cols) = unfold_for(input, weights, fshape, params);
    // Weight matrix W is K×cols; `U · Wᵀ` wants B = Wᵀ of cols×K, i.e. the
    // sgemm-with-pretransposed-B path can take W rows directly.
    let mut out = Tensor::zeros(Shape::hwc(g.0, g.1, fshape.k), Layout::Nhwc);
    sgemm_pretransposed(&u, weights, out.data_mut(), g.0 * g.1, cols, fshape.k);
    out
}

/// Multi-threaded image-to-column convolution: the GEMM's M dimension
/// (output pixels) is split over the installed rayon pool.
pub fn conv_im2col_parallel(
    input: &Tensor,
    weights: &[f32],
    fshape: FilterShape,
    params: ConvParams,
) -> Tensor {
    let (u, g, cols) = unfold_for(input, weights, fshape, params);
    let mut out = Tensor::zeros(Shape::hwc(g.0, g.1, fshape.k), Layout::Nhwc);
    let k = fshape.k;
    out.data_mut()
        .par_chunks_mut(k)
        .enumerate()
        .with_min_len(16)
        .for_each(|(px, crow)| {
            let urow = &u[px * cols..(px + 1) * cols];
            sgemm_pretransposed(urow, weights, crow, 1, cols, k);
        });
    out
}

fn unfold_for(
    input: &Tensor,
    weights: &[f32],
    fshape: FilterShape,
    params: ConvParams,
) -> (Vec<f32>, (usize, usize), usize) {
    assert_eq!(input.shape().c, fshape.c, "channel mismatch");
    assert_eq!(weights.len(), fshape.numel());
    assert_eq!((fshape.kh, fshape.kw), (params.kh, params.kw));
    let g = params.conv_out(input.shape(), fshape.k);
    let cols = fshape.per_filter();
    let u = im2col(input, params, fshape.kh, fshape.kw);
    (u, (g.out_h, g.out_w), cols)
}

/// Size in floats of the unfolded matrix — the `|U|` term of the paper's
/// arithmetic-intensity analysis (Eq. 8).
pub fn unfolded_size(input: Shape, fshape: FilterShape, params: ConvParams) -> usize {
    let g = params.conv_out(input, fshape.k);
    g.out_h * g.out_w * fshape.per_filter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitflow_gemm::sgemm::{sgemm_naive, transpose};
    use rand::{rngs::StdRng, SeedableRng};

    fn close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        assert!(
            a.max_abs_diff(b) <= tol,
            "max diff {} > {tol}",
            a.max_abs_diff(b)
        );
    }

    #[test]
    fn im2col_matches_direct_no_pad() {
        let mut rng = StdRng::seed_from_u64(60);
        let input = Tensor::random(Shape::hwc(6, 7, 5), Layout::Nhwc, &mut rng);
        let fshape = FilterShape::new(4, 3, 3, 5);
        let weights: Vec<f32> = (0..fshape.numel())
            .map(|i| ((i % 13) as f32 - 6.0) / 6.0)
            .collect();
        let params = ConvParams::new(3, 3, 1, 0);
        let a = conv_direct(&input, &weights, fshape, params);
        let b = conv_im2col(&input, &weights, fshape, params);
        close(&a, &b, 1e-4);
    }

    #[test]
    fn im2col_matches_direct_with_pad_and_stride() {
        let mut rng = StdRng::seed_from_u64(61);
        for (params, hw) in [
            (ConvParams::new(3, 3, 1, 1), (5usize, 5usize)),
            (ConvParams::new(3, 3, 2, 1), (7, 9)),
            (ConvParams::new(2, 2, 2, 0), (8, 8)),
            (ConvParams::new(1, 1, 1, 0), (4, 4)),
            (ConvParams::new(5, 5, 1, 2), (9, 9)),
        ] {
            let input = Tensor::random(Shape::hwc(hw.0, hw.1, 3), Layout::Nhwc, &mut rng);
            let fshape = FilterShape::new(2, params.kh, params.kw, 3);
            let weights: Vec<f32> = (0..fshape.numel())
                .map(|i| ((i % 7) as f32 - 3.0) / 3.0)
                .collect();
            let a = conv_direct(&input, &weights, fshape, params);
            let b = conv_im2col(&input, &weights, fshape, params);
            close(&a, &b, 1e-4);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(62);
        let input = Tensor::random(Shape::hwc(10, 10, 16), Layout::Nhwc, &mut rng);
        let fshape = FilterShape::new(8, 3, 3, 16);
        let weights: Vec<f32> = (0..fshape.numel())
            .map(|i| ((i % 5) as f32 - 2.0) / 2.0)
            .collect();
        let a = conv_im2col(&input, &weights, fshape, ConvParams::VGG_CONV);
        let b = conv_im2col_parallel(&input, &weights, fshape, ConvParams::VGG_CONV);
        close(&a, &b, 1e-4);
    }

    #[test]
    fn unfold_geometry() {
        // Paper Fig. 2b: 3x3 input, 2x2 kernel → 4 rows of kh·kw·C.
        let input = Tensor::from_fn(Shape::hwc(3, 3, 2), Layout::Nhwc, |_, h, w, c| {
            (h * 10 + w + c * 100) as f32
        });
        let params = ConvParams::new(2, 2, 1, 0);
        let u = im2col(&input, params, 2, 2);
        assert_eq!(u.len(), 4 * 8);
        // First row = window at (0,0): pixels (0,0),(0,1),(1,0),(1,1), channels interleaved.
        assert_eq!(&u[..8], &[0.0, 100.0, 1.0, 101.0, 10.0, 110.0, 11.0, 111.0]);
    }

    #[test]
    fn im2col_gemm_identity_vs_naive_gemm() {
        // The unfolded formulation must equal a plain gemm on U and Wᵀ.
        let mut rng = StdRng::seed_from_u64(63);
        let input = Tensor::random(Shape::hwc(4, 4, 3), Layout::Nhwc, &mut rng);
        let fshape = FilterShape::new(5, 3, 3, 3);
        let weights: Vec<f32> = (0..fshape.numel()).map(|i| (i as f32).sin()).collect();
        let params = ConvParams::new(3, 3, 1, 1);
        let u = im2col(&input, params, 3, 3);
        let cols = fshape.per_filter();
        let wt = transpose(&weights, fshape.k, cols); // K×cols -> cols×K
        let mut c = vec![0.0f32; 16 * fshape.k];
        sgemm_naive(&u, &wt, &mut c, 16, cols, fshape.k);
        let conv = conv_im2col(&input, &weights, fshape, params);
        for (x, y) in c.iter().zip(conv.data()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn unfolded_size_matches_paper_eq8() {
        // |U| = (H−h+1)(W−w+1)·C·h·w for stride 1, no pad.
        let input = Shape::hwc(10, 12, 7);
        let fshape = FilterShape::new(3, 3, 3, 7);
        let sz = unfolded_size(input, fshape, ConvParams::new(3, 3, 1, 0));
        assert_eq!(sz, 8 * 10 * 7 * 9);
    }
}
