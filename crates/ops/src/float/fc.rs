//! Float fully-connected operator (single-precision GEMM).

use bitflow_gemm::sgemm::{sgemm_pretransposed, transpose};
use rayon::prelude::*;

/// Fully-connected: `out = input · W`, input 1×N, `weights` N×K row-major.
/// The transpose of W is done inside (counted in the baseline's time, as a
/// framework would do on an unprepared weight matrix; use
/// [`fc_pretransposed`] to hoist it).
pub fn fc(input: &[f32], weights: &[f32], n: usize, k: usize) -> Vec<f32> {
    assert_eq!(input.len(), n);
    assert_eq!(weights.len(), n * k);
    let wt = transpose(weights, n, k);
    let mut out = vec![0.0f32; k];
    sgemm_pretransposed(input, &wt, &mut out, 1, n, k);
    out
}

/// Fully-connected with an already-transposed weight matrix (K×N row-major).
pub fn fc_pretransposed(input: &[f32], wt: &[f32], n: usize, k: usize) -> Vec<f32> {
    assert_eq!(input.len(), n);
    assert_eq!(wt.len(), n * k);
    let mut out = vec![0.0f32; k];
    sgemm_pretransposed(input, wt, &mut out, 1, n, k);
    out
}

/// Multi-threaded fully-connected: output neurons over the installed pool.
pub fn fc_parallel(input: &[f32], wt: &[f32], n: usize, k: usize) -> Vec<f32> {
    assert_eq!(input.len(), n);
    assert_eq!(wt.len(), n * k);
    let mut out = vec![0.0f32; k];
    out.par_iter_mut()
        .enumerate()
        .with_min_len(8)
        .for_each(|(ki, o)| {
            let row = &wt[ki * n..(ki + 1) * n];
            *o = input.iter().zip(row).map(|(a, b)| a * b).sum();
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn fc_matches_manual_dot() {
        let input = vec![1.0, 2.0, 3.0];
        // W 3x2 (n x k): columns are [1,0,1] and [0,1,-1].
        let weights = vec![1.0, 0.0, 0.0, 1.0, 1.0, -1.0];
        let out = fc(&input, &weights, 3, 2);
        assert_eq!(out, vec![4.0, -1.0]);
    }

    #[test]
    fn variants_agree() {
        let mut rng = StdRng::seed_from_u64(70);
        let (n, k) = (300usize, 17usize);
        let input: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let weights: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let wt = transpose(&weights, n, k);
        let a = fc(&input, &weights, n, k);
        let b = fc_pretransposed(&input, &wt, n, k);
        let c = fc_parallel(&input, &wt, n, k);
        for i in 0..k {
            assert!((a[i] - b[i]).abs() < 1e-4);
            assert!((a[i] - c[i]).abs() < 1e-4);
        }
    }
}
