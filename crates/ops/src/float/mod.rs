//! Full-precision baseline operators.
//!
//! These implement the "counterpart full-precision operators" of the
//! paper's evaluation: convolution via the conventional image-to-column
//! method backed by the tiled sgemm of `bitflow-gemm` (paper §II-B,
//! Fig. 2), plus FC, pooling and the pointwise layers a VGG needs.

pub mod activation;
pub mod conv;
pub mod fc;
pub mod pool;

pub use activation::{batch_norm, relu, sign_tensor, softmax};
pub use conv::{conv_direct, conv_im2col, conv_im2col_parallel, im2col};
pub use fc::{fc, fc_parallel, fc_pretransposed};
pub use pool::{max_pool, max_pool_parallel};
