//! Float max-pooling over NHWC tensors.

use crate::params::ConvParams;
use bitflow_tensor::{Layout, Shape, Tensor};
use rayon::prelude::*;

/// Max-pool with window `params.kh × params.kw` and `params.stride`.
pub fn max_pool(input: &Tensor, params: ConvParams) -> Tensor {
    assert_eq!(input.layout(), Layout::Nhwc);
    let s = input.shape();
    assert_eq!(s.n, 1);
    let g = params.pool_out(s);
    let mut out = Tensor::zeros(Shape::hwc(g.out_h, g.out_w, g.out_c), Layout::Nhwc);
    for oy in 0..g.out_h {
        for ox in 0..g.out_w {
            pool_window(input, params, oy, ox, {
                let start = (oy * g.out_w + ox) * s.c;
                &mut out.data_mut()[start..start + s.c]
            });
        }
    }
    out
}

/// Multi-threaded max-pool: output pixels over the installed pool.
pub fn max_pool_parallel(input: &Tensor, params: ConvParams) -> Tensor {
    assert_eq!(input.layout(), Layout::Nhwc);
    let s = input.shape();
    assert_eq!(s.n, 1);
    let g = params.pool_out(s);
    let mut out = Tensor::zeros(Shape::hwc(g.out_h, g.out_w, g.out_c), Layout::Nhwc);
    let (out_w, c) = (g.out_w, s.c);
    out.data_mut()
        .par_chunks_mut(c)
        .enumerate()
        .with_min_len(16)
        .for_each(|(px, orow)| {
            pool_window(input, params, px / out_w, px % out_w, orow);
        });
    out
}

#[inline]
fn pool_window(input: &Tensor, params: ConvParams, oy: usize, ox: usize, orow: &mut [f32]) {
    orow.fill(f32::NEG_INFINITY);
    for i in 0..params.kh {
        for j in 0..params.kw {
            let src = input.pixel_channels(0, oy * params.stride + i, ox * params.stride + j);
            for (o, &x) in orow.iter_mut().zip(src) {
                *o = o.max(x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pool_2x2_known_values() {
        let input = Tensor::from_fn(Shape::hwc(4, 4, 1), Layout::Nhwc, |_, h, w, _| {
            (h * 4 + w) as f32
        });
        let out = max_pool(&input, ConvParams::VGG_POOL);
        assert_eq!(out.shape(), Shape::hwc(2, 2, 1));
        assert_eq!(out.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn pool_keeps_channels_independent() {
        let input = Tensor::from_fn(Shape::hwc(2, 2, 3), Layout::Nhwc, |_, h, w, c| {
            ((h * 2 + w) as f32) * if c == 1 { -1.0 } else { 1.0 }
        });
        let out = max_pool(&input, ConvParams::VGG_POOL);
        assert_eq!(out.data(), &[3.0, 0.0, 3.0]);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(80);
        let input = Tensor::random(Shape::hwc(14, 14, 64), Layout::Nhwc, &mut rng);
        let a = max_pool(&input, ConvParams::VGG_POOL);
        let b = max_pool_parallel(&input, ConvParams::VGG_POOL);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn overlapping_windows_stride_1() {
        let input = Tensor::from_fn(Shape::hwc(3, 3, 1), Layout::Nhwc, |_, h, w, _| {
            (h * 3 + w) as f32
        });
        let out = max_pool(&input, ConvParams::new(2, 2, 1, 0));
        assert_eq!(out.shape(), Shape::hwc(2, 2, 1));
        assert_eq!(out.data(), &[4.0, 5.0, 7.0, 8.0]);
    }
}
