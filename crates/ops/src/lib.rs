//! # bitflow-ops
//!
//! The **operator level** of BitFlow's three-level hierarchy (paper §III).
//!
//! Two operator families over the `bitflow-tensor` types:
//!
//! * [`float`] — full-precision baseline operators: direct and
//!   image-to-column (im2col + sgemm) convolution, fully-connected,
//!   max-pool, ReLU, batch-norm, softmax. These are the "counterpart
//!   full-precision operators" every figure normalizes against.
//! * [`binary`] — the paper's contribution: **PressedConv** (§III-B,
//!   Algorithm 1), binary fully-connected (bgemm), binary max-pool
//!   (bitwise OR over pressed words), fused binarize+pack operators, and
//!   the image-to-column *binary* convolution whose poor arithmetic
//!   intensity motivates PressedConv (§III-A) — with a scalar variant
//!   serving as the paper's "unoptimized BNN implementation" baseline.
//!
//! Operators are plain functions over tensors: stateless, allocation-free
//! where an output buffer is supplied, deterministic across thread counts.
//! Layer objects with parameter state live one level up in `bitflow-graph`.

pub mod ait;
pub mod binary;
pub mod float;
pub mod params;

pub use bitflow_simd::kernels::SimdLevel;
pub use params::ConvParams;
