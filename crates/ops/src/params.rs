//! Shared operator parameter types.

use bitflow_simd::scheduler::{try_infer_conv, try_infer_pool, ConvGeometry, UnsupportedKernel};
use bitflow_tensor::Shape;
use serde::{Deserialize, Serialize};

/// Geometry parameters of a convolution or pooling operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvParams {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both spatial dimensions, as in VGG).
    pub stride: usize,
    /// Symmetric spatial zero-padding.
    pub pad: usize,
}

impl ConvParams {
    /// VGG-style 3×3 stride-1 pad-1 convolution.
    pub const VGG_CONV: ConvParams = ConvParams {
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };

    /// VGG-style 2×2 stride-2 max-pool.
    pub const VGG_POOL: ConvParams = ConvParams {
        kh: 2,
        kw: 2,
        stride: 2,
        pad: 0,
    };

    /// Creates parameters.
    pub const fn new(kh: usize, kw: usize, stride: usize, pad: usize) -> Self {
        Self {
            kh,
            kw,
            stride,
            pad,
        }
    }

    /// Output geometry of a convolution with `k` filters over `input`,
    /// with every unschedulable geometry reported as a typed error.
    pub fn try_conv_out(&self, input: Shape, k: usize) -> Result<ConvGeometry, UnsupportedKernel> {
        try_infer_conv(input.h, input.w, k, self.kh, self.kw, self.stride, self.pad)
    }

    /// Output geometry of a convolution with `k` filters over `input`
    /// (panicking wrapper over [`ConvParams::try_conv_out`]).
    ///
    /// # Panics
    /// On an unschedulable geometry.
    pub fn conv_out(&self, input: Shape, k: usize) -> ConvGeometry {
        match self.try_conv_out(input, k) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Output geometry of a pool over `input`, with every unschedulable
    /// geometry (including the unsupported padded-pool case) reported as a
    /// typed error.
    pub fn try_pool_out(&self, input: Shape) -> Result<ConvGeometry, UnsupportedKernel> {
        if self.pad != 0 {
            return Err(UnsupportedKernel::PoolPadding { pad: self.pad });
        }
        try_infer_pool(input.h, input.w, input.c, self.kh, self.kw, self.stride)
    }

    /// Output geometry of a pool over `input` (panicking wrapper over
    /// [`ConvParams::try_pool_out`]).
    ///
    /// # Panics
    /// On an unschedulable geometry or a non-zero pool padding.
    pub fn pool_out(&self, input: Shape) -> ConvGeometry {
        match self.try_pool_out(input) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_conv_keeps_spatial_dims() {
        let g = ConvParams::VGG_CONV.conv_out(Shape::hwc(56, 56, 128), 256);
        assert_eq!((g.out_h, g.out_w, g.out_c), (56, 56, 256));
    }

    #[test]
    fn vgg_pool_halves() {
        let g = ConvParams::VGG_POOL.pool_out(Shape::hwc(28, 28, 512));
        assert_eq!((g.out_h, g.out_w, g.out_c), (14, 14, 512));
    }

    #[test]
    fn odd_input_pool_floors() {
        let g = ConvParams::VGG_POOL.pool_out(Shape::hwc(7, 7, 512));
        assert_eq!((g.out_h, g.out_w), (3, 3));
    }

    #[test]
    fn fallible_geometry_reports_typed_errors() {
        // Padded pooling is unsupported — typed, not a panic.
        let padded_pool = ConvParams::new(2, 2, 2, 1);
        assert_eq!(
            padded_pool.try_pool_out(Shape::hwc(8, 8, 64)),
            Err(UnsupportedKernel::PoolPadding { pad: 1 })
        );
        // Oversized kernels come back as values too.
        let conv = ConvParams::new(5, 5, 1, 0);
        assert!(matches!(
            conv.try_conv_out(Shape::hwc(3, 3, 16), 8),
            Err(UnsupportedKernel::KernelExceedsInput { .. })
        ));
        assert!(conv.try_conv_out(Shape::hwc(5, 5, 16), 8).is_ok());
    }
}
