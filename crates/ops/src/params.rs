//! Shared operator parameter types.

use bitflow_simd::scheduler::{infer_conv, infer_pool, ConvGeometry};
use bitflow_tensor::Shape;
use serde::{Deserialize, Serialize};

/// Geometry parameters of a convolution or pooling operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvParams {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both spatial dimensions, as in VGG).
    pub stride: usize,
    /// Symmetric spatial zero-padding.
    pub pad: usize,
}

impl ConvParams {
    /// VGG-style 3×3 stride-1 pad-1 convolution.
    pub const VGG_CONV: ConvParams = ConvParams {
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };

    /// VGG-style 2×2 stride-2 max-pool.
    pub const VGG_POOL: ConvParams = ConvParams {
        kh: 2,
        kw: 2,
        stride: 2,
        pad: 0,
    };

    /// Creates parameters.
    pub const fn new(kh: usize, kw: usize, stride: usize, pad: usize) -> Self {
        Self {
            kh,
            kw,
            stride,
            pad,
        }
    }

    /// Output geometry of a convolution with `k` filters over `input`.
    pub fn conv_out(&self, input: Shape, k: usize) -> ConvGeometry {
        infer_conv(input.h, input.w, k, self.kh, self.kw, self.stride, self.pad)
    }

    /// Output geometry of a pool over `input`.
    pub fn pool_out(&self, input: Shape) -> ConvGeometry {
        assert_eq!(self.pad, 0, "pooling uses no padding in this engine");
        infer_pool(input.h, input.w, input.c, self.kh, self.kw, self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_conv_keeps_spatial_dims() {
        let g = ConvParams::VGG_CONV.conv_out(Shape::hwc(56, 56, 128), 256);
        assert_eq!((g.out_h, g.out_w, g.out_c), (56, 56, 256));
    }

    #[test]
    fn vgg_pool_halves() {
        let g = ConvParams::VGG_POOL.pool_out(Shape::hwc(28, 28, 512));
        assert_eq!((g.out_h, g.out_w, g.out_c), (14, 14, 512));
    }

    #[test]
    fn odd_input_pool_floors() {
        let g = ConvParams::VGG_POOL.pool_out(Shape::hwc(7, 7, 512));
        assert_eq!((g.out_h, g.out_w), (3, 3));
    }
}
