//! Property tests for the operator level: float reference agreement across
//! arbitrary geometry, and the binary/float equivalences the engine rests on.

use bitflow_ops::binary::{
    binarize_threshold_padded, binary_conv_im2col, binary_max_pool, pressed_conv,
    pressed_conv_sign_into, BnFold, SignThresholds,
};
use bitflow_ops::float::{conv_direct, conv_im2col, max_pool};
use bitflow_ops::{ConvParams, SimdLevel};
use bitflow_tensor::{BitFilterBank, BitTensor, FilterShape, Layout, Shape, Tensor};
use proptest::prelude::*;

fn pm1_tensor(seed: u64, h: usize, w: usize, c: usize) -> Tensor {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(Shape::hwc(h, w, c), Layout::Nhwc, |_, _, _, _| {
        if rng.gen::<bool>() {
            1.0
        } else {
            -1.0
        }
    })
}

fn pm1_weights(seed: u64, f: FilterShape) -> Vec<f32> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..f.numel())
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect()
}

/// −1-padded float reference convolution.
fn reference_conv(
    input: &Tensor,
    weights: &[f32],
    f: FilterShape,
    stride: usize,
    pad: usize,
) -> Tensor {
    let s = input.shape();
    let padded = Tensor::from_fn(
        Shape::hwc(s.h + 2 * pad, s.w + 2 * pad, s.c),
        Layout::Nhwc,
        |_, y, x, c| {
            if y < pad || y >= s.h + pad || x < pad || x >= s.w + pad {
                -1.0
            } else {
                input.at(0, y - pad, x - pad, c)
            }
        },
    );
    conv_direct(&padded, weights, f, ConvParams::new(f.kh, f.kw, stride, 0))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Float im2col conv equals direct conv for arbitrary kernel/stride/pad.
    #[test]
    fn float_im2col_matches_direct(
        h in 3usize..8,
        w in 3usize..8,
        c in 1usize..8,
        k in 1usize..5,
        kh in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        prop_assume!(kh <= h + 2 * pad && kh <= w + 2 * pad);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor::random(Shape::hwc(h, w, c), Layout::Nhwc, &mut rng);
        let f = FilterShape::new(k, kh, kh, c);
        let weights: Vec<f32> = (0..f.numel()).map(|i| ((i % 17) as f32 - 8.0) / 8.0).collect();
        let params = ConvParams::new(kh, kh, stride, pad);
        let a = conv_direct(&input, &weights, f, params);
        let b = conv_im2col(&input, &weights, f, params);
        prop_assert!(a.max_abs_diff(&b) < 1e-3);
    }

    /// PressedConv equals the −1-padded float reference for any geometry
    /// the engine can produce, at every level.
    #[test]
    fn pressed_conv_equals_reference(
        h in 3usize..7,
        w in 3usize..7,
        c_idx in 0usize..4,
        k in 1usize..5,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        let c = [3usize, 33, 64, 100][c_idx];
        let input = pm1_tensor(seed, h, w, c);
        let f = FilterShape::new(k, 3, 3, c);
        prop_assume!(3 <= h + 2 * pad && 3 <= w + 2 * pad);
        let weights = pm1_weights(seed ^ 1, f);
        let want = reference_conv(&input, &weights, f, stride, pad);
        let pressed = BitTensor::from_tensor_padded(&input, pad);
        let bank = BitFilterBank::from_floats(&weights, f);
        for level in [SimdLevel::Unvectorized, SimdLevel::Scalar, SimdLevel::Avx512] {
            let got = pressed_conv(level, &pressed, &bank, stride);
            prop_assert_eq!(got.max_abs_diff(&want), 0.0, "{}", level);
        }
    }

    /// The im2col binary conv agrees with PressedConv (two algorithms, one
    /// function).
    #[test]
    fn binary_algorithms_agree(
        h in 3usize..7,
        w in 3usize..7,
        c in 1usize..50,
        k in 1usize..4,
        pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        let input = pm1_tensor(seed, h, w, c);
        let f = FilterShape::new(k, 3, 3, c);
        prop_assume!(3 <= h + 2 * pad && 3 <= w + 2 * pad);
        let weights = pm1_weights(seed ^ 2, f);
        let params = ConvParams::new(3, 3, 1, pad);
        let a = binary_conv_im2col(SimdLevel::Scalar, &input, &weights, f, params);
        let pressed = BitTensor::from_tensor_padded(&input, pad);
        let bank = BitFilterBank::from_floats(&weights, f);
        let b = pressed_conv(SimdLevel::Avx2, &pressed, &bank, 1);
        prop_assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    /// Binary OR-pool equals float max-pool on ±1 data for any window.
    #[test]
    fn binary_pool_equals_float(
        h in 2usize..9,
        w in 2usize..9,
        c in 1usize..70,
        win in 1usize..4,
        seed in any::<u64>(),
    ) {
        prop_assume!(win <= h && win <= w);
        let t = pm1_tensor(seed, h, w, c);
        let want = max_pool(&t, ConvParams::new(win, win, win, 0));
        let pressed = BitTensor::from_tensor(&t);
        let got = binary_max_pool(SimdLevel::Avx512, &pressed, win, win, win).to_tensor();
        prop_assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    /// Fused conv+sign equals counts-then-threshold, including flipped
    /// channels and padded outputs.
    #[test]
    fn fused_conv_sign_equals_two_pass(
        h in 3usize..6,
        w in 3usize..6,
        c_idx in 0usize..3,
        k in 1usize..70,
        out_pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        let c = [16usize, 64, 96][c_idx];
        let input = pm1_tensor(seed, h, w, c);
        let f = FilterShape::new(k, 3, 3, c);
        let weights = pm1_weights(seed ^ 3, f);
        let pressed = BitTensor::from_tensor_padded(&input, 1);
        let bank = BitFilterBank::from_floats(&weights, f);
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 4);
        let thresholds: Vec<f32> = (0..k).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
        let flip: Vec<bool> = (0..k).map(|_| rng.gen()).collect();

        let counts = pressed_conv(SimdLevel::Avx512, &pressed, &bank, 1);
        let want = binarize_threshold_padded(&counts, &thresholds, &flip, out_pad);

        let st = SignThresholds::from_fold(&BnFold { thresholds, flip }, 3 * 3 * c);
        let mut got = BitTensor::zeros(h + 2 * out_pad, w + 2 * out_pad, k);
        pressed_conv_sign_into(SimdLevel::Avx512, &pressed, &bank, 1, &st, &mut got, out_pad);
        prop_assert_eq!(got.words(), want.words());
        prop_assert!(got.tail_is_zero());
    }

    /// AIT formulas: intrinsic ≥ im2col-achievable always; fraction in (0,1].
    #[test]
    fn ait_ordering(
        h in 4usize..64,
        c in 1usize..512,
        k in 1usize..512,
    ) {
        use bitflow_ops::ait::ConvAit;
        prop_assume!(h >= 3);
        let a = ConvAit::full_precision(Shape::hwc(h, h, c), FilterShape::new(k, 3, 3, c));
        prop_assert!(a.im2col() <= a.intrinsic());
        let f = a.im2col_fraction();
        prop_assert!(f > 0.0 && f <= 1.0);
    }
}
