//! Seed-deterministic chaos injection for the serving runtime.
//!
//! Chaos decisions are pure functions of `(seed, stream, index)` hashed
//! with splitmix64 — no RNG state, no clock. Re-running a soak with the
//! same seed injects the same faults at the same requests, which is what
//! makes "the chaos soak found a bug" a reproducible statement instead of
//! an anecdote.
//!
//! Two decision streams:
//!
//! * **Per-(request, operator)** — decided inside the engine via the
//!   model's fault hook: an operator either sleeps ([`ChaosConfig::slow`])
//!   or panics. The hook keys its decisions on the engine's per-request
//!   tag ([`bitflow_graph::enter_infer_tag`]), which the serving worker
//!   sets to the request id — including inside coalesced micro-batches,
//!   where inference runs on rayon threads a serve-side thread-local
//!   could never reach. Untagged inference (oracles, tests, direct
//!   `try_infer` callers) is never chaos'd.
//! * **Per-pop** — decided by the worker around each queue pop: a stall
//!   (sleep before processing, simulating a descheduled consumer) or a
//!   worker kill (panic *after* the popped batch resolves, so no request
//!   is ever lost — the kill exercises the watchdog restart path, not
//!   response delivery).
//!
//! Configured from `BITFLOW_CHAOS` (see [`ChaosConfig::from_env`]).

use std::sync::Arc;
use std::time::Duration;

use bitflow_graph::{FaultHook, UNTAGGED};

/// Probability scale: decisions are `hash % SCALE < ppm`.
const SCALE: u64 = 1_000_000;

/// Domain separators so the op stream, the pop stream, and the three
/// network streams of the same seed are independent.
const DOMAIN_OP: u64 = 0x6f70; // "op"
const DOMAIN_POP: u64 = 0x706f70; // "pop"
const DOMAIN_CONN: u64 = 0x636f_6e6e; // "conn"
const DOMAIN_READ: u64 = 0x7265_6164; // "read"
const DOMAIN_WRITE: u64 = 0x7772_6974; // "writ"

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn roll(seed: u64, domain: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed ^ domain) ^ a) ^ b) % SCALE
}

/// Fault-injection rates (parts per million) and magnitudes. `Default`
/// is all-zero: chaos must be asked for.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for every decision; same seed → same faults.
    pub seed: u64,
    /// Probability (ppm) that an operator invocation sleeps for
    /// [`ChaosConfig::slow`] before running.
    pub slow_ppm: u32,
    /// Probability (ppm) that an operator invocation panics.
    pub panic_ppm: u32,
    /// Probability (ppm) that a worker stalls for [`ChaosConfig::stall`]
    /// after popping a request, before processing it.
    pub stall_ppm: u32,
    /// Probability (ppm) that a worker panics out of its loop after a
    /// popped request has resolved (exercises the watchdog restart).
    pub kill_ppm: u32,
    /// Probability (ppm) that the network front-end kills an accepted
    /// connection outright instead of serving it.
    pub conn_kill_ppm: u32,
    /// Probability (ppm) that one network read is preceded by a stall of
    /// [`ChaosConfig::stall`] (simulates a slow client / stalled socket).
    pub read_stall_ppm: u32,
    /// Probability (ppm) that a network response is truncated mid-write
    /// and the connection closed (simulates a dying peer or path).
    pub trunc_write_ppm: u32,
    /// Allocation-failure injection: every Nth *accounted* reservation the
    /// resource governor grants fails instead (the Nth, 2Nth, ...), as if
    /// the allocator refused the bytes. 0 = never. A counter, not a ppm —
    /// the reservation stream is ordered, so "the Nth reservation fails"
    /// replays exactly under the same request sequence.
    pub alloc_fail_nth: u64,
    /// Sleep injected by a slow-operator hit.
    pub slow: Duration,
    /// Sleep injected by a queue-stall hit.
    pub stall: Duration,
}

impl ChaosConfig {
    /// Default magnitudes for env-configured chaos.
    const DEFAULT_SLOW: Duration = Duration::from_micros(200);
    const DEFAULT_STALL: Duration = Duration::from_micros(500);

    /// Chaos with the given seed and the default soak mix: 2% slow ops,
    /// 0.5% panicking ops, 0.2% queue stalls, 0.1% worker kills, plus the
    /// network mix (1% connection kills, 2% read stalls, 1% truncated
    /// writes — the network streams only fire under a `NetServer`).
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            slow_ppm: 20_000,
            panic_ppm: 5_000,
            stall_ppm: 2_000,
            kill_ppm: 1_000,
            conn_kill_ppm: 10_000,
            read_stall_ppm: 20_000,
            trunc_write_ppm: 10_000,
            // Allocation failures are not part of the default mix: they
            // only make sense against a governor, so the exhaustion soak
            // asks for them explicitly.
            alloc_fail_nth: 0,
            slow: Self::DEFAULT_SLOW,
            stall: Self::DEFAULT_STALL,
        }
    }

    /// Parses `BITFLOW_CHAOS`. Unset or empty → `None` (no chaos).
    ///
    /// Format: `seed[:slow_ppm[:panic_ppm[:stall_ppm[:kill_ppm[:conn_kill_ppm[:read_stall_ppm[:trunc_write_ppm[:alloc_fail_nth]]]]]]]]`
    /// — a bare seed uses the [`ChaosConfig::with_seed`] default mix;
    /// trailing fields override individual rates. The last field is a
    /// count, not a ppm: every Nth accounted reservation fails (0, the
    /// default, never injects). Malformed values fall back to the
    /// defaults rather than erroring: chaos configuration must never take
    /// the server down.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("BITFLOW_CHAOS").ok()?;
        Self::parse(&raw)
    }

    /// [`ChaosConfig::from_env`]'s parser, split out for tests.
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        let raw = raw.trim();
        if raw.is_empty() || raw == "0" {
            return None;
        }
        let mut parts = raw.split(':');
        let seed = parts.next()?.trim().parse::<u64>().ok()?;
        let mut cfg = Self::with_seed(seed);
        let rates = [
            &mut cfg.slow_ppm,
            &mut cfg.panic_ppm,
            &mut cfg.stall_ppm,
            &mut cfg.kill_ppm,
            &mut cfg.conn_kill_ppm,
            &mut cfg.read_stall_ppm,
            &mut cfg.trunc_write_ppm,
        ];
        for slot in rates {
            match parts.next() {
                Some(v) => {
                    if let Ok(ppm) = v.trim().parse::<u32>() {
                        *slot = ppm.min(SCALE as u32);
                    }
                }
                None => break,
            }
        }
        // The allocation-failure field is a count (fail every Nth
        // reservation), not a ppm, so it is parsed outside the rate loop.
        if let Some(v) = parts.next() {
            if let Ok(nth) = v.trim().parse::<u64>() {
                cfg.alloc_fail_nth = nth;
            }
        }
        Some(cfg)
    }

    /// Whether any injection can fire.
    #[must_use]
    pub fn active(&self) -> bool {
        self.slow_ppm > 0
            || self.panic_ppm > 0
            || self.stall_ppm > 0
            || self.kill_ppm > 0
            || self.conn_kill_ppm > 0
            || self.read_stall_ppm > 0
            || self.trunc_write_ppm > 0
            || self.alloc_fail_nth > 0
    }

    /// Whether accounted reservation number `reservation` (1-based, in
    /// grant order) fails with an injected allocation error. Every Nth
    /// reservation fails: deterministic under a replayed request
    /// sequence, no hashing needed — the stream is already ordered.
    #[must_use]
    pub fn alloc_fail_hit(&self, reservation: u64) -> bool {
        self.alloc_fail_nth != 0 && reservation.is_multiple_of(self.alloc_fail_nth)
    }

    /// The (request, operator) decision: panic wins the roll's low range,
    /// slow the next, so the two rates never overlap.
    fn op_roll(&self, request: u64, op: u64) -> OpFault {
        let r = roll(self.seed, DOMAIN_OP, request, op);
        if r < u64::from(self.panic_ppm) {
            OpFault::Panic
        } else if r < u64::from(self.panic_ppm) + u64::from(self.slow_ppm) {
            OpFault::Slow
        } else {
            OpFault::None
        }
    }

    /// Whether pop number `pop` on worker `worker` stalls before
    /// processing.
    pub(crate) fn stall_hit(&self, worker: u64, pop: u64) -> bool {
        roll(self.seed, DOMAIN_POP, worker, pop) < u64::from(self.stall_ppm)
    }

    /// Whether pop number `pop` on worker `worker` kills the worker loop
    /// after the request resolves. Drawn from the same roll as the stall
    /// (disjoint range above it).
    pub(crate) fn kill_hit(&self, worker: u64, pop: u64) -> bool {
        let r = roll(self.seed, DOMAIN_POP, worker, pop);
        r >= u64::from(self.stall_ppm) && r < u64::from(self.stall_ppm) + u64::from(self.kill_ppm)
    }

    /// Whether accepted connection number `conn` is killed outright by the
    /// network front-end instead of being served.
    #[must_use]
    pub fn conn_kill_hit(&self, conn: u64) -> bool {
        roll(self.seed, DOMAIN_CONN, conn, 0) < u64::from(self.conn_kill_ppm)
    }

    /// Whether read number `read` on connection `conn` stalls for
    /// [`ChaosConfig::stall`] before issuing the socket read.
    #[must_use]
    pub fn read_stall_hit(&self, conn: u64, read: u64) -> bool {
        roll(self.seed, DOMAIN_READ, conn, read) < u64::from(self.read_stall_ppm)
    }

    /// Whether the response on connection `conn` for request `req` is
    /// truncated mid-write and the connection closed.
    #[must_use]
    pub fn trunc_write_hit(&self, conn: u64, req: u64) -> bool {
        roll(self.seed, DOMAIN_WRITE, conn, req) < u64::from(self.trunc_write_ppm)
    }
}

/// What the op-stream roll decided for one operator invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpFault {
    None,
    Slow,
    Panic,
}

/// Builds the engine fault hook for `cfg`. Installed once per model via
/// [`bitflow_graph::CompiledModel::install_fault_hook`]; fires at every
/// operator entry but stands down unless the inference carries a request
/// tag (the serving worker tags both single requests and every item of a
/// coalesced micro-batch with its request id).
pub(crate) fn fault_hook(cfg: ChaosConfig) -> FaultHook {
    Arc::new(move |op_index, op_name, tag| {
        if tag == UNTAGGED {
            return;
        }
        match cfg.op_roll(tag, op_index as u64) {
            OpFault::None => {}
            OpFault::Slow => std::thread::sleep(cfg.slow),
            OpFault::Panic => panic!("chaos: injected panic in `{op_name}` (request {tag})"),
        }
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = ChaosConfig::with_seed(7);
        let b = ChaosConfig::with_seed(8);
        let rolls_a: Vec<OpFault> = (0..1000).map(|r| a.op_roll(r, 3)).collect();
        let rolls_a2: Vec<OpFault> = (0..1000).map(|r| a.op_roll(r, 3)).collect();
        let rolls_b: Vec<OpFault> = (0..1000).map(|r| b.op_roll(r, 3)).collect();
        assert_eq!(rolls_a, rolls_a2, "same seed must replay identically");
        assert_ne!(rolls_a, rolls_b, "different seeds must diverge");
    }

    #[test]
    fn rates_land_near_target() {
        let cfg = ChaosConfig {
            seed: 42,
            slow_ppm: 100_000, // 10%
            panic_ppm: 50_000, // 5%
            ..ChaosConfig::default()
        };
        let n = 100_000u64;
        let mut slow = 0u64;
        let mut panics = 0u64;
        for r in 0..n {
            match cfg.op_roll(r, 0) {
                OpFault::Slow => slow += 1,
                OpFault::Panic => panics += 1,
                OpFault::None => {}
            }
        }
        let slow_pct = slow as f64 / n as f64;
        let panic_pct = panics as f64 / n as f64;
        assert!((0.08..0.12).contains(&slow_pct), "slow rate {slow_pct}");
        assert!((0.04..0.06).contains(&panic_pct), "panic rate {panic_pct}");
    }

    #[test]
    fn parse_forms() {
        assert_eq!(ChaosConfig::parse(""), None);
        assert_eq!(ChaosConfig::parse("0"), None);
        assert_eq!(ChaosConfig::parse("garbage"), None);
        let bare = ChaosConfig::parse("42").unwrap();
        assert_eq!(bare, ChaosConfig::with_seed(42));
        let full = ChaosConfig::parse("7:1000:2000:3000:4000").unwrap();
        assert_eq!(
            (
                full.seed,
                full.slow_ppm,
                full.panic_ppm,
                full.stall_ppm,
                full.kill_ppm
            ),
            (7, 1000, 2000, 3000, 4000)
        );
        // Partial override keeps defaults for the rest.
        let partial = ChaosConfig::parse("7:0").unwrap();
        assert_eq!(partial.slow_ppm, 0);
        assert_eq!(partial.panic_ppm, ChaosConfig::with_seed(7).panic_ppm);
        assert_eq!(
            partial.conn_kill_ppm,
            ChaosConfig::with_seed(7).conn_kill_ppm
        );
        // Extended form overrides the network rates too.
        let net = ChaosConfig::parse("7:1:2:3:4:5:6:8").unwrap();
        assert_eq!(
            (net.conn_kill_ppm, net.read_stall_ppm, net.trunc_write_ppm),
            (5, 6, 8)
        );
        assert_eq!(net.alloc_fail_nth, 0, "alloc failures default off");
        // The 9th field is the allocation-failure count.
        let alloc = ChaosConfig::parse("7:1:2:3:4:5:6:8:16").unwrap();
        assert_eq!(alloc.alloc_fail_nth, 16);
        assert!(alloc.active());
    }

    #[test]
    fn alloc_fail_fires_every_nth_reservation() {
        let cfg = ChaosConfig {
            seed: 1,
            alloc_fail_nth: 5,
            ..ChaosConfig::default()
        };
        let hits: Vec<u64> = (1..=20).filter(|&r| cfg.alloc_fail_hit(r)).collect();
        assert_eq!(hits, vec![5, 10, 15, 20]);
        let off = ChaosConfig::default();
        assert!((1..=1000).all(|r| !off.alloc_fail_hit(r)));
    }

    #[test]
    fn net_streams_are_deterministic_and_independent() {
        let cfg = ChaosConfig {
            seed: 11,
            conn_kill_ppm: 200_000,
            read_stall_ppm: 200_000,
            trunc_write_ppm: 200_000,
            ..ChaosConfig::default()
        };
        let kills: Vec<bool> = (0..1000).map(|c| cfg.conn_kill_hit(c)).collect();
        let kills2: Vec<bool> = (0..1000).map(|c| cfg.conn_kill_hit(c)).collect();
        assert_eq!(kills, kills2, "same seed must replay identically");
        assert!(kills.iter().any(|&k| k), "20% kill rate must fire in 1000");
        assert!(
            !kills.iter().all(|&k| k),
            "20% kill rate must not always fire"
        );
        // The three streams are decided independently: over many indices
        // they must not be identical.
        let stalls: Vec<bool> = (0..1000).map(|c| cfg.read_stall_hit(c, 0)).collect();
        let truncs: Vec<bool> = (0..1000).map(|c| cfg.trunc_write_hit(c, 0)).collect();
        assert_ne!(kills, stalls);
        assert_ne!(stalls, truncs);
    }

    #[test]
    fn stall_and_kill_ranges_are_disjoint() {
        let cfg = ChaosConfig {
            seed: 3,
            stall_ppm: 200_000,
            kill_ppm: 200_000,
            ..ChaosConfig::default()
        };
        for pop in 0..10_000 {
            assert!(
                !(cfg.stall_hit(0, pop) && cfg.kill_hit(0, pop)),
                "pop {pop} hit both stall and kill"
            );
        }
    }
}
