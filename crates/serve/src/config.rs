//! Serving-runtime configuration: pool size, queue bound, default
//! deadline, shedding policy, micro-batching, circuit breaker, chaos,
//! request tracing.

use std::sync::Arc;
use std::time::Duration;

use bitflow_telemetry::FlightRecorder;

use crate::chaos::ChaosConfig;
use crate::govern::GovernorConfig;

/// What `submit` does when the admission queue is at capacity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Reject the new submission with
    /// [`bitflow_graph::RejectReason::QueueFull`]. Strict FIFO fairness:
    /// admitted work is never dropped.
    #[default]
    RejectNewest,
    /// Before rejecting, evict one queued request that is already dead —
    /// deadline passed or caller-cancelled — resolve it with its typed
    /// error, and admit the new request in its place. Under deadline'd
    /// load this converts head-of-line blocking by doomed requests into
    /// useful admissions; with no dead entry it degrades to
    /// [`ShedPolicy::RejectNewest`].
    DeadlineAware,
}

/// Circuit breaker: after `fault_threshold` *consecutive* worker faults
/// (panics isolated from inference), the server sheds all new submissions
/// for `cooldown` while queued work keeps draining.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive faults that trip the breaker.
    pub fault_threshold: u32,
    /// How long admissions stay shed once tripped.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            fault_threshold: 5,
            cooldown: Duration::from_millis(500),
        }
    }
}

/// Full server configuration. `Default` is a small sane pool; see
/// [`ServerConfig::from_env`] for the environment knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (each owns one inference context). Clamped to ≥ 1.
    pub workers: usize,
    /// Admission-queue bound. Clamped to ≥ 1.
    pub queue_capacity: usize,
    /// Deadline applied to requests submitted without an explicit one.
    /// `None`: such requests never expire.
    pub default_deadline: Option<Duration>,
    /// Behaviour at queue capacity.
    pub shed_policy: ShedPolicy,
    /// Largest micro-batch a worker may coalesce into one engine call.
    /// `1` disables batching (every request is served individually).
    /// Clamped to ≥ 1.
    pub max_batch: usize,
    /// How long a worker with an under-full batch may wait for more
    /// compatible requests to arrive before serving what it has.
    /// `Duration::ZERO` (the default) never waits: under calm traffic a
    /// lone request is served immediately and p50 latency is unchanged;
    /// batches then only form when the queue is already deep.
    pub coalesce_window: Duration,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Memory budgets for the resource governor
    /// ([`crate::ResourceGovernor`]). The default is unmetered in both
    /// scopes: usage is still accounted (gauges stay truthful) but
    /// nothing is refused for it.
    pub govern: GovernorConfig,
    /// Fault injection; `None` serves faithfully.
    pub chaos: Option<ChaosConfig>,
    /// Request-lifecycle tracing sink. `None` (the default) disables
    /// tracing entirely: no [`bitflow_telemetry::TraceBuilder`] is ever
    /// built and the submit path stays allocation-free. With a recorder,
    /// every request is traced (admit/queue/batch/exec stages plus the
    /// engine's operator spans) and finished traces are offered to the
    /// recorder's tail-sampling policy.
    pub recorder: Option<Arc<FlightRecorder>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
            shed_policy: ShedPolicy::default(),
            max_batch: 8,
            coalesce_window: Duration::ZERO,
            breaker: BreakerConfig::default(),
            govern: GovernorConfig::default(),
            chaos: None,
            recorder: None,
        }
    }
}

impl ServerConfig {
    /// Defaults overridden by the environment:
    ///
    /// * `BITFLOW_SERVE_WORKERS` — pool size.
    /// * `BITFLOW_SERVE_QUEUE` — admission-queue bound.
    /// * `BITFLOW_SERVE_DEADLINE_MS` — default per-request deadline in
    ///   milliseconds; `0` means no default deadline.
    /// * `BITFLOW_SERVE_MAX_BATCH` — largest coalesced micro-batch;
    ///   `1` disables batching.
    /// * `BITFLOW_SERVE_COALESCE_US` — max wait for an under-full batch,
    ///   microseconds; `0` (default) never waits.
    /// * `BITFLOW_MEM_BUDGET` — global byte budget for the resource
    ///   governor; `0` (default) leaves it unmetered.
    /// * `BITFLOW_MEM_TENANT_BUDGET` — per-tenant byte budget; `0`
    ///   (default) unmetered.
    /// * `BITFLOW_CHAOS` — fault injection
    ///   (`seed[:slow_ppm[:panic_ppm[:stall_ppm[:kill_ppm]]]]`).
    /// * `BITFLOW_TRACE` (with `BITFLOW_TRACE_SAMPLE` /
    ///   `BITFLOW_TRACE_BYTES`) — request tracing into a bounded flight
    ///   recorder (see [`FlightRecorder::from_env`]).
    ///
    /// Malformed values are ignored (the default stands): configuration
    /// must never take the server down.
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(v) = env_u64("BITFLOW_SERVE_WORKERS") {
            cfg.workers = v as usize;
        }
        if let Some(v) = env_u64("BITFLOW_SERVE_QUEUE") {
            cfg.queue_capacity = v as usize;
        }
        if let Some(v) = env_u64("BITFLOW_SERVE_DEADLINE_MS") {
            cfg.default_deadline = (v > 0).then(|| Duration::from_millis(v));
        }
        if let Some(v) = env_u64("BITFLOW_SERVE_MAX_BATCH") {
            cfg.max_batch = (v as usize).max(1);
        }
        if let Some(v) = env_u64("BITFLOW_SERVE_COALESCE_US") {
            cfg.coalesce_window = Duration::from_micros(v);
        }
        if let Some(v) = env_u64("BITFLOW_MEM_BUDGET") {
            cfg.govern.global_budget = (v > 0).then_some(v);
        }
        if let Some(v) = env_u64("BITFLOW_MEM_TENANT_BUDGET") {
            cfg.govern.tenant_budget = (v > 0).then_some(v);
        }
        cfg.chaos = ChaosConfig::from_env();
        cfg.recorder = FlightRecorder::from_env();
        cfg
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ServerConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.queue_capacity >= 1);
        assert!(cfg.default_deadline.is_none());
        assert_eq!(cfg.shed_policy, ShedPolicy::RejectNewest);
        assert!(cfg.chaos.is_none());
        assert_eq!(cfg.govern, GovernorConfig::default(), "unmetered default");
        assert!(cfg.breaker.fault_threshold >= 1);
        assert!(cfg.max_batch >= 1);
        assert_eq!(
            cfg.coalesce_window,
            Duration::ZERO,
            "calm-traffic latency must not regress by default"
        );
    }
}
