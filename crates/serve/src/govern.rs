//! Resource governance: byte budgets with RAII leases, and a brownout
//! state machine that degrades service *before* the allocator fails.
//!
//! Three consumers are accounted: registered model weights (charged for
//! the server's lifetime), per-worker inference contexts (charged while
//! cached), and admitted request payloads (charged admission → resolve).
//! Each charge is a [`MemoryLease`] acquired from the
//! [`ResourceGovernor`]; dropping the lease releases the bytes, so no
//! code path can leak budget — the same RAII discipline the admission
//! quota already uses.
//!
//! Budgets come in two scopes. The **global** budget bounds the sum of
//! all accounted bytes; the **per-tenant** budget bounds each registered
//! name independently, so one tenant's giant payloads cannot starve the
//! others even when the global budget still has room. A reservation that
//! would exceed either scope is refused with
//! [`RejectReason::MemoryPressure`] — a typed, retryable rejection, not
//! an abort. Weight registrations are *forced* (the server must be able
//! to start): they always charge, and overcommit simply drives the
//! pressure ratio past 1.0, which the brownout machine then answers.
//!
//! ## Brownout
//!
//! ```text
//!            pressure ≥ 75% | queue ≥ 75% | miss-EWMA ≥ 50%
//!   Normal ────────────────────────────────────────────────▶ Brownout
//!      ▲                                                        │
//!      │ calm × 3                                     escalation│
//!      │ (one level per                                         ▼
//!      │  3 calm evals)          pressure ≥ 95% | miss-EWMA ≥ 90%
//!   Brownout ◀──────────────────────────────────────────────▶ Shed
//! ```
//!
//! [`ResourceGovernor::evaluate`] folds three signals — the global
//! memory-pressure ratio, the admission-queue depth ratio, and an EWMA
//! of deadline misses — into a [`DegradationState`]. Escalation is
//! immediate; de-escalation steps down one level only after three
//! consecutive calm evaluations (hysteresis, so the state cannot flap on
//! a noisy boundary). Queue depth escalates at most to `Brownout`: a
//! deep queue without memory pressure or deadline misses is ordinary
//! backpressure, already owned by the bounded queue's shed policy.
//! In `Brownout` the server sheds [`Priority::Low`]
//! submissions and shrinks its coalesce window; in `Shed` only
//! [`Priority::High`] tenants are admitted. The current state is
//! mirrored to every tenant's `bitflow_degradation_state` gauge.
//!
//! Chaos: when [`crate::ChaosConfig::alloc_fail_nth`] is non-zero, every
//! Nth *fallible* reservation fails as if the allocator refused it —
//! the deterministic domain `tests/exhaustion_soak.rs` uses to prove
//! the conservation law survives injected allocation failure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use bitflow_graph::{BitFlowError, RejectReason};
use bitflow_telemetry::ServeGauges;

/// Scheduling class of a tenant under degradation: who is shed first
/// when the governor browns out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Shed first: rejected in `Brownout` and `Shed`.
    Low,
    /// Shed in `Shed` only.
    #[default]
    Normal,
    /// Admitted in every state — the capacity freed by shedding the
    /// other classes exists for this one.
    High,
}

/// The governor's service level, exported as the
/// `bitflow_degradation_state` gauge (`0`/`1`/`2`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationState {
    /// Full service.
    #[default]
    Normal,
    /// Sustained pressure: low-priority work is shed, coalesce windows
    /// shrink, debug endpoints go dark.
    Brownout,
    /// Exhaustion: only high-priority tenants are admitted.
    Shed,
}

impl DegradationState {
    /// Gauge encoding (`Normal = 0`, `Brownout = 1`, `Shed = 2`).
    #[must_use]
    pub fn as_u64(self) -> u64 {
        match self {
            Self::Normal => 0,
            Self::Brownout => 1,
            Self::Shed => 2,
        }
    }

    fn from_u64(v: u64) -> Self {
        match v {
            0 => Self::Normal,
            1 => Self::Brownout,
            _ => Self::Shed,
        }
    }

    /// Human label for health endpoints and logs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Normal => "normal",
            Self::Brownout => "brownout",
            Self::Shed => "shed",
        }
    }
}

/// Byte-budget configuration. `None` leaves that scope unmetered; the
/// governor still accounts usage (the `bitflow_mem_*` gauges stay
/// truthful) but never refuses for it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Bound on the sum of all accounted bytes across tenants.
    pub global_budget: Option<u64>,
    /// Bound on each tenant's accounted bytes, applied uniformly.
    pub tenant_budget: Option<u64>,
}

/// Escalation thresholds, in permille of the relevant capacity.
const BROWNOUT_PRESSURE: u64 = 750;
const SHED_PRESSURE: u64 = 950;
const BROWNOUT_MISS: u64 = 500;
const SHED_MISS: u64 = 900;
/// De-escalation: every signal must sit below its brownout threshold
/// minus this margin...
const CALM_MARGIN: u64 = 150;
/// ...for this many consecutive evaluations before the state steps down
/// one level.
const RECOVERY_EVALS: u64 = 3;

/// Deadline-miss EWMA weight: `new = old + (sample - old) / 8`, sample
/// ∈ {0, 1000}.
const MISS_EWMA_SHIFT: u32 = 3;

/// Queues smaller than this contribute no pressure signal: a queue of a
/// handful of slots flips from empty to full on one submission, so its
/// depth ratio says nothing about *sustained* backlog — and the
/// `QueueFull` shed policy already owns the hard-full case.
const MIN_QUEUE_SIGNAL_CAPACITY: usize = 16;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One tenant's accounted-byte ledger. Created by
/// [`ResourceGovernor::tenant`] and pinned to the tenant's
/// [`ServeGauges`], so `bitflow_mem_used_bytes` is per served name.
pub struct TenantAccount {
    name: String,
    used: AtomicU64,
    gauges: Arc<ServeGauges>,
}

impl TenantAccount {
    /// The tenant this account meters.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This tenant's accounted bytes right now.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for TenantAccount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantAccount")
            .field("name", &self.name)
            .field("used", &self.used())
            .finish_non_exhaustive()
    }
}

/// RAII charge against the governor's budgets. Dropping it returns the
/// bytes to both scopes and decrements the tenant's gauges — whatever
/// path drops it (served, shed, cancelled, panicked worker unwinding a
/// request).
pub struct MemoryLease {
    gov: Arc<ResourceGovernor>,
    tenant: Arc<TenantAccount>,
    bytes: u64,
}

impl MemoryLease {
    /// The bytes this lease holds.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl std::fmt::Debug for MemoryLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryLease")
            .field("tenant", &self.tenant.name)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

impl Drop for MemoryLease {
    fn drop(&mut self) {
        self.gov
            .global_used
            .fetch_sub(self.bytes, Ordering::Relaxed);
        self.tenant.used.fetch_sub(self.bytes, Ordering::Relaxed);
        self.tenant.gauges.mem_released(self.bytes);
    }
}

/// Adds `bytes` to `counter` only if the sum stays within `budget`.
fn try_charge(counter: &AtomicU64, budget: u64, bytes: u64) -> bool {
    let mut cur = counter.load(Ordering::Relaxed);
    loop {
        let Some(next) = cur.checked_add(bytes) else {
            return false;
        };
        if next > budget {
            return false;
        }
        match counter.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
}

/// The byte-budget authority and brownout state machine shared by the
/// serving runtime and its network front-end.
pub struct ResourceGovernor {
    global_budget: u64,
    tenant_budget: u64,
    global_used: AtomicU64,
    tenants: Mutex<Vec<Arc<TenantAccount>>>,
    /// Fallible reservations granted or refused so far — the chaos
    /// domain's deterministic clock.
    reservations: AtomicU64,
    alloc_fail_nth: u64,
    state: AtomicU64,
    calm_evals: AtomicU64,
    /// Deadline-miss EWMA, permille (0 = no misses, 1000 = every
    /// resolution missed).
    miss_ewma: AtomicU64,
}

impl std::fmt::Debug for ResourceGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceGovernor")
            .field("global_budget", &self.global_budget)
            .field("tenant_budget", &self.tenant_budget)
            .field("global_used", &self.global_used.load(Ordering::Relaxed))
            .field("state", &self.state())
            .finish_non_exhaustive()
    }
}

impl ResourceGovernor {
    /// A governor with the given budgets; `alloc_fail_nth` wires the
    /// chaos allocation-failure domain (0 = never inject).
    #[must_use]
    pub fn new(config: GovernorConfig, alloc_fail_nth: u64) -> Arc<Self> {
        Arc::new(Self {
            global_budget: config.global_budget.unwrap_or(u64::MAX),
            tenant_budget: config.tenant_budget.unwrap_or(u64::MAX),
            global_used: AtomicU64::new(0),
            tenants: Mutex::new(Vec::new()),
            reservations: AtomicU64::new(0),
            alloc_fail_nth,
            state: AtomicU64::new(0),
            calm_evals: AtomicU64::new(0),
            miss_ewma: AtomicU64::new(0),
        })
    }

    /// Find-or-create the account metering `name`, pinning it to that
    /// tenant's gauges (also sets the tenant's `bitflow_mem_budget_bytes`
    /// gauge — 0 when both scopes are unmetered).
    pub fn tenant(&self, name: &str, gauges: &Arc<ServeGauges>) -> Arc<TenantAccount> {
        let mut tenants = lock(&self.tenants);
        if let Some(t) = tenants.iter().find(|t| t.name == name) {
            return Arc::clone(t);
        }
        let effective = self.tenant_budget.min(self.global_budget);
        gauges.set_mem_budget(if effective == u64::MAX { 0 } else { effective });
        gauges.set_degradation_state(self.state.load(Ordering::Relaxed));
        let account = Arc::new(TenantAccount {
            name: name.to_string(),
            used: AtomicU64::new(0),
            gauges: Arc::clone(gauges),
        });
        tenants.push(Arc::clone(&account));
        account
    }

    /// Fallibly charges `bytes` against both scopes. Refusals are typed:
    /// budget refusal is [`RejectReason::MemoryPressure`] (retry later),
    /// a chaos-injected failure is [`BitFlowError::ResourceExhausted`]
    /// (the allocator said no). Either way the bytes were never charged.
    pub fn reserve(
        self: &Arc<Self>,
        tenant: &Arc<TenantAccount>,
        bytes: u64,
        what: &'static str,
    ) -> Result<MemoryLease, BitFlowError> {
        let nth = self.reservations.fetch_add(1, Ordering::Relaxed) + 1;
        if self.alloc_fail_nth != 0 && nth.is_multiple_of(self.alloc_fail_nth) {
            return Err(BitFlowError::ResourceExhausted { what, bytes });
        }
        if !try_charge(&self.global_used, self.global_budget, bytes) {
            return Err(BitFlowError::Rejected(RejectReason::MemoryPressure));
        }
        if !try_charge(&tenant.used, self.tenant_budget, bytes) {
            self.global_used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(BitFlowError::Rejected(RejectReason::MemoryPressure));
        }
        tenant.gauges.mem_reserved(bytes);
        Ok(MemoryLease {
            gov: Arc::clone(self),
            tenant: Arc::clone(tenant),
            bytes,
        })
    }

    /// Unconditionally charges `bytes` — the weight-registration path,
    /// which must not be able to fail (a server that cannot start is
    /// worse than one that starts browned out). Overcommit pushes the
    /// pressure ratio past 1.0 and the state machine takes it from
    /// there. Forced charges do not tick the chaos reservation clock:
    /// they cannot fail, so injecting into them would only skew the
    /// stream.
    pub fn reserve_forced(
        self: &Arc<Self>,
        tenant: &Arc<TenantAccount>,
        bytes: u64,
    ) -> MemoryLease {
        self.global_used.fetch_add(bytes, Ordering::Relaxed);
        tenant.used.fetch_add(bytes, Ordering::Relaxed);
        tenant.gauges.mem_reserved(bytes);
        MemoryLease {
            gov: Arc::clone(self),
            tenant: Arc::clone(tenant),
            bytes,
        }
    }

    /// Global accounted bytes right now.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.global_used.load(Ordering::Relaxed)
    }

    /// Global memory pressure in permille of the budget (0 when
    /// unmetered; may exceed 1000 under forced overcommit).
    #[must_use]
    pub fn pressure_permille(&self) -> u64 {
        if self.global_budget == u64::MAX {
            return 0;
        }
        let used = self.global_used.load(Ordering::Relaxed) as u128;
        (used * 1000 / (self.global_budget.max(1) as u128)).min(u64::MAX as u128) as u64
    }

    /// Folds one resolution into the deadline-miss EWMA (`true` for a
    /// missed/shed deadline, `false` for a completion).
    pub fn record_outcome(&self, deadline_missed: bool) {
        let sample: i64 = if deadline_missed { 1000 } else { 0 };
        // Racy read-modify-write is fine: the EWMA steers degradation,
        // not accounting.
        let old = self.miss_ewma.load(Ordering::Relaxed) as i64;
        let new = old + ((sample - old) >> MISS_EWMA_SHIFT);
        self.miss_ewma
            .store(new.clamp(0, 1000) as u64, Ordering::Relaxed);
    }

    /// The deadline-miss EWMA, permille.
    #[must_use]
    pub fn miss_ewma_permille(&self) -> u64 {
        self.miss_ewma.load(Ordering::Relaxed)
    }

    /// Re-evaluates the state machine against the three signals and
    /// returns the (possibly new) state. Escalation is immediate;
    /// de-escalation needs [`RECOVERY_EVALS`] consecutive calm
    /// evaluations per level. Called on every submission and by the
    /// health/state accessors, so a server left alone recovers on its
    /// own as soon as anything looks at it.
    pub fn evaluate(&self, queue_depth: usize, queue_capacity: usize) -> DegradationState {
        let pressure = self.pressure_permille();
        let queue = if queue_capacity >= MIN_QUEUE_SIGNAL_CAPACITY {
            (queue_depth as u64).saturating_mul(1000) / (queue_capacity as u64)
        } else {
            0
        };
        let miss = self.miss_ewma.load(Ordering::Relaxed);
        // Queue depth escalates at most to Brownout: a saturated queue
        // without memory pressure or deadline misses is ordinary
        // backpressure, and the bounded queue's shed policy already owns
        // the hard-full case. Dropping Normal-priority work (`Shed`)
        // requires a genuine resource signal.
        let target = if pressure >= SHED_PRESSURE || miss >= SHED_MISS {
            DegradationState::Shed
        } else if pressure >= BROWNOUT_PRESSURE
            || queue >= BROWNOUT_PRESSURE
            || miss >= BROWNOUT_MISS
        {
            DegradationState::Brownout
        } else {
            DegradationState::Normal
        };
        let current = DegradationState::from_u64(self.state.load(Ordering::Relaxed));
        let next = if target > current {
            self.calm_evals.store(0, Ordering::Relaxed);
            target
        } else if target < current {
            let calm = pressure < BROWNOUT_PRESSURE - CALM_MARGIN
                && queue < BROWNOUT_PRESSURE - CALM_MARGIN
                && miss < BROWNOUT_MISS - CALM_MARGIN;
            if calm && self.calm_evals.fetch_add(1, Ordering::Relaxed) + 1 >= RECOVERY_EVALS {
                self.calm_evals.store(0, Ordering::Relaxed);
                DegradationState::from_u64(current.as_u64() - 1)
            } else {
                if !calm {
                    self.calm_evals.store(0, Ordering::Relaxed);
                }
                current
            }
        } else {
            self.calm_evals.store(0, Ordering::Relaxed);
            current
        };
        if next != current {
            self.state.store(next.as_u64(), Ordering::Relaxed);
            for t in lock(&self.tenants).iter() {
                t.gauges.set_degradation_state(next.as_u64());
            }
        }
        next
    }

    /// The state as of the last evaluation (no re-evaluation).
    #[must_use]
    pub fn state(&self) -> DegradationState {
        DegradationState::from_u64(self.state.load(Ordering::Relaxed))
    }

    /// Whether the current state sheds a submission of `priority`.
    #[must_use]
    pub fn sheds(&self, priority: Priority) -> bool {
        match self.state() {
            DegradationState::Normal => false,
            DegradationState::Brownout => priority == Priority::Low,
            DegradationState::Shed => priority < Priority::High,
        }
    }

    /// The coalesce window under the current state: full in `Normal`,
    /// quartered in `Brownout` (throughput still matters, added latency
    /// does not help a pressured server), zero in `Shed` (serve and
    /// free, nothing else).
    #[must_use]
    pub fn scaled_window(&self, window: Duration) -> Duration {
        match self.state() {
            DegradationState::Normal => window,
            DegradationState::Brownout => window / 4,
            DegradationState::Shed => Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn gauges() -> Arc<ServeGauges> {
        Arc::new(ServeGauges::default())
    }

    #[test]
    fn lease_charges_and_releases_both_scopes() {
        let gov = ResourceGovernor::new(
            GovernorConfig {
                global_budget: Some(1000),
                tenant_budget: Some(600),
            },
            0,
        );
        let g = gauges();
        let t = gov.tenant("a", &g);
        assert_eq!(g.snapshot().govern.mem_budget_bytes, 600);
        let lease = gov.reserve(&t, 500, "test").expect("fits both scopes");
        assert_eq!(lease.bytes(), 500);
        assert_eq!(gov.used(), 500);
        assert_eq!(t.used(), 500);
        assert_eq!(g.snapshot().govern.mem_used_bytes, 500);
        assert_eq!(g.snapshot().govern.mem_leases, 1);
        drop(lease);
        assert_eq!(gov.used(), 0);
        assert_eq!(t.used(), 0);
        assert_eq!(g.snapshot().govern.mem_used_bytes, 0);
        assert_eq!(g.snapshot().govern.mem_leases, 0);
    }

    #[test]
    fn tenant_budget_refuses_before_global() {
        let gov = ResourceGovernor::new(
            GovernorConfig {
                global_budget: Some(1000),
                tenant_budget: Some(300),
            },
            0,
        );
        let t = gov.tenant("a", &gauges());
        let held = gov.reserve(&t, 300, "test").expect("exactly the budget");
        match gov.reserve(&t, 1, "test") {
            Err(BitFlowError::Rejected(RejectReason::MemoryPressure)) => {}
            other => panic!("expected MemoryPressure, got {other:?}"),
        }
        // A refused tenant charge must roll the global charge back.
        assert_eq!(gov.used(), 300);
        drop(held);
        assert!(gov.reserve(&t, 300, "test").is_ok(), "budget is reusable");
    }

    #[test]
    fn global_budget_spans_tenants() {
        let gov = ResourceGovernor::new(
            GovernorConfig {
                global_budget: Some(500),
                tenant_budget: None,
            },
            0,
        );
        let a = gov.tenant("a", &gauges());
        let b = gov.tenant("b", &gauges());
        let _la = gov.reserve(&a, 400, "test").expect("a fits");
        match gov.reserve(&b, 200, "test") {
            Err(BitFlowError::Rejected(RejectReason::MemoryPressure)) => {}
            other => panic!("expected MemoryPressure, got {other:?}"),
        }
        assert!(gov.reserve(&b, 100, "test").is_ok(), "remainder admits b");
    }

    #[test]
    fn unmetered_governor_never_refuses_but_still_accounts() {
        let gov = ResourceGovernor::new(GovernorConfig::default(), 0);
        let g = gauges();
        let t = gov.tenant("a", &g);
        assert_eq!(g.snapshot().govern.mem_budget_bytes, 0, "0 = unmetered");
        let lease = gov.reserve(&t, u64::MAX / 2, "test").expect("unmetered");
        assert_eq!(gov.used(), u64::MAX / 2);
        assert_eq!(gov.pressure_permille(), 0, "no budget, no pressure");
        drop(lease);
    }

    #[test]
    fn forced_reservation_overcommits_and_raises_pressure() {
        let gov = ResourceGovernor::new(
            GovernorConfig {
                global_budget: Some(100),
                tenant_budget: None,
            },
            0,
        );
        let t = gov.tenant("a", &gauges());
        let lease = gov.reserve_forced(&t, 150);
        assert_eq!(gov.pressure_permille(), 1500, "overcommit exceeds 1000");
        assert!(matches!(gov.evaluate(0, 64), DegradationState::Shed));
        drop(lease);
    }

    #[test]
    fn chaos_fails_every_nth_fallible_reservation() {
        let gov = ResourceGovernor::new(GovernorConfig::default(), 3);
        let t = gov.tenant("a", &gauges());
        let mut outcomes = Vec::new();
        for _ in 0..9 {
            outcomes.push(gov.reserve(&t, 1, "test").is_ok());
        }
        assert_eq!(
            outcomes,
            vec![true, true, false, true, true, false, true, true, false]
        );
        match gov.reserve(&t, 1, "test") {
            Ok(_) => {}
            other => panic!("10th reservation must succeed, got {other:?}"),
        }
        // Forced charges must not consume the chaos stream.
        let _w = gov.reserve_forced(&t, 1);
        let _w2 = gov.reserve_forced(&t, 1);
        assert!(gov.reserve(&t, 1, "test").is_ok(), "11th");
        match gov.reserve(&t, 1, "test") {
            Err(BitFlowError::ResourceExhausted { what, bytes }) => {
                assert_eq!(what, "test");
                assert_eq!(bytes, 1);
            }
            other => panic!("12th must be injected, got {other:?}"),
        }
    }

    #[test]
    fn brownout_escalates_immediately_and_recovers_with_hysteresis() {
        let gov = ResourceGovernor::new(
            GovernorConfig {
                global_budget: Some(1000),
                tenant_budget: None,
            },
            0,
        );
        let t = gov.tenant("a", &gauges());
        assert_eq!(gov.evaluate(0, 64), DegradationState::Normal);
        let big = gov.reserve(&t, 800, "test").expect("fits");
        assert_eq!(gov.evaluate(0, 64), DegradationState::Brownout);
        assert!(gov.sheds(Priority::Low));
        assert!(!gov.sheds(Priority::Normal));
        let more = gov.reserve(&t, 160, "test").expect("fits");
        assert_eq!(gov.evaluate(0, 64), DegradationState::Shed);
        assert!(gov.sheds(Priority::Normal));
        assert!(!gov.sheds(Priority::High));
        drop(more);
        drop(big);
        // Calm now, but recovery steps down one level per three calm
        // evaluations — never straight to Normal.
        for _ in 0..RECOVERY_EVALS - 1 {
            assert_eq!(gov.evaluate(0, 64), DegradationState::Shed);
        }
        assert_eq!(gov.evaluate(0, 64), DegradationState::Brownout);
        for _ in 0..RECOVERY_EVALS - 1 {
            assert_eq!(gov.evaluate(0, 64), DegradationState::Brownout);
        }
        assert_eq!(gov.evaluate(0, 64), DegradationState::Normal);
        assert!(!gov.sheds(Priority::Low));
    }

    #[test]
    fn queue_depth_and_miss_ewma_also_escalate() {
        let gov = ResourceGovernor::new(GovernorConfig::default(), 0);
        let _t = gov.tenant("a", &gauges());
        assert_eq!(gov.evaluate(48, 64), DegradationState::Brownout);
        // A hard-full queue alone never escalates past Brownout: dropping
        // Normal-priority work requires memory pressure or misses.
        assert_eq!(gov.evaluate(64, 64), DegradationState::Brownout);
        let gov2 = ResourceGovernor::new(GovernorConfig::default(), 0);
        for _ in 0..32 {
            gov2.record_outcome(true);
        }
        assert!(gov2.miss_ewma_permille() >= BROWNOUT_MISS);
        assert_ne!(gov2.evaluate(0, 64), DegradationState::Normal);
        // Successful resolutions decay the EWMA back down.
        for _ in 0..64 {
            gov2.record_outcome(false);
        }
        assert!(gov2.miss_ewma_permille() < BROWNOUT_MISS - CALM_MARGIN);
    }

    #[test]
    fn scaled_window_shrinks_under_degradation() {
        let gov = ResourceGovernor::new(GovernorConfig::default(), 0);
        let w = Duration::from_millis(8);
        assert_eq!(gov.scaled_window(w), w);
        gov.state.store(1, Ordering::Relaxed);
        assert_eq!(gov.scaled_window(w), w / 4);
        gov.state.store(2, Ordering::Relaxed);
        assert_eq!(gov.scaled_window(w), Duration::ZERO);
    }

    #[test]
    fn state_changes_mirror_to_every_tenant_gauge() {
        let gov = ResourceGovernor::new(
            GovernorConfig {
                global_budget: Some(100),
                tenant_budget: None,
            },
            0,
        );
        let ga = gauges();
        let gb = gauges();
        let a = gov.tenant("a", &ga);
        let _b = gov.tenant("b", &gb);
        let lease = gov.reserve(&a, 90, "test").expect("fits");
        gov.evaluate(0, 64);
        assert_eq!(ga.degradation_state(), 1);
        assert_eq!(gb.degradation_state(), 1);
        drop(lease);
        for _ in 0..RECOVERY_EVALS {
            gov.evaluate(0, 64);
        }
        assert_eq!(ga.degradation_state(), 0);
        assert_eq!(gb.degradation_state(), 0);
    }
}
