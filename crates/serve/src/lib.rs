//! # bitflow-serve
//!
//! Overload-safe serving runtime in front of a
//! [`bitflow_graph::CompiledModel`]: a bounded admission queue feeding a
//! persistent pool of worker threads, each owning one
//! [`bitflow_graph::engine::InferenceContext`].
//!
//! Design goals, in priority order:
//!
//! 1. **Explicit backpressure.** [`Server::submit`] never blocks and never
//!    silently drops: it either admits the request or returns a typed
//!    [`bitflow_graph::RejectReason`] (`QueueFull`, `Shedding`,
//!    `Draining`). The shedding policy is configurable: reject the newest
//!    submission, or evict an already-dead queued request first
//!    ([`ShedPolicy::DeadlineAware`]).
//! 2. **Deadlines end-to-end.** A per-request deadline becomes a
//!    [`bitflow_graph::CancelToken`] checked at every operator boundary
//!    inside the engine, so an expired request stops within one operator's
//!    latency instead of wasting a worker on a response nobody will read.
//! 3. **Fault isolation.** A panicking operator takes down one request,
//!    not the server: workers catch panics per request, replace their
//!    scratch context, and keep serving. A panic that escapes the
//!    per-request backstop restarts the worker loop (the watchdog).
//!    Repeated faults trip a circuit breaker into graceful degradation:
//!    queued work drains, new work is rejected with `Shedding` until a
//!    cooldown elapses.
//! 4. **Chaos is a first-class citizen.** [`ChaosConfig`] injects
//!    seed-deterministic slow operators, panicking operators, queue
//!    stalls, and worker kills, so the soak tests exercise every failure
//!    path above without wall-clock flakiness deciding *which* path.
//!
//! Every admitted request resolves exactly once; the
//! [`bitflow_telemetry::ServeGauges`] counters obey the conservation law
//! documented on [`bitflow_telemetry::ServeSnapshot`].
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod chaos;
pub mod config;
pub mod server;

pub use chaos::ChaosConfig;
pub use config::{BreakerConfig, ServerConfig, ShedPolicy};
pub use server::{ResponseHandle, Server};
