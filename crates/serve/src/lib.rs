//! # bitflow-serve
//!
//! Overload-safe serving runtime in front of a
//! [`bitflow_graph::CompiledModel`]: a bounded admission queue feeding a
//! persistent pool of worker threads, each owning one
//! [`bitflow_graph::engine::InferenceContext`].
//!
//! Design goals, in priority order:
//!
//! 1. **Explicit backpressure.** [`Server::submit`] never blocks and never
//!    silently drops: it either admits the request or returns a typed
//!    [`bitflow_graph::RejectReason`] (`QueueFull`, `Shedding`,
//!    `Draining`). The shedding policy is configurable: reject the newest
//!    submission, or evict an already-dead queued request first
//!    ([`ShedPolicy::DeadlineAware`]).
//! 2. **Deadlines end-to-end.** A per-request deadline becomes a
//!    [`bitflow_graph::CancelToken`] checked at every operator boundary
//!    inside the engine, so an expired request stops within one operator's
//!    latency instead of wasting a worker on a response nobody will read.
//! 3. **Fault isolation.** A panicking operator takes down one request,
//!    not the server: workers catch panics per request, replace their
//!    scratch context, and keep serving. A panic that escapes the
//!    per-request backstop restarts the worker loop (the watchdog).
//!    Repeated faults trip a circuit breaker into graceful degradation:
//!    queued work drains, new work is rejected with `Shedding` until a
//!    cooldown elapses.
//! 4. **Goodput under load.** Workers practice *continuous
//!    micro-batching*: a deep queue is coalesced into batched engine
//!    calls ([`ServerConfig::max_batch`], deadline-aware, same model
//!    only), amortising dispatch overhead exactly when throughput
//!    matters; a calm queue is served one request at a time with zero
//!    added latency (the default [`ServerConfig::coalesce_window`] is
//!    zero).
//! 5. **Multi-model tenancy.** One queue and one pool serve every entry
//!    of a [`ModelRegistry`]; per-tenant admission quotas and per-tenant
//!    [`bitflow_telemetry::ServeGauges`] keep tenants isolated and
//!    accountable, and [`ModelClient::swap`] hot-swaps a tenant's model
//!    with zero downtime (in-flight requests finish on the weights they
//!    were admitted with).
//! 6. **Resource governance.** A [`ResourceGovernor`] meters the bytes
//!    behind registered weights, worker contexts, and admitted request
//!    payloads against global and per-tenant budgets, each charge held
//!    by an RAII [`MemoryLease`]. Sustained pressure degrades service
//!    through a brownout state machine ([`DegradationState`]) — shed
//!    [`Priority::Low`] tenants first, shrink coalesce windows, report
//!    the state on every health surface — instead of letting the
//!    allocator abort the process.
//! 7. **Chaos is a first-class citizen.** [`ChaosConfig`] injects
//!    seed-deterministic slow operators, panicking operators, queue
//!    stalls, and worker kills, so the soak tests exercise every failure
//!    path above without wall-clock flakiness deciding *which* path —
//!    including inside coalesced batches, where the engine's per-request
//!    tags carry the chaos stream onto rayon threads.
//!
//! Every admitted request resolves exactly once; each tenant's
//! [`bitflow_telemetry::ServeGauges`] counters independently obey the
//! conservation law documented on [`bitflow_telemetry::ServeSnapshot`].
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod chaos;
pub mod config;
pub mod govern;
pub mod registry;
pub mod server;

pub use chaos::ChaosConfig;
pub use config::{BreakerConfig, ServerConfig, ShedPolicy};
pub use govern::{DegradationState, GovernorConfig, MemoryLease, Priority, ResourceGovernor};
pub use registry::{ModelEntry, ModelRegistry, DEFAULT_MODEL};
pub use server::{ModelClient, ResponseHandle, Server};
