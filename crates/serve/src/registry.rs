//! Multi-model tenancy: a named registry of hot-swappable compiled
//! models, each with its own serving gauges and admission quota.
//!
//! A [`ModelRegistry`] is built up front and handed to
//! [`crate::Server::start_multi`]; the entry set is fixed for the
//! server's lifetime, but each entry's model is behind a lock and can be
//! **hot-swapped** with zero downtime: load the replacement, flip the
//! `Arc` ([`ModelEntry::swap_model`]), and let in-flight work drain on
//! the old model. Requests capture their model `Arc` at admission, so a
//! swap never changes the weights a queued request runs against — the
//! old model stays alive (and bit-exact) until its last request
//! resolves, then drops with the final `Arc`.
//!
//! **Quota semantics**: an entry's quota bounds how many of its requests
//! may be *admitted but unresolved* (queued or running) at once. The
//! quota is charged at admission and released when the request resolves
//! — complete, failed, shed, expired, or cancelled — so one noisy tenant
//! can saturate neither the shared queue nor the worker pool. `None`
//! means unmetered.
//!
//! Per-entry gauges come from the initial model's telemetry when it is
//! enabled (so serving counters land in that model's snapshot and
//! Prometheus exposition) and are standalone otherwise. They stay with
//! the *entry* across swaps: counters are a property of the served name,
//! and resetting them mid-serve would break the conservation law.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use bitflow_graph::CompiledModel;
use bitflow_telemetry::ServeGauges;

use crate::govern::{MemoryLease, Priority, TenantAccount};

/// Name under which [`ModelRegistry::single`] registers its only model
/// (the single-model [`crate::Server::start`] path).
pub const DEFAULT_MODEL: &str = "default";

/// Exponential-moving-average weight for the per-entry batch-latency
/// estimate: `new = old + (sample - old) / 4`.
const EWMA_SHIFT: u32 = 2;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One tenant of a multi-model server: a hot-swappable model handle, the
/// entry's serving gauges, its admission quota, and the live admission
/// count the quota meters.
pub struct ModelEntry {
    name: String,
    model: Mutex<Arc<CompiledModel>>,
    gauges: Arc<ServeGauges>,
    quota: Option<u64>,
    priority: Priority,
    in_flight: AtomicU64,
    swaps: AtomicU64,
    ewma_batch_ns: AtomicU64,
    /// This tenant's byte ledger with the resource governor, bound once
    /// at server start.
    account: OnceLock<Arc<TenantAccount>>,
    /// The forced charge for the weights currently served under this
    /// name; replaced on hot swap (the displaced model's bytes are
    /// released when its lease drops).
    weight_lease: Mutex<Option<MemoryLease>>,
}

impl ModelEntry {
    fn new(
        name: String,
        model: Arc<CompiledModel>,
        quota: Option<u64>,
        priority: Priority,
    ) -> Self {
        let gauges = match model.telemetry() {
            Some(t) => t.serve(),
            None => Arc::new(ServeGauges::default()),
        };
        Self {
            name,
            model: Mutex::new(model),
            gauges,
            quota,
            priority,
            in_flight: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            ewma_batch_ns: AtomicU64::new(0),
            account: OnceLock::new(),
            weight_lease: Mutex::new(None),
        }
    }

    /// The name this entry serves under.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model currently serving this name. New submissions capture
    /// this `Arc`; a concurrent swap does not affect them once captured.
    #[must_use]
    pub fn current(&self) -> Arc<CompiledModel> {
        Arc::clone(&lock(&self.model))
    }

    /// This entry's serving gauges (stable across hot swaps).
    #[must_use]
    pub fn gauges(&self) -> Arc<ServeGauges> {
        Arc::clone(&self.gauges)
    }

    /// Borrow of the gauges for hot accounting paths (no `Arc` clone).
    pub(crate) fn counters(&self) -> &ServeGauges {
        &self.gauges
    }

    /// The admission quota, if any.
    #[must_use]
    pub fn quota(&self) -> Option<u64> {
        self.quota
    }

    /// This tenant's shedding class under brownout.
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Binds this entry to its governor account (server start; first
    /// bind wins).
    pub(crate) fn bind_account(&self, account: Arc<TenantAccount>) {
        let _ = self.account.set(account);
    }

    /// The governor account metering this tenant, once bound.
    pub(crate) fn account(&self) -> Option<&Arc<TenantAccount>> {
        self.account.get()
    }

    /// Installs the forced weight charge for the currently served model,
    /// returning the displaced model's lease (dropped by the caller,
    /// releasing its bytes).
    pub(crate) fn set_weight_lease(&self, lease: MemoryLease) -> Option<MemoryLease> {
        lock(&self.weight_lease).replace(lease)
    }

    /// Requests admitted for this entry and not yet resolved.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// How many times this entry's model has been hot-swapped.
    #[must_use]
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Replaces the served model and returns the previous one. In-flight
    /// and queued requests keep the `Arc` they were admitted with; only
    /// subsequent admissions see the replacement.
    pub fn swap_model(&self, new: Arc<CompiledModel>) -> Arc<CompiledModel> {
        let old = std::mem::replace(&mut *lock(&self.model), new);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        old
    }

    /// Charges one admission against the quota; `false` leaves the count
    /// untouched (the submission must be rejected).
    pub(crate) fn try_admit(&self) -> bool {
        let Some(quota) = self.quota else {
            self.in_flight.fetch_add(1, Ordering::Relaxed);
            return true;
        };
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= quota {
                return false;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Releases one admission (the request resolved, whatever the
    /// outcome).
    pub(crate) fn release(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Folds one served batch's wall time into the latency estimate the
    /// coalescer uses for deadline-fit decisions.
    pub(crate) fn record_batch_ns(&self, ns: u64) {
        // Racy read-modify-write is fine: the estimate steers batching
        // heuristics, not correctness.
        let old = self.ewma_batch_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            ns
        } else {
            old - (old >> EWMA_SHIFT) + (ns >> EWMA_SHIFT)
        };
        self.ewma_batch_ns.store(new.max(1), Ordering::Relaxed);
    }

    /// Estimated wall time of the next served batch (0 before the first
    /// sample — the coalescer then assumes every deadline fits).
    pub(crate) fn est_batch_ns(&self) -> u64 {
        self.ewma_batch_ns.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ModelEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEntry")
            .field("name", &self.name)
            .field("quota", &self.quota)
            .field("in_flight", &self.in_flight())
            .field("swaps", &self.swaps())
            .finish_non_exhaustive()
    }
}

/// The tenant set of a multi-model server. Built before
/// [`crate::Server::start_multi`]; the set of names is fixed thereafter,
/// while each name's model can be hot-swapped at any time.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    entries: Vec<Arc<ModelEntry>>,
}

impl ModelRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry holding one model under [`DEFAULT_MODEL`], unmetered —
    /// what the single-model [`crate::Server::start`] path builds.
    #[must_use]
    pub fn single(model: Arc<CompiledModel>) -> Self {
        let mut reg = Self::new();
        reg.register(DEFAULT_MODEL, model, None);
        reg
    }

    /// Registers `model` under `name` with an optional admission quota
    /// and [`Priority::Normal`] brownout class.
    ///
    /// # Panics
    /// If `name` is already registered — tenancy names must be unique.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        model: Arc<CompiledModel>,
        quota: Option<u64>,
    ) -> Arc<ModelEntry> {
        self.register_with_priority(name, model, quota, Priority::Normal)
    }

    /// [`ModelRegistry::register`] with an explicit brownout priority
    /// class: under degradation, [`Priority::Low`] tenants are shed
    /// first and [`Priority::High`] tenants last.
    ///
    /// # Panics
    /// If `name` is already registered — tenancy names must be unique.
    pub fn register_with_priority(
        &mut self,
        name: impl Into<String>,
        model: Arc<CompiledModel>,
        quota: Option<u64>,
        priority: Priority,
    ) -> Arc<ModelEntry> {
        let name = name.into();
        assert!(
            self.get(&name).is_none(),
            "model `{name}` is already registered"
        );
        let entry = Arc::new(ModelEntry::new(name, model, quota, priority));
        self.entries.push(Arc::clone(&entry));
        entry
    }

    /// The entry serving `name`, if registered.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Arc<ModelEntry>> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Every entry, in registration order (the first is the default the
    /// single-model API paths use).
    #[must_use]
    pub fn entries(&self) -> &[Arc<ModelEntry>] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use bitflow_graph::{small_cnn, NetworkWeights};
    use rand::{rngs::StdRng, SeedableRng};

    fn model(seed: u64) -> Arc<CompiledModel> {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        Arc::new(CompiledModel::compile(&spec, &weights))
    }

    #[test]
    fn quota_meters_admissions() {
        let mut reg = ModelRegistry::new();
        let entry = reg.register("a", model(1), Some(2));
        assert!(entry.try_admit());
        assert!(entry.try_admit());
        assert!(!entry.try_admit(), "third admission exceeds the quota");
        assert_eq!(entry.in_flight(), 2);
        entry.release();
        assert!(entry.try_admit(), "released capacity is reusable");
    }

    #[test]
    fn swap_flips_the_arc_and_keeps_old_requests_valid() {
        let mut reg = ModelRegistry::new();
        let m1 = model(1);
        let entry = reg.register("a", Arc::clone(&m1), None);
        let captured = entry.current();
        assert!(Arc::ptr_eq(&captured, &m1));
        let m2 = model(2);
        let old = entry.swap_model(Arc::clone(&m2));
        assert!(Arc::ptr_eq(&old, &m1), "swap returns the displaced model");
        assert!(Arc::ptr_eq(&entry.current(), &m2));
        // The pre-swap capture still points at the old weights.
        assert!(Arc::ptr_eq(&captured, &m1));
        assert_eq!(entry.swaps(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_names_are_rejected() {
        let mut reg = ModelRegistry::new();
        reg.register("a", model(1), None);
        reg.register("a", model(2), None);
    }

    #[test]
    fn priority_defaults_to_normal_and_is_settable() {
        let mut reg = ModelRegistry::new();
        let plain = reg.register("plain", model(1), None);
        assert_eq!(plain.priority(), Priority::Normal);
        let low = reg.register_with_priority("batchy", model(2), None, Priority::Low);
        assert_eq!(low.priority(), Priority::Low);
        let high = reg.register_with_priority("paying", model(3), None, Priority::High);
        assert_eq!(high.priority(), Priority::High);
    }

    #[test]
    fn ewma_tracks_batch_latency() {
        let mut reg = ModelRegistry::new();
        let entry = reg.register("a", model(1), None);
        assert_eq!(entry.est_batch_ns(), 0, "no estimate before a sample");
        entry.record_batch_ns(1000);
        assert_eq!(entry.est_batch_ns(), 1000, "first sample seeds the EWMA");
        entry.record_batch_ns(2000);
        let est = entry.est_batch_ns();
        assert!(
            (1000..2000).contains(&est),
            "EWMA moves toward the new sample, got {est}"
        );
    }
}
