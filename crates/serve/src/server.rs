//! The serving runtime: bounded admission queue, worker pool, circuit
//! breaker, and response delivery.
//!
//! Invariants (the soak test in `tests/serve_soak.rs` checks all of them
//! under chaos):
//!
//! * Every admitted request **resolves exactly once** — with logits, or
//!   with a typed [`BitFlowError`]. Rejected submissions never allocate a
//!   response slot at all.
//! * [`bitflow_telemetry::ServeSnapshot`]'s conservation law holds:
//!   `submitted == accepted + rejected_*`, and once drained
//!   `accepted == completed + failed + shed_deadline + deadline_missed +
//!   cancelled`.
//! * A worker panic (injected or real) is isolated to its request; the
//!   worker replaces its scratch context and keeps serving. A panic that
//!   escapes the per-request backstop restarts the worker loop. Either
//!   way the pool never shrinks.
//! * Successful responses are bit-identical to serial `try_infer` on a
//!   fresh context — the engine's no-poisoning guarantee, exercised here
//!   across panics, cancellations, and context replacement.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bitflow_graph::engine::InferenceContext;
use bitflow_graph::{BitFlowError, CancelToken, CompiledModel, RejectReason};
use bitflow_telemetry::{ServeGauges, ServeSnapshot};
use bitflow_tensor::Tensor;

use crate::chaos;
use crate::config::{ServerConfig, ShedPolicy};

/// Locks, treating poisoning as recovered: the runtime catches panics
/// around everything that runs under these locks, and the guarded state
/// stays consistent (counters and queues are updated atomically with
/// respect to the panic points).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One-shot response cell: worker resolves, caller waits.
#[derive(Default)]
struct ResponseSlot {
    result: Mutex<Option<Result<Vec<f32>, BitFlowError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    /// First resolution wins; later calls are no-ops (by construction
    /// there are none, but a response cell must not be able to flap).
    fn resolve(&self, r: Result<Vec<f32>, BitFlowError>) {
        let mut cell = lock(&self.result);
        if cell.is_none() {
            *cell = Some(r);
            self.ready.notify_all();
        }
    }
}

/// The caller's end of an admitted request.
pub struct ResponseHandle {
    id: u64,
    token: CancelToken,
    slot: Arc<ResponseSlot>,
}

impl std::fmt::Debug for ResponseHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseHandle")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl ResponseHandle {
    /// Server-assigned request id (also the chaos decision stream).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Cooperatively cancels the request. If it is still queued it
    /// resolves as [`BitFlowError::Cancelled`] without running; if it is
    /// mid-inference it stops at the next operator boundary.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// A clone of the request's cancellation token, for callers that
    /// outlive the handle (e.g. a connection-closed watcher).
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    #[must_use]
    pub fn try_wait(&self) -> Option<Result<Vec<f32>, BitFlowError>> {
        lock(&self.slot.result).take()
    }

    /// Blocks until the request resolves.
    pub fn wait(self) -> Result<Vec<f32>, BitFlowError> {
        let mut cell = lock(&self.slot.result);
        loop {
            if let Some(r) = cell.take() {
                return r;
            }
            cell = self
                .slot
                .ready
                .wait(cell)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One queued request.
struct Request {
    id: u64,
    input: Tensor,
    token: CancelToken,
    slot: Arc<ResponseSlot>,
}

struct QueueState {
    items: VecDeque<Request>,
    draining: bool,
}

#[derive(Default)]
struct BreakerState {
    consecutive_faults: u32,
    open_until: Option<Instant>,
}

struct Shared {
    model: Arc<CompiledModel>,
    config: ServerConfig,
    gauges: Arc<ServeGauges>,
    queue: Mutex<QueueState>,
    available: Condvar,
    breaker: Mutex<BreakerState>,
    next_id: AtomicU64,
    pops: AtomicU64,
}

impl Shared {
    /// Whether the breaker currently sheds admissions. An expired cooldown
    /// closes the breaker here, on the admission path — half-open probing
    /// is not modelled; after the cooldown the server simply trusts the
    /// pool again until faults re-accumulate.
    fn breaker_open(&self) -> bool {
        let mut b = lock(&self.breaker);
        match b.open_until {
            Some(until) if Instant::now() < until => true,
            Some(_) => {
                b.open_until = None;
                b.consecutive_faults = 0;
                false
            }
            None => false,
        }
    }

    fn breaker_fault(&self) {
        let mut b = lock(&self.breaker);
        b.consecutive_faults = b.consecutive_faults.saturating_add(1);
        if b.consecutive_faults >= self.config.breaker.fault_threshold && b.open_until.is_none() {
            b.open_until = Some(Instant::now() + self.config.breaker.cooldown);
            self.gauges.breaker_trip();
        }
    }

    fn breaker_success(&self) {
        lock(&self.breaker).consecutive_faults = 0;
    }
}

/// The serving runtime. Dropping it drains: admissions stop
/// ([`RejectReason::Draining`]), queued requests are still served, workers
/// are joined.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts `config.workers` worker threads over a shared compiled
    /// model. If the model has telemetry enabled, serving counters land in
    /// the same [`bitflow_telemetry::MetricsSnapshot`] as its operator
    /// metrics; otherwise the server keeps standalone gauges (see
    /// [`Server::metrics`]).
    ///
    /// If `config.chaos` injects operator faults, the model's fault hook
    /// is installed here (first server wins — the hook slot is one per
    /// model).
    #[must_use]
    pub fn start(model: Arc<CompiledModel>, mut config: ServerConfig) -> Self {
        config.workers = config.workers.max(1);
        config.queue_capacity = config.queue_capacity.max(1);
        if let Some(chaos_cfg) = &config.chaos {
            if chaos_cfg.slow_ppm > 0 || chaos_cfg.panic_ppm > 0 {
                let _ = model.install_fault_hook(chaos::fault_hook(chaos_cfg.clone()));
            }
        }
        let gauges = model
            .telemetry()
            .map(|t| t.serve())
            .unwrap_or_else(|| Arc::new(ServeGauges::default()));
        let shared = Arc::new(Shared {
            model,
            config,
            gauges,
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                draining: false,
            }),
            available: Condvar::new(),
            breaker: Mutex::new(BreakerState::default()),
            next_id: AtomicU64::new(0),
            pops: AtomicU64::new(0),
        });
        let workers = (0..shared.config.workers)
            .map(|worker_id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bitflow-serve-{worker_id}"))
                    .spawn(move || worker_main(&shared, worker_id as u64))
            })
            .filter_map(Result::ok)
            .collect();
        Self { shared, workers }
    }

    /// Submits with the configured default deadline (if any).
    pub fn submit(&self, input: Tensor) -> Result<ResponseHandle, RejectReason> {
        let token = match self.shared.config.default_deadline {
            Some(budget) => CancelToken::with_budget(budget),
            None => CancelToken::new(),
        };
        self.submit_with_token(input, token)
    }

    /// Submits with an explicit latency budget (overrides the default).
    pub fn submit_with_deadline(
        &self,
        input: Tensor,
        budget: Duration,
    ) -> Result<ResponseHandle, RejectReason> {
        self.submit_with_token(input, CancelToken::with_budget(budget))
    }

    /// Submits with a caller-built token (deadline, external cancellation,
    /// or both). Never blocks: the request is either admitted or rejected
    /// with a typed reason, counted either way.
    pub fn submit_with_token(
        &self,
        input: Tensor,
        token: CancelToken,
    ) -> Result<ResponseHandle, RejectReason> {
        let sh = &self.shared;
        sh.gauges.submitted();
        if sh.breaker_open() {
            return Err(self.reject(RejectReason::Shedding));
        }
        let mut q = lock(&sh.queue);
        if q.draining {
            return Err(self.reject(RejectReason::Draining));
        }
        if q.items.len() >= sh.config.queue_capacity {
            match sh.config.shed_policy {
                ShedPolicy::RejectNewest => return Err(self.reject(RejectReason::QueueFull)),
                ShedPolicy::DeadlineAware => {
                    let dead = q
                        .items
                        .iter()
                        .position(|r| r.token.is_cancelled() || r.token.deadline_passed());
                    match dead.and_then(|i| q.items.remove(i)) {
                        Some(victim) => {
                            sh.gauges.dequeued();
                            resolve_dead(sh, &victim);
                        }
                        None => return Err(self.reject(RejectReason::QueueFull)),
                    }
                }
            }
        }
        let id = sh.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ResponseSlot::default());
        q.items.push_back(Request {
            id,
            input,
            token: token.clone(),
            slot: Arc::clone(&slot),
        });
        sh.gauges.enqueued();
        drop(q);
        sh.available.notify_one();
        Ok(ResponseHandle { id, token, slot })
    }

    fn reject(&self, reason: RejectReason) -> RejectReason {
        self.shared.gauges.rejected(reason.label());
        reason
    }

    /// Point-in-time serving counters (shared with the model's telemetry
    /// when that is enabled).
    #[must_use]
    pub fn metrics(&self) -> ServeSnapshot {
        self.shared.gauges.snapshot()
    }

    /// The live gauges handle (e.g. to wire into an exporter).
    #[must_use]
    pub fn gauges(&self) -> Arc<ServeGauges> {
        Arc::clone(&self.shared.gauges)
    }

    /// Requests currently waiting in the admission queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.queue).items.len()
    }

    /// Stops admissions without stopping the pool: from here on `submit`
    /// returns [`RejectReason::Draining`] while already-queued requests
    /// are still served. Irreversible; [`Server::shutdown`] completes it.
    pub fn drain(&self) {
        self.begin_drain();
    }

    /// Stops admissions, serves out the queue, joins the pool, and
    /// returns the final counters.
    pub fn shutdown(mut self) -> ServeSnapshot {
        self.begin_drain();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.shared.gauges.snapshot()
    }

    fn begin_drain(&self) {
        lock(&self.shared.queue).draining = true;
        self.shared.available.notify_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_drain();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Resolves a request that died in the queue (evicted by deadline-aware
/// shedding, or popped already-dead): caller cancellation wins over
/// deadline expiry, mirroring [`CancelToken::check`].
fn resolve_dead(shared: &Shared, req: &Request) {
    if req.token.is_cancelled() {
        shared.gauges.cancelled();
        req.slot.resolve(Err(BitFlowError::Cancelled));
    } else {
        shared.gauges.shed_deadline();
        req.slot.resolve(Err(BitFlowError::DeadlineExceeded));
    }
}

/// The watchdog shell around one worker: restarts the serving loop (with
/// a fresh context — the old one is mid-panic suspect) until it exits
/// cleanly at drain. Restarts are counted but never give up: a worker
/// that keeps dying keeps coming back, and the circuit breaker — not the
/// pool size — is what turns persistent faults into load shedding.
fn worker_main(shared: &Shared, worker_id: u64) {
    loop {
        let mut ctx = shared.model.new_context();
        let exited = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(shared, worker_id, &mut ctx)
        }));
        match exited {
            Ok(()) => return,
            Err(_) => shared.gauges.worker_restart(),
        }
    }
}

/// Pops and serves requests until drain completes. Panics escape to
/// [`worker_main`] only from the chaos kill site or a bug in this crate —
/// inference panics are contained per-request by `catch_fault`.
fn worker_loop(shared: &Shared, worker_id: u64, ctx: &mut InferenceContext) {
    loop {
        let popped = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(req) = q.items.pop_front() {
                    shared.gauges.dequeued();
                    break Some(req);
                }
                if q.draining {
                    break None;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(req) = popped else { return };
        let pop = shared.pops.fetch_add(1, Ordering::Relaxed);
        if let Some(chaos_cfg) = &shared.config.chaos {
            if chaos_cfg.stall_hit(worker_id, pop) {
                std::thread::sleep(chaos_cfg.stall);
            }
        }
        serve_one(shared, ctx, &req);
        if let Some(chaos_cfg) = &shared.config.chaos {
            if chaos_cfg.kill_hit(worker_id, pop) {
                // After `serve_one`: the popped request has resolved, so
                // killing the loop here can only cost a restart, never a
                // response.
                panic!("chaos: injected worker kill (worker {worker_id}, pop {pop})");
            }
        }
    }
}

/// Serves one popped request and resolves its slot. Exactly one of the
/// outcome counters fires per call, keeping the conservation law exact.
fn serve_one(shared: &Shared, ctx: &mut InferenceContext, req: &Request) {
    // Dead on arrival: don't spend a context run on it.
    if req.token.is_cancelled() || req.token.deadline_passed() {
        resolve_dead(shared, req);
        return;
    }
    let result = {
        // Guard, not a plain set/clear: an injected panic unwinds through
        // here, and the next request on this worker must not inherit the
        // dead request's chaos stream.
        let _in_request = chaos::enter_request(req.id);
        shared.model.catch_fault(|| {
            shared
                .model
                .try_infer_cancellable(ctx, &req.input, &req.token)
        })
    };
    match &result {
        Ok(_) => {
            shared.gauges.completed();
            shared.breaker_success();
        }
        Err(BitFlowError::Cancelled) => shared.gauges.cancelled(),
        Err(BitFlowError::DeadlineExceeded) => shared.gauges.deadline_missed(),
        Err(BitFlowError::Internal(_)) => {
            // A panic was isolated inside inference. The context's scratch
            // state is suspect; replace it before the next request. This
            // is the only outcome that feeds the breaker.
            shared.gauges.worker_panic();
            shared.gauges.failed();
            *ctx = shared.model.new_context();
            shared.breaker_fault();
        }
        Err(_) => shared.gauges.failed(),
    }
    req.slot.resolve(result);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::chaos::ChaosConfig;
    use crate::config::BreakerConfig;
    use bitflow_graph::models::small_cnn;
    use bitflow_graph::weights::NetworkWeights;
    use bitflow_tensor::Layout;
    use rand::{rngs::StdRng, SeedableRng};

    fn model_and_inputs(n: usize) -> (Arc<CompiledModel>, Vec<Tensor>) {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(42);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let model = CompiledModel::try_compile(&spec, &weights).expect("seed model compiles");
        let inputs = (0..n)
            .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
            .collect();
        (Arc::new(model), inputs)
    }

    /// Chaos that always stalls each pop for `stall`, and nothing else.
    fn always_stall(stall: Duration) -> ChaosConfig {
        ChaosConfig {
            seed: 1,
            stall_ppm: 1_000_000,
            stall,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn responses_match_serial_inference() {
        let (model, inputs) = model_and_inputs(8);
        let server = Server::start(Arc::clone(&model), ServerConfig::default());
        let handles: Vec<ResponseHandle> = inputs
            .iter()
            .map(|i| server.submit(i.clone()).expect("admitted"))
            .collect();
        let mut oracle_ctx = model.new_context();
        for (input, handle) in inputs.iter().zip(handles) {
            let want = model.try_infer(&mut oracle_ctx, input).expect("oracle");
            assert_eq!(handle.wait().expect("served"), want);
        }
        let snap = server.shutdown();
        assert_eq!(snap.submitted, 8);
        assert_eq!(snap.accepted, 8);
        assert_eq!(snap.completed, 8);
        assert_eq!(snap.queue_depth, 0);
    }

    #[test]
    fn full_queue_rejects_newest() {
        let (model, inputs) = model_and_inputs(4);
        let server = Server::start(
            model,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                chaos: Some(always_stall(Duration::from_millis(300))),
                ..ServerConfig::default()
            },
        );
        let first = server.submit(inputs[0].clone()).expect("first admitted");
        // Let the worker pop the first request and enter its stall, so
        // the queue is empty again and its single slot is free.
        std::thread::sleep(Duration::from_millis(50));
        let second = server.submit(inputs[1].clone()).expect("second admitted");
        match server.submit(inputs[2].clone()) {
            Err(RejectReason::QueueFull) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert!(first.wait().is_ok());
        assert!(second.wait().is_ok());
        let snap = server.shutdown();
        assert_eq!(snap.rejected_queue_full, 1);
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.accepted, 2);
    }

    #[test]
    fn deadline_aware_shedding_evicts_dead_entries() {
        let (model, inputs) = model_and_inputs(4);
        let server = Server::start(
            model,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                shed_policy: ShedPolicy::DeadlineAware,
                chaos: Some(always_stall(Duration::from_millis(300))),
                ..ServerConfig::default()
            },
        );
        let first = server.submit(inputs[0].clone()).expect("first admitted");
        std::thread::sleep(Duration::from_millis(50));
        // Queued with a deadline that expires while it waits.
        let doomed = server
            .submit_with_deadline(inputs[1].clone(), Duration::from_millis(1))
            .expect("doomed admitted");
        std::thread::sleep(Duration::from_millis(10));
        // Queue is full, but the queued entry is dead: evicted, admitted.
        let third = server.submit(inputs[2].clone()).expect("third admitted");
        assert!(matches!(doomed.wait(), Err(BitFlowError::DeadlineExceeded)));
        assert!(first.wait().is_ok());
        assert!(third.wait().is_ok());
        let snap = server.shutdown();
        assert_eq!(snap.rejected_queue_full, 0);
        assert_eq!(snap.shed_deadline, 1);
        assert_eq!(snap.accepted, 3);
        assert_eq!(snap.completed, 2);
    }

    #[test]
    fn cancelled_request_resolves_cancelled() {
        let (model, inputs) = model_and_inputs(1);
        let server = Server::start(
            model,
            ServerConfig {
                workers: 1,
                chaos: Some(always_stall(Duration::from_millis(200))),
                ..ServerConfig::default()
            },
        );
        let handle = server.submit(inputs[0].clone()).expect("admitted");
        handle.cancel();
        assert!(matches!(handle.wait(), Err(BitFlowError::Cancelled)));
        let snap = server.shutdown();
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn deadline_cuts_a_request_short() {
        let (model, inputs) = model_and_inputs(1);
        // Every operator sleeps 60ms; a 20ms budget cannot finish.
        let server = Server::start(
            model,
            ServerConfig {
                workers: 1,
                chaos: Some(ChaosConfig {
                    seed: 1,
                    slow_ppm: 1_000_000,
                    slow: Duration::from_millis(60),
                    ..ChaosConfig::default()
                }),
                ..ServerConfig::default()
            },
        );
        let handle = server
            .submit_with_deadline(inputs[0].clone(), Duration::from_millis(20))
            .expect("admitted");
        assert!(matches!(handle.wait(), Err(BitFlowError::DeadlineExceeded)));
        let snap = server.shutdown();
        // Cut mid-run or shed before running, depending on scheduling —
        // either way it is accounted exactly once.
        assert_eq!(snap.deadline_missed + snap.shed_deadline, 1);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn breaker_trips_after_consecutive_faults_and_recovers() {
        let (model, inputs) = model_and_inputs(8);
        let server = Server::start(
            Arc::clone(&model),
            ServerConfig {
                workers: 1,
                breaker: BreakerConfig {
                    fault_threshold: 3,
                    cooldown: Duration::from_millis(100),
                },
                // Every operator panics: each request is an isolated fault.
                chaos: Some(ChaosConfig {
                    seed: 1,
                    panic_ppm: 1_000_000,
                    ..ChaosConfig::default()
                }),
                ..ServerConfig::default()
            },
        );
        for input in inputs.iter().take(3) {
            let handle = server.submit(input.clone()).expect("admitted");
            match handle.wait() {
                Err(BitFlowError::Internal(msg)) => {
                    assert!(msg.contains("chaos"), "panic message survived: {msg}");
                    assert!(msg.contains("operator `"), "op attribution survived: {msg}");
                }
                other => panic!("expected Internal, got {other:?}"),
            }
        }
        // Third consecutive fault tripped the breaker: shedding.
        match server.submit(inputs[3].clone()) {
            Err(RejectReason::Shedding) => {}
            other => panic!("expected Shedding, got {other:?}"),
        }
        // After the cooldown, admissions resume.
        std::thread::sleep(Duration::from_millis(120));
        let readmitted = server.submit(inputs[4].clone());
        assert!(readmitted.is_ok(), "breaker must close after cooldown");
        let _ = readmitted.map(ResponseHandle::wait);
        let snap = server.shutdown();
        assert_eq!(snap.breaker_trips, 1);
        assert_eq!(snap.rejected_shedding, 1);
        assert_eq!(snap.worker_panics, 4);
        assert_eq!(snap.failed, 4);
    }

    #[test]
    fn worker_kills_restart_without_losing_responses() {
        let (model, inputs) = model_and_inputs(6);
        let server = Server::start(
            Arc::clone(&model),
            ServerConfig {
                workers: 2,
                // Every pop kills its worker after the response resolves.
                chaos: Some(ChaosConfig {
                    seed: 1,
                    kill_ppm: 1_000_000,
                    ..ChaosConfig::default()
                }),
                ..ServerConfig::default()
            },
        );
        let mut oracle_ctx = model.new_context();
        for input in &inputs {
            let want = model.try_infer(&mut oracle_ctx, input).expect("oracle");
            let handle = server.submit(input.clone()).expect("admitted");
            assert_eq!(handle.wait().expect("served across kills"), want);
        }
        let snap = server.shutdown();
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.worker_restarts, 6, "one restart per served pop");
    }

    #[test]
    fn shutdown_drains_queued_requests_and_rejects_new_ones() {
        let (model, inputs) = model_and_inputs(4);
        let server = Server::start(
            model,
            ServerConfig {
                workers: 1,
                chaos: Some(always_stall(Duration::from_millis(100))),
                ..ServerConfig::default()
            },
        );
        let handles: Vec<ResponseHandle> = inputs
            .iter()
            .take(3)
            .map(|i| server.submit(i.clone()).expect("admitted"))
            .collect();
        server.drain();
        match server.submit(inputs[3].clone()) {
            Err(RejectReason::Draining) => {}
            other => panic!("expected Draining, got {other:?}"),
        }
        let snap = server.shutdown();
        assert_eq!(snap.completed, 3, "drain serves everything already queued");
        assert_eq!(snap.rejected_draining, 1);
        assert_eq!(snap.queue_depth, 0);
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }
}
