//! The serving runtime: bounded admission queue, worker pool with
//! deadline-aware continuous micro-batching, multi-model tenancy,
//! circuit breaker, and response delivery.
//!
//! Invariants (the soak tests in `tests/serve_soak.rs` check all of them
//! under chaos):
//!
//! * Every admitted request **resolves exactly once** — with logits, or
//!   with a typed [`BitFlowError`]. Rejected submissions never allocate a
//!   response slot at all.
//! * [`bitflow_telemetry::ServeSnapshot`]'s conservation law holds **per
//!   model**: `submitted == accepted + rejected_*`, and once drained
//!   `accepted == completed + failed + shed_deadline + deadline_missed +
//!   cancelled`. Serving counters live on the [`ModelEntry`], so a
//!   multi-tenant server keeps one independent ledger per served name.
//! * A worker panic (injected or real) is isolated to its request; the
//!   worker replaces its scratch context and keeps serving. A panic that
//!   escapes the per-request backstop restarts the worker loop. Either
//!   way the pool never shrinks.
//! * Successful responses are bit-identical to serial `try_infer` on a
//!   fresh context — the engine's no-poisoning guarantee, exercised here
//!   across panics, cancellations, context replacement, and coalesced
//!   micro-batches (batch inference runs each item on its own context).
//!
//! **Micro-batching**: a worker pops the queue head, then greedily
//! coalesces queued requests that run the *same model `Arc`* and whose
//! deadlines can absorb the entry's measured batch latency
//! ([`ModelEntry`]'s EWMA), up to [`ServerConfig::max_batch`]. With a
//! non-zero [`ServerConfig::coalesce_window`] an under-full batch may
//! additionally wait for followers; the default window is zero, so calm
//! traffic is served immediately and p50 latency does not regress —
//! batches then only form when the queue is already deep, which is
//! exactly when amortising dispatch across requests buys goodput.
//!
//! **Tenancy**: [`Server::start_multi`] serves every entry of a
//! [`ModelRegistry`] from one queue and one worker pool. Each entry has
//! its own gauges and an optional admission quota charged at admission
//! and released at resolution, so one tenant cannot starve the others of
//! queue space. [`Server::client`] scopes submission to one entry;
//! [`ModelClient::swap`] hot-swaps its model with zero downtime.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bitflow_graph::engine::InferenceContext;
use bitflow_graph::{BatchItem, BitFlowError, CancelToken, CompiledModel, RejectReason};
use bitflow_telemetry::{FlightRecorder, ServeSnapshot, Stage, TraceBuilder};
use bitflow_tensor::Tensor;

use crate::chaos;
use crate::chaos::ChaosConfig;
use crate::config::{ServerConfig, ShedPolicy};
use crate::govern::{DegradationState, MemoryLease, ResourceGovernor};
use crate::registry::{ModelEntry, ModelRegistry};

/// Locks, treating poisoning as recovered: the runtime catches panics
/// around everything that runs under these locks, and the guarded state
/// stays consistent (counters and queues are updated atomically with
/// respect to the panic points).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One-shot response cell: worker resolves, caller waits.
#[derive(Default)]
struct ResponseSlot {
    result: Mutex<Option<Result<Vec<f32>, BitFlowError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    /// First resolution wins; later calls are no-ops (by construction
    /// there are none, but a response cell must not be able to flap).
    fn resolve(&self, r: Result<Vec<f32>, BitFlowError>) {
        let mut cell = lock(&self.result);
        if cell.is_none() {
            *cell = Some(r);
            self.ready.notify_all();
        }
    }
}

/// The caller's end of an admitted request.
pub struct ResponseHandle {
    id: u64,
    token: CancelToken,
    slot: Arc<ResponseSlot>,
}

impl std::fmt::Debug for ResponseHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseHandle")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl ResponseHandle {
    /// Server-assigned request id (also the chaos decision stream and the
    /// engine's inference tag inside micro-batches).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Cooperatively cancels the request. If it is still queued it
    /// resolves as [`BitFlowError::Cancelled`] without running; if it is
    /// mid-inference it stops at the next operator boundary.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// A clone of the request's cancellation token, for callers that
    /// outlive the handle (e.g. a connection-closed watcher).
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    #[must_use]
    pub fn try_wait(&self) -> Option<Result<Vec<f32>, BitFlowError>> {
        lock(&self.slot.result).take()
    }

    /// Blocks until the request resolves.
    pub fn wait(self) -> Result<Vec<f32>, BitFlowError> {
        let mut cell = lock(&self.slot.result);
        loop {
            if let Some(r) = cell.take() {
                return r;
            }
            cell = self
                .slot
                .ready
                .wait(cell)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A request's lifecycle trace as it travels the queue. `owned` traces
/// were opened by the server itself — finished and offered to the flight
/// recorder when the request resolves. A front-end-opened trace
/// (`owned == false`) is finished by the front end after the response
/// bytes leave the process, so the write stage lands in the same trace.
struct TraceRef {
    tb: Arc<TraceBuilder>,
    owned: bool,
}

/// One queued request. The model `Arc` is captured at admission: a hot
/// swap concurrent with this request does not change the weights it runs
/// against.
struct Request {
    id: u64,
    entry: Arc<ModelEntry>,
    model: Arc<CompiledModel>,
    input: Tensor,
    token: CancelToken,
    slot: Arc<ResponseSlot>,
    /// When the request entered the admission queue.
    enqueued_at: Instant,
    /// When a worker dequeued it (= `enqueued_at` until actually popped,
    /// so the queue-wait arithmetic is total even for evicted requests).
    popped_at: Instant,
    /// Lifecycle trace travelling with the request (`None`: tracing off).
    trace: Option<TraceRef>,
    /// The governor's byte charge for this request's payload, released
    /// (by drop) when the request resolves — whatever path resolves it.
    _lease: Option<MemoryLease>,
}

struct QueueState {
    items: VecDeque<Request>,
    draining: bool,
}

#[derive(Default)]
struct BreakerState {
    consecutive_faults: u32,
    open_until: Option<Instant>,
}

struct Shared {
    registry: ModelRegistry,
    default_entry: Arc<ModelEntry>,
    governor: Arc<ResourceGovernor>,
    config: ServerConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    breaker: Mutex<BreakerState>,
    next_id: AtomicU64,
    pops: AtomicU64,
}

impl Shared {
    /// Whether the breaker currently sheds admissions. An expired cooldown
    /// closes the breaker here, on the admission path — half-open probing
    /// is not modelled; after the cooldown the server simply trusts the
    /// pool again until faults re-accumulate.
    fn breaker_open(&self) -> bool {
        let mut b = lock(&self.breaker);
        match b.open_until {
            Some(until) if Instant::now() < until => true,
            Some(_) => {
                b.open_until = None;
                b.consecutive_faults = 0;
                false
            }
            None => false,
        }
    }

    fn breaker_fault(&self) {
        let mut b = lock(&self.breaker);
        b.consecutive_faults = b.consecutive_faults.saturating_add(1);
        if b.consecutive_faults >= self.config.breaker.fault_threshold && b.open_until.is_none() {
            b.open_until = Some(Instant::now() + self.config.breaker.cooldown);
            // The breaker guards the whole pool, so its trips land on the
            // default entry's gauges.
            self.default_entry.counters().breaker_trip();
        }
    }

    fn breaker_success(&self) {
        lock(&self.breaker).consecutive_faults = 0;
    }
}

/// The serving runtime. Dropping it drains: admissions stop
/// ([`RejectReason::Draining`]), queued requests are still served, workers
/// are joined.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a single-model server: the model is registered as
    /// [`crate::registry::DEFAULT_MODEL`], unmetered, and the
    /// [`Server::submit`] family targets it. If the model has telemetry
    /// enabled, serving counters land in the same
    /// [`bitflow_telemetry::MetricsSnapshot`] as its operator metrics;
    /// otherwise the server keeps standalone gauges (see
    /// [`Server::metrics`]).
    #[must_use]
    pub fn start(model: Arc<CompiledModel>, config: ServerConfig) -> Self {
        Self::start_multi(ModelRegistry::single(model), config)
    }

    /// Starts `config.workers` worker threads over every model in
    /// `registry`. One queue and one pool serve all tenants; per-model
    /// quotas and gauges keep them isolated and accountable. The first
    /// registered entry is the default the [`Server::submit`] family
    /// targets; use [`Server::client`] to address the others.
    ///
    /// If `config.chaos` injects operator faults, each model's fault hook
    /// is installed here (first installer wins — the hook slot is one per
    /// model).
    ///
    /// # Panics
    /// If the registry is empty.
    #[must_use]
    pub fn start_multi(registry: ModelRegistry, mut config: ServerConfig) -> Self {
        assert!(
            !registry.entries().is_empty(),
            "a server needs at least one registered model"
        );
        config.workers = config.workers.max(1);
        config.queue_capacity = config.queue_capacity.max(1);
        config.max_batch = config.max_batch.max(1);
        if let Some(chaos_cfg) = &config.chaos {
            if chaos_cfg.slow_ppm > 0 || chaos_cfg.panic_ppm > 0 {
                for entry in registry.entries() {
                    let _ = entry
                        .current()
                        .install_fault_hook(chaos::fault_hook(chaos_cfg.clone()));
                }
            }
        }
        let alloc_fail_nth = config.chaos.as_ref().map_or(0, |c| c.alloc_fail_nth);
        let governor = ResourceGovernor::new(config.govern, alloc_fail_nth);
        for entry in registry.entries() {
            let account = governor.tenant(entry.name(), &entry.gauges());
            entry.bind_account(Arc::clone(&account));
            // Weights are a forced charge: the server must start even
            // overcommitted — the pressure ratio then exceeds 1.0 and the
            // brownout machine degrades service instead of refusing to
            // exist. The lease follows the *served* model (hot swaps
            // re-lease); a displaced model draining its last requests is
            // transiently unaccounted, bounded by the drain.
            let model = entry.current();
            let bytes = (model.float_model_bytes() + model.packed_model_bytes()) as u64;
            let _ = entry.set_weight_lease(governor.reserve_forced(&account, bytes));
        }
        let default_entry = Arc::clone(&registry.entries()[0]);
        let shared = Arc::new(Shared {
            registry,
            default_entry,
            governor,
            config,
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                draining: false,
            }),
            available: Condvar::new(),
            breaker: Mutex::new(BreakerState::default()),
            next_id: AtomicU64::new(0),
            pops: AtomicU64::new(0),
        });
        let workers = (0..shared.config.workers)
            .map(|worker_id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bitflow-serve-{worker_id}"))
                    .spawn(move || worker_main(&shared, worker_id as u64))
            })
            .filter_map(Result::ok)
            .collect();
        Self { shared, workers }
    }

    /// Submits to the default model with the configured default deadline
    /// (if any).
    pub fn submit(&self, input: Tensor) -> Result<ResponseHandle, RejectReason> {
        let token = self.default_token();
        self.submit_inner(&Arc::clone(&self.shared.default_entry), input, token, None)
    }

    /// Submits to the default model with an explicit latency budget
    /// (overrides the default).
    pub fn submit_with_deadline(
        &self,
        input: Tensor,
        budget: Duration,
    ) -> Result<ResponseHandle, RejectReason> {
        self.submit_inner(
            &Arc::clone(&self.shared.default_entry),
            input,
            CancelToken::with_budget(budget),
            None,
        )
    }

    /// Submits to the default model with a caller-built token (deadline,
    /// external cancellation, or both). Never blocks: the request is
    /// either admitted or rejected with a typed reason, counted either
    /// way.
    pub fn submit_with_token(
        &self,
        input: Tensor,
        token: CancelToken,
    ) -> Result<ResponseHandle, RejectReason> {
        self.submit_inner(&Arc::clone(&self.shared.default_entry), input, token, None)
    }

    /// [`Server::submit_with_token`] with a caller-opened request trace:
    /// the server records its admit / queue-wait / batch-formation / exec
    /// stages (and the engine its operator spans) into `trace`, but does
    /// **not** finish it — the caller finishes and offers it to the
    /// recorder after the response leaves the process, so post-serve
    /// stages land in the same trace.
    pub fn submit_with_token_traced(
        &self,
        input: Tensor,
        token: CancelToken,
        trace: Arc<TraceBuilder>,
    ) -> Result<ResponseHandle, RejectReason> {
        self.submit_inner(
            &Arc::clone(&self.shared.default_entry),
            input,
            token,
            Some(trace),
        )
    }

    /// [`Server::submit_with_token_traced`] with deadline semantics
    /// matching the untraced entry points: `Some(budget)` behaves like
    /// [`Server::submit_with_deadline`], `None` applies the configured
    /// default deadline like [`Server::submit`]. This is what the network
    /// front-end uses so enabling tracing never changes deadline policy.
    pub fn submit_traced(
        &self,
        input: Tensor,
        deadline: Option<Duration>,
        trace: Arc<TraceBuilder>,
    ) -> Result<ResponseHandle, RejectReason> {
        let token = match deadline {
            Some(budget) => CancelToken::with_budget(budget),
            None => self.default_token(),
        };
        self.submit_inner(
            &Arc::clone(&self.shared.default_entry),
            input,
            token,
            Some(trace),
        )
    }

    fn default_token(&self) -> CancelToken {
        match self.shared.config.default_deadline {
            Some(budget) => CancelToken::with_budget(budget),
            None => CancelToken::new(),
        }
    }

    fn submit_inner(
        &self,
        entry: &Arc<ModelEntry>,
        input: Tensor,
        token: CancelToken,
        trace: Option<Arc<TraceBuilder>>,
    ) -> Result<ResponseHandle, RejectReason> {
        let sh = &self.shared;
        let t_submit = Instant::now();
        // A front-end trace is adopted as-is; otherwise the server opens
        // one itself when (and only when) a recorder is configured, so the
        // untraced submit path allocates nothing extra.
        let trace = match trace {
            Some(tb) => Some(TraceRef { tb, owned: false }),
            None => sh.config.recorder.as_ref().map(|_| TraceRef {
                tb: Arc::new(TraceBuilder::with_origin(String::new(), t_submit)),
                owned: true,
            }),
        };
        if let Some(t) = &trace {
            t.tb.set_tenant(entry.name());
        }
        entry.counters().submitted();
        if sh.breaker_open() {
            return Err(reject_traced(
                sh,
                entry,
                &trace,
                t_submit,
                RejectReason::Shedding,
            ));
        }
        let mut q = lock(&sh.queue);
        if q.draining {
            return Err(reject_traced(
                sh,
                entry,
                &trace,
                t_submit,
                RejectReason::Draining,
            ));
        }
        // Brownout: every submission re-evaluates the state machine (a
        // few relaxed loads), then the tenant's priority class decides
        // whether this state sheds it — before the request costs queue
        // space or bytes.
        sh.governor
            .evaluate(q.items.len(), sh.config.queue_capacity);
        if sh.governor.sheds(entry.priority()) {
            return Err(reject_traced(
                sh,
                entry,
                &trace,
                t_submit,
                RejectReason::MemoryPressure,
            ));
        }
        if q.items.len() >= sh.config.queue_capacity {
            match sh.config.shed_policy {
                ShedPolicy::RejectNewest => {
                    return Err(reject_traced(
                        sh,
                        entry,
                        &trace,
                        t_submit,
                        RejectReason::QueueFull,
                    ))
                }
                ShedPolicy::DeadlineAware => {
                    let dead = q
                        .items
                        .iter()
                        .position(|r| r.token.is_cancelled() || r.token.deadline_passed());
                    match dead.and_then(|i| q.items.remove(i)) {
                        Some(victim) => {
                            victim.entry.counters().dequeued();
                            resolve_dead(sh, &victim);
                        }
                        None => {
                            return Err(reject_traced(
                                sh,
                                entry,
                                &trace,
                                t_submit,
                                RejectReason::QueueFull,
                            ))
                        }
                    }
                }
            }
        }
        // The payload's byte charge rides just ahead of the quota: the
        // lease is RAII, so a quota reject below releases it by drop and
        // the "no reject path needs a release" discipline still holds.
        let lease = match entry.account() {
            Some(account) => {
                let bytes = std::mem::size_of_val(input.data()) as u64;
                match sh.governor.reserve(account, bytes, "request payload") {
                    Ok(lease) => Some(lease),
                    Err(_) => {
                        return Err(reject_traced(
                            sh,
                            entry,
                            &trace,
                            t_submit,
                            RejectReason::MemoryPressure,
                        ))
                    }
                }
            }
            None => None,
        };
        // Quota last, after every other reject: a charge is then always
        // matched by a queued request, and no reject path needs a release.
        if !entry.try_admit() {
            return Err(reject_traced(
                sh,
                entry,
                &trace,
                t_submit,
                RejectReason::QuotaExceeded,
            ));
        }
        let id = sh.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ResponseSlot::default());
        let now = Instant::now();
        if let Some(t) = &trace {
            t.tb.set_request_id(id);
            t.tb.stage(Stage::Admit, t_submit, now);
        }
        q.items.push_back(Request {
            id,
            entry: Arc::clone(entry),
            model: entry.current(),
            input,
            token: token.clone(),
            slot: Arc::clone(&slot),
            enqueued_at: now,
            popped_at: now,
            trace,
            _lease: lease,
        });
        entry.counters().enqueued();
        drop(q);
        sh.available.notify_one();
        Ok(ResponseHandle { id, token, slot })
    }

    /// A submission handle scoped to one registered model, or `None` if
    /// `name` is not registered. The client borrows the server: tenants
    /// cannot outlive the pool serving them.
    #[must_use]
    pub fn client(&self, name: &str) -> Option<ModelClient<'_>> {
        self.shared.registry.get(name).map(|entry| ModelClient {
            server: self,
            entry: Arc::clone(entry),
        })
    }

    /// The tenant set this server serves.
    #[must_use]
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// Point-in-time serving counters of the **default** model (shared
    /// with its telemetry when that is enabled). Per-tenant counters live
    /// on [`ModelClient::metrics`].
    #[must_use]
    pub fn metrics(&self) -> ServeSnapshot {
        self.shared.default_entry.counters().snapshot()
    }

    /// The default model's live gauges handle (e.g. to wire into an
    /// exporter).
    #[must_use]
    pub fn gauges(&self) -> Arc<bitflow_telemetry::ServeGauges> {
        self.shared.default_entry.gauges()
    }

    /// The flight recorder receiving finished request traces, if tracing
    /// is enabled — a network front-end shares it for its `/debug`
    /// endpoints and for offering its own connection-opened traces.
    #[must_use]
    pub fn recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.shared.config.recorder.clone()
    }

    /// Requests currently waiting in the admission queue (all tenants).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.queue).items.len()
    }

    /// The chaos configuration this server was started with, if any — a
    /// network front-end shares it so its connection/read/write fault
    /// streams ride the same seed as the op and pop streams.
    #[must_use]
    pub fn chaos(&self) -> Option<&ChaosConfig> {
        self.shared.config.chaos.as_ref()
    }

    /// Whether the circuit breaker is currently shedding admissions — the
    /// health signal a front-end's `/healthz` endpoint reports.
    #[must_use]
    pub fn breaker_open(&self) -> bool {
        self.shared.breaker_open()
    }

    /// The resource governor metering this server's byte budgets.
    #[must_use]
    pub fn governor(&self) -> &Arc<ResourceGovernor> {
        &self.shared.governor
    }

    /// Re-evaluates and returns the degradation state. Health endpoints
    /// poll this; the polling itself drives autonomous recovery — an
    /// idle server steps back toward `Normal` as soon as anything looks
    /// at it.
    #[must_use]
    pub fn degradation_state(&self) -> DegradationState {
        let depth = lock(&self.shared.queue).items.len();
        self.shared
            .governor
            .evaluate(depth, self.shared.config.queue_capacity)
    }

    /// Charges `bytes` of not-yet-read request body against `tenant`'s
    /// budget — the network front-end calls this before reading a body,
    /// so a hostile `content-length` is refused before a byte is
    /// buffered. `Ok(None)` when the tenant is unknown (the router 404s
    /// later) and when governance is unbound; `Err` maps to
    /// [`RejectReason::MemoryPressure`]. No serving counters move here:
    /// the request was never submitted, so the conservation law is
    /// untouched.
    pub fn reserve_body(
        &self,
        tenant: Option<&str>,
        bytes: u64,
    ) -> Result<Option<MemoryLease>, RejectReason> {
        let entry = match tenant {
            None => &self.shared.default_entry,
            Some(name) => match self.shared.registry.get(name) {
                Some(e) => e,
                None => return Ok(None),
            },
        };
        match entry.account() {
            Some(account) => match self.shared.governor.reserve(account, bytes, "request body") {
                Ok(lease) => Ok(Some(lease)),
                Err(_) => Err(RejectReason::MemoryPressure),
            },
            None => Ok(None),
        }
    }

    /// Whether the server has begun draining for shutdown. New
    /// submissions are rejected with [`RejectReason::Draining`].
    #[must_use]
    pub fn draining(&self) -> bool {
        lock(&self.shared.queue).draining
    }

    /// A coarse backoff hint for rejected submissions against the default
    /// tenant: the time to serve out the current queue at the tenant's
    /// observed batch cadence (EWMA), floored at one second so clients
    /// always back off a meaningful amount.
    #[must_use]
    pub fn retry_after_hint(&self) -> Duration {
        self.entry_retry_hint(&self.shared.default_entry)
    }

    fn entry_retry_hint(&self, entry: &ModelEntry) -> Duration {
        let depth = lock(&self.shared.queue).items.len() as u64;
        let max_batch = self.shared.config.max_batch.max(1) as u64;
        let workers = self.shared.config.workers.max(1) as u64;
        let batches = depth.div_ceil(max_batch);
        let ns = batches.saturating_mul(entry.est_batch_ns().max(1)) / workers;
        Duration::from_nanos(ns).max(Duration::from_secs(1))
    }

    /// Stops admissions without stopping the pool: from here on `submit`
    /// returns [`RejectReason::Draining`] while already-queued requests
    /// are still served. Irreversible; [`Server::shutdown`] completes it.
    pub fn drain(&self) {
        self.begin_drain();
    }

    /// Stops admissions, serves out the queue, joins the pool, and
    /// returns the default model's final counters.
    pub fn shutdown(mut self) -> ServeSnapshot {
        self.begin_drain();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.shared.default_entry.counters().snapshot()
    }

    fn begin_drain(&self) {
        lock(&self.shared.queue).draining = true;
        self.shared.available.notify_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_drain();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A submission handle scoped to one tenant of a multi-model server.
pub struct ModelClient<'a> {
    server: &'a Server,
    entry: Arc<ModelEntry>,
}

impl std::fmt::Debug for ModelClient<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelClient")
            .field("entry", &self.entry)
            .finish_non_exhaustive()
    }
}

impl ModelClient<'_> {
    /// Submits to this tenant with the server's default deadline (if any).
    pub fn submit(&self, input: Tensor) -> Result<ResponseHandle, RejectReason> {
        let token = self.server.default_token();
        self.server.submit_inner(&self.entry, input, token, None)
    }

    /// Submits to this tenant with an explicit latency budget.
    pub fn submit_with_deadline(
        &self,
        input: Tensor,
        budget: Duration,
    ) -> Result<ResponseHandle, RejectReason> {
        self.server
            .submit_inner(&self.entry, input, CancelToken::with_budget(budget), None)
    }

    /// Submits to this tenant with a caller-built token.
    pub fn submit_with_token(
        &self,
        input: Tensor,
        token: CancelToken,
    ) -> Result<ResponseHandle, RejectReason> {
        self.server.submit_inner(&self.entry, input, token, None)
    }

    /// Submits to this tenant with a caller-opened request trace (see
    /// [`Server::submit_with_token_traced`]).
    pub fn submit_with_token_traced(
        &self,
        input: Tensor,
        token: CancelToken,
        trace: Arc<TraceBuilder>,
    ) -> Result<ResponseHandle, RejectReason> {
        self.server
            .submit_inner(&self.entry, input, token, Some(trace))
    }

    /// Traced submission with the same deadline semantics as the untraced
    /// entry points (see [`Server::submit_traced`]).
    pub fn submit_traced(
        &self,
        input: Tensor,
        deadline: Option<Duration>,
        trace: Arc<TraceBuilder>,
    ) -> Result<ResponseHandle, RejectReason> {
        let token = match deadline {
            Some(budget) => CancelToken::with_budget(budget),
            None => self.server.default_token(),
        };
        self.server
            .submit_inner(&self.entry, input, token, Some(trace))
    }

    /// The registry entry this client submits to.
    #[must_use]
    pub fn entry(&self) -> &Arc<ModelEntry> {
        &self.entry
    }

    /// This tenant's point-in-time serving counters.
    #[must_use]
    pub fn metrics(&self) -> ServeSnapshot {
        self.entry.counters().snapshot()
    }

    /// A coarse backoff hint for rejected submissions against this
    /// tenant, from the shared queue depth and the tenant's batch EWMA.
    #[must_use]
    pub fn retry_after_hint(&self) -> Duration {
        self.server.entry_retry_hint(&self.entry)
    }

    /// Hot-swaps this tenant's model with zero downtime: in-flight and
    /// queued requests finish on the weights they were admitted with;
    /// subsequent admissions run `new`. Returns the displaced model. If
    /// the server injects operator chaos, the replacement gets the fault
    /// hook before it can serve.
    pub fn swap(&self, new: Arc<CompiledModel>) -> Arc<CompiledModel> {
        if let Some(chaos_cfg) = &self.server.shared.config.chaos {
            if chaos_cfg.slow_ppm > 0 || chaos_cfg.panic_ppm > 0 {
                let _ = new.install_fault_hook(chaos::fault_hook(chaos_cfg.clone()));
            }
        }
        let bytes = (new.float_model_bytes() + new.packed_model_bytes()) as u64;
        let old = self.entry.swap_model(new);
        // Re-lease the weight charge for the replacement; dropping the
        // displaced lease releases the old model's bytes.
        if let Some(account) = self.entry.account() {
            let lease = self.server.shared.governor.reserve_forced(account, bytes);
            drop(self.entry.set_weight_lease(lease));
        }
        old
    }
}

/// Counts a rejection on the entry's ledger and passes the reason through.
fn reject(entry: &ModelEntry, reason: RejectReason) -> RejectReason {
    entry.counters().rejected(reason.label());
    reason
}

/// [`reject`] plus trace bookkeeping: stamps the admit stage and a
/// `rejected:*` outcome, and (for server-owned traces) finishes the trace
/// into the recorder — so every shed admission is visible in the flight
/// recorder, per its always-retain-errors policy.
fn reject_traced(
    shared: &Shared,
    entry: &ModelEntry,
    trace: &Option<TraceRef>,
    t_submit: Instant,
    reason: RejectReason,
) -> RejectReason {
    if let Some(t) = trace {
        t.tb.stage(Stage::Admit, t_submit, Instant::now());
        t.tb.set_outcome(&format!("rejected:{}", reason.label()));
        finish_owned(shared, t);
    }
    reject(entry, reason)
}

/// Finishes a server-owned trace into the recorder; a front-end-owned
/// trace is left open for the front end to finish after the write stage.
fn finish_owned(shared: &Shared, t: &TraceRef) {
    if t.owned {
        if let Some(rec) = &shared.config.recorder {
            rec.offer(t.tb.finish());
        }
    }
}

/// Resolves a request that died in the queue (evicted by deadline-aware
/// shedding, or popped already-dead): caller cancellation wins over
/// deadline expiry, mirroring [`CancelToken::check`]. Releases the
/// request's quota charge.
fn resolve_dead(shared: &Shared, req: &Request) {
    let now = Instant::now();
    req.entry
        .counters()
        .record_queue_wait_ns(now.saturating_duration_since(req.enqueued_at).as_nanos() as u64);
    if req.token.is_cancelled() {
        req.entry.counters().cancelled();
        req.slot.resolve(Err(BitFlowError::Cancelled));
    } else {
        req.entry.counters().shed_deadline();
        shared.governor.record_outcome(true);
        req.slot.resolve(Err(BitFlowError::DeadlineExceeded));
    }
    if let Some(t) = &req.trace {
        t.tb.stage(Stage::QueueWait, req.enqueued_at, now);
        t.tb.set_outcome(if req.token.is_cancelled() {
            "cancelled"
        } else {
            "shed:deadline"
        });
        finish_owned(shared, t);
    }
    req.entry.release();
}

/// A worker's scratch context, keyed by the model it was built for. In a
/// multi-model server a worker hops between tenants; the cache rebuilds
/// only when the served model actually changes (hot swap or tenant hop),
/// so the common single-tenant path reuses one context forever.
#[derive(Default)]
struct CtxCache {
    /// Model, its scratch context, and the governor's byte charge for
    /// that context (held while cached; released when the worker hops
    /// to another model or exits).
    slot: Option<(Arc<CompiledModel>, InferenceContext, Option<MemoryLease>)>,
}

impl CtxCache {
    /// The cached context for `model`, building one fallibly on a miss:
    /// the allocation goes through [`CompiledModel::try_new_context`]
    /// and its bytes are charged to the request's tenant — the typed
    /// error on refusal fails one request instead of aborting the
    /// worker.
    fn try_ctx_for(
        &mut self,
        shared: &Shared,
        req: &Request,
    ) -> Result<&mut InferenceContext, BitFlowError> {
        let model = &req.model;
        let stale = match &self.slot {
            Some((cached, _, _)) => !Arc::ptr_eq(cached, model),
            None => true,
        };
        if stale {
            // Free the displaced context's charge before building the
            // replacement, so a tight budget can still hop tenants.
            self.slot = None;
            let ctx = model.try_new_context()?;
            let lease = match req.entry.account() {
                Some(account) => Some(shared.governor.reserve(
                    account,
                    ctx.activation_bytes() as u64,
                    "inference context",
                )?),
                None => None,
            };
            self.slot = Some((Arc::clone(model), ctx, lease));
        }
        match &mut self.slot {
            Some((_, ctx, _)) => Ok(ctx),
            None => unreachable!("slot was just filled"),
        }
    }

    /// Replaces the cached context after an isolated fault (the scratch
    /// state is suspect). Same model, same footprint: the existing
    /// lease stays.
    fn replace(&mut self) {
        if let Some((model, ctx, _)) = &mut self.slot {
            *ctx = model.new_context();
        }
    }
}

/// Whether the engine's parallel batch path has any hardware parallelism
/// to exploit (cached: the answer cannot change mid-process).
fn batch_parallelism_available() -> bool {
    static PAR: OnceLock<bool> = OnceLock::new();
    *PAR.get_or_init(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get) > 1)
}

/// Whether a request's deadline can absorb an estimated batch latency.
/// No estimate yet (`est_ns == 0`) or no deadline → always fits.
fn deadline_fits(token: &CancelToken, est_ns: u64) -> bool {
    if est_ns == 0 {
        return true;
    }
    match token.deadline() {
        Some(d) => Instant::now() + Duration::from_nanos(est_ns) <= d,
        None => true,
    }
}

/// Greedily moves queued requests compatible with `batch[0]` — same model
/// `Arc`, deadline fits the entry's batch-latency estimate — into the
/// batch, preserving queue order among the rest.
fn take_compatible(q: &mut QueueState, batch: &mut Vec<Request>, max_batch: usize) {
    let est = batch[0].entry.est_batch_ns();
    let mut i = 0;
    while batch.len() < max_batch && i < q.items.len() {
        let fits = Arc::ptr_eq(&q.items[i].model, &batch[0].model)
            && deadline_fits(&q.items[i].token, est);
        if fits {
            match q.items.remove(i) {
                Some(mut req) => {
                    req.popped_at = Instant::now();
                    req.entry.counters().dequeued();
                    batch.push(req);
                }
                None => break,
            }
        } else {
            i += 1;
        }
    }
}

/// Blocks for the next micro-batch: pops the queue head, coalesces
/// compatible followers, and (with a non-zero coalesce window) waits a
/// bounded time for more. Returns `None` when the queue is drained dry.
fn pop_batch(shared: &Shared) -> Option<Vec<Request>> {
    let mut q = lock(&shared.queue);
    let head = loop {
        if let Some(mut req) = q.items.pop_front() {
            req.popped_at = Instant::now();
            req.entry.counters().dequeued();
            break req;
        }
        if q.draining {
            return None;
        }
        q = shared
            .available
            .wait(q)
            .unwrap_or_else(PoisonError::into_inner);
    };
    let max = shared.config.max_batch;
    let mut batch = vec![head];
    if max > 1 {
        take_compatible(&mut q, &mut batch, max);
        // Brownout shrinks the window (and Shed zeroes it): a pressured
        // server serves-and-frees instead of holding requests to wait
        // for company.
        let window = shared.governor.scaled_window(shared.config.coalesce_window);
        if batch.len() < max && window > Duration::ZERO && !q.draining {
            // Cap the wait by what the head's deadline can absorb: a batch
            // that forms too late to serve its own head is worse than no
            // batch at all.
            let est = batch[0].entry.est_batch_ns();
            let cap = Instant::now() + window;
            let wait_until = match batch[0].token.deadline() {
                Some(d) => d
                    .checked_sub(Duration::from_nanos(est))
                    .map_or(cap, |latest| latest.min(cap)),
                None => cap,
            };
            loop {
                let now = Instant::now();
                if now >= wait_until || batch.len() >= max || q.draining {
                    break;
                }
                let (guard, timeout) = shared
                    .available
                    .wait_timeout(q, wait_until - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
                take_compatible(&mut q, &mut batch, max);
                if timeout.timed_out() {
                    break;
                }
            }
        }
        if !q.items.is_empty() {
            // Incompatible requests may remain; make sure another worker
            // wakes for them (this worker consumed notifications while
            // coalescing).
            shared.available.notify_one();
        }
    }
    Some(batch)
}

/// The watchdog shell around one worker: restarts the serving loop (with
/// a fresh context cache — the old one is mid-panic suspect) until it
/// exits cleanly at drain. Restarts are counted but never give up: a
/// worker that keeps dying keeps coming back, and the circuit breaker —
/// not the pool size — is what turns persistent faults into load
/// shedding.
fn worker_main(shared: &Shared, worker_id: u64) {
    loop {
        let mut cache = CtxCache::default();
        let exited = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(shared, worker_id, &mut cache)
        }));
        match exited {
            Ok(()) => return,
            Err(_) => shared.default_entry.counters().worker_restart(),
        }
    }
}

/// Pops and serves micro-batches until drain completes. Panics escape to
/// [`worker_main`] only from the chaos kill site or a bug in this crate —
/// inference panics are contained per-request inside the engine.
fn worker_loop(shared: &Shared, worker_id: u64, cache: &mut CtxCache) {
    loop {
        let Some(batch) = pop_batch(shared) else {
            return;
        };
        let pop = shared.pops.fetch_add(1, Ordering::Relaxed);
        if let Some(chaos_cfg) = &shared.config.chaos {
            if chaos_cfg.stall_hit(worker_id, pop) {
                std::thread::sleep(chaos_cfg.stall);
            }
        }
        serve_batch(shared, cache, batch);
        if let Some(chaos_cfg) = &shared.config.chaos {
            if chaos_cfg.kill_hit(worker_id, pop) {
                // After `serve_batch`: every popped request has resolved,
                // so killing the loop here can only cost a restart, never
                // a response.
                panic!("chaos: injected worker kill (worker {worker_id}, pop {pop})");
            }
        }
    }
}

/// Serves one popped micro-batch and resolves every slot. Exactly one
/// outcome counter fires per request, keeping the conservation law exact.
fn serve_batch(shared: &Shared, cache: &mut CtxCache, batch: Vec<Request>) {
    // Dead on arrival: don't spend an inference run on them.
    let mut live: Vec<Request> = Vec::with_capacity(batch.len());
    for req in batch {
        if req.token.is_cancelled() || req.token.deadline_passed() {
            resolve_dead(shared, &req);
        } else {
            live.push(req);
        }
    }
    let Some(head) = live.first() else { return };
    let entry = Arc::clone(&head.entry);
    entry.counters().batch_served(live.len() as u64);
    let started = Instant::now();
    // Stage accounting: queue wait (enqueue → dequeue) and batch-formation
    // wait (dequeue → execution start) — always into the entry's
    // histograms, and into each request's trace when tracing is on.
    let window_us = shared.config.coalesce_window.as_micros() as u64;
    let est_batch_ns = entry.est_batch_ns();
    for req in &live {
        req.entry.counters().record_queue_wait_ns(
            req.popped_at
                .saturating_duration_since(req.enqueued_at)
                .as_nanos() as u64,
        );
        req.entry.counters().record_batch_wait_ns(
            started.saturating_duration_since(req.popped_at).as_nanos() as u64,
        );
        if let Some(t) = &req.trace {
            t.tb.stage(Stage::QueueWait, req.enqueued_at, req.popped_at);
            t.tb.stage(Stage::BatchWait, req.popped_at, started);
            t.tb.set_batch(live.len() as u64, window_us, est_batch_ns);
        }
    }
    if live.len() == 1 || !batch_parallelism_available() {
        // Singletons, and whole batches on a single-hardware-thread host:
        // serve back-to-back on this worker's cached context. The
        // engine's parallel batch path would pay rayon dispatch plus a
        // fresh context per chunk with nothing to gain here — coalescing
        // still amortises queue pops and wakeups, which is all batching
        // can buy without spare cores. Items share one model
        // (`take_compatible` groups by model), so the cache stays warm.
        for req in &live {
            let ctx = match cache.try_ctx_for(shared, req) {
                Ok(ctx) => ctx,
                Err(e) => {
                    // Context creation refused (budget or injected
                    // allocation failure): this request fails typed, the
                    // worker lives, and the next pop retries the build.
                    account(shared, req, Err(e));
                    continue;
                }
            };
            let t0 = Instant::now();
            let result = req.model.catch_fault(|| {
                let _tag = bitflow_graph::enter_infer_tag(req.id);
                let _trace = req
                    .trace
                    .as_ref()
                    .map(|t| bitflow_graph::enter_trace_scope(Arc::clone(&t.tb)));
                req.model.try_infer_cancellable(ctx, &req.input, &req.token)
            });
            let t1 = Instant::now();
            req.entry
                .counters()
                .record_exec_ns(t1.saturating_duration_since(t0).as_nanos() as u64);
            if let Some(t) = &req.trace {
                t.tb.stage(Stage::Exec, t0, t1);
            }
            if matches!(result, Err(BitFlowError::Internal(_))) {
                // A panic was isolated inside inference; the cached
                // context's scratch state is suspect.
                cache.replace();
            }
            account(shared, req, result);
        }
    } else {
        let items: Vec<BatchItem<'_>> = live
            .iter()
            .map(|r| BatchItem {
                input: &r.input,
                cancel: &r.token,
                tag: r.id,
                trace: r.trace.as_ref().map(|t| Arc::clone(&t.tb)),
            })
            .collect();
        // Batch inference runs each chunk on its own fresh context, so a
        // panic in one item never poisons another's result — and the
        // worker's cached context is untouched.
        let t0 = Instant::now();
        let results = head.model.try_infer_batch_cancellable(&items);
        let t1 = Instant::now();
        // Items run concurrently inside the engine call, so per-request
        // exec is the whole batch's span; the operator spans inside the
        // trace carry the item-exact timings.
        let exec_ns = t1.saturating_duration_since(t0).as_nanos() as u64;
        for (req, result) in live.iter().zip(results) {
            req.entry.counters().record_exec_ns(exec_ns);
            if let Some(t) = &req.trace {
                t.tb.stage(Stage::Exec, t0, t1);
            }
            account(shared, req, result);
        }
    }
    entry.record_batch_ns(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
}

/// Counts one request's outcome on its entry's ledger, resolves its slot,
/// and releases its quota charge.
fn account(shared: &Shared, req: &Request, result: Result<Vec<f32>, BitFlowError>) {
    match &result {
        Ok(_) => {
            req.entry.counters().completed();
            shared.governor.record_outcome(false);
            shared.breaker_success();
        }
        Err(BitFlowError::Cancelled) => req.entry.counters().cancelled(),
        Err(BitFlowError::DeadlineExceeded) => {
            req.entry.counters().deadline_missed();
            shared.governor.record_outcome(true);
        }
        Err(BitFlowError::Internal(_)) => {
            // A panic isolated inside inference. This is the only outcome
            // that feeds the breaker.
            req.entry.counters().worker_panic();
            req.entry.counters().failed();
            shared.breaker_fault();
        }
        Err(_) => req.entry.counters().failed(),
    }
    if let Some(t) = &req.trace {
        if let Err(e) = &result {
            t.tb.set_outcome(match e {
                BitFlowError::Cancelled => "cancelled",
                BitFlowError::DeadlineExceeded => "deadline",
                BitFlowError::Internal(_) => "error:panic",
                _ => "error",
            });
        }
        finish_owned(shared, t);
    }
    req.slot.resolve(result);
    req.entry.release();
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::chaos::ChaosConfig;
    use crate::config::BreakerConfig;
    use bitflow_graph::models::small_cnn;
    use bitflow_graph::weights::NetworkWeights;
    use bitflow_tensor::Layout;
    use rand::{rngs::StdRng, SeedableRng};

    fn model_with_seed(seed: u64) -> Arc<CompiledModel> {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        Arc::new(CompiledModel::try_compile(&spec, &weights).expect("seed model compiles"))
    }

    fn model_and_inputs(n: usize) -> (Arc<CompiledModel>, Vec<Tensor>) {
        let spec = small_cnn();
        let mut rng = StdRng::seed_from_u64(42);
        let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        let model = CompiledModel::try_compile(&spec, &weights).expect("seed model compiles");
        let inputs = (0..n)
            .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
            .collect();
        (Arc::new(model), inputs)
    }

    /// Chaos that always stalls each pop for `stall`, and nothing else.
    fn always_stall(stall: Duration) -> ChaosConfig {
        ChaosConfig {
            seed: 1,
            stall_ppm: 1_000_000,
            stall,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn responses_match_serial_inference() {
        let (model, inputs) = model_and_inputs(8);
        let server = Server::start(Arc::clone(&model), ServerConfig::default());
        let handles: Vec<ResponseHandle> = inputs
            .iter()
            .map(|i| server.submit(i.clone()).expect("admitted"))
            .collect();
        let mut oracle_ctx = model.new_context();
        for (input, handle) in inputs.iter().zip(handles) {
            let want = model.try_infer(&mut oracle_ctx, input).expect("oracle");
            assert_eq!(handle.wait().expect("served"), want);
        }
        let snap = server.shutdown();
        assert_eq!(snap.submitted, 8);
        assert_eq!(snap.accepted, 8);
        assert_eq!(snap.completed, 8);
        assert_eq!(snap.queue_depth, 0);
    }

    #[test]
    fn full_queue_rejects_newest() {
        let (model, inputs) = model_and_inputs(4);
        let server = Server::start(
            model,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                chaos: Some(always_stall(Duration::from_millis(300))),
                ..ServerConfig::default()
            },
        );
        let first = server.submit(inputs[0].clone()).expect("first admitted");
        // Let the worker pop the first request and enter its stall, so
        // the queue is empty again and its single slot is free.
        std::thread::sleep(Duration::from_millis(50));
        let second = server.submit(inputs[1].clone()).expect("second admitted");
        match server.submit(inputs[2].clone()) {
            Err(RejectReason::QueueFull) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert!(first.wait().is_ok());
        assert!(second.wait().is_ok());
        let snap = server.shutdown();
        assert_eq!(snap.rejected_queue_full, 1);
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.accepted, 2);
    }

    #[test]
    fn deadline_aware_shedding_evicts_dead_entries() {
        let (model, inputs) = model_and_inputs(4);
        let server = Server::start(
            model,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                shed_policy: ShedPolicy::DeadlineAware,
                chaos: Some(always_stall(Duration::from_millis(300))),
                ..ServerConfig::default()
            },
        );
        let first = server.submit(inputs[0].clone()).expect("first admitted");
        std::thread::sleep(Duration::from_millis(50));
        // Queued with a deadline that expires while it waits.
        let doomed = server
            .submit_with_deadline(inputs[1].clone(), Duration::from_millis(1))
            .expect("doomed admitted");
        std::thread::sleep(Duration::from_millis(10));
        // Queue is full, but the queued entry is dead: evicted, admitted.
        let third = server.submit(inputs[2].clone()).expect("third admitted");
        assert!(matches!(doomed.wait(), Err(BitFlowError::DeadlineExceeded)));
        assert!(first.wait().is_ok());
        assert!(third.wait().is_ok());
        let snap = server.shutdown();
        assert_eq!(snap.rejected_queue_full, 0);
        assert_eq!(snap.shed_deadline, 1);
        assert_eq!(snap.accepted, 3);
        assert_eq!(snap.completed, 2);
    }

    #[test]
    fn cancelled_request_resolves_cancelled() {
        let (model, inputs) = model_and_inputs(1);
        let server = Server::start(
            model,
            ServerConfig {
                workers: 1,
                chaos: Some(always_stall(Duration::from_millis(200))),
                ..ServerConfig::default()
            },
        );
        let handle = server.submit(inputs[0].clone()).expect("admitted");
        handle.cancel();
        assert!(matches!(handle.wait(), Err(BitFlowError::Cancelled)));
        let snap = server.shutdown();
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn deadline_cuts_a_request_short() {
        let (model, inputs) = model_and_inputs(1);
        // Every operator sleeps 60ms; a 20ms budget cannot finish.
        let server = Server::start(
            model,
            ServerConfig {
                workers: 1,
                chaos: Some(ChaosConfig {
                    seed: 1,
                    slow_ppm: 1_000_000,
                    slow: Duration::from_millis(60),
                    ..ChaosConfig::default()
                }),
                ..ServerConfig::default()
            },
        );
        let handle = server
            .submit_with_deadline(inputs[0].clone(), Duration::from_millis(20))
            .expect("admitted");
        assert!(matches!(handle.wait(), Err(BitFlowError::DeadlineExceeded)));
        let snap = server.shutdown();
        // Cut mid-run or shed before running, depending on scheduling —
        // either way it is accounted exactly once.
        assert_eq!(snap.deadline_missed + snap.shed_deadline, 1);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn breaker_trips_after_consecutive_faults_and_recovers() {
        let (model, inputs) = model_and_inputs(8);
        let server = Server::start(
            Arc::clone(&model),
            ServerConfig {
                workers: 1,
                breaker: BreakerConfig {
                    fault_threshold: 3,
                    cooldown: Duration::from_millis(100),
                },
                // Every operator panics: each request is an isolated fault.
                chaos: Some(ChaosConfig {
                    seed: 1,
                    panic_ppm: 1_000_000,
                    ..ChaosConfig::default()
                }),
                ..ServerConfig::default()
            },
        );
        for input in inputs.iter().take(3) {
            let handle = server.submit(input.clone()).expect("admitted");
            match handle.wait() {
                Err(BitFlowError::Internal(msg)) => {
                    assert!(msg.contains("chaos"), "panic message survived: {msg}");
                    assert!(msg.contains("operator `"), "op attribution survived: {msg}");
                }
                other => panic!("expected Internal, got {other:?}"),
            }
        }
        // Third consecutive fault tripped the breaker: shedding.
        match server.submit(inputs[3].clone()) {
            Err(RejectReason::Shedding) => {}
            other => panic!("expected Shedding, got {other:?}"),
        }
        // After the cooldown, admissions resume.
        std::thread::sleep(Duration::from_millis(120));
        let readmitted = server.submit(inputs[4].clone());
        assert!(readmitted.is_ok(), "breaker must close after cooldown");
        let _ = readmitted.map(ResponseHandle::wait);
        let snap = server.shutdown();
        assert_eq!(snap.breaker_trips, 1);
        assert_eq!(snap.rejected_shedding, 1);
        assert_eq!(snap.worker_panics, 4);
        assert_eq!(snap.failed, 4);
    }

    #[test]
    fn worker_kills_restart_without_losing_responses() {
        let (model, inputs) = model_and_inputs(6);
        let server = Server::start(
            Arc::clone(&model),
            ServerConfig {
                workers: 2,
                // Every pop kills its worker after the response resolves.
                chaos: Some(ChaosConfig {
                    seed: 1,
                    kill_ppm: 1_000_000,
                    ..ChaosConfig::default()
                }),
                ..ServerConfig::default()
            },
        );
        let mut oracle_ctx = model.new_context();
        for input in &inputs {
            let want = model.try_infer(&mut oracle_ctx, input).expect("oracle");
            let handle = server.submit(input.clone()).expect("admitted");
            assert_eq!(handle.wait().expect("served across kills"), want);
        }
        let snap = server.shutdown();
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.worker_restarts, 6, "one restart per served pop");
    }

    #[test]
    fn shutdown_drains_queued_requests_and_rejects_new_ones() {
        let (model, inputs) = model_and_inputs(4);
        let server = Server::start(
            model,
            ServerConfig {
                workers: 1,
                chaos: Some(always_stall(Duration::from_millis(100))),
                ..ServerConfig::default()
            },
        );
        let handles: Vec<ResponseHandle> = inputs
            .iter()
            .take(3)
            .map(|i| server.submit(i.clone()).expect("admitted"))
            .collect();
        server.drain();
        match server.submit(inputs[3].clone()) {
            Err(RejectReason::Draining) => {}
            other => panic!("expected Draining, got {other:?}"),
        }
        let snap = server.shutdown();
        assert_eq!(snap.completed, 3, "drain serves everything already queued");
        assert_eq!(snap.rejected_draining, 1);
        assert_eq!(snap.queue_depth, 0);
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }

    #[test]
    fn micro_batches_coalesce_and_match_serial() {
        let (model, inputs) = model_and_inputs(32);
        // One worker that stalls 100ms per pop: submissions pile up behind
        // the first pop, so later pops must coalesce real batches.
        let server = Server::start(
            Arc::clone(&model),
            ServerConfig {
                workers: 1,
                max_batch: 8,
                chaos: Some(always_stall(Duration::from_millis(100))),
                ..ServerConfig::default()
            },
        );
        let handles: Vec<ResponseHandle> = inputs
            .iter()
            .map(|i| server.submit(i.clone()).expect("admitted"))
            .collect();
        let mut oracle_ctx = model.new_context();
        for (input, handle) in inputs.iter().zip(handles) {
            let want = model.try_infer(&mut oracle_ctx, input).expect("oracle");
            assert_eq!(
                handle.wait().expect("served"),
                want,
                "batched responses must be bit-identical to serial inference"
            );
        }
        let snap = server.shutdown();
        assert_eq!(snap.completed, 32);
        assert_eq!(snap.batch_items, 32, "every request served via a batch");
        assert!(
            snap.batches < 32,
            "a deep queue must coalesce, got {} batches",
            snap.batches
        );
        assert!(snap.batch_size_max > 1);
        assert!(
            snap.batch_size_max <= 8,
            "max_batch bounds coalescing, got {}",
            snap.batch_size_max
        );
    }

    #[test]
    fn coalesce_window_waits_for_followers() {
        let (model, inputs) = model_and_inputs(2);
        let server = Server::start(
            model,
            ServerConfig {
                workers: 1,
                max_batch: 2,
                coalesce_window: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        );
        let h1 = server.submit(inputs[0].clone()).expect("admitted");
        std::thread::sleep(Duration::from_millis(20));
        let h2 = server.submit(inputs[1].clone()).expect("admitted");
        assert!(h1.wait().is_ok());
        assert!(h2.wait().is_ok());
        let snap = server.shutdown();
        // Whether the worker popped before or after the second submission,
        // the window merges both requests into one batch.
        assert_eq!(snap.batches, 1, "window must coalesce the follower");
        assert_eq!(snap.batch_items, 2);
        assert_eq!(snap.batch_size_max, 2);
    }

    #[test]
    fn drain_races_submit_without_losing_work() {
        let (model, inputs) = model_and_inputs(1);
        let server = Arc::new(Server::start(
            model,
            ServerConfig {
                workers: 2,
                queue_capacity: 4096,
                ..ServerConfig::default()
            },
        ));
        let submitter = {
            let server = Arc::clone(&server);
            let input = inputs[0].clone();
            std::thread::spawn(move || {
                let mut admitted = Vec::new();
                loop {
                    match server.submit(input.clone()) {
                        Ok(handle) => admitted.push(handle),
                        Err(RejectReason::Draining) => break,
                        // A tight submit loop can outrun the pool.
                        Err(RejectReason::QueueFull) => {}
                        Err(other) => panic!("unexpected rejection: {other:?}"),
                    }
                }
                // Draining is irreversible: later submissions must keep
                // being rejected the same way.
                for _ in 0..16 {
                    match server.submit(input.clone()) {
                        Err(RejectReason::Draining) => {}
                        other => panic!("expected Draining after drain, got {other:?}"),
                    }
                }
                admitted
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        server.drain();
        let admitted = submitter.join().expect("submitter thread");
        let accepted = admitted.len() as u64;
        for handle in admitted {
            assert!(
                handle.wait().is_ok(),
                "admitted work must be served across the drain race"
            );
        }
        let snap = server.metrics();
        assert!(snap.rejected_draining >= 16);
        assert_eq!(snap.accepted, accepted);
        assert_eq!(
            snap.submitted,
            snap.accepted + snap.rejected_draining + snap.rejected_queue_full,
            "conservation across the submit/drain race"
        );
        assert_eq!(snap.completed, accepted, "no admitted request was lost");
    }

    #[test]
    fn multi_model_tenancy_isolates_quotas_and_counters() {
        let model_a = model_with_seed(42);
        let model_b = model_with_seed(7);
        let (_, inputs) = model_and_inputs(5);
        let mut registry = ModelRegistry::new();
        registry.register("a", Arc::clone(&model_a), None);
        registry.register("b", Arc::clone(&model_b), Some(2));
        // One worker stalled 200ms per pop: quota-charged requests stay
        // unresolved while we submit, making the quota outcome exact.
        let server = Server::start_multi(
            registry,
            ServerConfig {
                workers: 1,
                max_batch: 8,
                chaos: Some(always_stall(Duration::from_millis(200))),
                ..ServerConfig::default()
            },
        );
        assert!(server.client("c").is_none(), "unknown tenant");
        let client_a = server.client("a").expect("registered");
        let client_b = server.client("b").expect("registered");

        let mut b_handles = Vec::new();
        let mut b_rejected = 0u64;
        for input in &inputs {
            match client_b.submit(input.clone()) {
                Ok(h) => b_handles.push(h),
                Err(RejectReason::QuotaExceeded) => b_rejected += 1,
                Err(other) => panic!("unexpected rejection: {other:?}"),
            }
        }
        assert_eq!(b_handles.len(), 2, "quota admits exactly two");
        assert_eq!(b_rejected, 3);
        let a_handles: Vec<ResponseHandle> = inputs
            .iter()
            .take(4)
            .map(|i| client_a.submit(i.clone()).expect("unmetered tenant admits"))
            .collect();

        let mut ctx_a = model_a.new_context();
        let mut ctx_b = model_b.new_context();
        for (input, handle) in inputs.iter().zip(b_handles) {
            let want = model_b.try_infer(&mut ctx_b, input).expect("b oracle");
            assert_eq!(handle.wait().expect("served"), want);
        }
        for (input, handle) in inputs.iter().zip(a_handles) {
            let want = model_a.try_infer(&mut ctx_a, input).expect("a oracle");
            assert_eq!(handle.wait().expect("served"), want);
        }

        let snap_a = client_a.metrics();
        let snap_b = client_b.metrics();
        assert_eq!(
            (snap_a.submitted, snap_a.accepted, snap_a.completed),
            (4, 4, 4)
        );
        assert_eq!(
            (snap_b.submitted, snap_b.accepted, snap_b.completed),
            (5, 2, 2)
        );
        assert_eq!(snap_b.rejected_quota, 3);
        assert_eq!(client_a.entry().in_flight(), 0, "quota fully released");
        assert_eq!(client_b.entry().in_flight(), 0, "quota fully released");
        drop(server);
    }

    #[test]
    fn recorder_captures_lifecycle_stages_and_retains_errors() {
        use bitflow_telemetry::{FlightRecorder, RecorderConfig};
        let (model, inputs) = model_and_inputs(4);
        let recorder = Arc::new(FlightRecorder::new(RecorderConfig::default()));
        let server = Server::start(
            Arc::clone(&model),
            ServerConfig {
                workers: 1,
                recorder: Some(Arc::clone(&recorder)),
                ..ServerConfig::default()
            },
        );
        assert!(server.recorder().is_some());
        let handles: Vec<ResponseHandle> = inputs
            .iter()
            .take(3)
            .map(|i| server.submit(i.clone()).expect("admitted"))
            .collect();
        let ids: Vec<u64> = handles.iter().map(ResponseHandle::id).collect();
        for h in handles {
            assert!(h.wait().is_ok());
        }
        // A cancelled request must be retained unconditionally. The token
        // is cancelled before submission, so the worker deterministically
        // finds it dead on arrival.
        let token = CancelToken::new();
        token.cancel();
        let doomed = server
            .submit_with_token(inputs[3].clone(), token)
            .expect("admitted");
        let doomed_id = doomed.id();
        assert!(matches!(doomed.wait(), Err(BitFlowError::Cancelled)));
        let _ = server.shutdown();
        let traces = recorder.dump();
        let cancelled = traces
            .iter()
            .find(|t| t.request_id == doomed_id && !t.is_ok())
            .expect("cancelled request retained by the always-keep-errors policy");
        assert!(
            cancelled.outcome == "cancelled" || cancelled.outcome == "shed:deadline",
            "unexpected outcome {:?}",
            cancelled.outcome
        );
        // Ok traces compete for the slow-N slots; with 4 offers and the
        // default window they are all still candidates, so every request
        // is visible with its full stage set.
        for id in ids {
            let t = traces
                .iter()
                .find(|t| t.request_id == id)
                .expect("ok trace visible");
            assert_eq!(t.tenant, crate::registry::DEFAULT_MODEL);
            assert!(t.batch_size >= 1);
            for stage in [
                Stage::Admit,
                Stage::QueueWait,
                Stage::BatchWait,
                Stage::Exec,
            ] {
                assert!(
                    t.stages.iter().any(|s| s.stage == stage),
                    "request {id} missing stage {stage:?} in {:?}",
                    t.stages
                );
            }
            assert!(!t.spans.is_empty(), "operator spans nested in the trace");
            let sum: u64 = t.stages.iter().map(|s| s.duration_ns).sum();
            assert!(
                sum <= t.total_ns + t.total_ns / 20 + 500_000,
                "stages (sum {sum}ns) must fit the request wall-clock ({}ns)",
                t.total_ns
            );
        }
    }

    #[test]
    fn hot_swap_serves_new_model_without_downtime() {
        let model_a = model_with_seed(42);
        let model_b = model_with_seed(7);
        let (_, inputs) = model_and_inputs(1);
        let input = &inputs[0];
        let mut ctx_a = model_a.new_context();
        let mut ctx_b = model_b.new_context();
        let want_a = model_a.try_infer(&mut ctx_a, input).expect("a oracle");
        let want_b = model_b.try_infer(&mut ctx_b, input).expect("b oracle");
        assert_ne!(want_a, want_b, "seeds must produce distinct models");

        let server = Server::start(
            Arc::clone(&model_a),
            ServerConfig {
                workers: 1,
                chaos: Some(always_stall(Duration::from_millis(100))),
                ..ServerConfig::default()
            },
        );
        let client = server
            .client(crate::registry::DEFAULT_MODEL)
            .expect("default");
        // h1 captures the old model at admission; the swap races the stall
        // but can never retarget it.
        let h1 = server.submit(input.clone()).expect("admitted");
        let displaced = client.swap(Arc::clone(&model_b));
        assert!(Arc::ptr_eq(&displaced, &model_a));
        let h2 = server.submit(input.clone()).expect("admitted");
        assert_eq!(h1.wait().expect("served"), want_a, "pre-swap weights");
        assert_eq!(h2.wait().expect("served"), want_b, "post-swap weights");
        assert_eq!(client.entry().swaps(), 1);
        let snap = server.shutdown();
        assert_eq!(snap.completed, 2);
    }
}
