//! Fused convolution-window micro-kernels.
//!
//! PressedConv's inner computation — for one output pixel, K binary dot
//! products over a kh-row window — is dispatched here **once per pixel**
//! rather than once per (filter, row). Each SIMD tier gets a monomorphized
//! window function carrying the right `#[target_feature]`; inside, the
//! popcount accumulates in *vector registers across the entire window* and
//! is reduced to a scalar only once per filter. (A naive per-row kernel
//! pays a horizontal reduction per row — at VGG's kh = 3 that triples the
//! most expensive instruction in the loop.) This is where the paper's
//! register-level loop structure (tile over filters, stream packed rows)
//! lives.
//!
//! Layout contract (established by `bitflow-tensor`):
//!
//! * `input` — packed words of the whole (padded) input map; the window's
//!   row `r` occupies `input[base + r·row_stride .. +row_len]`, contiguous
//!   because width and pressed channels are adjacent in NHWC.
//! * `filters` — filter `k` occupies `filters[k·kh·row_len ..]`, rows
//!   contiguous in the same (kw, c_words) order.
//! * `out[k] = n_logical − 2·popcount(window ⊕ filter_k)`.

use crate::kernels::SimdLevel;

/// Arguments of one window evaluation (all distances in `u64` words).
#[derive(Clone, Copy, Debug)]
pub struct WindowGeom {
    /// Word offset of the window's first row in `input`.
    pub base: usize,
    /// Words between consecutive input rows (`W_padded · c_words`).
    pub row_stride: usize,
    /// Words per window row (`kw · c_words`).
    pub row_len: usize,
    /// Window rows (`kh`).
    pub kh: usize,
    /// Meaningful bits per window (`kh · kw · C_logical`).
    pub n_logical: i32,
}

/// Fully-unrolled 3×3 window with one word per pixel (C ≤ 64 — VGG's
/// conv2.x tier): the nine input words are hoisted into registers once and
/// reused across all K filters. The generic scalar loop optimizes poorly at
/// row_len = 3 (too short to vectorize, too branchy to pipeline).
fn window_3x3_1w(input: &[u64], filters: &[u64], g: WindowGeom, out: &mut [f32]) {
    debug_assert_eq!(g.row_len, 3);
    debug_assert_eq!(g.kh, 3);
    let (i0, i1, i2) = (g.base, g.base + g.row_stride, g.base + 2 * g.row_stride);
    let a = [
        input[i0],
        input[i0 + 1],
        input[i0 + 2], //
        input[i1],
        input[i1 + 1],
        input[i1 + 2], //
        input[i2],
        input[i2 + 1],
        input[i2 + 2],
    ];
    for (k, o) in out.iter_mut().enumerate() {
        let f = &filters[k * 9..k * 9 + 9];
        let pop = (a[0] ^ f[0]).count_ones()
            + (a[1] ^ f[1]).count_ones()
            + (a[2] ^ f[2]).count_ones()
            + (a[3] ^ f[3]).count_ones()
            + (a[4] ^ f[4]).count_ones()
            + (a[5] ^ f[5]).count_ones()
            + (a[6] ^ f[6]).count_ones()
            + (a[7] ^ f[7]).count_ones()
            + (a[8] ^ f[8]).count_ones();
        *o = (g.n_logical - 2 * pop as i32) as f32;
    }
}

fn window_scalar(input: &[u64], filters: &[u64], g: WindowGeom, out: &mut [f32]) {
    if g.row_len == 3 && g.kh == 3 {
        return window_3x3_1w(input, filters, g, out);
    }
    let per_filter = g.kh * g.row_len;
    for (k, o) in out.iter_mut().enumerate() {
        let f0 = k * per_filter;
        let mut pop = 0u64;
        for r in 0..g.kh {
            let a0 = g.base + r * g.row_stride;
            let a = &input[a0..a0 + g.row_len];
            let b = &filters[f0 + r * g.row_len..f0 + (r + 1) * g.row_len];
            for (&x, &y) in a.iter().zip(b.iter()) {
                pop += (x ^ y).count_ones() as u64;
            }
        }
        *o = (g.n_logical - 2 * pop as i32) as f32;
    }
}

fn window_unvectorized(input: &[u64], filters: &[u64], g: WindowGeom, out: &mut [f32]) {
    let per_filter = g.kh * g.row_len;
    for (k, o) in out.iter_mut().enumerate() {
        let f0 = k * per_filter;
        let mut pop = 0u64;
        for r in 0..g.kh {
            let a0 = g.base + r * g.row_stride;
            let a = &input[a0..a0 + g.row_len];
            let b = &filters[f0 + r * g.row_len..f0 + (r + 1) * g.row_len];
            for (&x, &y) in a.iter().zip(b.iter()) {
                // black_box defeats auto-vectorization: one XOR + one
                // scalar POPCNT per word (the unoptimized baseline).
                pop += std::hint::black_box(x ^ y).count_ones() as u64;
            }
        }
        *o = (g.n_logical - 2 * pop as i32) as f32;
    }
}

/// SSE window: 128-bit xor, scalar `POPCNT` per lane (SSE has no vector
/// popcount), scalar accumulation — nothing to hoist.
///
/// # Safety
/// Requires SSE2; geometry must be in bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn window_sse(input: &[u64], filters: &[u64], g: WindowGeom, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let per_filter = g.kh * g.row_len;
    for (k, o) in out.iter_mut().enumerate() {
        let f0 = k * per_filter;
        let mut pop = 0u64;
        for r in 0..g.kh {
            let a = input.as_ptr().add(g.base + r * g.row_stride);
            let b = filters.as_ptr().add(f0 + r * g.row_len);
            let pairs = g.row_len / 2;
            for i in 0..pairs {
                let va = _mm_loadu_si128(a.add(2 * i) as *const __m128i);
                let vb = _mm_loadu_si128(b.add(2 * i) as *const __m128i);
                let x = _mm_xor_si128(va, vb);
                pop += (_mm_cvtsi128_si64(x) as u64).count_ones() as u64;
                pop += (_mm_cvtsi128_si64(_mm_unpackhi_epi64(x, x)) as u64).count_ones() as u64;
            }
            if g.row_len % 2 == 1 {
                pop += (*a.add(g.row_len - 1) ^ *b.add(g.row_len - 1)).count_ones() as u64;
            }
        }
        *o = (g.n_logical - 2 * pop as i32) as f32;
    }
}

/// AVX2 window: 256-bit xor + nibble-lookup popcount, with the per-64-bit
/// lane counts accumulated in a 256-bit register across the *whole window*
/// and reduced once per filter.
///
/// # Safety
/// Requires AVX2; geometry must be in bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn window_avx2(input: &[u64], filters: &[u64], g: WindowGeom, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let per_filter = g.kh * g.row_len;
    for (k, o) in out.iter_mut().enumerate() {
        let f0 = k * per_filter;
        let mut acc = _mm256_setzero_si256();
        let mut tail_pop = 0u64;
        for r in 0..g.kh {
            let a = input.as_ptr().add(g.base + r * g.row_stride);
            let b = filters.as_ptr().add(f0 + r * g.row_len);
            let quads = g.row_len / 4;
            for i in 0..quads {
                let va = _mm256_loadu_si256(a.add(4 * i) as *const __m256i);
                let vb = _mm256_loadu_si256(b.add(4 * i) as *const __m256i);
                let x = _mm256_xor_si256(va, vb);
                acc = _mm256_add_epi64(acc, crate::popcount::popcount_m256_lookup(x));
            }
            for i in quads * 4..g.row_len {
                tail_pop += (*a.add(i) ^ *b.add(i)).count_ones() as u64;
            }
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let pop = lanes.iter().sum::<u64>() + tail_pop;
        *o = (g.n_logical - 2 * pop as i32) as f32;
    }
}

/// AVX-512 window with native VPOPCNTDQ: 512-bit xor + `VPOPCNTQ`, masked
/// row tails, vector accumulation across the window, one
/// `_mm512_reduce_add_epi64` per filter.
///
/// # Safety
/// Requires AVX512F + AVX512VPOPCNTDQ; geometry must be in bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn window_avx512(input: &[u64], filters: &[u64], g: WindowGeom, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let per_filter = g.kh * g.row_len;
    let octs = g.row_len / 8;
    let tail = g.row_len - octs * 8;
    let tail_mask: __mmask8 = if tail == 0 { 0 } else { (1u8 << tail) - 1 };
    for (k, o) in out.iter_mut().enumerate() {
        let f0 = k * per_filter;
        let mut acc = _mm512_setzero_si512();
        for r in 0..g.kh {
            let a = input.as_ptr().add(g.base + r * g.row_stride);
            let b = filters.as_ptr().add(f0 + r * g.row_len);
            for i in 0..octs {
                let va = _mm512_loadu_si512(a.add(8 * i) as *const __m512i);
                let vb = _mm512_loadu_si512(b.add(8 * i) as *const __m512i);
                acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
            }
            if tail != 0 {
                let va = _mm512_maskz_loadu_epi64(tail_mask, a.add(octs * 8) as *const i64);
                let vb = _mm512_maskz_loadu_epi64(tail_mask, b.add(octs * 8) as *const i64);
                let x = _mm512_maskz_xor_epi64(tail_mask, va, vb);
                acc = _mm512_add_epi64(acc, _mm512_maskz_popcnt_epi64(tail_mask, x));
            }
        }
        let pop = _mm512_reduce_add_epi64(acc) as u64;
        *o = (g.n_logical - 2 * pop as i32) as f32;
    }
}

/// AVX-512 window without VPOPCNTDQ (Skylake-SP class): 512-bit xor, AVX2
/// nibble-lookup popcount on the two halves, vector accumulation.
///
/// # Safety
/// Requires AVX512F + AVX2; geometry must be in bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx2")]
unsafe fn window_avx512_lookup(input: &[u64], filters: &[u64], g: WindowGeom, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let per_filter = g.kh * g.row_len;
    for (k, o) in out.iter_mut().enumerate() {
        let f0 = k * per_filter;
        let mut acc = _mm256_setzero_si256();
        let mut tail_pop = 0u64;
        for r in 0..g.kh {
            let a = input.as_ptr().add(g.base + r * g.row_stride);
            let b = filters.as_ptr().add(f0 + r * g.row_len);
            let octs = g.row_len / 8;
            for i in 0..octs {
                let va = _mm512_loadu_si512(a.add(8 * i) as *const __m512i);
                let vb = _mm512_loadu_si512(b.add(8 * i) as *const __m512i);
                let x = _mm512_xor_si512(va, vb);
                let lo = _mm512_castsi512_si256(x);
                let hi = _mm512_extracti64x4_epi64::<1>(x);
                acc = _mm256_add_epi64(acc, crate::popcount::popcount_m256_lookup(lo));
                acc = _mm256_add_epi64(acc, crate::popcount::popcount_m256_lookup(hi));
            }
            for i in octs * 8..g.row_len {
                tail_pop += (*a.add(i) ^ *b.add(i)).count_ones() as u64;
            }
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let pop = lanes.iter().sum::<u64>() + tail_pop;
        *o = (g.n_logical - 2 * pop as i32) as f32;
    }
}

/// Evaluates one convolution window against all K filters at the requested
/// SIMD level, falling back to scalar when the level is unavailable.
#[inline]
pub fn conv_window(
    level: SimdLevel,
    input: &[u64],
    filters: &[u64],
    g: WindowGeom,
    out: &mut [f32],
) {
    debug_assert!(g.base + (g.kh - 1) * g.row_stride + g.row_len <= input.len());
    debug_assert!(out.len() * g.kh * g.row_len <= filters.len());
    #[cfg(target_arch = "x86_64")]
    {
        let f = crate::detect::features();
        match level {
            SimdLevel::Unvectorized => window_unvectorized(input, filters, g, out),
            SimdLevel::Scalar => window_scalar(input, filters, g, out),
            SimdLevel::Sse if f.sse2 => {
                // SAFETY: sse2 verified by the detector; geometry asserted.
                unsafe { window_sse(input, filters, g, out) }
            }
            SimdLevel::Avx2 if f.avx2 => {
                // SAFETY: avx2 verified by the detector; geometry asserted.
                unsafe { window_avx2(input, filters, g, out) }
            }
            SimdLevel::Avx512 if f.avx512f && f.avx512vpopcntdq => {
                // SAFETY: avx512f+vpopcntdq verified; geometry asserted.
                unsafe { window_avx512(input, filters, g, out) }
            }
            SimdLevel::Avx512 if f.avx512f && f.avx2 => {
                // SAFETY: avx512f+avx2 verified; geometry asserted.
                unsafe { window_avx512_lookup(input, filters, g, out) }
            }
            _ => window_scalar(input, filters, g, out),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        match level {
            SimdLevel::Unvectorized => window_unvectorized(input, filters, g, out),
            _ => window_scalar(input, filters, g, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn reference(input: &[u64], filters: &[u64], g: WindowGeom, k: usize) -> Vec<f32> {
        let per_filter = g.kh * g.row_len;
        (0..k)
            .map(|kk| {
                let mut pop = 0u64;
                for r in 0..g.kh {
                    for i in 0..g.row_len {
                        let a = input[g.base + r * g.row_stride + i];
                        let b = filters[kk * per_filter + r * g.row_len + i];
                        pop += (a ^ b).count_ones() as u64;
                    }
                }
                (g.n_logical - 2 * pop as i32) as f32
            })
            .collect()
    }

    #[test]
    fn all_levels_match_reference() {
        let mut rng = StdRng::seed_from_u64(77);
        for (kh, row_len, row_stride, k) in [
            (3usize, 3usize, 20usize, 5usize),
            (1, 8, 8, 3),
            (3, 24, 100, 16),
            (2, 1, 7, 1),
            (3, 12, 40, 9),
            (3, 9, 30, 2),  // odd row_len: SSE pair tail + AVX-512 mask tail
            (2, 17, 50, 4), // tail > 8
        ] {
            let input: Vec<u64> = (0..row_stride * (kh + 2) + row_len)
                .map(|_| rng.gen())
                .collect();
            let filters: Vec<u64> = (0..k * kh * row_len).map(|_| rng.gen()).collect();
            let g = WindowGeom {
                base: 2,
                row_stride,
                row_len,
                kh,
                n_logical: (kh * row_len * 64) as i32,
            };
            let want = reference(&input, &filters, g, k);
            for level in [
                SimdLevel::Unvectorized,
                SimdLevel::Scalar,
                SimdLevel::Sse,
                SimdLevel::Avx2,
                SimdLevel::Avx512,
            ] {
                let mut out = vec![0.0f32; k];
                conv_window(level, &input, &filters, g, &mut out);
                assert_eq!(out, want, "{level} kh={kh} row_len={row_len}");
            }
        }
    }
}
