//! Hardware detector — one of the three components of the paper's vector
//! execution scheduler (shape inferer, **hardware detector**, code
//! generator/kernel selector).
//!
//! Detection runs once per process and is cached; kernels then trust the
//! cached flags, which is sound because CPU features never disappear at
//! runtime.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// The SIMD capabilities BitFlow cares about.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwFeatures {
    /// 128-bit integer SIMD (`_mm_xor_si128`). Baseline on all x86-64.
    pub sse2: bool,
    /// Byte shuffles used by the nibble-lookup popcount.
    pub ssse3: bool,
    /// Scalar `POPCNT` instruction.
    pub popcnt: bool,
    /// 256-bit integer SIMD (`_mm256_xor_si256`).
    pub avx2: bool,
    /// 512-bit foundation (`_mm512_xor_si512`, masked ops).
    pub avx512f: bool,
    /// AVX-512 byte/word ops (needed by some popcount fallbacks).
    pub avx512bw: bool,
    /// `_mm512_popcnt_epi64` — the VPOPCNTDQ extension of paper Table I.
    pub avx512vpopcntdq: bool,
}

impl HwFeatures {
    /// Queries the running CPU.
    #[cfg(target_arch = "x86_64")]
    pub fn detect() -> Self {
        Self {
            sse2: is_x86_feature_detected!("sse2"),
            ssse3: is_x86_feature_detected!("ssse3"),
            popcnt: is_x86_feature_detected!("popcnt"),
            avx2: is_x86_feature_detected!("avx2"),
            avx512f: is_x86_feature_detected!("avx512f"),
            avx512bw: is_x86_feature_detected!("avx512bw"),
            avx512vpopcntdq: is_x86_feature_detected!("avx512vpopcntdq"),
        }
    }

    /// Non-x86 fallback: everything scalar.
    #[cfg(not(target_arch = "x86_64"))]
    pub fn detect() -> Self {
        Self::default()
    }

    /// A feature set with everything disabled — forces the scalar path,
    /// used by tests and by the `unoptimized binary` baseline of the paper's
    /// Fig. 7.
    pub const fn scalar_only() -> Self {
        Self {
            sse2: false,
            ssse3: false,
            popcnt: false,
            avx2: false,
            avx512f: false,
            avx512bw: false,
            avx512vpopcntdq: false,
        }
    }

    /// Caps this feature set at a maximum vector width in bits (128/256/512).
    /// Used by the ablation benches to force narrower kernels on wide
    /// hardware, reproducing the paper's per-ISA comparisons on one machine.
    pub fn capped(mut self, max_bits: usize) -> Self {
        if max_bits < 512 {
            self.avx512f = false;
            self.avx512bw = false;
            self.avx512vpopcntdq = false;
        }
        if max_bits < 256 {
            self.avx2 = false;
        }
        if max_bits < 128 {
            self.sse2 = false;
            self.ssse3 = false;
        }
        self
    }

    /// Widest usable xor+popcount path in bits.
    pub fn max_width_bits(&self) -> usize {
        if self.avx512f {
            512
        } else if self.avx2 {
            256
        } else if self.sse2 {
            128
        } else {
            64
        }
    }
}

impl fmt::Display for HwFeatures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        if self.sse2 {
            names.push("sse2");
        }
        if self.ssse3 {
            names.push("ssse3");
        }
        if self.popcnt {
            names.push("popcnt");
        }
        if self.avx2 {
            names.push("avx2");
        }
        if self.avx512f {
            names.push("avx512f");
        }
        if self.avx512bw {
            names.push("avx512bw");
        }
        if self.avx512vpopcntdq {
            names.push("avx512vpopcntdq");
        }
        if names.is_empty() {
            write!(f, "scalar-only")
        } else {
            write!(f, "{}", names.join("+"))
        }
    }
}

/// Process-wide cached feature set of the running CPU.
pub fn features() -> HwFeatures {
    static CACHE: OnceLock<HwFeatures> = OnceLock::new();
    *CACHE.get_or_init(HwFeatures::detect)
}

/// Where a [`MachineInfo`] frequency estimate came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FreqSource {
    /// Parsed from `/proc/cpuinfo` (`cpu MHz`, max over cores).
    Cpuinfo,
    /// Timed dependent-multiply chain (3 cycles per iteration assumed).
    Calibrated,
    /// Neither worked; a conservative 2.0 GHz default.
    Assumed,
}

/// What the roofline model needs to know about the machine beyond ISA
/// feature bits: how many cores it has and how fast they run. The paper's
/// speedups are all relative to hardware peak; this struct is the
/// denominator's raw material.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineInfo {
    /// SIMD capability flags (same as [`features`]).
    pub features: HwFeatures,
    /// Logical cores visible to this process.
    pub logical_cores: usize,
    /// Estimated sustained core frequency in GHz. An *estimate*: cpuinfo
    /// reports the current governor frequency, and the calibration loop
    /// assumes a 3-cycle dependent multiply — either is within the ~10%
    /// accuracy a roofline needs.
    pub freq_ghz: f64,
    /// Where the frequency estimate came from.
    pub freq_source: FreqSource,
}

impl MachineInfo {
    /// Queries the running machine (features, core count, frequency).
    pub fn detect() -> Self {
        let (freq_ghz, freq_source) = match cpuinfo_max_mhz() {
            Some(mhz) if mhz > 100.0 => (mhz / 1e3, FreqSource::Cpuinfo),
            _ => match calibrate_ghz() {
                Some(ghz) => (ghz, FreqSource::Calibrated),
                None => (2.0, FreqSource::Assumed),
            },
        };
        Self {
            features: features(),
            logical_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            freq_ghz,
            freq_source,
        }
    }
}

/// Process-wide cached [`MachineInfo`] (frequency is sampled once).
pub fn machine() -> MachineInfo {
    static CACHE: OnceLock<MachineInfo> = OnceLock::new();
    *CACHE.get_or_init(MachineInfo::detect)
}

/// Maximum `cpu MHz` reported by `/proc/cpuinfo`, if the file exists and
/// carries the field (bare-metal and most VMs do; some containers do not).
fn cpuinfo_max_mhz() -> Option<f64> {
    let text = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    text.lines()
        .filter(|l| l.starts_with("cpu MHz"))
        .filter_map(|l| l.split(':').nth(1)?.trim().parse::<f64>().ok())
        .fold(None, |acc: Option<f64>, x| {
            Some(acc.map_or(x, |a| a.max(x)))
        })
}

/// Frequency estimate from a timed dependent-multiply chain. A 64-bit
/// integer multiply has had 3-cycle latency on every mainstream x86 core
/// since Sandy Bridge, so `3 × iterations / elapsed` approximates the
/// clock. Returns `None` for implausible results (interpreter-speed debug
/// builds, pathological preemption).
fn calibrate_ghz() -> Option<f64> {
    use std::time::Instant;
    const ITERS: u64 = 10_000_000;
    let mut x: u64 = std::hint::black_box(0x9E37_79B9_7F4A_7C15);
    let t0 = Instant::now();
    for _ in 0..ITERS {
        // LCG step: the multiply's 3-cycle latency chain dominates; the
        // add hides in the same dependency slot.
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    let dt = t0.elapsed();
    std::hint::black_box(x);
    let secs = dt.as_secs_f64();
    if secs <= 0.0 {
        return None;
    }
    let ghz = 3.0 * ITERS as f64 / secs / 1e9;
    // Anything outside [0.2, 8] GHz means the 1-mul-per-3-cycles model
    // didn't hold (unoptimized build, SMT preemption storm): report failure
    // rather than a wild number.
    (0.2..=8.0).contains(&ghz).then_some(ghz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_consistent_with_cache() {
        assert_eq!(features(), HwFeatures::detect());
    }

    #[test]
    fn x86_64_always_has_sse2() {
        #[cfg(target_arch = "x86_64")]
        assert!(features().sse2, "SSE2 is architectural on x86-64");
    }

    #[test]
    fn scalar_only_has_no_width() {
        let f = HwFeatures::scalar_only();
        assert_eq!(f.max_width_bits(), 64);
        assert_eq!(f.to_string(), "scalar-only");
    }

    #[test]
    fn capping_demotes_monotonically() {
        let full = HwFeatures {
            sse2: true,
            ssse3: true,
            popcnt: true,
            avx2: true,
            avx512f: true,
            avx512bw: true,
            avx512vpopcntdq: true,
        };
        assert_eq!(full.max_width_bits(), 512);
        assert_eq!(full.capped(256).max_width_bits(), 256);
        assert_eq!(full.capped(128).max_width_bits(), 128);
        assert_eq!(full.capped(64).max_width_bits(), 64);
        // Capping never re-enables features.
        assert!(!full.capped(128).avx2);
        assert_eq!(full.capped(512), full);
    }

    #[test]
    fn machine_info_is_sane_and_cached() {
        let m = machine();
        assert_eq!(m, machine(), "second call returns the cached value");
        assert!(m.logical_cores >= 1);
        assert!(
            (0.2..=8.0).contains(&m.freq_ghz),
            "freq {} GHz from {:?}",
            m.freq_ghz,
            m.freq_source
        );
        assert_eq!(m.features, features());
    }

    #[test]
    fn machine_info_round_trips_through_json() {
        let m = machine();
        let json = serde_json::to_string(&m).expect("serialize");
        let back: MachineInfo = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, m);
    }

    #[test]
    fn avx512_implication() {
        let f = features();
        // vpopcntdq never appears without avx512f on real silicon.
        if f.avx512vpopcntdq {
            assert!(f.avx512f);
        }
    }
}
