//! xor+popcount and OR-reduction kernels at every vector width.
//!
//! These are the computational primitives of BitFlow (paper Eq. 1):
//! multiplication of {−1,+1} values becomes `xor`, accumulation becomes
//! `bitcount`. Each kernel computes
//!
//! ```text
//! Σᵢ popcount(a[i] ⊕ b[i])
//! ```
//!
//! over two equal-length `u64` slices. The SIMD variants use exactly the
//! instructions of paper Table I:
//!
//! | width | xor | popcount |
//! |---|---|---|
//! | 128 (SSE) | `_mm_xor_si128` | scalar `POPCNT` per lane |
//! | 256 (AVX2) | `_mm256_xor_si256` | nibble-lookup (`PSHUFB`+`PSADBW`) |
//! | 512 (AVX-512) | `_mm512_xor_si512` / `_mm512_maskz_xor_epi64` | `_mm512_popcnt_epi64` / `_mm512_maskz_popcnt_epi64` |
//!
//! The AVX-512 path uses zero-masked loads/xor/popcnt for the tail, so a
//! slice of any length runs entirely in 512-bit ops — this mirrors the
//! `maskz` rows of Table I.

use crate::detect::HwFeatures;

/// Dispatch target chosen by the [`crate::scheduler::VectorScheduler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SimdLevel {
    /// Scalar `u64` loop with compiler auto-vectorization *suppressed*
    /// (each word forced through [`std::hint::black_box`]). This models
    /// the paper's **unoptimized BNN implementation**: one xor and one
    /// scalar popcount per 64-bit word, no SIMD. Never selected by the
    /// scheduler — it exists for baselines and ablations. (A plain Rust
    /// loop does not qualify: with `-C target-cpu=native` LLVM happily
    /// auto-vectorizes it to the very AVX-512 code BitFlow emits by hand.)
    Unvectorized,
    /// Plain `u64` loop — the paper's "intrinsic bitwise instruction" tier
    /// (C multiple of 32/64). The compiler may auto-vectorize it.
    Scalar,
    /// 128-bit SSE2 kernel.
    Sse,
    /// 256-bit AVX2 kernel.
    Avx2,
    /// 512-bit AVX-512 kernel (native VPOPCNTDQ when present, else a
    /// 512-bit xor with AVX2 lookup popcount).
    Avx512,
}

impl SimdLevel {
    /// Widest level supported by `f`.
    pub fn best_for(f: HwFeatures) -> SimdLevel {
        if f.avx512f {
            SimdLevel::Avx512
        } else if f.avx2 {
            SimdLevel::Avx2
        } else if f.sse2 {
            SimdLevel::Sse
        } else {
            SimdLevel::Scalar
        }
    }

    /// Vector width in bits.
    pub fn bits(self) -> usize {
        match self {
            SimdLevel::Unvectorized | SimdLevel::Scalar => 64,
            SimdLevel::Sse => 128,
            SimdLevel::Avx2 => 256,
            SimdLevel::Avx512 => 512,
        }
    }

    /// True if the running CPU can execute this level.
    pub fn available(self, f: HwFeatures) -> bool {
        match self {
            SimdLevel::Unvectorized | SimdLevel::Scalar => true,
            SimdLevel::Sse => f.sse2,
            SimdLevel::Avx2 => f.avx2,
            SimdLevel::Avx512 => f.avx512f,
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimdLevel::Unvectorized => write!(f, "scalar-novec"),
            SimdLevel::Scalar => write!(f, "scalar-u64"),
            SimdLevel::Sse => write!(f, "SSE-128"),
            SimdLevel::Avx2 => write!(f, "AVX2-256"),
            SimdLevel::Avx512 => write!(f, "AVX512-512"),
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar kernel
// ---------------------------------------------------------------------------

/// Scalar xor+popcount: one `u64` at a time.
///
/// With `-C target-cpu` enabling `popcnt`, `count_ones` is a single
/// instruction; without it, LLVM emits the SWAR sequence. Either way this is
/// the paper's *unvectorized* binary kernel.
#[inline]
pub fn xor_popcount_scalar(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0u64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        sum += (x ^ y).count_ones() as u64;
    }
    sum
}

/// Truly scalar xor+popcount: [`std::hint::black_box`] on every word
/// defeats auto-vectorization, so this runs as one `XOR` + one `POPCNT`
/// per word — the paper's unoptimized binary kernel.
#[inline(never)]
pub fn xor_popcount_unvectorized(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0u64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        sum += std::hint::black_box(x ^ y).count_ones() as u64;
    }
    sum
}

/// Scalar OR-accumulate: `acc[i] |= src[i]` (binary max-pool reduction —
/// max over {−1,+1} is bitwise OR of the encodings).
#[inline]
pub fn or_accumulate_scalar(acc: &mut [u64], src: &[u64]) {
    debug_assert_eq!(acc.len(), src.len());
    for (a, &s) in acc.iter_mut().zip(src.iter()) {
        *a |= s;
    }
}

/// OR-accumulate with auto-vectorization suppressed (unoptimized baseline).
#[inline(never)]
pub fn or_accumulate_unvectorized(acc: &mut [u64], src: &[u64]) {
    debug_assert_eq!(acc.len(), src.len());
    for (a, &s) in acc.iter_mut().zip(src.iter()) {
        *a |= std::hint::black_box(s);
    }
}

// ---------------------------------------------------------------------------
// SSE kernel (128-bit)
// ---------------------------------------------------------------------------

/// SSE2 xor+popcount: `_mm_xor_si128` pairs of words, scalar `POPCNT` on the
/// two 64-bit lanes.
///
/// # Safety
/// Requires SSE2 (architectural on x86-64, still gated for uniformity).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
pub unsafe fn xor_popcount_sse(a: &[u64], b: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let pairs = n / 2;
    let mut sum = 0u64;
    for i in 0..pairs {
        let va = _mm_loadu_si128(a.as_ptr().add(2 * i) as *const __m128i);
        let vb = _mm_loadu_si128(b.as_ptr().add(2 * i) as *const __m128i);
        let x = _mm_xor_si128(va, vb);
        let lo = _mm_cvtsi128_si64(x) as u64;
        let hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(x, x)) as u64;
        sum += lo.count_ones() as u64 + hi.count_ones() as u64;
    }
    if n % 2 == 1 {
        sum += (a[n - 1] ^ b[n - 1]).count_ones() as u64;
    }
    sum
}

/// SSE2 OR-accumulate.
///
/// # Safety
/// Requires SSE2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
pub unsafe fn or_accumulate_sse(acc: &mut [u64], src: &[u64]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(acc.len(), src.len());
    let n = acc.len();
    let pairs = n / 2;
    for i in 0..pairs {
        let pa = acc.as_mut_ptr().add(2 * i) as *mut __m128i;
        let va = _mm_loadu_si128(pa);
        let vs = _mm_loadu_si128(src.as_ptr().add(2 * i) as *const __m128i);
        _mm_storeu_si128(pa, _mm_or_si128(va, vs));
    }
    if n % 2 == 1 {
        acc[n - 1] |= src[n - 1];
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernel (256-bit)
// ---------------------------------------------------------------------------

/// AVX2 xor+popcount: `_mm256_xor_si256` + nibble-lookup popcount.
///
/// # Safety
/// Requires AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn xor_popcount_avx2(a: &[u64], b: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let quads = n / 4;
    let mut acc = _mm256_setzero_si256();
    for i in 0..quads {
        let va = _mm256_loadu_si256(a.as_ptr().add(4 * i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(4 * i) as *const __m256i);
        let x = _mm256_xor_si256(va, vb);
        acc = _mm256_add_epi64(acc, crate::popcount::popcount_m256_lookup(x));
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut sum: u64 = lanes.iter().sum();
    for i in quads * 4..n {
        sum += (a[i] ^ b[i]).count_ones() as u64;
    }
    sum
}

/// AVX2 OR-accumulate.
///
/// # Safety
/// Requires AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn or_accumulate_avx2(acc: &mut [u64], src: &[u64]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(acc.len(), src.len());
    let n = acc.len();
    let quads = n / 4;
    for i in 0..quads {
        let pa = acc.as_mut_ptr().add(4 * i) as *mut __m256i;
        let va = _mm256_loadu_si256(pa);
        let vs = _mm256_loadu_si256(src.as_ptr().add(4 * i) as *const __m256i);
        _mm256_storeu_si256(pa, _mm256_or_si256(va, vs));
    }
    for i in quads * 4..n {
        acc[i] |= src[i];
    }
}

// ---------------------------------------------------------------------------
// AVX-512 kernel (512-bit)
// ---------------------------------------------------------------------------

/// AVX-512 xor+popcount with native VPOPCNTDQ: `_mm512_xor_si512` +
/// `_mm512_popcnt_epi64`, masked tail via `_mm512_maskz_loadu_epi64` /
/// masked xor+popcnt (paper Table I rows 4 and 6).
///
/// # Safety
/// Requires AVX512F + AVX512VPOPCNTDQ.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
pub unsafe fn xor_popcount_avx512(a: &[u64], b: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let octs = n / 8;
    let mut acc = _mm512_setzero_si512();
    for i in 0..octs {
        let va = _mm512_loadu_si512(a.as_ptr().add(8 * i) as *const __m512i);
        let vb = _mm512_loadu_si512(b.as_ptr().add(8 * i) as *const __m512i);
        let x = _mm512_xor_si512(va, vb);
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
    }
    let tail = n - octs * 8;
    if tail != 0 {
        let k: __mmask8 = (1u8 << tail) - 1;
        let va = _mm512_maskz_loadu_epi64(k, a.as_ptr().add(octs * 8) as *const i64);
        let vb = _mm512_maskz_loadu_epi64(k, b.as_ptr().add(octs * 8) as *const i64);
        let x = _mm512_maskz_xor_epi64(k, va, vb);
        acc = _mm512_add_epi64(acc, _mm512_maskz_popcnt_epi64(k, x));
    }
    _mm512_reduce_add_epi64(acc) as u64
}

/// AVX-512 xor with AVX2 lookup popcount — for AVX-512F silicon that lacks
/// VPOPCNTDQ (e.g. Skylake-SP). The xor runs at 512 bits; the popcount
/// splits each register into two 256-bit halves.
///
/// # Safety
/// Requires AVX512F + AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx2")]
pub unsafe fn xor_popcount_avx512_lookup(a: &[u64], b: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let octs = n / 8;
    let mut acc = _mm256_setzero_si256();
    for i in 0..octs {
        let va = _mm512_loadu_si512(a.as_ptr().add(8 * i) as *const __m512i);
        let vb = _mm512_loadu_si512(b.as_ptr().add(8 * i) as *const __m512i);
        let x = _mm512_xor_si512(va, vb);
        let lo = _mm512_castsi512_si256(x);
        let hi = _mm512_extracti64x4_epi64::<1>(x);
        acc = _mm256_add_epi64(acc, crate::popcount::popcount_m256_lookup(lo));
        acc = _mm256_add_epi64(acc, crate::popcount::popcount_m256_lookup(hi));
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut sum: u64 = lanes.iter().sum();
    for i in octs * 8..n {
        sum += (a[i] ^ b[i]).count_ones() as u64;
    }
    sum
}

/// AVX-512 OR-accumulate with masked tail.
///
/// # Safety
/// Requires AVX512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub unsafe fn or_accumulate_avx512(acc: &mut [u64], src: &[u64]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(acc.len(), src.len());
    let n = acc.len();
    let octs = n / 8;
    for i in 0..octs {
        let pa = acc.as_mut_ptr().add(8 * i) as *mut __m512i;
        let va = _mm512_loadu_si512(pa);
        let vs = _mm512_loadu_si512(src.as_ptr().add(8 * i) as *const __m512i);
        _mm512_storeu_si512(pa, _mm512_or_si512(va, vs));
    }
    let tail = n - octs * 8;
    if tail != 0 {
        let k: __mmask8 = (1u8 << tail) - 1;
        let pa = acc.as_mut_ptr().add(octs * 8);
        let va = _mm512_maskz_loadu_epi64(k, pa as *const i64);
        let vs = _mm512_maskz_loadu_epi64(k, src.as_ptr().add(octs * 8) as *const i64);
        _mm512_mask_storeu_epi64(pa as *mut i64, k, _mm512_or_si512(va, vs));
    }
}

// ---------------------------------------------------------------------------
// Safe dispatching wrappers
// ---------------------------------------------------------------------------

/// xor+popcount at the requested SIMD level, falling back to scalar when the
/// level is not available on this CPU.
///
/// # Panics
/// If `a.len() != b.len()`.
#[inline]
pub fn xor_popcount(level: SimdLevel, a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "xor_popcount operand lengths differ");
    #[cfg(target_arch = "x86_64")]
    {
        let f = crate::detect::features();
        match level {
            SimdLevel::Unvectorized => xor_popcount_unvectorized(a, b),
            SimdLevel::Scalar => xor_popcount_scalar(a, b),
            SimdLevel::Sse if f.sse2 => {
                // SAFETY: sse2 verified by the detector.
                unsafe { xor_popcount_sse(a, b) }
            }
            SimdLevel::Avx2 if f.avx2 => {
                // SAFETY: avx2 verified by the detector.
                unsafe { xor_popcount_avx2(a, b) }
            }
            SimdLevel::Avx512 if f.avx512f && f.avx512vpopcntdq => {
                // SAFETY: avx512f+vpopcntdq verified by the detector.
                unsafe { xor_popcount_avx512(a, b) }
            }
            SimdLevel::Avx512 if f.avx512f && f.avx2 => {
                // SAFETY: avx512f+avx2 verified by the detector.
                unsafe { xor_popcount_avx512_lookup(a, b) }
            }
            _ => xor_popcount_scalar(a, b),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        match level {
            SimdLevel::Unvectorized => xor_popcount_unvectorized(a, b),
            _ => xor_popcount_scalar(a, b),
        }
    }
}

/// `acc[i] |= src[i]` at the requested SIMD level (binary max-pool).
///
/// # Panics
/// If `acc.len() != src.len()`.
#[inline]
pub fn or_accumulate(level: SimdLevel, acc: &mut [u64], src: &[u64]) {
    assert_eq!(acc.len(), src.len(), "or_accumulate operand lengths differ");
    #[cfg(target_arch = "x86_64")]
    {
        let f = crate::detect::features();
        match level {
            SimdLevel::Unvectorized => or_accumulate_unvectorized(acc, src),
            SimdLevel::Scalar => or_accumulate_scalar(acc, src),
            SimdLevel::Sse if f.sse2 => {
                // SAFETY: sse2 verified by the detector.
                unsafe { or_accumulate_sse(acc, src) }
            }
            SimdLevel::Avx2 if f.avx2 => {
                // SAFETY: avx2 verified by the detector.
                unsafe { or_accumulate_avx2(acc, src) }
            }
            SimdLevel::Avx512 if f.avx512f => {
                // SAFETY: avx512f verified by the detector.
                unsafe { or_accumulate_avx512(acc, src) }
            }
            _ => or_accumulate_scalar(acc, src),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        match level {
            SimdLevel::Unvectorized => or_accumulate_unvectorized(acc, src),
            _ => or_accumulate_scalar(acc, src),
        }
    }
}

/// Binary inner product via the paper's Eq. 1:
/// `dot = n_logical − 2·popcount(a ⊕ b)`.
///
/// `n_logical` is the number of *meaningful* bits; press-tail bits must be
/// zero in both operands (see crate docs).
#[inline]
pub fn binary_dot(level: SimdLevel, a: &[u64], b: &[u64], n_logical: usize) -> i32 {
    let pop = xor_popcount(level, a, b);
    n_logical as i32 - 2 * pop as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn reference_xor_popcount(a: &[u64], b: &[u64]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| crate::popcount::popcount_swar(x ^ y) as u64)
            .sum()
    }

    fn all_levels() -> Vec<SimdLevel> {
        vec![
            SimdLevel::Scalar,
            SimdLevel::Sse,
            SimdLevel::Avx2,
            SimdLevel::Avx512,
        ]
    }

    #[test]
    fn xor_popcount_all_levels_match_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        for len in [0usize, 1, 2, 3, 4, 7, 8, 9, 15, 16, 17, 64, 100, 513] {
            let a: Vec<u64> = (0..len).map(|_| rng.gen()).collect();
            let b: Vec<u64> = (0..len).map(|_| rng.gen()).collect();
            let want = reference_xor_popcount(&a, &b);
            for level in all_levels() {
                assert_eq!(xor_popcount(level, &a, &b), want, "{level} len={len}");
            }
        }
    }

    #[test]
    fn or_accumulate_all_levels_match_reference() {
        let mut rng = StdRng::seed_from_u64(10);
        for len in [0usize, 1, 2, 5, 8, 13, 16, 31, 200] {
            let base: Vec<u64> = (0..len).map(|_| rng.gen()).collect();
            let src: Vec<u64> = (0..len).map(|_| rng.gen()).collect();
            let mut want = base.clone();
            or_accumulate_scalar(&mut want, &src);
            for level in all_levels() {
                let mut acc = base.clone();
                or_accumulate(level, &mut acc, &src);
                assert_eq!(acc, want, "{level} len={len}");
            }
        }
    }

    #[test]
    fn binary_dot_matches_integer_reference() {
        // Build two {−1,+1} vectors, pack manually, compare against i32 dot.
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 5, 63, 64, 65, 200, 512, 700] {
            let xs: Vec<i32> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
                .collect();
            let ys: Vec<i32> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
                .collect();
            let want: i32 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
            let pack = |v: &[i32]| -> Vec<u64> {
                let mut words = vec![0u64; v.len().div_ceil(64)];
                for (i, &s) in v.iter().enumerate() {
                    if s > 0 {
                        words[i / 64] |= 1 << (i % 64);
                    }
                }
                words
            };
            let (wa, wb) = (pack(&xs), pack(&ys));
            for level in all_levels() {
                assert_eq!(binary_dot(level, &wa, &wb, n), want, "{level} n={n}");
            }
        }
    }

    #[test]
    fn level_metadata() {
        assert_eq!(SimdLevel::Scalar.bits(), 64);
        assert_eq!(SimdLevel::Avx512.bits(), 512);
        assert!(SimdLevel::Scalar.available(crate::detect::HwFeatures::scalar_only()));
        assert!(!SimdLevel::Avx2.available(crate::detect::HwFeatures::scalar_only()));
        assert_eq!(
            SimdLevel::best_for(crate::detect::HwFeatures::scalar_only()),
            SimdLevel::Scalar
        );
    }

    #[test]
    fn dispatch_degrades_gracefully() {
        // Requesting a level the CPU lacks must still give correct results
        // (fallback), never UB. We can't force-lack features here, but we can
        // at least assert every requested level returns the right answer.
        let a = vec![u64::MAX; 9];
        let b = vec![0u64; 9];
        for level in all_levels() {
            assert_eq!(xor_popcount(level, &a, &b), 9 * 64, "{level}");
        }
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        let _ = xor_popcount(SimdLevel::Scalar, &[0u64; 2], &[0u64; 3]);
    }
}
