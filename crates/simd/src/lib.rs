//! # bitflow-simd
//!
//! SIMD kernel substrate for BitFlow (IPDPS 2018 reproduction).
//!
//! This crate owns everything that touches `std::arch`:
//!
//! * [`detect`] — the **hardware detector** of the paper's vector execution
//!   scheduler (§III-B): runtime discovery of SSE/AVX2/AVX-512 (+VPOPCNTDQ).
//! * [`kernels`] — xor+popcount inner kernels at every vector width
//!   (scalar `u64`, 128-bit SSE, 256-bit AVX2, 512-bit AVX-512), plus
//!   OR-reduction kernels for binary max-pooling and fused
//!   binarize+bit-pack kernels.
//! * [`scheduler`] — the **vector execution scheduler**: given the channel
//!   width of an operator and the detected hardware, select the optimal
//!   computing kernel using the paper's rules (C ≡ 0 mod 512 → AVX-512,
//!   mod 256 → AVX2, mod 128 → SSE, mod 32/64 → scalar words, else pad).
//! * [`vec_u`] — Rust counterparts of the paper's `m128_u`/`m256_u`/`m512_u`
//!   unions (Table II).
//! * [`popcount`] — portable and SIMD population-count building blocks,
//!   including the AVX2 nibble-lookup (Muła) algorithm used where the
//!   AVX-512 `VPOPCNTDQ` instruction of paper Table I is unavailable.
//!
//! All kernels operate on plain `&[u64]` slices so the crate has no
//! dependency on the tensor layer; correctness contracts (press-tail zeros,
//! equal lengths) are asserted at the boundary.
//!
//! ## The core identity
//!
//! For two {−1,+1} vectors encoded as bits (+1 ↦ 1), packed into words
//! `a[i]`, `b[i]` with `n_logical` meaningful bits and zero press-tails in
//! *both* operands (paper Eq. 1):
//!
//! ```text
//! dot(a, b) = n_logical − 2 · Σᵢ popcount(a[i] ⊕ b[i])
//! ```
//!
//! Pad bits are 0 in both operands, xor to 0, and contribute nothing to the
//! popcount, so the identity holds with no correction term.

pub mod conv;
pub mod detect;
pub mod kernels;
pub mod pack;
pub mod perf;
pub mod popcount;
pub mod scheduler;
pub mod vec_u;

pub use detect::{features, machine, FreqSource, HwFeatures, MachineInfo};
pub use kernels::{binary_dot, or_accumulate, xor_popcount};
pub use perf::{PerfCaps, PerfGroup, PerfSample};
pub use scheduler::{KernelChoice, UnsupportedKernel, VectorScheduler};
