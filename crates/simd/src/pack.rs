//! Fused binarization + bit-packing kernels.
//!
//! Binarization (`x >= 0`) and packing into words happen in one pass (paper
//! Table II/III). The AVX-512 kernel turns 16 float compares into a 16-bit
//! mask with `_mm512_cmp_ps_mask`, so one packed `u64` costs four compares —
//! this is the vectorized equivalent of the paper's `bit64_t` bit-field
//! trick.

/// Scalar fused binarize+pack: bit `i` of `out[i/64]` = `src[i] >= 0`.
/// The final partial word is zero-padded high (press-tail invariant).
pub fn pack_f32_scalar(src: &[f32], out: &mut [u64]) {
    assert_eq!(out.len(), src.len().div_ceil(64), "output word count");
    for (wi, chunk) in src.chunks(64).enumerate() {
        let mut w = 0u64;
        for (i, &x) in chunk.iter().enumerate() {
            w |= ((x >= 0.0) as u64) << i;
        }
        out[wi] = w;
    }
}

/// AVX-512 fused binarize+pack: `_mm512_cmp_ps_mask` produces 16 sign bits
/// per instruction; four masks assemble one `u64`.
///
/// # Safety
/// Requires AVX512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub unsafe fn pack_f32_avx512(src: &[f32], out: &mut [u64]) {
    use std::arch::x86_64::*;
    assert_eq!(out.len(), src.len().div_ceil(64), "output word count");
    let zero = _mm512_setzero_ps();
    let full_words = src.len() / 64;
    for (wi, word) in out.iter_mut().enumerate().take(full_words) {
        let base = src.as_ptr().add(wi * 64);
        let m0 = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(_mm512_loadu_ps(base), zero) as u64;
        let m1 = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(_mm512_loadu_ps(base.add(16)), zero) as u64;
        let m2 = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(_mm512_loadu_ps(base.add(32)), zero) as u64;
        let m3 = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(_mm512_loadu_ps(base.add(48)), zero) as u64;
        *word = m0 | (m1 << 16) | (m2 << 32) | (m3 << 48);
    }
    let rem = &src[full_words * 64..];
    if !rem.is_empty() {
        let mut w = 0u64;
        let mut bit = 0usize;
        // Whole 16-lane groups of the tail still go through the mask compare.
        let groups = rem.len() / 16;
        for g in 0..groups {
            let m =
                _mm512_cmp_ps_mask::<_CMP_GE_OQ>(_mm512_loadu_ps(rem.as_ptr().add(g * 16)), zero)
                    as u64;
            w |= m << bit;
            bit += 16;
        }
        for &x in &rem[groups * 16..] {
            w |= ((x >= 0.0) as u64) << bit;
            bit += 1;
        }
        out[full_words] = w;
    }
}

/// Fused binarize+pack choosing the best kernel for the running CPU.
pub fn pack_f32(src: &[f32], out: &mut [u64]) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::detect::features().avx512f {
            // SAFETY: avx512f verified by the detector.
            unsafe { pack_f32_avx512(src, out) };
            return;
        }
    }
    pack_f32_scalar(src, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn reference(src: &[f32]) -> Vec<u64> {
        let mut out = vec![0u64; src.len().div_ceil(64)];
        for (i, &x) in src.iter().enumerate() {
            if x >= 0.0 {
                out[i / 64] |= 1 << (i % 64);
            }
        }
        out
    }

    #[test]
    fn scalar_matches_reference() {
        let mut rng = StdRng::seed_from_u64(20);
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 127, 128, 1000] {
            let src: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut out = vec![0u64; len.div_ceil(64)];
            pack_f32_scalar(&src, &mut out);
            assert_eq!(out, reference(&src), "len={len}");
        }
    }

    #[test]
    fn avx512_matches_reference() {
        #[cfg(target_arch = "x86_64")]
        {
            if !is_x86_feature_detected!("avx512f") {
                return;
            }
            let mut rng = StdRng::seed_from_u64(21);
            for len in [
                0usize, 1, 16, 17, 48, 63, 64, 65, 80, 127, 128, 129, 512, 999,
            ] {
                let src: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let mut out = vec![0u64; len.div_ceil(64)];
                // SAFETY: avx512f checked above.
                unsafe { pack_f32_avx512(&src, &mut out) };
                assert_eq!(out, reference(&src), "len={len}");
            }
        }
    }

    #[test]
    fn dispatching_pack_matches_reference() {
        let mut rng = StdRng::seed_from_u64(22);
        let src: Vec<f32> = (0..777).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut out = vec![0u64; 777usize.div_ceil(64)];
        pack_f32(&src, &mut out);
        assert_eq!(out, reference(&src));
    }

    #[test]
    fn zero_is_positive() {
        let src = vec![0.0f32, -0.0, -1.0, 1.0];
        let mut out = vec![0u64; 1];
        pack_f32(&src, &mut out);
        // +0.0 and -0.0 both compare >= 0.0 → bits 0,1 set; -1 clear; +1 set.
        assert_eq!(out[0], 0b1011);
    }
}
