//! Linux `perf_event_open` counter shim.
//!
//! Wall-clock timing says *how long* a kernel ran; hardware counters say
//! *why*: cycles and instructions give IPC, LLC misses separate
//! compute-bound from memory-bound, branch misses expose tail-loop
//! mispredicts. This module opens one counter group (cycles, instructions,
//! LLC misses, branch misses) per caller with the raw
//! `perf_event_open(2)` syscall — no external crate, exactly the surface
//! the profiler needs.
//!
//! **Graceful degradation is the contract.** Containers without
//! `CAP_PERFMON`, seccomp-filtered sandboxes, and VMs without a
//! virtualized PMU all fail `perf_event_open`; cloud VMs often virtualize
//! cycles/instructions but not the cache/branch events. [`PerfGroup::open`]
//! therefore tries the full 4-counter group, falls back to
//! cycles+instructions only, and finally reports a typed reason — callers
//! keep working on timing alone. The process-wide [`probe`] runs this once
//! and caches the answer.
//!
//! Counts are scaled by `time_enabled/time_running` when the kernel
//! multiplexed the group (standard perf practice), so numbers stay
//! comparable under counter pressure.

use std::sync::OnceLock;

/// One read of a counter group. Fields the group could not open are `None`
/// — never silently zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfSample {
    /// Core cycles (user-space only).
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Last-level cache misses, if the event opened.
    pub llc_misses: Option<u64>,
    /// Mispredicted branches, if the event opened.
    pub branch_misses: Option<u64>,
}

impl PerfSample {
    /// Instructions per cycle, if any cycles elapsed.
    pub fn ipc(&self) -> Option<f64> {
        (self.cycles > 0).then(|| self.instructions as f64 / self.cycles as f64)
    }

    /// Accumulates another sample (Options stay `None` if either side is).
    pub fn add(&mut self, other: &PerfSample) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.llc_misses = match (self.llc_misses, other.llc_misses) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        self.branch_misses = match (self.branch_misses, other.branch_misses) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
    }
}

/// Which events the machine's PMU actually granted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerfCaps {
    /// LLC-miss counter opened.
    pub llc_misses: bool,
    /// Branch-miss counter opened.
    pub branch_misses: bool,
}

/// Process-wide capability probe: opens (and immediately closes) a counter
/// group once, caching what worked. `Err` carries a human-readable reason
/// ("perf_event_open failed: EACCES (errno 13) — …").
pub fn probe() -> Result<PerfCaps, &'static str> {
    static CACHE: OnceLock<Result<PerfCaps, String>> = OnceLock::new();
    match CACHE.get_or_init(|| PerfGroup::open().map(|g| g.caps())) {
        Ok(caps) => Ok(*caps),
        Err(e) => Err(e.as_str()),
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{PerfCaps, PerfSample};
    use std::os::raw::{c_int, c_long, c_ulong};

    // The libc symbols this shim needs. `std` already links libc on every
    // Linux target, so declaring them is enough — no new dependency.
    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn __errno_location() -> *mut c_int;
    }

    const SYS_PERF_EVENT_OPEN: c_long = 298; // x86_64; aarch64 uses 241
    #[cfg(target_arch = "aarch64")]
    const SYS_PERF_EVENT_OPEN_ARM64: c_long = 241;

    const PERF_TYPE_HARDWARE: u32 = 0;
    const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
    const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
    const PERF_COUNT_HW_CACHE_MISSES: u64 = 3;
    const PERF_COUNT_HW_BRANCH_MISSES: u64 = 5;

    // attr.flags bit positions (perf_event_attr bitfield, LSB first).
    const FLAG_DISABLED: u64 = 1 << 0;
    const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
    const FLAG_EXCLUDE_HV: u64 = 1 << 6;

    // read_format: group read with multiplexing timestamps.
    const FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
    const FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
    const FORMAT_GROUP: u64 = 1 << 3;

    const IOC_ENABLE: c_ulong = 0x2400;
    const IOC_DISABLE: c_ulong = 0x2401;
    const IOC_RESET: c_ulong = 0x2403;
    const IOC_FLAG_GROUP: c_ulong = 1;

    /// `struct perf_event_attr` with the fields this shim sets named and
    /// the rest zeroed. `size` is set to the struct size; kernels that know
    /// fewer fields accept it because the tail is all zeros.
    #[repr(C)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        bp_addr: u64,
        bp_len: u64,
        reserved: [u64; 8],
    }

    fn errno() -> i32 {
        // SAFETY: __errno_location returns the calling thread's errno slot.
        unsafe { *__errno_location() }
    }

    fn errno_name(e: i32) -> &'static str {
        match e {
            1 => "EPERM",
            2 => "ENOENT",
            13 => "EACCES",
            19 => "ENODEV",
            22 => "EINVAL",
            24 => "EMFILE",
            38 => "ENOSYS",
            _ => "errno",
        }
    }

    fn open_counter(config: u64, group_fd: c_int, disabled: bool) -> Result<c_int, String> {
        let mut attr = PerfEventAttr {
            type_: PERF_TYPE_HARDWARE,
            size: std::mem::size_of::<PerfEventAttr>() as u32,
            config,
            sample_period: 0,
            sample_type: 0,
            read_format: FORMAT_GROUP | FORMAT_TOTAL_TIME_ENABLED | FORMAT_TOTAL_TIME_RUNNING,
            flags: FLAG_EXCLUDE_KERNEL | FLAG_EXCLUDE_HV | if disabled { FLAG_DISABLED } else { 0 },
            wakeup_events: 0,
            bp_type: 0,
            bp_addr: 0,
            bp_len: 0,
            reserved: [0; 8],
        };
        #[cfg(target_arch = "aarch64")]
        let nr = SYS_PERF_EVENT_OPEN_ARM64;
        #[cfg(not(target_arch = "aarch64"))]
        let nr = SYS_PERF_EVENT_OPEN;
        // SAFETY: attr points at a properly sized, zero-tailed
        // perf_event_attr; pid=0/cpu=-1 is "this thread, any CPU".
        let fd = unsafe {
            syscall(
                nr,
                &mut attr as *mut PerfEventAttr,
                0 as c_int,   // pid: calling thread
                -1 as c_int,  // cpu: any
                group_fd,     // -1 for leader, leader fd for members
                0 as c_ulong, // flags
            )
        };
        if fd < 0 {
            let e = errno();
            Err(format!(
                "perf_event_open(config={config}) failed: {} (errno {e})",
                errno_name(e)
            ))
        } else {
            Ok(fd as c_int)
        }
    }

    /// An open counter group bound to the creating thread. Not `Send`: the
    /// counters follow the thread they were opened on.
    pub struct PerfGroup {
        leader: c_int, // cycles
        instructions: c_int,
        llc: Option<c_int>,
        branch: Option<c_int>,
        _not_send: std::marker::PhantomData<*mut ()>,
    }

    impl PerfGroup {
        /// Opens the group for the calling thread: cycles + instructions,
        /// plus LLC/branch misses when the PMU grants them. Fails only when
        /// even the cycles counter is unavailable.
        pub fn open() -> Result<Self, String> {
            let leader = open_counter(PERF_COUNT_HW_CPU_CYCLES, -1, true)?;
            let instructions = match open_counter(PERF_COUNT_HW_INSTRUCTIONS, leader, false) {
                Ok(fd) => fd,
                Err(e) => {
                    // SAFETY: leader is an fd we just opened.
                    unsafe { close(leader) };
                    return Err(e);
                }
            };
            // Cache/branch events are optional: VMs often virtualize only
            // the fixed counters.
            let llc = open_counter(PERF_COUNT_HW_CACHE_MISSES, leader, false).ok();
            let branch = open_counter(PERF_COUNT_HW_BRANCH_MISSES, leader, false).ok();
            Ok(Self {
                leader,
                instructions,
                llc,
                branch,
                _not_send: std::marker::PhantomData,
            })
        }

        /// Which optional events opened.
        pub fn caps(&self) -> PerfCaps {
            PerfCaps {
                llc_misses: self.llc.is_some(),
                branch_misses: self.branch.is_some(),
            }
        }

        /// Resets and starts the whole group. Allocation-free.
        #[inline]
        pub fn start(&self) {
            // SAFETY: leader is a live perf fd; group ioctls are documented
            // for exactly this use.
            unsafe {
                ioctl(self.leader, IOC_RESET, IOC_FLAG_GROUP);
                ioctl(self.leader, IOC_ENABLE, IOC_FLAG_GROUP);
            }
        }

        /// Stops the group and reads the counts. Allocation-free; returns
        /// `None` if the kernel read fails or reports zero running time.
        #[inline]
        pub fn stop(&self) -> Option<PerfSample> {
            // SAFETY: see start().
            unsafe { ioctl(self.leader, IOC_DISABLE, IOC_FLAG_GROUP) };
            // Group read layout: nr, time_enabled, time_running, values[nr].
            let mut buf = [0u64; 8];
            let want = (3 + 2 + self.llc.iter().len() + self.branch.iter().len()) * 8;
            // SAFETY: buf is 64 bytes, want ≤ 56.
            let n = unsafe { read(self.leader, buf.as_mut_ptr() as *mut u8, want) };
            if n < want as isize {
                return None;
            }
            let nr = buf[0] as usize;
            let (enabled, running) = (buf[1], buf[2]);
            if running == 0 || nr < 2 {
                return None;
            }
            // Multiplexing correction: counts × enabled/running.
            let scale = |v: u64| -> u64 {
                if enabled == running {
                    v
                } else {
                    (v as f64 * enabled as f64 / running as f64) as u64
                }
            };
            let mut vals = buf[3..3 + nr].iter().map(|&v| scale(v));
            let cycles = vals.next()?;
            let instructions = vals.next()?;
            let llc_misses = self.llc.and_then(|_| vals.next());
            let branch_misses = self.branch.and_then(|_| vals.next());
            Some(PerfSample {
                cycles,
                instructions,
                llc_misses,
                branch_misses,
            })
        }

        /// Runs `f` with the group counting and returns its sample.
        pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, Option<PerfSample>) {
            self.start();
            let r = f();
            let s = self.stop();
            (r, s)
        }
    }

    impl Drop for PerfGroup {
        fn drop(&mut self) {
            // SAFETY: fds were opened by this group and not closed since.
            unsafe {
                if let Some(fd) = self.llc {
                    close(fd);
                }
                if let Some(fd) = self.branch {
                    close(fd);
                }
                close(self.instructions);
                close(self.leader);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{PerfCaps, PerfSample};

    /// Stub for non-Linux targets: opening always fails with a clear
    /// reason, so every caller takes the timing-only path.
    pub struct PerfGroup {
        _private: (),
    }

    impl PerfGroup {
        /// Always unavailable off Linux.
        pub fn open() -> Result<Self, String> {
            Err("perf_event_open is Linux-only".to_string())
        }

        /// Unreachable (open never succeeds), present for API parity.
        pub fn caps(&self) -> PerfCaps {
            PerfCaps {
                llc_misses: false,
                branch_misses: false,
            }
        }

        /// No-op.
        pub fn start(&self) {}

        /// Always `None`.
        pub fn stop(&self) -> Option<PerfSample> {
            None
        }

        /// Runs `f` uncounted.
        pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, Option<PerfSample>) {
            (f(), None)
        }
    }
}

pub use imp::PerfGroup;

/// Per-thread counter-group state for [`with_thread_group`].
enum TlsState {
    Untried,
    Unavailable,
    // ManuallyDrop keeps the whole enum free of drop glue, which lets the
    // thread-local below use const initialization: no lazy-init branch, no
    // destructor registration (glibc's __cxa_thread_atexit allocates), and
    // therefore no allocation on the measurement path. The cost is that a
    // thread's 2–4 counter fds are reclaimed at process exit rather than
    // thread exit — bounded by the (long-lived) serving thread count.
    Open(std::mem::ManuallyDrop<PerfGroup>),
}

/// Runs `f` with this thread's cached counter group, opening it on first
/// use. `f` receives `None` when counters are unavailable (probe failed,
/// or the per-thread open failed). Allocation-free after the process-wide
/// [`probe`] has run once.
pub fn with_thread_group<R>(f: impl FnOnce(Option<&PerfGroup>) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static GROUP: RefCell<TlsState> = const { RefCell::new(TlsState::Untried) };
    }
    GROUP.with(|cell| {
        let mut state = cell.borrow_mut();
        if let TlsState::Untried = *state {
            *state = match probe().ok().and_then(|_| PerfGroup::open().ok()) {
                Some(g) => TlsState::Open(std::mem::ManuallyDrop::new(g)),
                None => TlsState::Unavailable,
            };
        }
        match &*state {
            TlsState::Open(g) => f(Some(g)),
            _ => f(None),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_cached_and_consistent() {
        assert_eq!(probe(), probe());
    }

    #[test]
    fn sample_accumulation_and_ipc() {
        let mut a = PerfSample {
            cycles: 100,
            instructions: 250,
            llc_misses: Some(4),
            branch_misses: None,
        };
        let b = PerfSample {
            cycles: 100,
            instructions: 150,
            llc_misses: Some(6),
            branch_misses: Some(1),
        };
        a.add(&b);
        assert_eq!(a.cycles, 200);
        assert_eq!(a.instructions, 400);
        assert_eq!(a.llc_misses, Some(10));
        assert_eq!(a.branch_misses, None, "None is sticky");
        assert_eq!(a.ipc(), Some(2.0));
        assert_eq!(PerfSample::default().ipc(), None);
    }

    #[test]
    fn counting_a_real_loop_or_clean_unavailability() {
        match PerfGroup::open() {
            Ok(g) => {
                let (sum, sample) = g.measure(|| {
                    let mut s = 0u64;
                    for i in 0..100_000u64 {
                        s = s.wrapping_add(std::hint::black_box(i));
                    }
                    s
                });
                assert!(sum > 0);
                if let Some(s) = sample {
                    // 100k iterations retire well over 100k instructions.
                    assert!(s.instructions > 100_000, "instructions {}", s.instructions);
                    assert!(s.cycles > 0);
                }
            }
            Err(reason) => {
                // Graceful path: the reason must say *why*.
                assert!(!reason.is_empty());
            }
        }
    }

    #[test]
    fn thread_group_is_reused_and_never_blocks_the_closure() {
        let a = with_thread_group(|g| (g.is_some(), 7));
        let b = with_thread_group(|g| (g.is_some(), 8));
        assert_eq!(a.0, b.0, "availability is stable within a thread");
        assert_eq!((a.1, b.1), (7, 8));
    }

    #[test]
    fn measure_returns_closure_result_even_when_unavailable() {
        // Whatever the machine supports, measure() must hand the closure's
        // value back.
        if let Ok(g) = PerfGroup::open() {
            let (v, _) = g.measure(|| 42);
            assert_eq!(v, 42);
        }
    }
}
