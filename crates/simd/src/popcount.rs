//! Population-count building blocks.
//!
//! The paper's accumulation step is `bitcount` (Table I lists
//! `_mm512_popcnt_epi64` / `_mm512_maskz_popcnt_epi64` from AVX-512
//! VPOPCNTDQ). Pre-VPOPCNTDQ silicon has no vector popcount, so practical
//! engines use one of:
//!
//! * the scalar `POPCNT` instruction on extracted 64-bit lanes, or
//! * the SSSE3/AVX2 **nibble-lookup** algorithm (Muła et al.): shuffle a
//!   16-entry table of nibble popcounts with `PSHUFB`, then horizontally
//!   sum with `PSADBW`.
//!
//! Both are provided here; the scheduler picks per hardware.

/// Portable software popcount (SWAR), used as the ground-truth reference in
/// property tests. Identical algorithm to the classic Hacker's Delight
/// implementation; `u64::count_ones` compiles to `POPCNT` when available,
/// so this deliberately avoids it.
#[inline]
pub const fn popcount_swar(mut x: u64) -> u32 {
    x = x - ((x >> 1) & 0x5555_5555_5555_5555);
    x = (x & 0x3333_3333_3333_3333) + ((x >> 2) & 0x3333_3333_3333_3333);
    x = (x + (x >> 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    ((x.wrapping_mul(0x0101_0101_0101_0101)) >> 56) as u32
}

/// Sum of popcounts over a slice using the portable SWAR kernel.
pub fn popcount_slice_swar(xs: &[u64]) -> u64 {
    xs.iter().map(|&x| popcount_swar(x) as u64).sum()
}

/// Sum of popcounts using `u64::count_ones` (lowers to the scalar `POPCNT`
/// instruction when the target has it).
#[inline]
pub fn popcount_slice_scalar(xs: &[u64]) -> u64 {
    xs.iter().map(|&x| x.count_ones() as u64).sum()
}

/// AVX2 nibble-lookup popcount over a 256-bit register, returning per-64-bit
/// lane counts in a `__m256i`.
///
/// # Safety
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn popcount_m256_lookup(v: std::arch::x86_64::__m256i) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    // Table of popcounts of all 4-bit values, replicated across both lanes.
    let table = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low_mask);
    let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
    let cnt_lo = _mm256_shuffle_epi8(table, lo);
    let cnt_hi = _mm256_shuffle_epi8(table, hi);
    let bytes = _mm256_add_epi8(cnt_lo, cnt_hi);
    // Horizontal sum of groups of 8 bytes into the four 64-bit lanes.
    _mm256_sad_epu8(bytes, _mm256_setzero_si256())
}

/// Sum of popcounts over a slice using the AVX2 nibble-lookup kernel with a
/// scalar tail.
///
/// # Safety
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn popcount_slice_avx2(xs: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    let mut acc = _mm256_setzero_si256();
    let chunks = xs.chunks_exact(4);
    let rem = chunks.remainder();
    for chunk in chunks {
        let v = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
        acc = _mm256_add_epi64(acc, popcount_m256_lookup(v));
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    lanes.iter().sum::<u64>() + popcount_slice_scalar(rem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn swar_matches_count_ones_on_edge_values() {
        for x in [
            0u64,
            1,
            u64::MAX,
            0x8000_0000_0000_0000,
            0x5555_5555_5555_5555,
            0xAAAA_AAAA_AAAA_AAAA,
            0x0123_4567_89AB_CDEF,
        ] {
            assert_eq!(popcount_swar(x), x.count_ones(), "x={x:#x}");
        }
    }

    #[test]
    fn swar_matches_count_ones_random() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: u64 = rng.gen();
            assert_eq!(popcount_swar(x), x.count_ones());
        }
    }

    #[test]
    fn slice_kernels_agree() {
        let mut rng = StdRng::seed_from_u64(43);
        for len in [0usize, 1, 3, 4, 5, 8, 17, 64, 1000] {
            let xs: Vec<u64> = (0..len).map(|_| rng.gen()).collect();
            let want = popcount_slice_swar(&xs);
            assert_eq!(popcount_slice_scalar(&xs), want, "scalar len={len}");
            #[cfg(target_arch = "x86_64")]
            if is_x86_feature_detected!("avx2") {
                // SAFETY: feature checked above.
                assert_eq!(unsafe { popcount_slice_avx2(&xs) }, want, "avx2 len={len}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_lane_counts() {
        if !is_x86_feature_detected!("avx2") {
            return;
        }
        use std::arch::x86_64::*;
        // SAFETY: avx2 checked.
        unsafe {
            let v = _mm256_setr_epi64x(-1i64, 0, 0x0F0F, 1 << 63 | 1);
            let counts = popcount_m256_lookup(v);
            let mut lanes = [0u64; 4];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, counts);
            assert_eq!(lanes, [64, 0, 8, 2]);
        }
    }
}
