//! The vector execution scheduler (paper §III-B, Fig. 4).
//!
//! Three components:
//!
//! 1. **Shape inferer** — computes the output dimensions of every operator
//!    from input and filter sizes ([`infer_conv`], [`infer_pool`]).
//! 2. **Hardware detector** — [`crate::detect`].
//! 3. **Code generator / kernel selector** — [`VectorScheduler::select`]
//!    applies the paper's rules to pick a computing kernel per operator:
//!
//!    * channel bits ≡ 0 (mod 512) → pack into `__m512i`, use AVX-512;
//!    * ≡ 0 (mod 256) → `__m256i`, AVX2;
//!    * ≡ 0 (mod 128) → `__m128i`, SSE;
//!    * ≡ 0 (mod 32/64) → scalar word intrinsics;
//!    * otherwise → pad extra zero channels, then scalar words.
//!
//!    A rule whose ISA is missing demotes to the next narrower one — e.g.
//!    C = 512 on an AVX2-only i7 runs the AVX2 kernel, exactly as the paper
//!    describes for conv5.1 on the i7-7700HQ.

use crate::detect::{features, HwFeatures};
use crate::kernels::SimdLevel;
use serde::{Deserialize, Serialize};

/// Word size used for channel packing (we press into `u64`).
pub const PACK_BITS: usize = 64;

/// A geometry the kernel selector / shape inferer cannot schedule.
///
/// These are the typed forms of every precondition §III-B's scheduler
/// imposes on an operator: the serving path surfaces them as errors
/// *before* a kernel is dispatched instead of panicking mid-inference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnsupportedKernel {
    /// Convolution kernel does not fit in the (padded) input.
    KernelExceedsInput {
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Padded input height.
        h: usize,
        /// Padded input width.
        w: usize,
    },
    /// Pooling window does not fit in the input.
    WindowExceedsInput {
        /// Window height.
        kh: usize,
        /// Window width.
        kw: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
    },
    /// Stride of zero never advances.
    ZeroStride,
    /// A zero-sized dimension (no kernel operates on nothing).
    ZeroDim {
        /// Which dimension was zero.
        what: &'static str,
    },
    /// Channel count so large that padding it to a packable multiple
    /// overflows `usize` — no buffer of that size can exist.
    ChannelOverflow {
        /// The offending channel count.
        c: usize,
    },
    /// Spatial pooling padding is not supported by this engine.
    PoolPadding {
        /// Requested padding.
        pad: usize,
    },
}

impl std::fmt::Display for UnsupportedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnsupportedKernel::KernelExceedsInput { kh, kw, h, w } => {
                write!(
                    f,
                    "kernel larger than padded input ({kh}x{kw} over {h}x{w})"
                )
            }
            UnsupportedKernel::WindowExceedsInput { kh, kw, h, w } => {
                write!(f, "window larger than input ({kh}x{kw} over {h}x{w})")
            }
            UnsupportedKernel::ZeroStride => write!(f, "stride must be positive"),
            UnsupportedKernel::ZeroDim { what } => write!(f, "zero-sized {what}"),
            UnsupportedKernel::ChannelOverflow { c } => {
                write!(f, "channel count {c} overflows the packing arithmetic")
            }
            UnsupportedKernel::PoolPadding { pad } => {
                write!(f, "pooling uses no padding in this engine (got pad={pad})")
            }
        }
    }
}

impl std::error::Error for UnsupportedKernel {}

/// The kernel decision for one operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelChoice {
    /// Selected vector width.
    pub level: SimdLevel,
    /// Channel count after zero-padding to a packable multiple.
    pub c_padded: usize,
    /// `u64` words per packed channel vector.
    pub c_words: usize,
    /// True if rule 5 fired (channels were padded).
    pub padded: bool,
}

/// Geometry of a convolution/pooling operator as seen by the shape inferer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvGeometry {
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
    /// Output channels (K for conv, C for pool).
    pub out_c: usize,
}

/// Fallible shape inferer for convolution: input (h, w, c) with symmetric
/// spatial padding `pad`, K filters of kh×kw, given stride. Every geometry
/// a kernel could not run on comes back as a typed [`UnsupportedKernel`].
pub fn try_infer_conv(
    h: usize,
    w: usize,
    k: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Result<ConvGeometry, UnsupportedKernel> {
    if kh == 0 || kw == 0 {
        return Err(UnsupportedKernel::ZeroDim { what: "kernel" });
    }
    if k == 0 {
        return Err(UnsupportedKernel::ZeroDim {
            what: "filter count",
        });
    }
    if stride == 0 {
        return Err(UnsupportedKernel::ZeroStride);
    }
    let margin = pad
        .checked_mul(2)
        .ok_or(UnsupportedKernel::ChannelOverflow { c: pad })?;
    let (ph, pw) = (
        h.checked_add(margin)
            .ok_or(UnsupportedKernel::ChannelOverflow { c: h })?,
        w.checked_add(margin)
            .ok_or(UnsupportedKernel::ChannelOverflow { c: w })?,
    );
    if kh > ph || kw > pw {
        return Err(UnsupportedKernel::KernelExceedsInput {
            kh,
            kw,
            h: ph,
            w: pw,
        });
    }
    Ok(ConvGeometry {
        out_h: (ph - kh) / stride + 1,
        out_w: (pw - kw) / stride + 1,
        out_c: k,
    })
}

/// Shape inferer for convolution (panicking wrapper over
/// [`try_infer_conv`], kept for callers on the trusted path).
///
/// # Panics
/// If the kernel does not fit in the padded input or the geometry is
/// otherwise unschedulable.
pub fn infer_conv(
    h: usize,
    w: usize,
    k: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> ConvGeometry {
    match try_infer_conv(h, w, k, kh, kw, stride, pad) {
        Ok(g) => g,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible shape inferer for pooling: window kh×kw with given stride,
/// channels kept.
pub fn try_infer_pool(
    h: usize,
    w: usize,
    c: usize,
    kh: usize,
    kw: usize,
    stride: usize,
) -> Result<ConvGeometry, UnsupportedKernel> {
    if kh == 0 || kw == 0 {
        return Err(UnsupportedKernel::ZeroDim { what: "window" });
    }
    if c == 0 {
        return Err(UnsupportedKernel::ZeroDim { what: "channels" });
    }
    if stride == 0 {
        return Err(UnsupportedKernel::ZeroStride);
    }
    if kh > h || kw > w {
        return Err(UnsupportedKernel::WindowExceedsInput { kh, kw, h, w });
    }
    Ok(ConvGeometry {
        out_h: (h - kh) / stride + 1,
        out_w: (w - kw) / stride + 1,
        out_c: c,
    })
}

/// Shape inferer for pooling (panicking wrapper over [`try_infer_pool`]).
///
/// # Panics
/// If the window does not fit or the geometry is unschedulable.
pub fn infer_pool(
    h: usize,
    w: usize,
    c: usize,
    kh: usize,
    kw: usize,
    stride: usize,
) -> ConvGeometry {
    match try_infer_pool(h, w, c, kh, kw, stride) {
        Ok(g) => g,
        Err(e) => panic!("{e}"),
    }
}

/// The scheduler proper: holds a (possibly capped) hardware feature set and
/// maps channel widths to kernels.
#[derive(Clone, Copy, Debug)]
pub struct VectorScheduler {
    features: HwFeatures,
}

impl Default for VectorScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl VectorScheduler {
    /// Scheduler for the running CPU.
    pub fn new() -> Self {
        Self {
            features: features(),
        }
    }

    /// Scheduler for an explicit feature set (tests, ablations, the
    /// unoptimized-binary baseline).
    pub fn with_features(features: HwFeatures) -> Self {
        Self { features }
    }

    /// The feature set this scheduler plans for.
    pub fn features(&self) -> HwFeatures {
        self.features
    }

    /// Applies the paper's kernel-selection rules to a channel width,
    /// rejecting widths no kernel can serve (zero, or so large that the
    /// pad-to-packable rule overflows) instead of panicking.
    pub fn try_select(&self, c: usize) -> Result<KernelChoice, UnsupportedKernel> {
        if c == 0 {
            return Err(UnsupportedKernel::ZeroDim { what: "channels" });
        }
        let f = self.features;
        let padded = !c.is_multiple_of(32);
        // We pack into u64 words, so pad to the next multiple of 64 whenever
        // padding is needed at all; for c ≡ 32 (mod 64) the top half of the
        // final word is a zero press-tail handled by the packing invariant.
        let c_padded = if padded {
            c.div_ceil(PACK_BITS)
                .checked_mul(PACK_BITS)
                .ok_or(UnsupportedKernel::ChannelOverflow { c })?
        } else {
            c
        };
        let c_words = c_padded.div_ceil(PACK_BITS);
        let level = Self::select_level(c_padded, f);
        Ok(KernelChoice {
            level,
            c_padded,
            c_words,
            padded,
        })
    }

    /// Applies the paper's kernel-selection rules to a channel width
    /// (panicking wrapper over [`VectorScheduler::try_select`]).
    ///
    /// # Panics
    /// On a channel width no kernel can serve (see [`UnsupportedKernel`]).
    pub fn select(&self, c: usize) -> KernelChoice {
        match self.try_select(c) {
            Ok(k) => k,
            Err(e) => panic!("{e}"),
        }
    }

    fn select_level(c_bits: usize, f: HwFeatures) -> SimdLevel {
        // Paper rules, cascading to narrower ISAs when a width is not a
        // divisor or the ISA is absent.
        if c_bits.is_multiple_of(512) && f.avx512f {
            SimdLevel::Avx512
        } else if c_bits.is_multiple_of(256) && f.avx2 {
            SimdLevel::Avx2
        } else if c_bits.is_multiple_of(128) && f.sse2 {
            SimdLevel::Sse
        } else {
            SimdLevel::Scalar
        }
    }

    /// The level used for operators that stream long contiguous word runs
    /// regardless of per-pixel channel width (bgemm rows, fused kh·kw·C conv
    /// rows): simply the widest available, since masked/partial tails make
    /// any length efficient.
    pub fn streaming_level(&self) -> SimdLevel {
        SimdLevel::best_for(self.features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> HwFeatures {
        HwFeatures {
            sse2: true,
            ssse3: true,
            popcnt: true,
            avx2: true,
            avx512f: true,
            avx512bw: true,
            avx512vpopcntdq: true,
        }
    }

    #[test]
    fn paper_vgg_mapping_on_xeon_phi() {
        // Paper Fig. 6: conv1.1 C=3 → pad; conv2.1 C=64 → scalar words;
        // conv3.1 C=128 → SSE; conv4.1 C=256 → AVX2; conv5.1 C=512 → AVX-512.
        let s = VectorScheduler::with_features(full());
        let c3 = s.select(3);
        assert!(c3.padded);
        assert_eq!(c3.c_padded, 64);
        assert_eq!(c3.level, SimdLevel::Scalar);
        assert_eq!(s.select(64).level, SimdLevel::Scalar);
        assert_eq!(s.select(128).level, SimdLevel::Sse);
        assert_eq!(s.select(256).level, SimdLevel::Avx2);
        assert_eq!(s.select(512).level, SimdLevel::Avx512);
    }

    #[test]
    fn demotion_without_avx512_matches_i7_behaviour() {
        // Paper: conv5.1 uses AVX-512 on Xeon Phi, otherwise AVX2 on Core i7.
        let i7 = HwFeatures {
            avx512f: false,
            avx512bw: false,
            avx512vpopcntdq: false,
            ..full()
        };
        let s = VectorScheduler::with_features(i7);
        assert_eq!(s.select(512).level, SimdLevel::Avx2);
        assert_eq!(s.select(256).level, SimdLevel::Avx2);
    }

    #[test]
    fn scalar_only_always_scalar() {
        let s = VectorScheduler::with_features(HwFeatures::scalar_only());
        for c in [3usize, 64, 128, 256, 512, 4096] {
            assert_eq!(s.select(c).level, SimdLevel::Scalar, "c={c}");
        }
    }

    #[test]
    fn padding_rule() {
        let s = VectorScheduler::with_features(full());
        for (c, want_pad, want_c) in [
            (1usize, true, 64usize),
            (31, true, 64),
            (32, false, 32),
            (33, true, 64),
            (65, true, 128),
            (96, false, 96),
        ] {
            let k = s.select(c);
            assert_eq!(k.padded, want_pad, "c={c}");
            assert_eq!(k.c_padded, want_c, "c={c}");
        }
    }

    #[test]
    fn c_words_consistent() {
        let s = VectorScheduler::with_features(full());
        assert_eq!(s.select(512).c_words, 8);
        assert_eq!(s.select(64).c_words, 1);
        assert_eq!(s.select(3).c_words, 1);
        assert_eq!(s.select(96).c_words, 2);
    }

    #[test]
    fn shape_inferer_conv() {
        // VGG 3x3 stride-1 pad-1 keeps spatial dims.
        let g = infer_conv(112, 112, 128, 3, 3, 1, 1);
        assert_eq!((g.out_h, g.out_w, g.out_c), (112, 112, 128));
        // No pad shrinks by k-1.
        let g = infer_conv(112, 112, 128, 3, 3, 1, 0);
        assert_eq!((g.out_h, g.out_w), (110, 110));
        // Stride 2.
        let g = infer_conv(8, 8, 4, 2, 2, 2, 0);
        assert_eq!((g.out_h, g.out_w), (4, 4));
    }

    #[test]
    fn shape_inferer_pool() {
        let g = infer_pool(28, 28, 512, 2, 2, 2);
        assert_eq!((g.out_h, g.out_w, g.out_c), (14, 14, 512));
    }

    #[test]
    fn oversized_kernel_rejected_with_typed_error() {
        // Once a panic, now a value: the serving path matches on this.
        assert_eq!(
            try_infer_conv(2, 2, 1, 3, 3, 1, 0),
            Err(UnsupportedKernel::KernelExceedsInput {
                kh: 3,
                kw: 3,
                h: 2,
                w: 2,
            })
        );
        // Padding that makes the kernel fit turns the same call Ok.
        assert!(try_infer_conv(2, 2, 1, 3, 3, 1, 1).is_ok());
    }

    #[test]
    fn hostile_geometries_are_typed_errors() {
        assert_eq!(
            try_infer_conv(8, 8, 4, 3, 3, 0, 1),
            Err(UnsupportedKernel::ZeroStride)
        );
        assert_eq!(
            try_infer_conv(8, 8, 4, 0, 3, 1, 1),
            Err(UnsupportedKernel::ZeroDim { what: "kernel" })
        );
        assert_eq!(
            try_infer_conv(8, 8, 0, 3, 3, 1, 1),
            Err(UnsupportedKernel::ZeroDim {
                what: "filter count"
            })
        );
        assert_eq!(
            try_infer_pool(4, 4, 16, 8, 8, 2),
            Err(UnsupportedKernel::WindowExceedsInput {
                kh: 8,
                kw: 8,
                h: 4,
                w: 4,
            })
        );
        assert_eq!(
            try_infer_pool(4, 4, 0, 2, 2, 2),
            Err(UnsupportedKernel::ZeroDim { what: "channels" })
        );
        // Overflow-sized paddings must not wrap around.
        assert!(try_infer_conv(usize::MAX, 8, 4, 3, 3, 1, 1).is_err());
    }

    #[test]
    fn try_select_rejects_zero_and_overflow_widths() {
        let s = VectorScheduler::with_features(full());
        assert_eq!(
            s.try_select(0),
            Err(UnsupportedKernel::ZeroDim { what: "channels" })
        );
        assert_eq!(
            s.try_select(usize::MAX - 1),
            Err(UnsupportedKernel::ChannelOverflow { c: usize::MAX - 1 })
        );
        assert_eq!(s.try_select(512).map(|k| k.level), Ok(SimdLevel::Avx512));
    }

    #[test]
    fn streaming_level_is_widest() {
        let s = VectorScheduler::with_features(full());
        assert_eq!(s.streaming_level(), SimdLevel::Avx512);
        let s = VectorScheduler::with_features(HwFeatures::scalar_only());
        assert_eq!(s.streaming_level(), SimdLevel::Scalar);
    }
}
