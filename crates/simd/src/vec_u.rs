//! Rust counterparts of the paper's SIMD union types (Table II).
//!
//! The C implementation reads SIMD registers back as `int64_t` lanes through
//! unions (`m128_u`, `m256_u`, `m512_u`). In Rust the same reinterpretation
//! is expressed with `#[repr(C)]` unions over `std::arch` vector types; the
//! accessors below encapsulate the (trivially sound, same-size POD) unsafe
//! reads.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::{__m128i, __m256i, __m512i};

/// 128-bit register viewed as two `u64` lanes (paper's `m128_u`).
#[derive(Clone, Copy)]
#[repr(C)]
pub union M128U {
    /// SIMD register view.
    pub m: __m128i,
    /// Lane view.
    pub i: [u64; 2],
}

/// 256-bit register viewed as four `u64` lanes (paper's `m256_u`).
#[derive(Clone, Copy)]
#[repr(C)]
pub union M256U {
    /// SIMD register view.
    pub m: __m256i,
    /// Lane view.
    pub i: [u64; 4],
}

/// 512-bit register viewed as eight `u64` lanes (paper's `m512_u`; the
/// paper's listing has a typo — `__m256i` inside `m512_u` — corrected here).
#[derive(Clone, Copy)]
#[repr(C)]
pub union M512U {
    /// SIMD register view.
    pub m: __m512i,
    /// Lane view.
    pub i: [u64; 8],
}

impl M128U {
    /// Builds from lanes.
    pub fn from_lanes(i: [u64; 2]) -> Self {
        Self { i }
    }
    /// Reads the lanes.
    pub fn lanes(self) -> [u64; 2] {
        // SAFETY: both views are plain 128-bit POD.
        unsafe { self.i }
    }
}

impl M256U {
    /// Builds from lanes.
    pub fn from_lanes(i: [u64; 4]) -> Self {
        Self { i }
    }
    /// Reads the lanes.
    pub fn lanes(self) -> [u64; 4] {
        // SAFETY: both views are plain 256-bit POD.
        unsafe { self.i }
    }
}

impl M512U {
    /// Builds from lanes.
    pub fn from_lanes(i: [u64; 8]) -> Self {
        Self { i }
    }
    /// Reads the lanes.
    pub fn lanes(self) -> [u64; 8] {
        // SAFETY: both views are plain 512-bit POD.
        unsafe { self.i }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_registers() {
        assert_eq!(std::mem::size_of::<M128U>(), 16);
        assert_eq!(std::mem::size_of::<M256U>(), 32);
        assert_eq!(std::mem::size_of::<M512U>(), 64);
    }

    #[test]
    fn lane_round_trip() {
        let u = M128U::from_lanes([1, 2]);
        assert_eq!(u.lanes(), [1, 2]);
        let u = M256U::from_lanes([1, 2, 3, 4]);
        assert_eq!(u.lanes(), [1, 2, 3, 4]);
        let u = M512U::from_lanes([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(u.lanes(), [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn register_view_round_trip() {
        if !is_x86_feature_detected!("avx2") {
            return;
        }
        use std::arch::x86_64::*;
        // SAFETY: avx2 checked; union views are same-size POD.
        unsafe {
            let v = _mm256_setr_epi64x(10, 20, 30, 40);
            let u = M256U { m: v };
            assert_eq!(u.lanes(), [10, 20, 30, 40]);
        }
    }
}
