//! Property tests for the SIMD kernel substrate: every vectorized kernel
//! must agree bit-exactly with the portable SWAR reference on arbitrary
//! inputs, lengths and geometries.

use bitflow_simd::conv::{conv_window, WindowGeom};
use bitflow_simd::kernels::SimdLevel;
use bitflow_simd::pack::pack_f32;
use bitflow_simd::popcount::popcount_swar;
use bitflow_simd::{binary_dot, or_accumulate, xor_popcount};
use proptest::prelude::*;

const LEVELS: [SimdLevel; 5] = [
    SimdLevel::Unvectorized,
    SimdLevel::Scalar,
    SimdLevel::Sse,
    SimdLevel::Avx2,
    SimdLevel::Avx512,
];

fn reference_pop(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| popcount_swar(x ^ y) as u64)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn xor_popcount_matches_reference(
        words in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..600),
    ) {
        let a: Vec<u64> = words.iter().map(|w| w.0).collect();
        let b: Vec<u64> = words.iter().map(|w| w.1).collect();
        let want = reference_pop(&a, &b);
        for level in LEVELS {
            prop_assert_eq!(xor_popcount(level, &a, &b), want, "{}", level);
        }
    }

    #[test]
    fn or_accumulate_matches_reference(
        words in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..300),
    ) {
        let base: Vec<u64> = words.iter().map(|w| w.0).collect();
        let src: Vec<u64> = words.iter().map(|w| w.1).collect();
        let want: Vec<u64> = base.iter().zip(&src).map(|(&x, &y)| x | y).collect();
        for level in LEVELS {
            let mut acc = base.clone();
            or_accumulate(level, &mut acc, &src);
            prop_assert_eq!(&acc, &want, "{}", level);
        }
    }

    #[test]
    fn binary_dot_bounds_and_parity(
        words in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..100),
        tail_bits in 1usize..=64,
    ) {
        // Mask the final word so n_logical is honest and tails are zero in
        // both operands (the press-tail invariant the kernels rely on).
        let mut a: Vec<u64> = words.iter().map(|w| w.0).collect();
        let mut b: Vec<u64> = words.iter().map(|w| w.1).collect();
        let mask = if tail_bits == 64 { !0u64 } else { (1u64 << tail_bits) - 1 };
        let last = a.len() - 1;
        a[last] &= mask;
        b[last] &= mask;
        let n = (a.len() - 1) * 64 + tail_bits;
        for level in LEVELS {
            let dot = binary_dot(level, &a, &b, n);
            // |dot| ≤ n and dot ≡ n (mod 2).
            prop_assert!(dot.unsigned_abs() as usize <= n);
            prop_assert_eq!((n as i32 - dot).rem_euclid(2), 0);
        }
    }

    #[test]
    fn pack_matches_sign_reference(
        xs in proptest::collection::vec(-2.0f32..2.0, 0..400),
    ) {
        let mut out = vec![0u64; xs.len().div_ceil(64)];
        pack_f32(&xs, &mut out);
        for (i, &x) in xs.iter().enumerate() {
            let bit = (out[i / 64] >> (i % 64)) & 1;
            prop_assert_eq!(bit == 1, x >= 0.0, "element {}", i);
        }
        // Tail bits zero.
        if xs.len() % 64 != 0 {
            prop_assert_eq!(out[xs.len() / 64] >> (xs.len() % 64), 0);
        }
    }

    #[test]
    fn conv_window_matches_scalar_everywhere(
        kh in 1usize..4,
        row_len in 1usize..30,
        extra_stride in 0usize..10,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let row_stride = row_len + extra_stride;
        let input: Vec<u64> = (0..kh * row_stride + row_len + 4).map(|_| rng.gen()).collect();
        let filters: Vec<u64> = (0..k * kh * row_len).map(|_| rng.gen()).collect();
        let g = WindowGeom {
            base: 1,
            row_stride,
            row_len,
            kh,
            n_logical: (kh * row_len * 64) as i32,
        };
        let mut want = vec![0.0f32; k];
        conv_window(SimdLevel::Unvectorized, &input, &filters, g, &mut want);
        for level in [SimdLevel::Scalar, SimdLevel::Sse, SimdLevel::Avx2, SimdLevel::Avx512] {
            let mut out = vec![0.0f32; k];
            conv_window(level, &input, &filters, g, &mut out);
            prop_assert_eq!(&out, &want, "{}", level);
        }
    }

    #[test]
    fn xor_popcount_self_is_zero(ws in proptest::collection::vec(any::<u64>(), 0..200)) {
        for level in LEVELS {
            prop_assert_eq!(xor_popcount(level, &ws, &ws), 0);
        }
    }

    #[test]
    fn xor_popcount_complement_is_full(ws in proptest::collection::vec(any::<u64>(), 0..200)) {
        let inv: Vec<u64> = ws.iter().map(|w| !w).collect();
        for level in LEVELS {
            prop_assert_eq!(xor_popcount(level, &ws, &inv), ws.len() as u64 * 64);
        }
    }
}
