//! Chrome trace-event exporter (Perfetto-loadable).
//!
//! Renders a set of [`RequestTrace`]s in the Trace Event Format's JSON
//! object form (`{"traceEvents": [...]}`) using complete (`"ph": "X"`)
//! events, which both `chrome://tracing` and <https://ui.perfetto.dev>
//! load directly.
//!
//! Layout contract (what the round-trip proptest pins):
//!
//! * one process (`pid` 1); every trace `i` in the input slice owns three
//!   thread lanes — `3i+1` (the whole-request span), `3i+2` (lifecycle
//!   stages), `3i+3` (operator spans) — so the pid/tid mapping is a pure
//!   function of the trace's position, stable across exports;
//! * traces are laid out sequentially on the timeline (each trace's
//!   origin starts 1 µs after the previous trace ends), so `ts` is
//!   monotonic within every lane;
//! * within a lane, events never overlap: spans are clamped against their
//!   predecessor's end and against the request total, which also makes
//!   the nesting (`request ⊇ stages ⊇ …`) literal on screen;
//! * timestamps are microseconds (the format's unit) with nanosecond
//!   fractions.

use crate::span::RequestTrace;
use serde::Value;

/// An object value from `(key, value)` pairs, insertion-ordered.
fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn vstr(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

/// Microseconds (the trace-event unit) from nanoseconds, keeping the
/// sub-microsecond fraction.
fn us(ns: u64) -> Value {
    Value::Float(ns as f64 / 1000.0)
}

/// Clamps a `(start_ns, duration_ns)` span to start at or after
/// `prev_end` and end at or before `limit`, returning the clamped
/// `(start, end)`.
fn clamp_span(start_ns: u64, duration_ns: u64, prev_end: u64, limit: u64) -> (u64, u64) {
    let start = start_ns.max(prev_end).min(limit);
    let end = start_ns
        .saturating_add(duration_ns)
        .max(start)
        .min(limit.max(start));
    (start, end)
}

/// Renders `traces` as one Chrome trace-event JSON document.
#[must_use]
pub fn to_chrome_trace(traces: &[RequestTrace]) -> String {
    let mut events: Vec<Value> = Vec::new();
    events.push(obj(vec![
        ("ph", vstr("M")),
        ("pid", Value::UInt(1)),
        ("tid", Value::UInt(0)),
        ("name", vstr("process_name")),
        ("args", obj(vec![("name", vstr("bitflow"))])),
    ]));
    let mut origin_ns: u64 = 0;
    for (i, t) in traces.iter().enumerate() {
        let tid_req = (3 * i + 1) as u64;
        let tid_stage = (3 * i + 2) as u64;
        let tid_ops = (3 * i + 3) as u64;
        let label = if t.id.is_empty() {
            format!("request #{}", t.request_id)
        } else {
            t.id.clone()
        };
        for (tid, what) in [
            (tid_req, "request"),
            (tid_stage, "stages"),
            (tid_ops, "ops"),
        ] {
            events.push(obj(vec![
                ("ph", vstr("M")),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(tid)),
                ("name", vstr("thread_name")),
                (
                    "args",
                    obj(vec![(
                        "name",
                        vstr(format!("trace {i} · {label} · {what}")),
                    )]),
                ),
            ]));
        }
        events.push(obj(vec![
            ("ph", vstr("X")),
            ("pid", Value::UInt(1)),
            ("tid", Value::UInt(tid_req)),
            ("name", vstr(label.clone())),
            ("cat", vstr("request")),
            ("ts", us(origin_ns)),
            ("dur", us(t.total_ns)),
            (
                "args",
                obj(vec![
                    ("request_id", Value::UInt(t.request_id)),
                    ("tenant", vstr(t.tenant.clone())),
                    ("outcome", vstr(t.outcome.clone())),
                    ("batch_size", Value::UInt(t.batch_size)),
                    ("coalesce_window_us", Value::UInt(t.coalesce_window_us)),
                    ("est_batch_ns", Value::UInt(t.est_batch_ns)),
                ]),
            ),
        ]));
        let mut stages = t.stages.clone();
        stages.sort_by_key(|s| s.start_ns);
        let mut prev_end = 0u64;
        for s in &stages {
            let (start, end) = clamp_span(s.start_ns, s.duration_ns, prev_end, t.total_ns);
            prev_end = end;
            events.push(obj(vec![
                ("ph", vstr("X")),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(tid_stage)),
                ("name", vstr(s.stage.as_str())),
                ("cat", vstr("stage")),
                ("ts", us(origin_ns + start)),
                ("dur", us(end - start)),
            ]));
        }
        let mut ops = t.spans.clone();
        ops.sort_by_key(|s| (s.start_ns, s.op_index));
        let mut prev_end = 0u64;
        for s in &ops {
            let (start, end) = clamp_span(s.start_ns, s.duration_ns, prev_end, t.total_ns);
            prev_end = end;
            events.push(obj(vec![
                ("ph", vstr("X")),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(tid_ops)),
                ("name", vstr(s.name.clone())),
                ("cat", vstr("op")),
                ("ts", us(origin_ns + start)),
                ("dur", us(end - start)),
                ("args", obj(vec![("op_index", Value::UInt(s.op_index))])),
            ]));
        }
        // Next trace starts 1 µs after this one ends.
        origin_ns = origin_ns.saturating_add(t.total_ns).saturating_add(1_000);
    }
    let doc = obj(vec![("traceEvents", Value::Array(events))]);
    serde_json::to_string(&doc).unwrap_or_else(|_| "{\"traceEvents\":[]}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{OpSpan, Stage, StageSpan};
    use serde::Deserialize;

    fn events(doc: &str) -> Vec<Value> {
        let v: Value = serde_json::from_str(doc).expect("valid JSON");
        match v.field("traceEvents").expect("traceEvents") {
            Value::Array(items) => items.clone(),
            other => panic!("expected array, found {}", other.kind()),
        }
    }

    fn get_str(e: &Value, key: &str) -> String {
        String::from_value(e.field(key).expect("field")).unwrap_or_default()
    }

    fn get_f64(e: &Value, key: &str) -> f64 {
        f64::from_value(e.field(key).expect("field")).expect("number")
    }

    fn get_u64(e: &Value, key: &str) -> u64 {
        u64::from_value(e.field(key).expect("field")).expect("integer")
    }

    fn sample() -> RequestTrace {
        let mut t = RequestTrace::new(
            3,
            10_000,
            vec![OpSpan {
                op_index: 0,
                name: "conv\"1\nx".to_string(),
                start_ns: 4_000,
                duration_ns: 2_000,
            }],
        );
        t.id = "req-\"quoted\"".to_string();
        t.tenant = "a".to_string();
        t.outcome = "ok".to_string();
        t.stages = vec![
            StageSpan {
                stage: Stage::Exec,
                start_ns: 3_500,
                duration_ns: 3_000,
            },
            StageSpan {
                stage: Stage::Parse,
                start_ns: 0,
                duration_ns: 1_000,
            },
        ];
        t
    }

    #[test]
    fn export_is_valid_json_and_deterministic() {
        let traces = vec![sample(), RequestTrace::new(4, 5_000, Vec::new())];
        let a = to_chrome_trace(&traces);
        let b = to_chrome_trace(&traces);
        assert_eq!(a, b, "export must be a pure function of its input");
        let evs = events(&a);
        assert!(evs
            .iter()
            .all(|e| matches!(get_str(e, "ph").as_str(), "X" | "M")));
        // Trace 0 owns lanes 1..=3, trace 1 owns 4..=6.
        let max_tid = evs.iter().map(|e| get_u64(e, "tid")).max().unwrap_or(0);
        assert_eq!(max_tid, 6);
    }

    #[test]
    fn overlapping_stages_are_clamped_per_lane() {
        let mut t = RequestTrace::new(1, 1_000, Vec::new());
        t.stages = vec![
            StageSpan {
                stage: Stage::Parse,
                start_ns: 0,
                duration_ns: 600,
            },
            StageSpan {
                stage: Stage::Exec,
                start_ns: 500,       // overlaps parse by 100 ns
                duration_ns: 10_000, // and overruns the request total
            },
        ];
        let xs: Vec<(f64, f64)> = events(&to_chrome_trace(&[t]))
            .iter()
            .filter(|e| get_str(e, "ph") == "X" && get_str(e, "cat") == "stage")
            .map(|e| (get_f64(e, "ts"), get_f64(e, "dur")))
            .collect();
        assert_eq!(xs.len(), 2);
        assert!(xs[0].0 + xs[0].1 <= xs[1].0 + 1e-3, "{xs:?}");
        assert!(xs[1].0 + xs[1].1 <= 1.0 + 1e-3, "clamped to total: {xs:?}");
    }

    #[test]
    fn empty_input_is_still_loadable() {
        assert!(events(&to_chrome_trace(&[])).len() <= 1);
    }
}
