//! Lock-free latency histogram.
//!
//! Fixed-size logarithmic bucketing (16 linear sub-buckets per power of
//! two), every bucket an [`AtomicU64`]: recording is one relaxed
//! `fetch_add`, safe from any number of threads, and never allocates. The
//! bucket width bounds the relative quantile error at 1/16 ≈ 6.25%; the
//! reported representative value is the bucket midpoint, halving the
//! worst-case error again.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave (power of two). 16 sub-buckets bound the
/// relative resolution error at 6.25% of the value.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Octaves covered above the exact range. With 60 octaves the histogram
/// tracks up to 2^64 ns without saturating in practice (the last bucket
/// absorbs any overflow).
const OCTAVES: usize = 60;
/// Total bucket count: the first `SUB` values get exact buckets, then
/// `SUB` linear sub-buckets per octave.
pub const BUCKETS: usize = SUB + OCTAVES * SUB;

/// Maps a value to its bucket index. Values `< 16` are exact; larger
/// values land in the sub-bucket of their octave.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // position of the highest set bit, ≥ SUB_BITS
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (SUB + octave * SUB + sub).min(BUCKETS - 1)
}

/// The midpoint of a bucket's value range — the representative value
/// reported for quantiles that land in the bucket.
fn bucket_midpoint(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = ((idx - SUB) / SUB) as u32;
    let sub = ((idx - SUB) % SUB) as u64;
    let width = 1u64 << octave; // each sub-bucket spans 2^octave values
    let lo = (1u64 << (octave + SUB_BITS)) + sub * width;
    lo + width / 2
}

/// The largest value a bucket can hold (inclusive) — the `le` bound the
/// Prometheus exporter publishes for the bucket.
pub fn bucket_upper_edge(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    if idx >= BUCKETS - 1 {
        // The final bucket absorbs everything up to u64::MAX.
        return u64::MAX;
    }
    let octave = ((idx - SUB) / SUB) as u32;
    let sub = ((idx - SUB) % SUB) as u64;
    let width = 1u64 << octave;
    (1u64 << (octave + SUB_BITS)) + (sub + 1) * width - 1
}

/// A concurrent histogram of `u64` samples (nanoseconds, by convention).
///
/// All operations are lock-free; [`LatencyHistogram::record`] is the only
/// thing on the hot path and costs one relaxed atomic add.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` has no const array init through Box; build via Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let boxed: Box<[AtomicU64; BUCKETS]> = match v.into_boxed_slice().try_into() {
            Ok(b) => b,
            Err(_) => unreachable!("constructed with BUCKETS elements"),
        };
        Self { buckets: boxed }
    }

    /// Records one sample. Lock-free, allocation-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples (relaxed sum — exact once writers
    /// are quiescent, a consistent-enough estimate while they are not).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Copies the bucket counts out (for snapshots and quantile queries).
    pub fn snapshot_buckets(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The `p`-th percentile (0 < p ≤ 100) of the recorded samples, as the
    /// midpoint of the bucket holding the rank-`⌈p/100·n⌉` sample. Returns
    /// 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        percentile_of(&self.snapshot_buckets(), p)
    }

    /// Resets every bucket to zero.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Percentile over a bucket-count vector (shared by the live histogram and
/// deserialized snapshots).
pub fn percentile_of(buckets: &[u64], p: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let p = p.clamp(0.0, 100.0);
    // Rank of the target sample, 1-based: ceil(p/100 · total), at least 1.
    let rank = ((p / 100.0 * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (idx, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_midpoint(idx);
        }
    }
    bucket_midpoint(BUCKETS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        // Indices never decrease with the value, and successive values move
        // at most one bucket forward (no gaps).
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1u64..100_000 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "v={v}");
            assert!(idx - prev <= 1, "v={v} jumped {prev}->{idx}");
            prev = idx;
        }
    }

    #[test]
    fn midpoint_lands_in_own_bucket() {
        for idx in 0..BUCKETS - 1 {
            let mid = bucket_midpoint(idx);
            assert_eq!(bucket_index(mid), idx, "idx={idx} mid={mid}");
        }
    }

    #[test]
    fn upper_edges_are_tight_and_strictly_increasing() {
        let mut prev = None;
        for idx in 0..BUCKETS - 1 {
            let hi = bucket_upper_edge(idx);
            // The edge itself belongs to the bucket; the next value does not.
            assert_eq!(bucket_index(hi), idx, "idx={idx} hi={hi}");
            assert_eq!(bucket_index(hi + 1), idx + 1, "idx={idx} hi={hi}");
            assert!(bucket_midpoint(idx) <= hi);
            if let Some(p) = prev {
                assert!(hi > p);
            }
            prev = Some(hi);
        }
        assert_eq!(bucket_upper_edge(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantile_error_is_bounded_on_adversarial_distributions() {
        // The 6.25% bound must hold even on distributions built to stress
        // the bucketing: values just past bucket edges, heavy point masses,
        // two far-apart modes, and a geometric tail spanning many octaves.
        let adversarial: Vec<Vec<u64>> = vec![
            // Just-past-the-edge values: worst case for midpoint error.
            (4..20).map(|o| (1u64 << o) + 1).collect(),
            // Point mass + far outlier: quantiles snap between modes.
            std::iter::repeat_n(999u64, 1000)
                .chain([1_000_000])
                .collect(),
            // Two modes at a 1000× distance.
            (0..500)
                .map(|i| if i % 2 == 0 { 1_500 } else { 1_500_000 })
                .collect(),
            // Geometric tail: one sample per octave across 40 octaves.
            (0..40).map(|o| 3u64 << o).collect(),
        ];
        for (case, values) in adversarial.iter().enumerate() {
            let h = LatencyHistogram::new();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for &v in values {
                h.record(v);
            }
            for p in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
                let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1);
                let exact = sorted[rank - 1] as f64;
                let got = h.percentile(p) as f64;
                let rel = (got - exact).abs() / exact.max(1.0);
                assert!(
                    rel <= 0.0625,
                    "case {case} p{p}: got {got}, exact {exact}, rel {rel:.4}"
                );
            }
        }
    }

    #[test]
    fn exact_range_is_exact() {
        let h = LatencyHistogram::new();
        for v in [0u64, 1, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.percentile(25.0), 0);
        assert_eq!(h.percentile(100.0), 15);
    }

    #[test]
    fn percentiles_of_uniform_distribution() {
        // 1..=10_000: p-th percentile of the true distribution is 100·p.
        let h = LatencyHistogram::new();
        for v in 1u64..=10_000 {
            h.record(v);
        }
        for p in [50.0, 90.0, 95.0, 99.0] {
            let got = h.percentile(p) as f64;
            let want = 100.0 * p;
            let rel = (got - want).abs() / want;
            assert!(rel <= 0.0625, "p{p}: got {got}, want {want}, rel {rel}");
        }
    }

    #[test]
    fn percentile_bounds_and_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), 0);
        h.record(1_000);
        // A single sample is every percentile.
        let v = h.percentile(1.0);
        assert_eq!(v, h.percentile(99.9));
        let rel = (v as f64 - 1_000.0).abs() / 1_000.0;
        assert!(rel <= 0.0625, "single-sample representative {v}");
    }

    #[test]
    fn reset_clears_counts() {
        let h = LatencyHistogram::new();
        h.record(5);
        h.record(500);
        assert_eq!(h.count(), 2);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 977);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn huge_values_saturate_without_panic() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(50.0) > 0);
    }
}
