//! # bitflow-telemetry
//!
//! Operator-level telemetry for the BitFlow serving path.
//!
//! The paper's speedups (Figs. 7–9) come from knowing exactly where cycles
//! go inside the three-level hierarchy (bgemm → PressedConv → graph). This
//! crate makes that visible in production without slowing the hot path:
//!
//! * [`ModelTelemetry`] — one shared, lock-free handle per compiled model:
//!   per-operator call counts, latency histograms (p50/p95/p99), a static
//!   cost model (bit-ops, bytes moved, bgemm tile shape) from which GOPS
//!   and bandwidth are derived at snapshot time, and batch-queue gauges.
//! * [`SpanSink`] — pluggable per-request trace destination. The default
//!   [`NoopSink`] reports `enabled() == false`, so the engine never builds
//!   a [`RequestTrace`]; [`RingSink`] keeps the last N traces in memory;
//!   [`JsonLinesSink`] streams one JSON object per request.
//! * [`MetricsSnapshot`] — a plain-data, `serde`-serializable copy of every
//!   counter, written by the bench bins to `results/telemetry.json`.
//! * [`TraceBuilder`] / [`FlightRecorder`] — request-scoped lifecycle
//!   tracing across net → serve → engine, with tail-based sampling (every
//!   error plus the slowest N per window) under a hard byte budget, and
//!   [`to_chrome_trace`] to export retained traces for Perfetto.
//!
//! ## Overhead contract
//!
//! Telemetry is *opt-in per model*. When not enabled the engine holds an
//! empty `OnceLock` and pays one pointer check per request. When enabled,
//! recording one operator costs an `Instant` pair plus four relaxed
//! `fetch_add`s — no locks, no allocation — which keeps the measured
//! end-to-end overhead below 3% on the Table IV workloads. Request traces
//! allocate, but only when the installed sink asks for them
//! ([`SpanSink::enabled`]).

mod chrome;
mod hist;
mod metrics;
mod prometheus;
mod recorder;
pub mod roofline;
mod snapshot;
mod span;

pub use chrome::to_chrome_trace;
pub use hist::{bucket_upper_edge, percentile_of, LatencyHistogram};
pub use metrics::{
    BatchGauges, ModelTelemetry, OpCost, OpDescriptor, OpKind, ServeGauges, StageTimer, TileStats,
};
pub use recorder::{FlightRecorder, RecorderConfig, RecorderStats};
pub use roofline::{BwSource, Roofline};
pub use snapshot::{
    BatchSnapshot, GovernSnapshot, HistBucket, MachineSnapshot, MetricsSnapshot, OpBound,
    OpSnapshot, PerfSnapshot, ServeSnapshot, SizeBucket, StageSnapshot, BATCH_SIZE_EDGES,
    SCHEMA_VERSION,
};
pub use span::{
    JsonLinesSink, NoopSink, OpSpan, RequestTrace, RingSink, SpanSink, Stage, StageSpan,
    TraceBuilder,
};
